"""Setup script.

Metadata lives here (rather than a [project] table in pyproject.toml)
because the offline build environment lacks the ``wheel`` package that
PEP 660 editable installs require; with a plain setup.py, ``pip install -e .``
falls back to the classic ``setup.py develop`` path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Non-linear workload characterization with neural networks "
        "(IISWC 2006 reproduction)"
    ),
    long_description=open("README.md").read(),
    long_description_content_type="text/markdown",
    python_requires=">=3.9",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.20"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
    entry_points={
        "console_scripts": [
            "repro-experiments=repro.experiments.runner:main",
            "repro-characterize=repro.cli:main",
            "repro-serve=repro.cli:serve_main",
            "repro-lifecycle=repro.cli:lifecycle_main",
            "repro-trace=repro.cli:trace_main",
            "repro-tune=repro.cli:tune_main",
            "repro-ingest=repro.cli:ingest_main",
        ]
    },
)
