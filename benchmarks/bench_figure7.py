"""Figure 7: the valley surface (dealer purchase RT vs default x web).

Asserts the valley the paper describes: a trough in the web direction whose
floor runs "from (default queue, web queue) = (0, 18) to (20, 20)" — the
minimum moves as the two parameters are adjusted concurrently.
"""

import numpy as np

from conftest import once
from repro.experiments.surfaces import run_figure7


def test_figure7_valley(benchmark):
    figure = once(benchmark, run_figure7)
    print()
    print(figure.to_text())

    assert figure.matches_paper, figure.classification
    assert figure.classification.along_param == "web_threads"

    surface = figure.surface
    path = surface.valley_path()
    # The floor starts near web 18 at default 0 ...
    first_default, first_web, _ = path[0]
    assert first_default == 0.0
    assert 17.0 <= first_web <= 20.0
    # ... and does not drift back below it by default 20 (the paper's floor
    # ends at web 20).
    last_default, last_web, _ = path[-1]
    assert last_default == 20.0
    assert last_web >= first_web

    # Valley walls: the web-14 edge towers over the floor.
    floor = min(z for _, _, z in path)
    wall = surface.z[:, 0].max()
    assert wall > 2.0 * floor
