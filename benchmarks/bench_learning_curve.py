"""Ablation: prediction error vs number of measured configurations.

The paper's economics: experiments are the scarce resource ("minimize the
test cases to reduce the amount of heuristic effort").  The learning curve
shows what each additional measured configuration buys the model.
"""

import numpy as np

from conftest import once
from repro.experiments import config as C
from repro.experiments.modeling import tuned_model
from repro.model_selection.learning_curve import learning_curve

SIZES = [15, 25, 35, 50]


def test_learning_curve(benchmark, table2_data):
    def run():
        return learning_curve(
            tuned_model,
            table2_data.x,
            table2_data.y,
            sizes=SIZES,
            k=5,
            seed=C.MASTER_SEED,
        )

    curve = once(benchmark, run)

    print()
    print(curve.to_text())

    # More samples never hurt much: the last point must be the best-or-near
    # (within 20 % of the minimum, allowing CV noise).
    best = min(curve.errors)
    assert curve.errors[-1] <= 1.2 * best
    # And the small-sample end must be visibly worse than the full set —
    # the curve carries information.
    assert curve.errors[0] > curve.errors[-1]
    # The paper's ~50 samples land in the flat region: the error at 35
    # samples is already within 2x of the error at 50.
    assert curve.errors[2] <= 2.0 * curve.errors[-1] + 0.02
