"""Extension: SLA (p90) modelling with the pinball loss.

The paper models mean indicators; operators sign agreements on tail
quantiles.  This bench trains the same MLP architecture against simulated
p90 response times under the pinball loss and checks that (a) it is about
as accurate on p90 as the mean model is on means, and (b) its predictions
dominate the mean model's — a p90 model that predicts below the mean would
be useless for SLAs.
"""

import numpy as np

from conftest import once
from repro.experiments import config as C
from repro.experiments.data import make_workload
from repro.model_selection.metrics import harmonic_mean_relative_error
from repro.model_selection.split import train_test_split
from repro.models.quantile import QuantileWorkloadModel, tail_targets
from repro.workload.sampler import latin_hypercube


def test_p90_sla_model(benchmark):
    def run():
        workload = make_workload(duration=10.0)
        configs = latin_hypercube(
            C.TABLE2_SPACE, 40, seed=C.MASTER_SEED + 7
        )
        metrics = [workload.run(c) for c in configs]
        x = np.vstack([c.as_vector() for c in configs])
        p90 = np.maximum(tail_targets(metrics, percentile=90), 1e-3)
        means = np.maximum(
            np.vstack([m.as_vector() for m in metrics]), 1e-3
        )
        x_train, x_test, y_train, y_test = train_test_split(
            x, np.hstack([p90, means]), test_fraction=0.25, seed=C.MASTER_SEED
        )
        p90_train, means_train = y_train[:, :5], y_train[:, 5:]
        p90_test, means_test = y_test[:, :5], y_test[:, 5:]

        model = QuantileWorkloadModel(
            quantile=0.9,
            hidden=C.TUNED_HIDDEN,
            error_threshold=0.02,
            max_epochs=C.TUNED_MAX_EPOCHS,
            seed=C.MASTER_SEED,
        ).fit(x_train, p90_train)
        predicted = model.predict(x_test)
        error = float(harmonic_mean_relative_error(predicted, p90_test))
        return error, predicted, p90_test, means_test

    error, predicted, p90_test, means_test = once(benchmark, run)

    print()
    print(f"p90 model holdout error (harmonic mean): {100 * error:.2f}%")

    # Tail latencies are predictable to within the paper's accuracy band.
    assert error < 0.12
    # An SLA model must sit above the mean for the response-time columns
    # on the clear majority of holdout configurations.
    above = predicted[:, :4] > means_test[:, :4]
    assert above.mean() > 0.7
