"""Figure 6: actual vs predicted values on the validation set.

Generalization to unseen configurations: ~10 held-out samples per trial,
predicted within the paper's error band.
"""

import numpy as np

from conftest import once
from repro.experiments.figures56 import run_figure6


def test_figure6_validation_series(benchmark):
    figure = once(benchmark, run_figure6)
    print()
    print(figure.panel(0))

    # The 5-fold split holds out ~10 of the 50 samples per trial.
    assert 8 <= figure.n_samples <= 12
    assert figure.actual.shape == figure.predicted.shape

    # Paper's validation errors run 0.1 % .. 12.6 % per indicator; require
    # the same order of magnitude on unseen configurations.  The median is
    # the robust view — an arithmetic mean is dominated by the one-or-two
    # near-saturation holdouts whose tiny actual values blow up the ratio.
    relative = np.abs(figure.predicted - figure.actual) / np.abs(figure.actual)
    assert np.all(np.median(relative, axis=0) < 0.15)
    assert np.all(figure.mean_relative_errors() < 0.60)
    assert np.all(np.isfinite(figure.predicted))
