"""Figure 5: actual vs predicted values on the training set.

The paper's point: "the MLP is loosely fit to the training set on purpose to
avoid overfitting".  We regenerate the series and assert the loose fit —
training predictions track the actuals but are *not* interpolated exactly.
"""

import numpy as np

from conftest import once
from repro.experiments.figures56 import run_figure5


def test_figure5_training_series(benchmark):
    figure = once(benchmark, run_figure5)
    print()
    print(figure.panel(0))

    # ~40 training points per trial out of the 50-sample collection.
    assert 35 <= figure.n_samples <= 45
    assert figure.actual.shape == figure.predicted.shape

    errors = figure.mean_relative_errors()
    # Tracks the data: every indicator within ~15 % on average.
    assert np.all(errors < 0.15)
    # Loose on purpose: the fit is NOT an exact interpolation.
    assert float(np.abs(figure.predicted - figure.actual).max()) > 0.0
    assert errors.mean() > 1e-4
