"""Fidelity: the figure model's surfaces against direct measurement.

The paper overlays actual data points on its predicted surfaces and notes
they "spread over (or under) the surface with the same accuracy described
in Table 2".  This bench measures a coarse grid of the Figure 7 plane
directly on the simulator and quantifies the model surface's per-cell
agreement with it.
"""

import numpy as np

from conftest import once
from repro.analysis.measured import measure_surface, surface_agreement
from repro.analysis.surface import sweep
from repro.experiments import config as C
from repro.experiments.data import figure_dataset, make_workload
from repro.experiments.modeling import fit_figure_model
from repro.workload.service import OUTPUT_NAMES

#: Coarse measurement grid (each cell is a full simulation).
ROWS = [0, 8, 16]
COLS = [15, 17, 19, 22]


def test_figure7_surface_fidelity(benchmark):
    def run():
        model = fit_figure_model(figure_dataset())
        predicted = sweep(
            model,
            indicator_index=OUTPUT_NAMES.index("dealer_purchase_rt"),
            indicator_name="dealer_purchase_rt",
            row_param="default_threads",
            row_values=ROWS,
            col_param="web_threads",
            col_values=COLS,
            fixed={
                "injection_rate": C.FIGURE_INJECTION_RATE,
                "mfg_threads": C.FIGURE_MFG_THREADS,
            },
        )
        measured = measure_surface(
            make_workload(seed=C.MASTER_SEED + 50, duration=20.0),
            indicator="dealer_purchase_rt",
            row_param="default_threads",
            row_values=ROWS,
            col_param="web_threads",
            col_values=COLS,
            fixed={
                "injection_rate": C.FIGURE_INJECTION_RATE,
                "mfg_threads": float(C.FIGURE_MFG_THREADS),
            },
        )
        return surface_agreement(predicted, measured)

    agreement = once(benchmark, run)

    print()
    print(agreement.to_text())

    # The paper's wording: dots spread around the surface with Table-2-like
    # accuracy.  Harmonic-mean error across the plane (including the
    # congested wall cells, measured with a *different* seed than the
    # training data) must stay within a Table-2-like band.
    assert agreement.harmonic_mean_error < 0.15
    assert agreement.median_error < 0.40
