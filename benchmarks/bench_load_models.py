"""Ablation: open-loop vs closed-loop load at saturation.

The paper's driver is open-loop (fixed injection rate).  The loop
discipline matters near saturation: an open system sheds load through
timeouts while a closed population self-limits — its throughput obeys the
interactive response-time law X <= N / (Z + R).  This bench runs both
drivers against the same server and checks each regime's signature.
"""

import numpy as np

from conftest import once
from repro.workload.appserver import AppServer
from repro.workload.closedloop import ClosedLoopDriver
from repro.workload.database import Database
from repro.workload.des import Simulator
from repro.workload.distributions import Exponential
from repro.workload.driver import LoadDriver
from repro.workload.rng import StreamRegistry
from repro.workload.transactions import standard_mix

HORIZON = 12.0


def _server(sim, streams):
    database = Database(sim, connections=14, rng=streams.stream("db"))
    mfg_db = Database(sim, connections=14, rng=streams.stream("mfgdb"))
    return AppServer(
        sim,
        database,
        mfg_threads=16,
        web_threads=18,
        default_threads=14,
        rng=streams.stream("service"),
        mfg_database=mfg_db,
    )


def run_open(rate):
    sim = Simulator()
    streams = StreamRegistry(7)
    server = _server(sim, streams)
    driver = LoadDriver(
        sim,
        standard_mix(),
        injection_rate=rate,
        handler=server.handle,
        arrival_rng=streams.stream("arrivals"),
        mix_rng=streams.stream("mix"),
    )
    driver.start()
    sim.run_until(HORIZON)
    completed = [t for t in driver.transactions if t.is_complete]
    abandoned = sum(1 for t in driver.transactions if t.is_abandoned)
    mean_rt = float(np.mean([t.response_time for t in completed]))
    return len(completed) / HORIZON, mean_rt, abandoned


def run_closed(population):
    sim = Simulator()
    streams = StreamRegistry(7)
    server = _server(sim, streams)
    driver = ClosedLoopDriver(
        sim,
        standard_mix(),
        population=population,
        handler=server.handle,
        think_rng=streams.stream("think"),
        mix_rng=streams.stream("mix"),
        think_time=Exponential(mean=0.05),
    )
    driver.start()
    sim.run_until(HORIZON)
    completed = [t for t in driver.transactions if t.is_complete]
    mean_rt = float(np.mean([t.response_time for t in completed]))
    return len(completed) / HORIZON, mean_rt, driver


def test_open_vs_closed_loop(benchmark):
    def run():
        return {
            "open_moderate": run_open(450),
            "open_overload": run_open(900),
            "closed_small": run_closed(20),
            "closed_large": run_closed(120),
        }

    results = once(benchmark, run)

    print()
    for name, values in results.items():
        tps, rt = values[0], values[1]
        print(f"{name:15s} throughput {tps:7.1f}/s  mean rt {1000 * rt:7.1f} ms")

    # Open loop at 2x capacity: load shedding (abandonment) appears and
    # goodput stays near the capacity ceiling rather than scaling with rate.
    _, _, abandoned = results["open_overload"]
    assert abandoned > 0
    assert results["open_overload"][0] < 2 * results["open_moderate"][0]

    # Closed loop: a larger population raises throughput sub-linearly and
    # the interactive response-time law holds.
    tps_small, rt_small, driver_small = results["closed_small"]
    tps_large, rt_large, driver_large = results["closed_large"]
    assert tps_large > tps_small
    assert tps_large < 6 * tps_small  # 6x users, sub-6x throughput
    assert tps_large <= driver_large.throughput_bound(rt_large) * 1.05
    # Saturated closed systems trade response time, not queue length.
    assert rt_large > rt_small
