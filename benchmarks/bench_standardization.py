"""Ablation: pre-processing on/off (paper Section 3.1).

"This process is crucial to avoid the possibility of MLPs ending up in a
local minimum": with raw thread counts and injection rates (magnitudes 2 to
600) as inputs, gradient descent stalls.  We train the same network with and
without standardization and measure the gap.
"""

import numpy as np

from conftest import once
from repro.experiments import config as C
from repro.model_selection.cross_validation import cross_validate
from repro.models.neural import NeuralWorkloadModel


def make_model(standardize, trial):
    return NeuralWorkloadModel(
        hidden=C.TUNED_HIDDEN,
        error_threshold=C.TUNED_ERROR_THRESHOLD,
        max_epochs=3000,
        standardize_inputs=standardize,
        seed=C.MASTER_SEED + trial,
    )


def test_standardization_ablation(benchmark, table2_data):
    def run():
        on = cross_validate(
            lambda t: make_model(True, t),
            table2_data.x,
            table2_data.y,
            k=5,
            seed=C.MASTER_SEED,
        )
        off = cross_validate(
            lambda t: make_model(False, t),
            table2_data.x,
            table2_data.y,
            k=5,
            seed=C.MASTER_SEED,
        )
        return on, off

    on, off = once(benchmark, run)

    print()
    print(f"standardized inputs:   error {100 * on.overall_error:6.2f}%")
    print(f"raw inputs:            error {100 * off.overall_error:6.2f}%")

    # The paper's claim, quantified: training on raw magnitudes is much
    # worse than on standardized inputs.
    assert on.overall_error < 0.5 * off.overall_error
