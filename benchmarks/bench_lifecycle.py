"""Lifecycle capture and drift scoring: the hot-path cost claims.

The continuous-learning loop's two serving-facing promises, measured
through the in-process engine (no sockets):

1. the observation tap (:func:`repro.lifecycle.serving_tap` at sampling
   rate 1.0 — every prediction recorded) costs < 5 % of single-query
   throughput, so capture can stay on in production;
2. one full drift verdict (configuration z-scores + residual harmonic-mean
   errors) over a buffer of hundreds of observations is a
   sub-10-millisecond operation, cheap enough to run on every cycle.

Both are measured min-of-trials so scheduler noise cannot manufacture an
overhead that is not there.
"""

import gc
import time

import numpy as np

from conftest import once
from repro.lifecycle import DriftDetector, ObservationLog, serving_tap
from repro.models.neural import NeuralWorkloadModel
from repro.models.persistence import save_model
from repro.serving import ServingEngine

N_QUERIES = 2048
N_TRIALS = 5
N_DRIFT_OBSERVATIONS = 512
MAX_TAP_OVERHEAD = 0.05


def _fitted_model():
    rng = np.random.default_rng(0)
    x = rng.uniform(1.0, 8.0, size=(60, 4))
    y = np.column_stack(
        [
            0.1 + 0.02 * (x[:, 1] - 4.0) ** 2,
            0.1 + 0.01 * x[:, 3],
            x[:, 0] * 0.05,
            x[:, 2] * 0.03 + 0.2,
            400.0 - 3.0 * (x[:, 3] - 5.0) ** 2,
        ]
    )
    model = NeuralWorkloadModel(
        hidden=(16, 8), error_threshold=0.02, max_epochs=2000, seed=0
    )
    return model.fit(x, y)


def test_capture_overhead_and_drift_latency(benchmark, tmp_path):
    model = _fitted_model()
    save_model(model, tmp_path / "paper.json")
    queries = np.random.default_rng(1).uniform(1.0, 8.0, size=(N_QUERIES, 4))

    def trial(untapped_engine, tapped_engine):
        # Queries alternate between the two engines so scheduler noise,
        # frequency scaling, and cache effects hit both paths equally.
        untapped_seconds = tapped_seconds = 0.0
        clock = time.perf_counter
        for query in queries:
            start = clock()
            untapped_engine.predict_one("paper", query)
            mid = clock()
            tapped_engine.predict_one("paper", query)
            tapped_seconds += clock() - mid
            untapped_seconds += mid - start
        return untapped_seconds, tapped_seconds

    def run():
        log = ObservationLog(capacity=2 * N_QUERIES * N_TRIALS)
        # Unbatched, uncached: every query pays the forward pass, so the
        # tap's relative cost is measured against honest per-query work.
        with ServingEngine(
            tmp_path, batching=False, cache_size=0
        ) as untapped_engine, ServingEngine(
            tmp_path, batching=False, cache_size=0, observer=serving_tap(log)
        ) as tapped_engine:
            untapped_seconds = tapped_seconds = float("inf")
            trial(untapped_engine, tapped_engine)  # warm-up pass
            gc.disable()  # a GC pause inside one window would skew the ratio
            try:
                for _ in range(N_TRIALS):
                    untapped, tapped = trial(untapped_engine, tapped_engine)
                    untapped_seconds = min(untapped_seconds, untapped)
                    tapped_seconds = min(tapped_seconds, tapped)
            finally:
                gc.enable()
        captured = log.observations_total

        drift_log = ObservationLog(capacity=N_DRIFT_OBSERVATIONS)
        configs = queries[:N_DRIFT_OBSERVATIONS]
        predicted = model.predict(configs)
        drift_log.record_batch(
            "paper",
            configs,
            predicted=predicted,
            measured=1.1 * np.abs(predicted) + 0.01,
        )
        detector = DriftDetector()
        best_drift = float("inf")
        for _ in range(N_TRIALS):
            start = time.perf_counter()
            report = detector.check(drift_log, "paper", model)
            best_drift = min(best_drift, time.perf_counter() - start)
        return {
            "untapped_tps": N_QUERIES / untapped_seconds,
            "tapped_tps": N_QUERIES / tapped_seconds,
            "overhead": tapped_seconds / untapped_seconds - 1.0,
            "captured": captured,
            "drift_ms": 1e3 * best_drift,
            "drift_scored": report.config_score is not None
            and report.residual_overall is not None,
        }

    results = once(benchmark, run)

    print()
    print(f"untapped throughput  {results['untapped_tps']:10.0f} qps")
    print(
        f"tapped throughput    {results['tapped_tps']:10.0f} qps "
        f"({100 * results['overhead']:+.2f}% overhead)"
    )
    print(f"drift check latency  {results['drift_ms']:10.2f} ms "
          f"({N_DRIFT_OBSERVATIONS} observations)")

    # Sampling rate 1.0 really captured every query of every tapped trial
    # (measured trials plus the warm-up pass).
    assert results["captured"] == N_QUERIES * (N_TRIALS + 1)
    # The acceptance bar: capture costs < 5% of serving throughput.
    assert results["overhead"] < MAX_TAP_OVERHEAD
    # A full two-signal drift verdict is a cheap, per-cycle operation.
    assert results["drift_scored"]
    assert results["drift_ms"] < 10.0
