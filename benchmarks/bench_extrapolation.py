"""Ablation: MLP extrapolation failure and the logarithmic-network remedy.

Section 5.3: "neural network models cannot be used for extrapolation ...
the prediction accuracy of MLPs drop rapidly outside the range of training
data", citing Hines's logarithmic architecture [23] as the fix.  We train on
injection rates 300..480 and predict the (smooth, analytic-surrogate)
response at 560 — well outside the training range.
"""

import numpy as np

from conftest import once
from repro.models.neural import NeuralWorkloadModel
from repro.nn.logarithmic import LogarithmicNetwork
from repro.workload.analytic import AnalyticWorkloadModel
from repro.workload.sampler import (
    ConfigSpace,
    ParameterRange,
    SampleCollector,
    latin_hypercube,
)
from repro.workload.service import WorkloadConfig

TRAIN_SPACE = ConfigSpace(
    [
        ParameterRange("injection_rate", 300, 480),
        ParameterRange("default_threads", 12, 20),
        ParameterRange("mfg_threads", 14, 20),
        ParameterRange("web_threads", 18, 23),
    ]
)

#: Far outside the training injection range.
PROBE = WorkloadConfig(560, 16, 16, 20)


def test_extrapolation_failure_and_remedy(benchmark):
    def run():
        surrogate = AnalyticWorkloadModel()
        train = SampleCollector(surrogate).collect(
            latin_hypercube(TRAIN_SPACE, 80, seed=3)
        )
        # Predict throughput (column 4), the smoothly-growing indicator.
        y = train.y[:, 4:5]

        mlp = NeuralWorkloadModel(
            hidden=(16,), error_threshold=1e-5, max_epochs=6000, seed=0
        ).fit(train.x, y)
        log_net = LogarithmicNetwork(4, 1, seed=0)
        log_net.fit(train.x, y, max_epochs=6000)

        truth = float(surrogate.evaluate_vector(PROBE)[4])
        probe = PROBE.as_vector().reshape(1, -1)
        return {
            "truth": truth,
            "in_sample_mlp": float(
                np.mean(np.abs(mlp.predict(train.x) - y) / np.abs(y))
            ),
            "mlp": float(mlp.predict(probe)[0, 0]),
            "log_net": float(log_net.predict(probe)[0, 0]),
        }

    result = once(benchmark, run)

    truth = result["truth"]
    mlp_error = abs(result["mlp"] - truth) / truth
    log_error = abs(result["log_net"] - truth) / truth
    print()
    print(f"truth at injection 560:   {truth:8.1f} tps")
    print(f"MLP prediction:           {result['mlp']:8.1f}  ({100*mlp_error:.1f}% off)")
    print(f"log-network prediction:   {result['log_net']:8.1f}  ({100*log_error:.1f}% off)")

    # The MLP fits the training range well...
    assert result["in_sample_mlp"] < 0.05
    # ...but the paper's limitation shows: beyond the range, the
    # non-saturating logarithmic architecture extrapolates better.
    assert log_error < mlp_error
