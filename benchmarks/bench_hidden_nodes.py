"""Ablation: hidden-node-count sweep (paper Section 3.2).

"When it comes to this question there seems to be no definite answer" — the
node count was hand-tuned.  This bench maps the landscape around the tuned
setting with the grid search that stands in for the hand tuning, and asserts
the tuned value is near-optimal on this collection.
"""

import numpy as np

from conftest import once
from repro.experiments import config as C
from repro.model_selection.search import GridSearch
from repro.models.neural import NeuralWorkloadModel

HIDDEN_GRID = [(4,), (8,), (16, 8), (32, 16)]


def test_hidden_node_landscape(benchmark, table2_data):
    def run():
        search = GridSearch(
            lambda hidden: NeuralWorkloadModel(
                hidden=hidden,
                error_threshold=C.TUNED_ERROR_THRESHOLD,
                max_epochs=6000,
                seed=C.MASTER_SEED,
            ),
            {"hidden": HIDDEN_GRID},
            k=5,
            seed=C.MASTER_SEED,
        )
        search.fit(table2_data.x, table2_data.y)
        return search

    search = once(benchmark, run)

    print()
    print(search.summary())

    errors = {
        tuple(r.params["hidden"]): r.score for r in search.results_
    }
    # The tuned topology must be within 1.5x of the best grid point
    # (hand tuning found a good region, not necessarily the argmin).
    assert errors[C.TUNED_HIDDEN] <= 1.5 * search.best_.score
    # Capacity matters: the smallest network must be measurably worse than
    # the best one (the landscape is not flat).
    assert errors[(4,)] > search.best_.score
