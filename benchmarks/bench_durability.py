"""Durability overhead: the crash-safety features must stay near-free.

Two hot paths gained integrity machinery in the durability PR, and each
carries an explicit cost ceiling:

1. the observation *record* path — a CRC32-framed write-ahead journal
   append (``ObservationLog(journal_dir=...)``) must cost < 5 % over the
   plain JSONL spill it replaces, so journaling can stay on in
   production;
2. the artifact *load* path — sha256 verify-on-load through an
   :class:`~repro.durability.integrity.IntegrityGuard` must cost < 10 %
   over an unverified load, so hot reloads keep their latency budget.

Both comparisons time the two variants back-to-back in small paired
windows and report the *median of per-pair ratios*: the halves of a pair
share whatever the machine was doing at that instant, so common-mode
noise (CPU steal, frequency scaling, writeback) divides out, and the
median discards the pairs a spike landed inside.  Min-of-sums or
min-of-mins would compare extremes of two independent noisy samples and
jitter by more than the bars themselves on a busy host.
"""

import gc
import time

import numpy as np

from conftest import once
from repro.durability.integrity import IntegrityGuard
from repro.lifecycle import ObservationLog
from repro.models.neural import NeuralWorkloadModel
from repro.models.persistence import save_model
from repro.serving.registry import ModelRegistry

N_RECORDS = 4096
RECORD_BLOCK = 128  # timing-window size on the record path
N_LOADS = 40
N_TRIALS = 5
MAX_RECORD_OVERHEAD = 0.05
MAX_LOAD_OVERHEAD = 0.10


def _fitted_model():
    rng = np.random.default_rng(0)
    x = rng.uniform(1.0, 8.0, size=(60, 4))
    y = np.column_stack(
        [
            0.1 + 0.02 * (x[:, 1] - 4.0) ** 2,
            0.1 + 0.01 * x[:, 3],
            x[:, 0] * 0.05,
            x[:, 2] * 0.03 + 0.2,
            400.0 - 3.0 * (x[:, 3] - 5.0) ** 2,
        ]
    )
    model = NeuralWorkloadModel(
        hidden=(24, 12), error_threshold=0.02, max_epochs=2000, seed=0
    )
    return model.fit(x, y)


def test_durability_overhead(benchmark, tmp_path):
    model = _fitted_model()
    artifact = tmp_path / "paper.json"
    save_model(model, artifact)  # writes the sha256 sidecar too
    rng = np.random.default_rng(1)
    configs = rng.uniform(1.0, 8.0, size=(N_RECORDS, 4))
    predicted = rng.uniform(0.1, 1.0, size=(N_RECORDS, 5))
    measured = rng.uniform(0.1, 1.0, size=(N_RECORDS, 5))
    guard = IntegrityGuard()

    def record_trial(spill_log, journal_log, pairs):
        # Both logs see every record; each block times the two variants
        # back-to-back (order flipping per block) and contributes one
        # (spill_seconds, journal_seconds) pair.
        clock = time.perf_counter
        for block, start in enumerate(range(0, N_RECORDS, RECORD_BLOCK)):
            stop = start + RECORD_BLOCK
            first, second = (
                (spill_log, journal_log) if block % 2 == 0
                else (journal_log, spill_log)
            )
            t0 = clock()
            for i in range(start, stop):
                first.record(
                    "paper",
                    configs[i],
                    predicted=predicted[i],
                    measured=measured[i],
                    source="bench",
                )
            t1 = clock()
            for i in range(start, stop):
                second.record(
                    "paper",
                    configs[i],
                    predicted=predicted[i],
                    measured=measured[i],
                    source="bench",
                )
            t2 = clock()
            if first is spill_log:
                pairs.append((t1 - t0, t2 - t1))
            else:
                pairs.append((t2 - t1, t1 - t0))

    plain_registry = ModelRegistry(tmp_path)
    verified_registry = ModelRegistry(tmp_path, integrity=guard)

    def load_trial(pairs):
        # The production path end to end: evict forces each get() to
        # re-read, (for the verified registry) hash + check the sidecar,
        # and re-parse the artifact.  Each iteration is one
        # (plain_seconds, verified_seconds) pair, order flipping.
        clock = time.perf_counter
        for i in range(N_LOADS):
            plain_registry.evict("paper")
            verified_registry.evict("paper")
            first, second = (
                (plain_registry, verified_registry) if i % 2 == 0
                else (verified_registry, plain_registry)
            )
            start = clock()
            first.get("paper")
            mid = clock()
            second.get("paper")
            end = clock()
            if first is plain_registry:
                pairs.append((mid - start, end - mid))
            else:
                pairs.append((end - mid, mid - start))

    def run():
        capacity = 2 * N_RECORDS * (N_TRIALS + 1)
        spill_log = ObservationLog(
            capacity=capacity, spill_path=tmp_path / "spill.jsonl"
        )
        journal_log = ObservationLog(
            capacity=capacity, journal_dir=tmp_path / "journal"
        )
        record_trial(spill_log, journal_log, [])  # warm-up pass
        load_trial([])
        record_pairs = []
        load_pairs = []
        gc.disable()  # a GC pause inside one window would skew the ratio
        try:
            for _ in range(N_TRIALS):
                record_trial(spill_log, journal_log, record_pairs)
                load_trial(load_pairs)
        finally:
            gc.enable()
        spill_log.close()
        journal_log.close()
        # The journal really persisted what it was asked to.
        replayed = ObservationLog.replay_journal(
            tmp_path / "journal", capacity=capacity, resume=False
        )

        def median(values):
            values = sorted(values)
            return values[len(values) // 2]

        spill_s = median([p[0] for p in record_pairs])
        journal_s = median([p[1] for p in record_pairs])
        plain_s = median([p[0] for p in load_pairs])
        verified_s = median([p[1] for p in load_pairs])
        return {
            "spill_us": 1e6 * spill_s / RECORD_BLOCK,
            "journal_us": 1e6 * journal_s / RECORD_BLOCK,
            "record_overhead": median([j / s - 1.0 for s, j in record_pairs]),
            "plain_ms": 1e3 * plain_s,
            "verified_ms": 1e3 * verified_s,
            "load_overhead": median([v / p - 1.0 for p, v in load_pairs]),
            "journaled": len(replayed),
        }

    results = once(benchmark, run)

    print()
    print(f"spill record     {results['spill_us']:8.2f} us")
    print(
        f"journal record   {results['journal_us']:8.2f} us "
        f"({100 * results['record_overhead']:+.2f}% overhead)"
    )
    print(f"plain load       {results['plain_ms']:8.2f} ms")
    print(
        f"verified load    {results['verified_ms']:8.2f} ms "
        f"({100 * results['load_overhead']:+.2f}% overhead)"
    )

    # Every record of every pass (warm-up + measured) survived replay.
    assert results["journaled"] == N_RECORDS * (N_TRIALS + 1)
    # The acceptance bars from the durability issue.
    assert results["record_overhead"] < MAX_RECORD_OVERHEAD
    assert results["load_overhead"] < MAX_LOAD_OVERHEAD
