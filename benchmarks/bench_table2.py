"""Table 2: 5-fold cross-validation prediction errors.

Regenerates the paper's headline table and asserts the reproduction bands:
the overall accuracy must reach the paper's ~95 % and every indicator's
average error must stay within the paper's observed range (<= ~13 %).
"""

import numpy as np

from conftest import once
from repro.experiments.table2 import run_table2


def test_table2_cross_validation(benchmark):
    result = once(benchmark, run_table2)
    print()
    print(result.to_text())

    report = result.report
    assert report.k == 5
    assert report.error_matrix.shape == (5, 5)
    # Paper: overall 95 % accuracy; we require at least that band.
    assert report.overall_accuracy >= 0.93
    # Paper: per-indicator averages 0.2 % .. 10 %; allow the same order.
    assert np.all(result.measured_average <= 0.13)
    # Throughput is the easiest indicator in the paper (0.2 %); ours must
    # also be among the smallest errors.
    assert result.measured_average[4] <= np.max(result.measured_average)
