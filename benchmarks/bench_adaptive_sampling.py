"""Ablation: uncertainty-guided sampling vs a space-filling design.

The paper's whole motivation is cutting the number of experiments.  This
bench gives adaptive and Latin-hypercube collection the same simulation
budget and compares the resulting model's error on a held-out probe set —
active learning as the natural next step of the paper's methodology.

Finding (recorded in EXPERIMENTS.md): on this smooth surrogate region the
space-filling design is already near-optimal; adaptive collection is
competitive but does not beat it.  Its payoff is concentrated sampling
around walls/cliffs when evaluations are expensive and noisy.
"""

import numpy as np

from conftest import once
from repro.model_selection.metrics import harmonic_mean_relative_error
from repro.models.neural import NeuralWorkloadModel
from repro.workload.adaptive import AdaptiveSampler
from repro.workload.analytic import AnalyticWorkloadModel
from repro.workload.sampler import (
    ConfigSpace,
    ParameterRange,
    SampleCollector,
    latin_hypercube,
)

SPACE = ConfigSpace(
    [
        ParameterRange("injection_rate", 400, 600),
        ParameterRange("default_threads", 2, 22),
        ParameterRange("mfg_threads", 12, 20),
        ParameterRange("web_threads", 14, 23),
    ]
)

BUDGET = 48


def _fit_and_score(dataset, probe_x, probe_y):
    model = NeuralWorkloadModel(
        hidden=(16, 8), error_threshold=0.003, max_epochs=8000, seed=0
    )
    log_y = np.log(np.maximum(dataset.y, 1e-6))
    model.fit(dataset.x, log_y)
    predicted = np.exp(model.predict(probe_x))
    return float(harmonic_mean_relative_error(predicted, probe_y))


def test_adaptive_vs_space_filling(benchmark):
    def run():
        surrogate = AnalyticWorkloadModel()
        # A dense probe set defines "ground truth over the region".
        probe = SampleCollector(surrogate).collect(
            latin_hypercube(SPACE, 150, seed=99)
        )
        probe_y = np.maximum(probe.y, 1e-6)

        adaptive = AdaptiveSampler(
            surrogate,
            SPACE,
            n_initial=16,
            batch_size=8,
            n_candidates=300,
            seed=1,
        ).collect(budget=BUDGET)
        adaptive_error = _fit_and_score(adaptive.dataset, probe.x, probe_y)

        passive = SampleCollector(surrogate).collect(
            latin_hypercube(SPACE, BUDGET, seed=1)
        )
        passive_error = _fit_and_score(passive, probe.x, probe_y)
        return adaptive_error, passive_error, adaptive

    adaptive_error, passive_error, adaptive = once(benchmark, run)

    print()
    print(f"adaptive sampling ({BUDGET} sims): error {100 * adaptive_error:.2f}%")
    print(f"latin hypercube  ({BUDGET} sims): error {100 * passive_error:.2f}%")
    print(adaptive.to_text())

    # Honest finding: on this smooth, noiseless surrogate region a Latin
    # hypercube is near-optimal, and uncertainty-guided collection ties or
    # trails slightly — its value is localizing cliffs in noisy/expensive
    # settings, not beating LHS everywhere.  The assertions pin the
    # machinery (competitive error, multi-round convergence), not a win.
    assert adaptive_error < 2.5 * passive_error
    assert adaptive_error < 0.03
    assert len(adaptive.rounds) >= 3
    # The acquisition signal must decay as the model firms up.
    spreads = [r.mean_candidate_spread for r in adaptive.rounds]
    assert spreads[-1] < spreads[0]
