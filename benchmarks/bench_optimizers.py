"""Ablation: training algorithms (paper Section 2.2).

"Among various training methods, a gradient descent based back-propagation
method is by far the most popular."  We compare plain SGD against its
refinements on the paper's task: epochs (and wall time) to reach the tuned
loose-fit threshold.
"""

import numpy as np

from conftest import once
from repro.experiments import config as C
from repro.models.neural import NeuralWorkloadModel

OPTIMIZERS = {
    "sgd": 0.1,
    "momentum": 0.05,
    "rmsprop": 0.005,
    "adam": 0.01,
}

MAX_EPOCHS = 8000


def test_optimizer_comparison(benchmark, table2_data):
    def run():
        results = {}
        for name, learning_rate in OPTIMIZERS.items():
            model = NeuralWorkloadModel(
                hidden=C.TUNED_HIDDEN,
                error_threshold=C.TUNED_ERROR_THRESHOLD,
                max_epochs=MAX_EPOCHS,
                optimizer=name,
                learning_rate=learning_rate,
                seed=C.MASTER_SEED,
            )
            model.fit(table2_data.x, table2_data.y)
            result = model.training_results_[0]
            results[name] = (result.epochs_run, result.stopped_by)
        return results

    results = once(benchmark, run)

    print()
    for name, (epochs, stopped_by) in results.items():
        print(f"{name:10s} {epochs:6d} epochs ({stopped_by})")

    # Adam must reach the threshold within the budget...
    adam_epochs, adam_stop = results["adam"]
    assert adam_stop == "error_threshold"
    # ...and dramatically faster than plain gradient descent, which is the
    # practical reason the repo's default is Adam rather than the paper's
    # plain SGD.
    sgd_epochs, _ = results["sgd"]
    assert adam_epochs < sgd_epochs
