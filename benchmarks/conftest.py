"""Shared benchmark fixtures.

The headline benches regenerate the paper's tables and figures.  Sample
collections are cached under ``data/`` — the first run simulates them
(a few minutes), later runs load CSVs.  Each bench both *times* its pipeline
(pytest-benchmark) and *asserts* the reproduced result has the paper's
shape, so `pytest benchmarks/ --benchmark-only` doubles as the reproduction
check.
"""

import numpy as np
import pytest

from repro.experiments.data import figure_dataset, table2_dataset


@pytest.fixture(scope="session")
def table2_data():
    """The canonical ~50-sample collection (cached)."""
    return table2_dataset()


@pytest.fixture(scope="session")
def figure_data():
    """The canonical figure-plane collection (cached)."""
    return figure_dataset()


def once(benchmark, fn):
    """Run a heavy pipeline exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
