"""Tracing overhead on the predict hot path: the stay-on-in-prod claims.

The observability subsystem's two cost promises, measured through the
in-process engine (no sockets, no batching, no cache — every request
pays the honest forward pass):

1. **full sampling** (rate 1.0, every request traced, histograms fed) adds
   < 5 % to predict-path latency, so tracing can stay on under incident
   debugging;
2. **production sampling** (rate 0.01, the head-sampled steady state where
   unsampled requests touch only the noop span) adds < 1 %, so the default
   configuration is effectively free.

Traced and untraced engines are queried alternately inside one loop, and
the ratio is taken min-of-trials, so scheduler noise, frequency scaling
and GC pauses cannot manufacture an overhead that is not there.
"""

import gc
import time

import numpy as np

from conftest import once
from repro.models.neural import NeuralWorkloadModel
from repro.models.persistence import save_model
from repro.serving import ServingEngine

N_QUERIES = 512
BATCH_ROWS = 64  # each request predicts a 64-config batch
N_TRIALS = 5
MAX_OVERHEAD_FULL = 0.05  # sample_rate 1.0
MAX_OVERHEAD_SAMPLED = 0.01  # sample_rate 0.01


def _fitted_model():
    rng = np.random.default_rng(0)
    x = rng.uniform(1.0, 8.0, size=(60, 4))
    y = np.column_stack(
        [
            0.1 + 0.02 * (x[:, 1] - 4.0) ** 2,
            0.1 + 0.01 * x[:, 3],
            x[:, 0] * 0.05,
            x[:, 2] * 0.03 + 0.2,
            400.0 - 3.0 * (x[:, 3] - 5.0) ** 2,
        ]
    )
    model = NeuralWorkloadModel(
        hidden=(16, 8), error_threshold=0.02, max_epochs=2000, seed=0
    )
    return model.fit(x, y)


def _measure_pair(baseline_engine, traced_engine, queries):
    """Interleaved per-request timing; returns (baseline_s, traced_s)."""
    baseline_seconds = traced_seconds = 0.0
    clock = time.perf_counter
    for query in queries:
        start = clock()
        baseline_engine.predict("paper", query)
        mid = clock()
        traced_engine.predict("paper", query)
        traced_seconds += clock() - mid
        baseline_seconds += mid - start
    return baseline_seconds, traced_seconds


def _overhead(tmp_path, queries, **tracing_kwargs):
    """Min-of-trials overhead of a traced engine vs an untraced twin."""
    with ServingEngine(
        tmp_path, batching=False, cache_size=0, tracing=False
    ) as baseline_engine, ServingEngine(
        tmp_path, batching=False, cache_size=0, **tracing_kwargs
    ) as traced_engine:
        baseline_best = traced_best = float("inf")
        _measure_pair(baseline_engine, traced_engine, queries)  # warm-up
        gc.disable()  # a GC pause inside one window would skew the ratio
        try:
            for _ in range(N_TRIALS):
                baseline_s, traced_s = _measure_pair(
                    baseline_engine, traced_engine, queries
                )
                baseline_best = min(baseline_best, baseline_s)
                traced_best = min(traced_best, traced_s)
        finally:
            gc.enable()
        spans = (
            0
            if traced_engine.tracer is None
            else traced_engine.tracer.spans_recorded
        )
    return traced_best / baseline_best - 1.0, baseline_best, spans


def test_tracing_overhead(benchmark, tmp_path):
    save_model(_fitted_model(), tmp_path / "paper.json")
    queries = np.random.default_rng(1).uniform(
        1.0, 8.0, size=(N_QUERIES, BATCH_ROWS, 4)
    )

    def run():
        full, baseline_s, full_spans = _overhead(
            tmp_path, queries, trace_sample_rate=1.0, slow_trace_ms=None
        )
        sampled, _, sampled_spans = _overhead(
            tmp_path, queries, trace_sample_rate=0.01, slow_trace_ms=None
        )
        return {
            "baseline_tps": N_QUERIES / baseline_s,
            "full": full,
            "sampled": sampled,
            "full_spans": full_spans,
            "sampled_spans": sampled_spans,
        }

    results = once(benchmark, run)

    print()
    print(f"baseline throughput   {results['baseline_tps']:9.0f} req/s "
          f"({BATCH_ROWS}-config batches)")
    print(f"sample_rate 1.00      {100 * results['full']:+9.2f}% overhead "
          f"({results['full_spans']} spans)")
    print(f"sample_rate 0.01      {100 * results['sampled']:+9.2f}% overhead "
          f"({results['sampled_spans']} spans)")

    # Full sampling really recorded every request (one engine.predict
    # span per query, each measured trial plus the warm-up).
    assert results["full_spans"] >= N_QUERIES * (N_TRIALS + 1)
    # Head sampling at 1% recorded roughly 1% of the traffic.
    assert results["sampled_spans"] < results["full_spans"] * 0.1
    # The acceptance bars.
    assert results["full"] < MAX_OVERHEAD_FULL
    assert results["sampled"] < MAX_OVERHEAD_SAMPLED
