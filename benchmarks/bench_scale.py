"""Cluster scale-out: predict throughput must grow with worker processes.

The point of the multi-process cluster is escaping the GIL: the
in-process engine serializes every forward pass on one interpreter lock,
while supervised worker processes run them truly concurrently.  This
bench drives an identical concurrent workload — 8 client threads, each
owning one model, pushing 256-row predict batches — through a 1-worker
and a 4-worker cluster and asserts the 4-worker pool delivers at least
2.5x the rows/second.

Routing note: rendezvous hashing pins a model to its replica set, so a
single model cannot scale past its primary.  The workload therefore
spreads across 8 model names (same weights, different artifacts) — the
realistic shape of a tuning fleet serving many scenarios at once.

Skipped on boxes with fewer than 4 CPUs: with nothing to run workers on,
the ratio measures the scheduler, not the architecture.
"""

import os
import threading
import time

import numpy as np
import pytest

from conftest import once
from repro.cluster import ClusterEngine
from repro.models.neural import NeuralWorkloadModel
from repro.models.persistence import save_model

N_MODELS = 8
N_THREADS = 8
ROWS_PER_CALL = 256
CALLS_PER_THREAD = 30
MIN_SPEEDUP = 2.5


def _fitted_model():
    rng = np.random.default_rng(0)
    x = rng.uniform(1.0, 8.0, size=(60, 4))
    y = np.column_stack(
        [
            0.1 + 0.02 * (x[:, 1] - 4.0) ** 2,
            0.1 + 0.01 * x[:, 3],
            x[:, 0] * 0.05,
            x[:, 2] * 0.03 + 0.2,
            400.0 - 3.0 * (x[:, 3] - 5.0) ** 2,
        ]
    )
    # Hidden layers sized so the forward pass (not IPC framing or the
    # parent's Python overhead) dominates each call — the quantity that
    # actually parallelizes across workers.  At (128, 64) the forward
    # pass is ~85% of the per-call pipeline, leaving Amdahl headroom
    # well past the asserted 2.5x.
    model = NeuralWorkloadModel(
        hidden=(128, 64), error_threshold=0.5, max_epochs=100, seed=0
    )
    return model.fit(x, y)


def _model_dir(tmp_path, model):
    for i in range(N_MODELS):
        save_model(model, tmp_path / f"paper{i}.json")
    return tmp_path


def _throughput(models_dir, workers):
    """Rows/second through a ``workers``-process cluster, 8 hot threads."""
    engine = ClusterEngine(
        models_dir,
        workers=workers,
        replication=1,
        fallback=False,
        tracing=False,
    ).start()
    try:
        rng = np.random.default_rng(1)
        batch = rng.uniform(1.0, 8.0, size=(ROWS_PER_CALL, 4))
        names = [f"paper{i % N_MODELS}" for i in range(N_THREADS)]
        for name in names:  # warm every worker's artifact + socket path
            engine.predict(name, batch)

        def hot(name):
            for _ in range(CALLS_PER_THREAD):
                engine.predict(name, batch)

        threads = [
            threading.Thread(target=hot, args=(name,)) for name in names
        ]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - start
        return (N_THREADS * CALLS_PER_THREAD * ROWS_PER_CALL) / elapsed
    finally:
        engine.close()


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="scale-out ratio needs >= 4 CPUs to be meaningful",
)
def test_four_workers_beat_one_by_2_5x(benchmark, tmp_path):
    models_dir = _model_dir(tmp_path, _fitted_model())

    def run():
        tp1 = _throughput(models_dir, workers=1)
        tp4 = _throughput(models_dir, workers=4)
        return tp1, tp4

    tp1, tp4 = once(benchmark, run)
    speedup = tp4 / tp1
    print(
        f"\n1 worker: {tp1:,.0f} rows/s   4 workers: {tp4:,.0f} rows/s   "
        f"speedup: {speedup:.2f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"4-worker cluster managed only {speedup:.2f}x over 1 worker "
        f"(needed {MIN_SPEEDUP}x): {tp1:,.0f} -> {tp4:,.0f} rows/s"
    )
