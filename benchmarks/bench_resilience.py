"""Extension: disturbance resilience of tuned vs marginal configurations.

A model-recommended configuration should not just score well in steady
state — it should carry headroom.  This bench injects the same database
stall into a tuned and a marginal configuration and asserts the tuned one
degrades less and recovers, quantifying the advisor's value beyond the
scoring function.
"""

import numpy as np

from conftest import once
from repro.workload.disturbances import DatabaseSlowdown
from repro.workload.service import ThreeTierWorkload, WorkloadConfig
from repro.workload.timeline import timeline_from_transactions

DISTURBANCE = DatabaseSlowdown(start=8.0, duration=3.0, factor=4.0)
TUNED = WorkloadConfig(480, 16, 16, 20)
MARGINAL = WorkloadConfig(480, 9, 16, 15)


def run_config(config):
    workload = ThreeTierWorkload(
        warmup=2.0, duration=16.0, seed=21, collect_transactions=True
    )
    metrics = workload.run(config, disturbances=[DISTURBANCE])
    timeline = timeline_from_transactions(
        metrics.transactions, interval=1.0, start=2.0
    )
    baseline_tps = timeline.baseline("effective_tps", until=8.0)
    during = timeline.indicator("effective_tps")[
        (timeline.times >= 8.0) & (timeline.times < 11.0)
    ]
    dip = 1.0 - float(np.nanmin(during)) / baseline_tps
    recovery = timeline.recovery_time(
        "effective_tps",
        disturbance_end=11.0,
        baseline_until=8.0,
        tolerance=0.25,
    )
    return baseline_tps, dip, recovery


def test_disturbance_resilience(benchmark):
    def run():
        return {"tuned": run_config(TUNED), "marginal": run_config(MARGINAL)}

    results = once(benchmark, run)

    print()
    for label, (baseline, dip, recovery) in results.items():
        print(
            f"{label:9s} baseline {baseline:5.0f} tps, worst dip "
            f"{100 * dip:3.0f}%, recovery "
            f"{'never' if recovery is None else f'{recovery:.0f}s'}"
        )

    tuned_baseline, tuned_dip, tuned_recovery = results["tuned"]
    marginal_baseline, marginal_dip, _ = results["marginal"]
    # The tuned configuration performs better in steady state...
    assert tuned_baseline > marginal_baseline
    # ...and recovers from the stall within a few windows.
    assert tuned_recovery is not None and tuned_recovery <= 4.0
    # Both dip during a 4x database stall; the tuned one must not dip more.
    assert tuned_dip <= marginal_dip + 0.10
