"""Figure 4: the parallel-slopes surface (manufacturing RT vs default x web).

Asserts the paper's tuning lesson quantitatively: at web = 18, sweeping the
default queue moves manufacturing response time far less than sweeping the
web queue does — "it will be of no use ... to tune the default queue to
achieve a better manufacturing response time".
"""

import numpy as np

from conftest import once
from repro.experiments.surfaces import run_figure4


def test_figure4_parallel_slopes(benchmark):
    figure = once(benchmark, run_figure4)
    print()
    print(figure.to_text())

    assert figure.matches_paper, figure.classification
    assert figure.classification.insensitive_param == "default_threads"

    surface = figure.surface
    # The paper's wording: at web=18 the default axis is near-flat compared
    # with the web axis.
    along_default = surface.col_slice(18.0)
    default_span = along_default.max() / along_default.min()
    along_web = surface.row_slice(0.0)
    web_span = along_web.max() / along_web.min()
    assert web_span > 1.8 * default_span
