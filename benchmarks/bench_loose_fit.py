"""Ablation: the loose-fit stopping threshold (paper Section 3.3).

"It is better to loosely fit to the training sample to maintain the
flexibility of a model."  Sweeping the termination threshold from loose to
tight shows the classic generalization curve: training error keeps falling,
validation error bottoms out and turns.
"""

import numpy as np

from conftest import once
from repro.experiments import config as C
from repro.model_selection.cross_validation import cross_validate
from repro.models.neural import NeuralWorkloadModel

THRESHOLDS = [0.2, 0.05, 0.005, 0.0005]


def test_loose_fit_threshold_sweep(benchmark, table2_data):
    def run():
        results = {}
        for threshold in THRESHOLDS:
            report = cross_validate(
                lambda t, threshold=threshold: NeuralWorkloadModel(
                    hidden=C.TUNED_HIDDEN,
                    error_threshold=threshold,
                    max_epochs=C.TUNED_MAX_EPOCHS,
                    seed=C.MASTER_SEED + t,
                ),
                table2_data.x,
                table2_data.y,
                k=5,
                seed=C.MASTER_SEED,
            )
            results[threshold] = report
        return results

    results = once(benchmark, run)

    print()
    print(f"{'threshold':>10s} {'train err':>10s} {'valid err':>10s}")
    for threshold, report in results.items():
        train = float(
            np.mean([t.training_errors.mean() for t in report.trials])
        )
        print(
            f"{threshold:>10g} {100 * train:9.2f}% "
            f"{100 * report.overall_error:9.2f}%"
        )

    # Tighter thresholds always fit the training folds at least as well.
    train_errors = [
        np.mean([t.training_errors.mean() for t in results[th].trials])
        for th in THRESHOLDS
    ]
    assert train_errors[0] > train_errors[-1]

    # The loosest fit generalizes worse than the tuned one — some fitting
    # is necessary; the paper's threshold sits in the useful range.
    valid_errors = {th: results[th].overall_error for th in THRESHOLDS}
    assert valid_errors[0.2] > valid_errors[C.TUNED_ERROR_THRESHOLD]
