"""Internal validity: the analytic surrogate against the simulator.

The closed-form queueing model shares no code with the DES; agreement in the
stable region cross-validates both implementations, and the speedup
quantifies why the surrogate exists (bulk sweeps).
"""

import time

import numpy as np

from conftest import once
from repro.workload.analytic import AnalyticWorkloadModel
from repro.workload.service import ThreeTierWorkload, WorkloadConfig

STABLE_CONFIGS = [
    WorkloadConfig(420, 14, 16, 18),
    WorkloadConfig(480, 16, 16, 20),
    WorkloadConfig(520, 12, 14, 19),
    WorkloadConfig(450, 18, 20, 22),
]


def test_surrogate_tracks_simulator(benchmark):
    def run():
        simulator = ThreeTierWorkload(warmup=2.0, duration=10.0, seed=5)
        surrogate = AnalyticWorkloadModel()
        rows = []
        for config in STABLE_CONFIGS:
            t0 = time.perf_counter()
            simulated = simulator.run(config).as_vector()
            sim_seconds = time.perf_counter() - t0
            t0 = time.perf_counter()
            analytic = surrogate.evaluate_vector(config)
            model_seconds = time.perf_counter() - t0
            rows.append((config, simulated, analytic, sim_seconds, model_seconds))
        return rows

    rows = once(benchmark, run)

    print()
    speedups = []
    for config, simulated, analytic, sim_s, model_s in rows:
        ratio = analytic[:4] / simulated[:4]
        speedups.append(sim_s / max(model_s, 1e-9))
        print(
            f"inj={config.injection_rate:.0f} d={config.default_threads} "
            f"w={config.web_threads}: RT ratio {ratio.round(2)}, "
            f"tps {analytic[4]:.0f} vs {simulated[4]:.0f}, "
            f"speedup {sim_s / max(model_s, 1e-9):.0f}x"
        )

    for _, simulated, analytic, *_ in rows:
        # Response times within a factor of 2 in the stable region.
        np.testing.assert_array_less(analytic[:4], simulated[:4] * 2.0)
        np.testing.assert_array_less(simulated[:4] * 0.5, analytic[:4])
        # Throughput within 15 %.
        np.testing.assert_allclose(analytic[4], simulated[4], rtol=0.15)

    # The surrogate exists for speed: >= 100x faster than the DES.
    assert np.median(speedups) > 100
