"""Autotuning: cold search cost vs cached recommendation latency.

Two claims the recommendation engine makes, measured in-process:

1. a cached recommendation — the common case for standing objectives
   and repeated operator queries — is at least 10x faster than the cold
   search that produced it;
2. a cold budget-256 search (the server's default) finishes inside a
   fixed wall-time bound, so ``POST /recommend`` stays an interactive
   endpoint rather than a batch job.
"""

import time

import numpy as np

from conftest import once
from repro.models.neural import NeuralWorkloadModel
from repro.models.persistence import save_model
from repro.serving import ServingEngine
from repro.tuning import Constraint, Objective, RecommendationEngine

#: Wall-time ceiling for one cold budget-256 search (seconds).  The MLP
#: forward pass is microseconds per row; even with tracing and cache
#: bookkeeping a search is a handful of vectorized sweeps.
COLD_SEARCH_BOUND_S = 5.0
CACHE_SPEEDUP_FLOOR = 10.0


def _fitted_model():
    rng = np.random.default_rng(0)
    x = rng.uniform(1.0, 24.0, size=(60, 4))
    y = np.column_stack(
        [
            0.1 + 0.02 * (x[:, 1] - 4.0) ** 2,
            0.1 + 0.01 * x[:, 3],
            x[:, 0] * 0.05,
            x[:, 2] * 0.03 + 0.2,
            400.0 - 3.0 * (x[:, 3] - 5.0) ** 2,
        ]
    )
    model = NeuralWorkloadModel(
        hidden=(16, 8), error_threshold=0.02, max_epochs=2000, seed=0
    )
    return model.fit(x, y)


def test_cached_recommendation_speedup(benchmark, tmp_path):
    save_model(_fitted_model(), tmp_path / "paper.json")
    engine = ServingEngine(tmp_path, batching=False)
    tuner = RecommendationEngine(engine, default_budget=256)
    objective = Objective(
        kind="slo", constraints=(Constraint("dealer_browse_rt", 0.5),)
    )

    def run():
        start = time.perf_counter()
        cold = tuner.recommend("paper", objective, seed=0)
        cold_seconds = time.perf_counter() - start

        # Amortize the cached path over repeats: a single hit is too
        # fast for perf_counter noise.
        repeats = 50
        start = time.perf_counter()
        for _ in range(repeats):
            cached = tuner.recommend("paper", objective, seed=0)
        cached_seconds = (time.perf_counter() - start) / repeats
        assert cached == cold
        return cold_seconds, cached_seconds

    try:
        cold_seconds, cached_seconds = once(benchmark, run)
    finally:
        engine.close()
    speedup = cold_seconds / max(cached_seconds, 1e-9)
    print(
        f"\ncold search {cold_seconds * 1000:.1f} ms, cached "
        f"{cached_seconds * 1e6:.0f} us, speedup {speedup:.0f}x"
    )
    assert speedup >= CACHE_SPEEDUP_FLOOR, (
        f"cached recommendation only {speedup:.1f}x faster than the cold "
        f"search (floor {CACHE_SPEEDUP_FLOOR}x)"
    )


def test_cold_search_wall_time(benchmark, tmp_path):
    save_model(_fitted_model(), tmp_path / "paper.json")
    engine = ServingEngine(tmp_path, batching=False)
    tuner = RecommendationEngine(engine, default_budget=256, cache_size=0)

    def run():
        start = time.perf_counter()
        payload = tuner.recommend(
            "paper", Objective(), budget=256, seed=0
        )
        return time.perf_counter() - start, payload

    try:
        seconds, payload = once(benchmark, run)
    finally:
        engine.close()
    print(
        f"\ncold budget-256 search: {seconds * 1000:.1f} ms, "
        f"{payload['evals']} evals"
    )
    assert payload["evals"] <= 256
    assert seconds < COLD_SEARCH_BOUND_S, (
        f"cold budget-256 search took {seconds:.2f}s "
        f"(bound {COLD_SEARCH_BOUND_S}s)"
    )
