"""Ablation: model validity quantified — bootstrap CIs and ensemble spread.

Section 3.3 ties flexibility to validity "over a wider range of samples".
Two instruments make that measurable: bootstrap confidence intervals on the
Table 2 errors (how sure are we about the headline number?), and ensemble
disagreement (where in the configuration space does the model stop being
trustworthy?).
"""

import numpy as np

from conftest import once
from repro.experiments import config as C
from repro.experiments.modeling import tuned_model
from repro.model_selection.bootstrap import bootstrap_cv_errors
from repro.model_selection.cross_validation import cross_validate
from repro.models.ensemble import NeuralEnsemble
from repro.workload.service import WorkloadConfig


def test_bootstrap_and_ensemble_uncertainty(benchmark, table2_data):
    def run():
        report = cross_validate(
            tuned_model,
            table2_data.x,
            table2_data.y,
            k=5,
            seed=C.MASTER_SEED,
            output_names=C.INDICATOR_LABELS,
        )
        intervals = bootstrap_cv_errors(
            report, n_resamples=1000, seed=C.MASTER_SEED
        )
        ensemble = NeuralEnsemble(
            n_members=4,
            seed=C.MASTER_SEED,
            hidden=C.TUNED_HIDDEN,
            error_threshold=C.TUNED_ERROR_THRESHOLD,
            max_epochs=C.TUNED_MAX_EPOCHS,
        )
        ensemble.fit(table2_data.x, table2_data.y)
        inside = ensemble.predict_with_uncertainty(table2_data.x)
        # Far outside the sampled region: a 900/s injection rate.
        outside_points = np.vstack(
            [
                WorkloadConfig(900, d, 16, 18).as_vector()
                for d in (4, 12, 20)
            ]
        )
        outside = ensemble.predict_with_uncertainty(outside_points)
        return intervals, inside, outside

    intervals, inside, outside = once(benchmark, run)

    print()
    print(intervals.to_text())
    print(
        f"ensemble relative spread: inside region "
        f"{100 * inside.relative_spread.mean():.2f}%, far outside "
        f"{100 * outside.relative_spread.mean():.2f}%"
    )

    # The interval brackets the point estimate and stays inside the paper's
    # accuracy band.
    assert intervals.overall.contains(intervals.overall.estimate)
    assert intervals.overall.upper < 0.10
    # Disagreement flags extrapolation: spread far outside the sampled
    # region dwarfs the in-region spread (the Section 5.3 warning, made
    # quantitative).
    assert (
        outside.relative_spread.mean() > 3 * inside.relative_spread.mean()
    )
