"""Ablation: one n-to-m network vs m separate n-to-1 networks (Section 3.2).

The paper opts for a single joint network "in the belief that it will model
the synthetic behavior of the application more accurately", accepting that
"the prediction accuracy will suffer to a small extent".  This bench
measures both sides of that trade.
"""

import numpy as np

from conftest import once
from repro.experiments import config as C
from repro.model_selection.cross_validation import cross_validate
from repro.models.neural import NeuralWorkloadModel


def make_model(joint, trial):
    # Output standardization is pinned on for both arms: the paper's
    # "no need to standardize a single indicator" shortcut would otherwise
    # change the meaning of the stopping threshold (which is expressed in
    # scaled-space MSE) and confound the comparison.
    return NeuralWorkloadModel(
        hidden=C.TUNED_HIDDEN,
        error_threshold=C.TUNED_ERROR_THRESHOLD,
        max_epochs=C.TUNED_MAX_EPOCHS,
        joint=joint,
        standardize_outputs=True,
        seed=C.MASTER_SEED + trial,
    )


def test_joint_vs_separate(benchmark, table2_data):
    def run():
        joint = cross_validate(
            lambda t: make_model(True, t),
            table2_data.x,
            table2_data.y,
            k=5,
            seed=C.MASTER_SEED,
        )
        separate = cross_validate(
            lambda t: make_model(False, t),
            table2_data.x,
            table2_data.y,
            k=5,
            seed=C.MASTER_SEED,
        )
        return joint, separate

    joint, separate = once(benchmark, run)

    print()
    print(f"joint n-to-m:     error {100 * joint.overall_error:6.2f}%")
    print(f"separate n-to-1:  error {100 * separate.overall_error:6.2f}%")

    # Both approaches must land in the paper's accuracy band; the paper
    # only claims a *small* difference between them, so we assert the two
    # stay within a factor of 2.5 of each other rather than a winner.
    assert joint.overall_accuracy >= 0.90
    assert separate.overall_accuracy >= 0.90
    ratio = max(joint.overall_error, separate.overall_error) / max(
        min(joint.overall_error, separate.overall_error), 1e-9
    )
    assert ratio < 2.5
