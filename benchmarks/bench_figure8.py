"""Figure 8: the hill surface (effective throughput vs default x web).

Asserts the paper's lesson: the best throughput sits at an *interior* point
of the plane, so "if performance engineers try to tune the throughput by
varying the web queue while setting the value for default at [a bad value],
it is highly likely that they miss the local maximum".
"""

import numpy as np

from conftest import once
from repro.experiments.surfaces import run_figure8


def test_figure8_hill(benchmark):
    figure = once(benchmark, run_figure8)
    print()
    print(figure.to_text())

    assert figure.matches_paper, figure.classification

    surface = figure.surface
    peak_default, peak_web, peak = surface.maximum()
    # Interior peak (paper's is at (web, default) = (20, 10); ours lands in
    # the same neighbourhood of the plane).
    assert surface.row_values[0] < peak_default < surface.row_values[-1]
    assert surface.col_values[0] < peak_web < surface.col_values[-1]
    assert 8 <= peak_default <= 18
    assert 16 <= peak_web <= 22

    # One-factor-at-a-time tuning from a bad default misses the peak: the
    # best point of the default=0 row is well below the interior maximum.
    one_factor_best = surface.row_slice(0.0).max()
    assert peak > 1.05 * one_factor_best
