"""Ablation: the neural model against every baseline family.

The paper's Section 1 claim — "to successfully approximate a non-linear
behavior with a linear model ... may not always be possible" — plus its
conclusion's proposal to try polynomial and logarithmic functions next.
Runs 5-fold CV for each model family on the Table 2 collection and asserts
the neural model wins.
"""

import numpy as np

from conftest import once
from repro.experiments import config as C
from repro.experiments.modeling import tuned_model
from repro.model_selection.cross_validation import cross_validate
from repro.models.linear import LinearWorkloadModel
from repro.models.loglinear import LogLinearWorkloadModel
from repro.models.polynomial import PolynomialWorkloadModel
from repro.models.rbf import RBFWorkloadModel

FAMILIES = {
    "neural (paper)": tuned_model,
    "linear [2,20,21]": lambda t: LinearWorkloadModel(),
    "polynomial deg-2": lambda t: PolynomialWorkloadModel(degree=2),
    "log-linear": lambda t: LogLinearWorkloadModel(),
    "rbf": lambda t: RBFWorkloadModel(n_centers=25, seed=t),
}


def test_model_family_comparison(benchmark, table2_data):
    def run():
        return {
            name: cross_validate(
                factory,
                table2_data.x,
                table2_data.y,
                k=5,
                seed=C.MASTER_SEED,
            )
            for name, factory in FAMILIES.items()
        }

    reports = once(benchmark, run)

    print()
    print(f"{'model':20s} {'overall error':>14s} {'accuracy':>9s}")
    for name, report in sorted(
        reports.items(), key=lambda item: item[1].overall_error
    ):
        print(
            f"{name:20s} {100 * report.overall_error:13.2f}% "
            f"{100 * report.overall_accuracy:8.1f}%"
        )

    neural = reports["neural (paper)"]
    # The paper's headline: ~95 % accuracy from the neural model.
    assert neural.overall_accuracy >= 0.93
    # And the non-linear claim: the neural model beats the linear family
    # and every analytic baseline on this workload.
    for name, report in reports.items():
        if name != "neural (paper)":
            assert neural.overall_error < report.overall_error, name
