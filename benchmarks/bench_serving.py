"""Serving engine: micro-batched vs single-query throughput, cache latency.

The serving layer's two claims, measured through the in-process engine (no
sockets):

1. coalescing single-configuration queries into batches of 32 amortizes
   the per-call overhead of the forward pass — micro-batched throughput
   must be >= 3x sequential single-query throughput on the same model;
2. an exact-repeat configuration served from the prediction cache is
   faster than one that runs the network.
"""

import time

import numpy as np

from conftest import once
from repro.models.neural import NeuralWorkloadModel
from repro.models.persistence import save_model
from repro.serving import MicroBatcher, ServingEngine

N_QUERIES = 2048
BATCH_SIZE = 32


def _fitted_model():
    rng = np.random.default_rng(0)
    x = rng.uniform(1.0, 8.0, size=(60, 4))
    y = np.column_stack(
        [
            0.1 + 0.02 * (x[:, 1] - 4.0) ** 2,
            0.1 + 0.01 * x[:, 3],
            x[:, 0] * 0.05,
            x[:, 2] * 0.03 + 0.2,
            400.0 - 3.0 * (x[:, 3] - 5.0) ** 2,
        ]
    )
    model = NeuralWorkloadModel(
        hidden=(16, 8), error_threshold=0.02, max_epochs=2000, seed=0
    )
    return model.fit(x, y)


def test_microbatching_throughput(benchmark, tmp_path):
    model = _fitted_model()
    save_model(model, tmp_path / "paper.json")
    rng = np.random.default_rng(1)
    queries = rng.uniform(1.0, 8.0, size=(N_QUERIES, 4))

    def run():
        # -- sequential single queries: one (1, 4) forward pass each -----
        start = time.perf_counter()
        singles = np.vstack(
            [model.predict(q.reshape(1, -1)) for q in queries]
        )
        single_seconds = time.perf_counter() - start
        # -- micro-batched: same queries submitted as futures, coalesced --
        with MicroBatcher(
            model.predict, max_batch_size=BATCH_SIZE, max_wait_ms=5.0
        ) as batcher:
            start = time.perf_counter()
            futures = [batcher.submit(q) for q in queries]
            batched = np.vstack([f.result(30.0) for f in futures])
            batched_seconds = time.perf_counter() - start
            occupancy = batcher.mean_batch_size
        # -- cache: repeated configuration through the full engine --------
        with ServingEngine(
            tmp_path, batching=False, cache_size=256
        ) as engine:
            config = queries[0]
            engine.predict_one("paper", config)  # prime (miss)
            start = time.perf_counter()
            for _ in range(200):
                engine.predict_one("paper", config)
            hit_seconds = (time.perf_counter() - start) / 200
            start = time.perf_counter()
            for q in queries[1:201]:
                engine.predict_one("paper", q)
            miss_seconds = (time.perf_counter() - start) / 200
            hit_rate = engine.cache.hit_rate
        return {
            "singles": singles,
            "batched": batched,
            "single_tps": N_QUERIES / single_seconds,
            "batched_tps": N_QUERIES / batched_seconds,
            "occupancy": occupancy,
            "hit_us": 1e6 * hit_seconds,
            "miss_us": 1e6 * miss_seconds,
            "hit_rate": hit_rate,
        }

    results = once(benchmark, run)

    speedup = results["batched_tps"] / results["single_tps"]
    print()
    print(f"single-query throughput  {results['single_tps']:10.0f} qps")
    print(
        f"micro-batched throughput {results['batched_tps']:10.0f} qps "
        f"({speedup:.1f}x, mean occupancy {results['occupancy']:.1f})"
    )
    print(f"cache hit latency        {results['hit_us']:10.1f} us")
    print(f"cache miss latency       {results['miss_us']:10.1f} us")

    # Both paths compute the same predictions.
    np.testing.assert_allclose(
        results["batched"], results["singles"], rtol=1e-10
    )
    # The acceptance bar: batching wins by >= 3x at batch size 32.
    assert speedup >= 3.0
    # Batches actually coalesced rather than degenerating to singles.
    assert results["occupancy"] >= BATCH_SIZE / 2
    # Exact repeats skip the network and are measurably cheaper.
    assert results["hit_rate"] > 0.4
    assert results["hit_us"] < results["miss_us"]
