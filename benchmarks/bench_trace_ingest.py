"""Trace-factory performance floors: ETL throughput and validation latency.

The factory's two interactive paths carry explicit cost ceilings:

1. **ETL** — ``ingest()`` must stream at >= 100k lines/s on the canonical
   CSV format (a day-long access log at 100 req/s is ~8.6M lines; below
   this floor interactive use stops being interactive);
2. **validation** — the full ``repro-ingest validate`` verdict on the
   bundled sample (fit + emit + generative replay + moment comparison)
   must land in under a second, so it can gate CI and pre-deploy checks.

Both are measured with ``time.perf_counter`` over the real code path
(best of three for the ETL floor, single shot for the verdict — it is
end-to-end by design), and asserted, so the perf contract fails loudly
on regression.
"""

import time
from pathlib import Path

from conftest import once
from repro.traces import (
    emit_family,
    fit_trace,
    ingest,
    validate_family,
)
from repro.traces.synthetic import (
    SyntheticTraceSpec,
    TracePhase,
    generate_synthetic_trace,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
SAMPLE = REPO_ROOT / "data" / "sample_trace.csv"

MIN_ETL_LINES_PER_S = 100_000
MAX_VALIDATE_SECONDS = 1.0


def _big_trace(tmp_path: Path) -> Path:
    """~120k-line CSV trace (600s at 200 req/s, two classes)."""
    spec = SyntheticTraceSpec(
        phases=[TracePhase(300.0, 180.0), TracePhase(300.0, 220.0)],
        classes=[("browse", 0.7, 1.0), ("checkout", 0.3, 1.5)],
        seed=1234,
    )
    return generate_synthetic_trace(tmp_path / "big.csv", spec)


def test_etl_throughput_floor(benchmark, tmp_path):
    path = _big_trace(tmp_path)
    n_lines = sum(1 for _ in path.open())
    assert n_lines >= 100_000

    def run():
        best = float("inf")
        trace = None
        for _ in range(3):
            start = time.perf_counter()
            trace = ingest(path)
            best = min(best, time.perf_counter() - start)
        return trace, best

    trace, best = once(benchmark, run)
    assert len(trace) == n_lines - 1  # every data line parsed, header not
    rate = n_lines / best
    print(f"\nETL: {n_lines} lines in {best:.3f}s -> {rate / 1000:.0f}k lines/s")
    assert rate >= MIN_ETL_LINES_PER_S, (
        f"ETL ran at {rate / 1000:.0f}k lines/s, "
        f"floor is {MIN_ETL_LINES_PER_S / 1000:.0f}k"
    )


def test_validation_verdict_under_a_second(benchmark):
    trace = ingest(SAMPLE)

    def run():
        start = time.perf_counter()
        fit = fit_trace(trace, window_s=40.0)
        family = emit_family(fit, "bench", class_counts=trace.class_counts())
        report = validate_family(family, trace, seed=0)
        return report, time.perf_counter() - start

    report, elapsed = once(benchmark, run)
    assert report.passed, report.to_text()
    print(f"\nvalidation verdict in {elapsed:.3f}s")
    assert elapsed < MAX_VALIDATE_SECONDS, (
        f"validation verdict took {elapsed:.2f}s, ceiling is "
        f"{MAX_VALIDATE_SECONDS:.1f}s"
    )
