"""Random streams and sampling distributions."""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.workload.distributions import (
    Deterministic,
    Erlang,
    Exponential,
    Geometric,
    Hyperexponential,
    LogNormal,
    Uniform,
    get_distribution,
)
from repro.workload.rng import StreamRegistry

ALL = [
    Deterministic(2.0),
    Exponential(mean=0.5),
    Erlang(mean=1.0, k=4),
    Uniform(0.5, 1.5),
    LogNormal(mean=2.0, sigma=0.5),
    Hyperexponential(means=[0.1, 2.0], weights=[0.7, 0.3]),
    Geometric(p=0.4),
]


class TestStreamRegistry:
    def test_same_name_same_stream_object(self):
        registry = StreamRegistry(seed=1)
        assert registry.stream("arrivals") is registry.stream("arrivals")

    def test_streams_independent_of_creation_order(self):
        a = StreamRegistry(seed=1)
        b = StreamRegistry(seed=1)
        a.stream("x")
        first = a.stream("arrivals").normal(size=5)
        second = b.stream("arrivals").normal(size=5)
        np.testing.assert_array_equal(first, second)

    def test_different_names_differ(self):
        registry = StreamRegistry(seed=1)
        a = registry.stream("a").normal(size=5)
        b = registry.stream("b").normal(size=5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = StreamRegistry(seed=1).stream("x").normal(size=5)
        b = StreamRegistry(seed=2).stream("x").normal(size=5)
        assert not np.array_equal(a, b)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            StreamRegistry().stream("")

    def test_negative_seed_rejected_at_construction(self):
        # Regression: a negative seed used to surface lazily at the first
        # stream() call as an opaque SeedSequence error.
        with pytest.raises(ValueError, match="non-negative"):
            StreamRegistry(seed=-3)

    def test_names_listing(self):
        registry = StreamRegistry()
        registry.stream("b")
        registry.stream("a")
        assert registry.names() == ["a", "b"]


@pytest.mark.parametrize("dist", ALL, ids=lambda d: d.name)
class TestDistributionContract:
    def test_samples_nonnegative(self, dist, rng):
        samples = [dist.sample(rng) for _ in range(200)]
        assert all(s >= 0 for s in samples)

    def test_empirical_mean_matches_analytic(self, dist):
        rng = np.random.default_rng(0)
        samples = np.array([dist.sample(rng) for _ in range(8000)])
        assert samples.mean() == pytest.approx(dist.mean(), rel=0.08)


class TestSpecifics:
    def test_deterministic_is_constant(self, rng):
        dist = Deterministic(1.5)
        assert {dist.sample(rng) for _ in range(5)} == {1.5}

    def test_erlang_less_variable_than_exponential(self):
        rng_a = np.random.default_rng(1)
        rng_b = np.random.default_rng(1)
        exponential = np.array(
            [Exponential(1.0).sample(rng_a) for _ in range(4000)]
        )
        erlang = np.array([Erlang(1.0, k=8).sample(rng_b) for _ in range(4000)])
        assert erlang.std() < exponential.std()

    def test_hyperexponential_more_variable_than_exponential(self):
        rng_a = np.random.default_rng(2)
        rng_b = np.random.default_rng(2)
        hyper = Hyperexponential(means=[0.1, 10.0], weights=[0.9, 0.1])
        exponential = Exponential(hyper.mean())
        h = np.array([hyper.sample(rng_a) for _ in range(4000)])
        e = np.array([exponential.sample(rng_b) for _ in range(4000)])
        assert h.std() > e.std()

    def test_uniform_bounds(self, rng):
        dist = Uniform(1.0, 2.0)
        samples = [dist.sample(rng) for _ in range(500)]
        assert min(samples) >= 1.0 and max(samples) <= 2.0

    def test_geometric_integers_at_least_one(self, rng):
        dist = Geometric(0.5)
        samples = [dist.sample(rng) for _ in range(500)]
        assert all(s >= 1 and s == int(s) for s in samples)

    def test_validation(self):
        with pytest.raises(ValueError):
            Exponential(0.0)
        with pytest.raises(ValueError):
            Erlang(1.0, k=0)
        with pytest.raises(ValueError):
            Uniform(2.0, 1.0)
        with pytest.raises(ValueError):
            LogNormal(-1.0)
        with pytest.raises(ValueError):
            Hyperexponential([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            Hyperexponential([1.0, -1.0], [0.5, 0.5])
        with pytest.raises(ValueError):
            Geometric(0.0)
        with pytest.raises(ValueError):
            Deterministic(-1.0)


# One-shot script hashing every stochastic surface that feeds the trace
# factory: named streams x distribution families, plus a generated
# synthetic trace file.  Run in separate interpreters with different
# PYTHONHASHSEED values, the digests must match bit-for-bit — nothing in
# the seeding path may depend on Python's per-process string hashing.
_BIT_IDENTITY_SCRIPT = r"""
import hashlib
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.workload.distributions import (
    Exponential,
    Hyperexponential,
    LogNormal,
)
from repro.workload.rng import StreamRegistry

registry = StreamRegistry(seed=7)
draws = []
for name in ("arrivals", "mix", "service-times", "trace-arrivals"):
    rng = registry.stream(name)
    for dist in (
        Exponential(0.5),
        LogNormal(2.0, 0.5),
        Hyperexponential([0.1, 2.0], [0.7, 0.3]),
    ):
        draws.extend(dist.sample(rng) for _ in range(64))
digest = hashlib.sha256(np.array(draws, dtype=float).tobytes())

from repro.traces.synthetic import default_sample_spec, generate_synthetic_trace

with tempfile.TemporaryDirectory() as tmp:
    path = Path(tmp) / "trace.csv"
    generate_synthetic_trace(path, default_sample_spec(seed=123))
    digest.update(path.read_bytes())

sys.stdout.write(digest.hexdigest())
"""


def test_cross_process_bit_identity():
    """Same seed, different interpreters (and hash seeds) -> same bits."""
    root = Path(__file__).resolve().parents[1]
    digests = []
    for hash_seed in ("0", "424242"):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(root / "src")
        env["PYTHONHASHSEED"] = hash_seed
        result = subprocess.run(
            [sys.executable, "-c", _BIT_IDENTITY_SCRIPT],
            capture_output=True,
            text=True,
            env=env,
            cwd=str(root),
            check=False,
        )
        assert result.returncode == 0, result.stderr
        digests.append(result.stdout.strip())
    assert digests[0] == digests[1]
    assert len(digests[0]) == 64


def test_registry():
    assert isinstance(get_distribution("exponential", mean=1.0), Exponential)
    instance = Uniform(0.0, 1.0)
    assert get_distribution(instance) is instance
    with pytest.raises(KeyError):
        get_distribution("pareto")
    with pytest.raises(ValueError):
        get_distribution(instance, low=0.5)
