"""The tracing core: spans, sampling, buffers, histograms, and the CLI.

Everything here runs without the serving stack — pure unit coverage of
:mod:`repro.observability`.  The end-to-end propagation paths (client →
HTTP → engine → batcher, lifecycle cycles) live in
``test_observability_integration.py``.
"""

import json
import threading
import time

import pytest

from repro.observability import (
    DEFAULT_BUCKETS,
    PARENT_SPAN_HEADER,
    REQUEST_ID_HEADER,
    STATUS_ERROR,
    STATUS_OK,
    TRACE_ID_HEADER,
    JsonlSpanExporter,
    LatencyHistogram,
    Span,
    TraceBuffer,
    Tracer,
    epoch_span_hook,
)
from repro.observability.cli import (
    format_summary_table,
    main as trace_cli_main,
    render_span_tree,
    stage_summary,
)
from repro.observability.trace import NOOP_SPAN
from repro.serving.metrics import ServingMetrics


class TestSpanBasics:
    def test_nesting_follows_the_call_stack(self):
        tracer = Tracer(seed=0)
        with tracer.start_span("outer") as outer:
            with tracer.start_span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        assert tracer.current_span() is None

    def test_attributes_and_status(self):
        tracer = Tracer(seed=0)
        span = tracer.start_span("work", attributes={"a": 1})
        span.set_attribute("b", 2)
        span.end()
        recorded = tracer.buffer.get(span.trace_id)[0]
        assert recorded["attributes"] == {"a": 1, "b": 2}
        assert recorded["status"] == STATUS_OK
        assert recorded["duration_s"] >= 0

    def test_context_manager_records_exceptions(self):
        tracer = Tracer(seed=0)
        with pytest.raises(ValueError):
            with tracer.start_span("boom") as span:
                raise ValueError("broken")
        recorded = tracer.buffer.get(span.trace_id)[0]
        assert recorded["status"] == STATUS_ERROR
        assert "ValueError" in recorded["error"]
        assert "broken" in recorded["error"]

    def test_end_is_idempotent(self):
        tracer = Tracer(seed=0)
        span = tracer.start_span("once")
        span.end()
        duration = span.duration_s
        span.end()
        assert span.duration_s == duration
        assert len(tracer.buffer.get(span.trace_id)) == 1

    def test_sibling_spans_share_a_parent(self):
        tracer = Tracer(seed=0)
        with tracer.start_span("root") as root:
            a = tracer.start_span("a")
            a.end()
            b = tracer.start_span("b")
            b.end()
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id

    def test_seeded_tracer_is_reproducible(self):
        ids = [Tracer(seed=7).new_trace_id() for _ in range(2)]
        assert ids[0] == ids[1]


class TestSampling:
    def test_verdict_is_deterministic_per_trace_id(self):
        tracer = Tracer(sample_rate=0.5)
        trace_id = "7fffffffffffffffffffffffffffffff"
        verdicts = {tracer.should_sample(trace_id) for _ in range(10)}
        assert len(verdicts) == 1

    def test_two_processes_agree_on_the_same_id(self):
        a, b = Tracer(sample_rate=0.37), Tracer(sample_rate=0.37)
        for _ in range(50):
            trace_id = a.new_trace_id()
            assert a.should_sample(trace_id) == b.should_sample(trace_id)

    def test_sampled_out_interior_spans_are_the_noop_singleton(self):
        tracer = Tracer(sample_rate=0.0, slow_threshold_s=10.0, seed=0)
        root = tracer.start_span("root")
        assert root is not NOOP_SPAN  # real: the slow override needs it
        child = tracer.start_span("child")
        assert child is NOOP_SPAN
        child.end()
        root.end()
        assert tracer.buffer.span_count == 0

    def test_no_slow_threshold_means_noop_roots_too(self):
        tracer = Tracer(sample_rate=0.0, slow_threshold_s=None, seed=0)
        assert tracer.start_span("root") is NOOP_SPAN

    def test_slow_spans_survive_sampling(self, caplog):
        tracer = Tracer(sample_rate=0.0, slow_threshold_s=0.0, seed=0)
        with caplog.at_level("WARNING", logger="repro.observability.slow"):
            span = tracer.start_span("slow-root")
            span.end()
        recorded = tracer.buffer.get(span.trace_id)[0]
        assert recorded["attributes"]["slow"] is True
        assert tracer.slow_spans()[-1]["name"] == "slow-root"
        assert any("slow span" in r.message for r in caplog.records)

    def test_fast_spans_of_sampled_traces_are_not_flagged(self):
        tracer = Tracer(sample_rate=1.0, slow_threshold_s=10.0, seed=0)
        span = tracer.start_span("fast")
        span.end()
        recorded = tracer.buffer.get(span.trace_id)[0]
        assert "slow" not in recorded["attributes"]
        assert tracer.slow_spans() == []


class TestRecordSpan:
    def test_retrospective_span_attaches_to_parent(self):
        tracer = Tracer(seed=0)
        with tracer.start_span("root") as root:
            tracer.record_span(
                "stage", duration_s=0.25, attributes={"k": "v"}
            )
        spans = {s["name"]: s for s in tracer.buffer.get(root.trace_id)}
        stage = spans["stage"]
        assert stage["parent_id"] == root.span_id
        assert stage["duration_s"] == 0.25
        assert stage["attributes"] == {"k": "v"}

    def test_noop_without_a_sampled_parent(self):
        tracer = Tracer(sample_rate=0.0, slow_threshold_s=None, seed=0)
        assert tracer.record_span("orphan", duration_s=0.1) is None
        assert tracer.buffer.span_count == 0

    def test_error_status_round_trips(self):
        tracer = Tracer(seed=0)
        with tracer.start_span("root") as root:
            tracer.record_span(
                "failed", duration_s=0.0,
                status=STATUS_ERROR, error="RuntimeError: nope",
            )
        spans = {s["name"]: s for s in tracer.buffer.get(root.trace_id)}
        assert spans["failed"]["status"] == STATUS_ERROR
        assert spans["failed"]["error"] == "RuntimeError: nope"


class TestPropagation:
    def test_inject_extract_round_trip(self):
        tracer = Tracer(seed=0)
        span = tracer.start_span("client")
        headers = tracer.inject_context(span, {})
        assert headers[TRACE_ID_HEADER] == span.trace_id
        assert headers[PARENT_SPAN_HEADER] == span.span_id
        context = tracer.extract_context(headers)
        assert context.trace_id == span.trace_id
        assert context.span_id == span.span_id
        span.end()

    def test_extract_returns_none_without_headers(self):
        assert Tracer(seed=0).extract_context({}) is None

    def test_server_span_joins_the_propagated_trace(self):
        client_tracer = Tracer(seed=1)
        server_tracer = Tracer(seed=2)
        client_span = client_tracer.start_span("client.request")
        headers = client_tracer.inject_context(client_span, {})
        context = server_tracer.extract_context(headers)
        server_span = server_tracer.start_span("http.request", context=context)
        assert server_span.trace_id == client_span.trace_id
        assert server_span.parent_id == client_span.span_id
        server_span.end()
        client_span.end()

    def test_header_names_are_the_documented_ones(self):
        assert TRACE_ID_HEADER == "X-Trace-Id"
        assert PARENT_SPAN_HEADER == "X-Parent-Span-Id"
        assert REQUEST_ID_HEADER == "X-Request-Id"


def _span_dict(trace_id, name="s", duration=0.001, **overrides):
    span = {
        "trace_id": trace_id,
        "span_id": f"{hash((trace_id, name, id(overrides))) & 0xFFFF:04x}",
        "parent_id": None,
        "name": name,
        "start_time": 0.0,
        "duration_s": duration,
        "status": STATUS_OK,
        "error": None,
        "attributes": {},
    }
    span.update(overrides)
    return span


class TestTraceBuffer:
    def test_oldest_trace_is_evicted_whole(self):
        buffer = TraceBuffer(max_traces=2)
        for trace_id in ("t1", "t2", "t3"):
            buffer.add(_span_dict(trace_id))
            buffer.add(_span_dict(trace_id, name="child"))
        assert buffer.get("t1") is None
        assert buffer.get("t2") is not None
        assert buffer.evicted_traces == 1
        assert buffer.dropped_spans == 2

    def test_per_trace_span_bound(self):
        buffer = TraceBuffer(max_traces=4, max_spans_per_trace=3)
        for i in range(5):
            buffer.add(_span_dict("t", name=f"s{i}"))
        assert len(buffer.get("t")) == 3
        assert buffer.dropped_spans == 2

    def test_traces_filters_by_duration_and_status(self):
        buffer = TraceBuffer()
        buffer.add(_span_dict("fast", duration=0.001))
        buffer.add(_span_dict("slow", duration=0.5))
        buffer.add(
            _span_dict("bad", duration=0.01, status=STATUS_ERROR)
        )
        assert [t["trace_id"] for t in buffer.traces(min_duration_s=0.1)] == [
            "slow"
        ]
        assert [t["trace_id"] for t in buffer.traces(status=STATUS_ERROR)] == [
            "bad"
        ]
        assert len(buffer.traces(limit=2)) == 2

    def test_newest_first_ordering(self):
        buffer = TraceBuffer()
        buffer.add(_span_dict("older"))
        buffer.add(_span_dict("newer"))
        assert [t["trace_id"] for t in buffer.traces()] == ["newer", "older"]

    def test_no_spans_lost_below_capacity_under_concurrency(self):
        buffer = TraceBuffer(max_traces=1024, max_spans_per_trace=1024)
        threads, per_thread = 8, 50

        def storm(worker):
            for i in range(per_thread):
                buffer.add(
                    _span_dict(f"w{worker}-{i}", name=f"span{i}")
                )

        workers = [
            threading.Thread(target=storm, args=(w,)) for w in range(threads)
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        assert buffer.span_count == threads * per_thread
        assert buffer.dropped_spans == 0
        assert buffer.evicted_traces == 0

    def test_memory_stays_bounded_under_concurrent_storm(self):
        max_traces, max_spans = 16, 8
        buffer = TraceBuffer(
            max_traces=max_traces, max_spans_per_trace=max_spans
        )
        threads, per_thread = 8, 200

        def storm(worker):
            for i in range(per_thread):
                trace_id = f"w{worker}-t{i % 40}"
                buffer.add(_span_dict(trace_id, name=f"s{i}"))

        workers = [
            threading.Thread(target=storm, args=(w,)) for w in range(threads)
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        assert len(buffer) <= max_traces
        assert buffer.span_count <= max_traces * max_spans
        # Everything offered was either stored, dropped, or evicted.
        assert (
            buffer.span_count + buffer.dropped_spans
            == threads * per_thread
        )


class TestLatencyHistogram:
    def test_observations_land_in_the_right_buckets(self):
        hist = LatencyHistogram(buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.05, 5.0):
            hist.observe(value)
        cumulative = dict(hist.cumulative())
        assert cumulative[0.001] == 1
        assert cumulative[0.01] == 2
        assert cumulative[0.1] == 3
        assert cumulative[float("inf")] == 4
        assert hist.count == 4

    def test_quantiles_are_conservative_upper_bounds(self):
        hist = LatencyHistogram(buckets=(0.001, 0.01, 0.1))
        for _ in range(100):
            hist.observe(0.005)
        quantiles = hist.quantiles()
        assert quantiles["p50"] == 0.01
        assert quantiles["p95"] == 0.01
        assert quantiles["p99"] == 0.01

    def test_empty_histogram_reports_zeros(self):
        hist = LatencyHistogram()
        assert hist.quantile(0.5) == 0.0
        assert hist.mean == 0.0

    def test_prometheus_lines_shape(self):
        hist = LatencyHistogram(buckets=(0.01, 0.1))
        hist.observe(0.05)
        lines = hist.prometheus_lines("stage_seconds", 'stage="predict"')
        assert 'stage_seconds_bucket{stage="predict",le="0.01"} 0' in lines
        assert 'stage_seconds_bucket{stage="predict",le="0.1"} 1' in lines
        assert 'stage_seconds_bucket{stage="predict",le="+Inf"} 1' in lines
        assert any(
            line.startswith("stage_seconds_sum{") for line in lines
        )
        assert 'stage_seconds_count{stage="predict"} 1' in lines

    def test_default_buckets_cover_micro_to_ten_seconds(self):
        assert DEFAULT_BUCKETS[0] <= 1e-4
        assert DEFAULT_BUCKETS[-1] >= 10.0
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_thread_safety_no_lost_observations(self):
        hist = LatencyHistogram()
        threads, per_thread = 8, 500

        def storm():
            for _ in range(per_thread):
                hist.observe(0.001)

        workers = [threading.Thread(target=storm) for _ in range(threads)]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        assert hist.count == threads * per_thread


class TestMetricsBridge:
    def test_span_observer_feeds_stage_histograms(self):
        metrics = ServingMetrics()
        tracer = Tracer(seed=0, on_span_end=metrics.span_observer())
        with tracer.start_span("engine.predict"):
            pass
        stages = metrics.stage_latencies()
        assert "engine.predict" in stages
        assert stages["engine.predict"]["count"] == 1
        text = metrics.to_prometheus()
        assert "repro_serving_stage_latency_seconds_bucket" in text
        assert 'stage="engine.predict"' in text

    def test_dict_snapshot_includes_stage_latencies(self):
        metrics = ServingMetrics()
        metrics.observe_stage("cache.lookup", 0.002)
        snapshot = metrics.to_dict()
        assert "cache.lookup" in snapshot["stage_latency_seconds"]


class TestExporter:
    def test_jsonl_lines_are_parseable(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        tracer = Tracer(seed=0, exporter=JsonlSpanExporter(path))
        with tracer.start_span("a"):
            with tracer.start_span("b"):
                pass
        tracer.exporter.close()
        lines = path.read_text().strip().splitlines()
        spans = [json.loads(line) for line in lines]
        assert {s["name"] for s in spans} == {"a", "b"}
        assert len({s["trace_id"] for s in spans}) == 1

    def test_write_after_close_is_a_noop(self, tmp_path):
        exporter = JsonlSpanExporter(tmp_path / "spans.jsonl")
        exporter.close()
        exporter.write({"trace_id": "t"})  # must not raise


class TestEpochSpanHook:
    def test_records_one_span_per_interval(self):
        tracer = Tracer(seed=0)

        class History:
            final_train_loss = 0.5

        with tracer.start_span("lifecycle.retrain") as root:
            hook = epoch_span_hook(tracer, every=2)
            for epoch in range(6):
                hook(epoch, History())
        spans = [
            s
            for s in tracer.buffer.get(root.trace_id)
            if s["name"] == "lifecycle.retrain.epoch"
        ]
        assert len(spans) == 3
        assert [s["attributes"]["epoch"] for s in spans] == [1, 3, 5]
        assert all(s["parent_id"] == root.span_id for s in spans)
        assert all(s["attributes"]["train_loss"] == 0.5 for s in spans)

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            epoch_span_hook(Tracer(seed=0), every=0)


# ----------------------------------------------------------------------
# repro-trace CLI
# ----------------------------------------------------------------------


@pytest.fixture
def span_file(tmp_path):
    """A JSONL export of two traces (one nested, one slow + error)."""
    tracer = Tracer(
        seed=42, exporter=JsonlSpanExporter(tmp_path / "spans.jsonl")
    )
    with tracer.start_span("http.request"):
        with tracer.start_span("engine.predict"):
            with tracer.start_span("cache.lookup"):
                pass
    with pytest.raises(RuntimeError):
        with tracer.start_span("http.request") as second:
            second.set_attribute("slow", True)
            raise RuntimeError("model exploded")
    tracer.exporter.close()
    return tmp_path / "spans.jsonl"


class TestTraceCli:
    def test_summary_aggregates_per_stage(self, span_file, capsys):
        assert trace_cli_main(["summary", "--file", str(span_file)]) == 0
        out = capsys.readouterr().out
        assert "http.request" in out
        assert "cache.lookup" in out
        assert "p95 ms" in out

    def test_tail_prints_recent_spans(self, span_file, capsys):
        assert trace_cli_main(["tail", "--file", str(span_file), "-n", "2"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 2

    def test_tail_slow_only_filters(self, span_file, capsys):
        assert (
            trace_cli_main(
                ["tail", "--file", str(span_file), "--slow-only"]
            )
            == 0
        )
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 1
        assert "http.request" in out[0]

    def test_show_renders_the_tree_by_prefix(self, span_file, capsys):
        spans = [
            json.loads(line)
            for line in span_file.read_text().strip().splitlines()
        ]
        nested = next(
            s["trace_id"] for s in spans if s["name"] == "cache.lookup"
        )
        assert (
            trace_cli_main(["show", nested[:8], "--file", str(span_file)])
            == 0
        )
        out = capsys.readouterr().out
        assert "http.request" in out
        assert "  engine.predict" in out  # indented child
        assert "    cache.lookup" in out  # grandchild
        assert "self" in out

    def test_show_unknown_prefix_fails(self, span_file, capsys):
        assert (
            trace_cli_main(
                ["show", "ffffffffffff", "--file", str(span_file)]
            )
            == 1
        )
        assert "no trace" in capsys.readouterr().err

    def test_missing_file_is_an_error_not_a_crash(self, tmp_path, capsys):
        assert (
            trace_cli_main(
                ["summary", "--file", str(tmp_path / "nope.jsonl")]
            )
            == 1
        )
        assert "error" in capsys.readouterr().err

    def test_unparseable_lines_are_skipped(self, tmp_path, capsys):
        path = tmp_path / "mixed.jsonl"
        good = _span_dict("abcd1234", name="ok")
        path.write_text("not json\n" + json.dumps(good) + "\n{}\n")
        assert trace_cli_main(["summary", "--file", str(path)]) == 0
        assert "ok" in capsys.readouterr().out


class TestRenderHelpers:
    def test_orphans_are_promoted_to_roots(self):
        spans = [
            _span_dict("t", name="orphan", parent_id="missing-parent"),
        ]
        tree = render_span_tree(spans)
        assert "orphan" in tree

    def test_self_time_subtracts_children(self):
        parent = _span_dict("t", name="parent", duration=0.010)
        parent["span_id"] = "p1"
        child = _span_dict(
            "t", name="child", duration=0.008, parent_id="p1",
            start_time=0.001,
        )
        tree = render_span_tree([parent, child])
        parent_line = next(l for l in tree.splitlines() if "parent" in l)
        assert "self    2.000 ms" in parent_line

    def test_stage_summary_counts_errors(self):
        spans = [
            _span_dict("t1", name="s", duration=0.001),
            _span_dict(
                "t2", name="s", duration=0.002, status=STATUS_ERROR
            ),
        ]
        summary = stage_summary(spans)
        assert summary["s"]["count"] == 2
        assert summary["s"]["errors"] == 1
        table = format_summary_table(summary)
        assert "s" in table.splitlines()[2]
