"""Latency breakdown, capacity planning, and the closed-loop driver."""

import numpy as np
import pytest

from repro.workload.appserver import AppServer
from repro.workload.breakdown import (
    DOMAIN_STAGE,
    WEB_STAGE,
    breakdown,
)
from repro.workload.capacity import CapacityPlanner
from repro.workload.closedloop import ClosedLoopDriver
from repro.workload.database import Database
from repro.workload.des import Simulator
from repro.workload.distributions import Deterministic
from repro.workload.service import ThreeTierWorkload, WorkloadConfig
from repro.workload.transactions import standard_mix


@pytest.fixture(scope="module")
def traced_metrics():
    workload = ThreeTierWorkload(
        warmup=0.5, duration=3.0, seed=5, collect_transactions=True
    )
    return workload.run(WorkloadConfig(400, 14, 16, 18))


class TestBreakdown:
    def test_metrics_expose_transactions_when_asked(self, traced_metrics):
        assert traced_metrics.transactions is not None
        assert len(traced_metrics.transactions) == traced_metrics.completed

    def test_transactions_not_kept_by_default(self, fast_workload, nominal_config):
        metrics = fast_workload.run(nominal_config)
        assert metrics.transactions is None

    def test_every_class_decomposed(self, traced_metrics):
        result = breakdown(traced_metrics.transactions)
        assert set(result.classes()) == {c.name for c in standard_mix()}

    def test_shares_sum_to_one(self, traced_metrics):
        result = breakdown(traced_metrics.transactions)
        for name in result.classes():
            total = sum(s.share for s in result[name].stages)
            assert total == pytest.approx(1.0, abs=1e-6)

    def test_stage_means_sum_to_response_time(self, traced_metrics):
        result = breakdown(traced_metrics.transactions)
        for name in result.classes():
            cls_breakdown = result[name]
            total = sum(s.mean_seconds for s in cls_breakdown.stages)
            assert total == pytest.approx(
                cls_breakdown.mean_response_time, rel=1e-9
            )

    def test_dealer_time_is_in_the_web_stage(self, traced_metrics):
        result = breakdown(traced_metrics.transactions)
        dealer = result["dealer_browse"]
        assert dealer.dominant_stage().stage == WEB_STAGE

    def test_background_time_is_in_the_domain_stage(self, traced_metrics):
        result = breakdown(traced_metrics.transactions)
        misc = result["misc_background"]
        assert misc.dominant_stage().stage == DOMAIN_STAGE

    def test_text_rendering(self, traced_metrics):
        text = breakdown(traced_metrics.transactions).to_text()
        assert "web_queue_wait" in text and "%" in text

    def test_incomplete_transactions_skipped(self, traced_metrics):
        from repro.workload.transactions import Transaction

        pending = Transaction(txn_class=standard_mix()[0], arrived_at=0.0)
        result = breakdown([pending])
        assert result.classes() == []


class TestCapacityPlanner:
    def test_plan_has_every_pool(self):
        report = CapacityPlanner().plan(560)
        assert set(report.pools) == {"web", "mfg", "default"}

    def test_busy_threads_scale_linearly_with_rate(self):
        planner = CapacityPlanner()
        half = planner.pool_busy_threads("web", 280)
        full = planner.pool_busy_threads("web", 560)
        assert full == pytest.approx(2 * half)

    def test_plan_matches_simulator_pool_usage(self, fast_workload):
        """First-order busy threads track the simulated time-average."""
        config = WorkloadConfig(400, 16, 16, 20)
        metrics = fast_workload.run(config)
        planner = CapacityPlanner()
        for pool in ("web", "default", "mfg"):
            simulated_busy = (
                metrics.pool_utilization[pool]
                * {"web": 20, "default": 16, "mfg": 16}[pool]
            )
            planned = planner.pool_busy_threads(pool, 400)
            assert planned == pytest.approx(simulated_busy, rel=0.35)

    def test_cpu_estimate_tracks_simulator(self, fast_workload):
        config = WorkloadConfig(400, 16, 16, 20)
        metrics = fast_workload.run(config)
        planned = CapacityPlanner().cpu_cores(400) / 8.0
        # Simulated utilization includes contention overhead, so it should
        # be >= the contention-free estimate but in the same band.
        assert metrics.cpu_utilization >= planned * 0.9
        assert metrics.cpu_utilization <= planned * 1.5

    def test_max_rate_predicts_the_saturation_knee(self):
        """The DES collapses just above 600/s; the first-order wall must be
        in that neighbourhood."""
        planner = CapacityPlanner(headroom=1.0)
        assert 550 <= planner.max_injection_rate() <= 850

    def test_bottleneck_identification(self):
        planner = CapacityPlanner()
        assert planner.bottleneck(WorkloadConfig(560, 2, 16, 18)) == "default"
        assert planner.bottleneck(WorkloadConfig(560, 16, 16, 4)) == "web"
        assert planner.bottleneck(WorkloadConfig(560, 16, 2, 18)) == "mfg"

    def test_overload_note(self):
        report = CapacityPlanner().plan(900)
        assert any("exceeds" in note for note in report.notes)
        assert not CapacityPlanner().plan(300).notes

    def test_report_text(self):
        text = CapacityPlanner().plan(560).to_text()
        assert "web pool" in text and "max injection rate" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            CapacityPlanner(headroom=0.0)
        with pytest.raises(ValueError):
            CapacityPlanner().plan(0)


class TestClosedLoopDriver:
    def make(self, population, think_mean=0.05):
        sim = Simulator()
        db = Database(sim, connections=8, rng=np.random.default_rng(0))
        server = AppServer(
            sim,
            db,
            mfg_threads=8,
            web_threads=12,
            default_threads=8,
            rng=np.random.default_rng(1),
        )
        driver = ClosedLoopDriver(
            sim,
            standard_mix(),
            population=population,
            handler=server.handle,
            think_rng=np.random.default_rng(2),
            mix_rng=np.random.default_rng(3),
            think_time=Deterministic(think_mean),
        )
        return sim, driver

    def test_concurrency_bounded_by_population(self):
        sim, driver = self.make(population=5)
        driver.start()
        sim.run_until(5.0)
        # At most N requests can ever be in flight; injected counts cycles.
        completed = sum(1 for t in driver.transactions if t.is_complete)
        assert driver.injected >= completed
        in_flight = driver.injected - completed - sum(
            1 for t in driver.transactions if t.is_abandoned
        )
        assert in_flight <= 5

    def test_throughput_respects_interactive_law(self):
        sim, driver = self.make(population=10, think_mean=0.1)
        driver.start()
        sim.run_until(10.0)
        completed = [t for t in driver.transactions if t.is_complete]
        throughput = len(completed) / 10.0
        mean_rt = float(np.mean([t.response_time for t in completed]))
        assert throughput <= driver.throughput_bound(mean_rt) * 1.05

    def test_larger_population_more_throughput_until_saturation(self):
        def tput(population):
            sim, driver = self.make(population=population)
            driver.start()
            sim.run_until(5.0)
            return sum(1 for t in driver.transactions if t.is_complete) / 5.0

        assert tput(20) > tput(5)

    def test_stop_retires_users(self):
        sim, driver = self.make(population=3)
        driver.start()
        sim.run_until(1.0)
        driver.stop()
        count = driver.injected
        sim.run_until(3.0)
        # At most one final request per user was already in flight.
        assert driver.injected <= count + 3

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(population=0)
        sim, driver = self.make(population=1)
        with pytest.raises(ValueError):
            driver.throughput_bound(-1.0)
