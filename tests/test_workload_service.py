"""The ThreeTierWorkload facade: configs, metrics, invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.service import (
    INPUT_NAMES,
    OUTPUT_NAMES,
    ThreeTierWorkload,
    WorkloadConfig,
)


class TestWorkloadConfig:
    def test_vector_round_trip(self, nominal_config):
        rebuilt = WorkloadConfig.from_vector(nominal_config.as_vector())
        assert rebuilt == nominal_config

    def test_canonical_order_matches_paper_caption(self):
        # The paper's 4-tuple is (injection rate, default, mfg, web).
        assert INPUT_NAMES == [
            "injection_rate",
            "default_threads",
            "mfg_threads",
            "web_threads",
        ]
        config = WorkloadConfig(560, 7, 16, 20)
        np.testing.assert_allclose(config.as_vector(), [560, 7, 16, 20])

    def test_from_vector_rounds_thread_counts(self):
        config = WorkloadConfig.from_vector([500.0, 9.6, 15.4, 20.0])
        assert config.default_threads == 10
        assert config.mfg_threads == 15

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(0.0, 1, 1, 1)
        with pytest.raises(ValueError):
            WorkloadConfig(100.0, -1, 1, 1)
        with pytest.raises(ValueError):
            WorkloadConfig.from_vector([1.0, 2.0, 3.0])


class TestMetrics:
    @pytest.fixture(scope="class")
    def metrics(self):
        workload = ThreeTierWorkload(warmup=0.5, duration=3.0, seed=7)
        return workload.run(
            WorkloadConfig(
                injection_rate=400,
                default_threads=14,
                mfg_threads=16,
                web_threads=18,
            )
        )

    def test_all_five_indicators_present(self, metrics):
        assert set(metrics.indicators) == set(OUTPUT_NAMES)

    def test_vector_order(self, metrics):
        vector = metrics.as_vector()
        assert vector.shape == (5,)
        assert vector[4] == metrics.indicators["effective_tps"]

    def test_response_times_positive_and_plausible(self, metrics):
        for name in OUTPUT_NAMES[:4]:
            assert 0.001 < metrics.indicators[name] < 5.0

    def test_effective_throughput_bounded_by_injection(self, metrics):
        assert 0 <= metrics.indicators["effective_tps"] <= 400 * 1.3

    def test_effective_not_above_raw_throughput(self, metrics):
        assert metrics.indicators["effective_tps"] <= metrics.raw_tps + 1e-9

    def test_completion_accounting(self, metrics):
        assert metrics.completed + metrics.abandoned <= metrics.injected

    def test_per_class_stats(self, metrics):
        for stats in metrics.per_class.values():
            assert 0.0 <= stats.deadline_hit_rate <= 1.0
            if stats.completed:
                assert stats.p50 <= stats.p90 <= stats.p99

    def test_response_at_least_service_floor(self, metrics):
        # Mfg transactions need web io + cpu + 2 db calls; anything below
        # ~20ms would indicate the flow is skipping stages.
        assert metrics.indicators["manufacturing_rt"] > 0.02

    def test_utilizations_bounded(self, metrics):
        assert 0.0 <= metrics.cpu_utilization <= 1.0
        for value in metrics.pool_utilization.values():
            assert 0.0 <= value <= 1.0


class TestDeterminism:
    def test_same_seed_same_results(self, nominal_config):
        a = ThreeTierWorkload(warmup=0.5, duration=2.0, seed=3).run(
            nominal_config
        )
        b = ThreeTierWorkload(warmup=0.5, duration=2.0, seed=3).run(
            nominal_config
        )
        np.testing.assert_array_equal(a.as_vector(), b.as_vector())
        assert a.events_executed == b.events_executed

    def test_different_seeds_differ(self, nominal_config):
        a = ThreeTierWorkload(warmup=0.5, duration=2.0, seed=3).run(
            nominal_config
        )
        b = ThreeTierWorkload(warmup=0.5, duration=2.0, seed=4).run(
            nominal_config
        )
        assert not np.array_equal(a.as_vector(), b.as_vector())


class TestQualitativeBehaviour:
    """The phenomena the paper builds its case on, at test scale."""

    def test_starved_web_queue_hurts_response_time(self, fast_workload):
        good = fast_workload.run(WorkloadConfig(400, 14, 16, 18))
        starved = fast_workload.run(WorkloadConfig(400, 14, 16, 2))
        assert (
            starved.indicators["dealer_browse_rt"]
            > 2 * good.indicators["dealer_browse_rt"]
        )

    def test_starved_default_queue_spares_dealer_latency(self, fast_workload):
        """Figure 7's floor passes through default = 0: dealer response
        times do not require default threads."""
        good = fast_workload.run(WorkloadConfig(400, 14, 16, 18))
        starved = fast_workload.run(WorkloadConfig(400, 1, 16, 18))
        assert starved.indicators["dealer_browse_rt"] < (
            1.5 * good.indicators["dealer_browse_rt"]
        )

    def test_starved_default_queue_cuts_effective_throughput(
        self, fast_workload
    ):
        good = fast_workload.run(WorkloadConfig(400, 14, 16, 18))
        starved = fast_workload.run(WorkloadConfig(400, 1, 16, 18))
        assert (
            starved.indicators["effective_tps"]
            < 0.9 * good.indicators["effective_tps"]
        )

    def test_higher_injection_raises_latency(self, fast_workload):
        low = fast_workload.run(WorkloadConfig(250, 14, 16, 18))
        high = fast_workload.run(WorkloadConfig(520, 14, 16, 18))
        assert (
            high.indicators["dealer_purchase_rt"]
            > low.indicators["dealer_purchase_rt"]
        )

    def test_mfg_queue_starvation_hits_only_manufacturing(self, fast_workload):
        good = fast_workload.run(WorkloadConfig(400, 14, 16, 18))
        starved = fast_workload.run(WorkloadConfig(400, 14, 1, 18))
        assert (
            starved.indicators["manufacturing_rt"]
            > 1.5 * good.indicators["manufacturing_rt"]
        )
        assert starved.indicators["dealer_browse_rt"] < (
            1.5 * good.indicators["dealer_browse_rt"]
        )


class TestValidation:
    def test_parameters(self):
        with pytest.raises(ValueError):
            ThreeTierWorkload(warmup=-1.0)
        with pytest.raises(ValueError):
            ThreeTierWorkload(duration=0.0)


@given(
    injection=st.floats(min_value=100, max_value=500),
    default=st.integers(min_value=0, max_value=24),
    mfg=st.integers(min_value=1, max_value=24),
    web=st.integers(min_value=1, max_value=24),
)
@settings(max_examples=12, deadline=None)
def test_invariants_hold_for_arbitrary_configs(injection, default, mfg, web):
    """For any configuration: finite indicators, conservation, bounds."""
    workload = ThreeTierWorkload(warmup=0.2, duration=1.0, seed=0)
    metrics = workload.run(WorkloadConfig(injection, default, mfg, web))
    vector = metrics.as_vector()
    assert np.all(np.isfinite(vector))
    assert np.all(vector >= 0)
    assert metrics.completed + metrics.abandoned <= metrics.injected
    assert metrics.effective_completed <= metrics.completed
    assert 0.0 <= metrics.cpu_utilization <= 1.0
