"""Trainer, stopping rules and training history."""

import math

import numpy as np
import pytest

from repro.nn.mlp import MLP
from repro.nn.optimizers import Adam
from repro.nn.training import (
    EarlyStopping,
    ErrorThreshold,
    History,
    MaxEpochs,
    Trainer,
)


def make_trainer(seed=0, **kwargs):
    net = MLP([2, 6, 1], seed=seed)
    defaults = dict(optimizer=Adam(learning_rate=0.02), seed=seed)
    defaults.update(kwargs)
    return Trainer(net, **defaults)


def linear_data(n=24, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, size=(n, 2))
    y = (x[:, :1] + 0.5 * x[:, 1:2])
    return x, y


class TestBasicTraining:
    def test_loss_decreases(self):
        trainer = make_trainer()
        x, y = linear_data()
        result = trainer.fit(x, y, max_epochs=100)
        assert result.history.train_loss[-1] < result.history.train_loss[0]

    def test_runs_to_max_epochs_without_rules(self):
        trainer = make_trainer()
        x, y = linear_data()
        result = trainer.fit(x, y, max_epochs=7)
        assert result.epochs_run == 7
        assert result.stopped_by == "max_epochs"

    def test_mini_batch_mode(self):
        trainer = make_trainer(batch_size=4)
        x, y = linear_data()
        result = trainer.fit(x, y, max_epochs=30)
        assert result.history.final_train_loss < 0.2

    def test_1d_targets_accepted(self):
        trainer = make_trainer()
        x, y = linear_data()
        trainer.fit(x, y.ravel(), max_epochs=2)

    def test_empty_data_rejected(self):
        trainer = make_trainer()
        with pytest.raises(ValueError):
            trainer.fit(np.zeros((0, 2)), np.zeros((0, 1)), max_epochs=1)

    def test_sample_count_mismatch_rejected(self):
        trainer = make_trainer()
        with pytest.raises(ValueError):
            trainer.fit(np.zeros((3, 2)), np.zeros((4, 1)), max_epochs=1)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            make_trainer(batch_size=0)

    def test_negative_l2_rejected(self):
        with pytest.raises(ValueError):
            make_trainer(l2=-0.1)


class TestErrorThreshold:
    def test_stops_when_loose_threshold_met(self):
        """The paper's loose-fit rule halts training early."""
        trainer = make_trainer()
        x, y = linear_data()
        result = trainer.fit(
            x, y, max_epochs=2000, stopping=ErrorThreshold(0.05)
        )
        assert result.stopped_by == "error_threshold"
        assert result.epochs_run < 2000
        assert result.history.final_train_loss <= 0.05

    def test_looser_threshold_stops_earlier(self):
        x, y = linear_data()
        loose = make_trainer().fit(
            x, y, max_epochs=2000, stopping=ErrorThreshold(0.1)
        )
        tight = make_trainer().fit(
            x, y, max_epochs=2000, stopping=ErrorThreshold(0.001)
        )
        assert loose.epochs_run < tight.epochs_run

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            ErrorThreshold(-0.1)


class TestEarlyStopping:
    def test_requires_validation_data(self):
        trainer = make_trainer()
        x, y = linear_data()
        with pytest.raises(RuntimeError, match="validation"):
            trainer.fit(x, y, max_epochs=5, stopping=EarlyStopping(patience=2))

    def test_stops_on_stale_validation(self):
        trainer = make_trainer()
        x, y = linear_data()
        x_val, y_val = linear_data(n=8, seed=1)
        result = trainer.fit(
            x,
            y,
            max_epochs=3000,
            stopping=EarlyStopping(patience=15),
            validation_data=(x_val, y_val),
        )
        assert result.stopped_by in ("early_stopping", "max_epochs")
        assert result.history.validation_loss

    def test_patience_validation(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)
        with pytest.raises(ValueError):
            EarlyStopping(min_delta=-1.0)


class TestRules:
    def test_max_epochs_rule(self):
        history = History(train_loss=[1.0, 0.5, 0.2])
        assert MaxEpochs(3).should_stop(history)
        assert not MaxEpochs(4).should_stop(history)

    def test_multiple_rules_first_fired_reported(self):
        trainer = make_trainer()
        x, y = linear_data()
        result = trainer.fit(
            x,
            y,
            max_epochs=100,
            stopping=[ErrorThreshold(1e9), MaxEpochs(3)],
        )
        # The huge threshold fires immediately after epoch 1.
        assert result.stopped_by == "error_threshold"
        assert result.epochs_run == 1

    def test_non_rule_rejected(self):
        trainer = make_trainer()
        x, y = linear_data()
        with pytest.raises(TypeError):
            trainer.fit(x, y, max_epochs=1, stopping=["not-a-rule"])


class TestHistoryAndCallbacks:
    def test_history_lengths(self):
        trainer = make_trainer()
        x, y = linear_data()
        result = trainer.fit(x, y, max_epochs=5)
        assert len(result.history.train_loss) == 5
        assert len(result.history.learning_rate) == 5
        assert math.isnan(result.history.final_validation_loss)

    def test_best_validation_epoch(self):
        history = History(validation_loss=[3.0, 1.0, 2.0])
        assert history.best_validation_epoch == 1
        assert History().best_validation_epoch is None

    def test_callbacks_invoked_each_epoch(self):
        seen = []
        trainer = make_trainer()
        x, y = linear_data()
        trainer.fit(
            x,
            y,
            max_epochs=4,
            callbacks=[lambda epoch, history: seen.append(epoch)],
        )
        assert seen == [0, 1, 2, 3]


class TestRegularization:
    def test_l2_shrinks_weights(self):
        x, y = linear_data()
        plain = make_trainer(seed=3)
        decayed = make_trainer(seed=3, l2=0.1)
        plain.fit(x, y, max_epochs=300)
        decayed.fit(x, y, max_epochs=300)
        plain_norm = np.linalg.norm(plain.model.get_flat_params())
        decayed_norm = np.linalg.norm(decayed.model.get_flat_params())
        assert decayed_norm < plain_norm


def test_evaluate_reports_current_loss():
    trainer = make_trainer()
    x, y = linear_data()
    before = trainer.evaluate(x, y)
    trainer.fit(x, y, max_epochs=50)
    assert trainer.evaluate(x, y) < before
