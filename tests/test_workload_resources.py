"""Resources: FIFO queueing, token accounting, abandonment, statistics."""

import pytest

from repro.workload.des import Delay, Simulator
from repro.workload.resources import Acquire, Release, Resource


def holder(sim, resource, hold_time, log=None, name=""):
    """A process that holds one token for ``hold_time``."""

    def flow():
        granted = yield Acquire(resource)
        assert granted
        if log is not None:
            log.append((name or "p", "acquired", sim.now))
        yield Delay(hold_time)
        yield Release(resource)
        if log is not None:
            log.append((name or "p", "released", sim.now))

    return flow()


class TestBasics:
    def test_tokens_limit_concurrency(self):
        sim = Simulator()
        resource = Resource(sim, 1)
        log = []
        sim.spawn(holder(sim, resource, 2.0, log, "a"))
        sim.spawn(holder(sim, resource, 2.0, log, "b"))
        sim.run()
        acquired = [entry for entry in log if entry[1] == "acquired"]
        assert acquired[0][2] == 0.0
        assert acquired[1][2] == 2.0  # waited for the first release

    def test_fifo_order(self):
        sim = Simulator()
        resource = Resource(sim, 1)
        log = []
        for name in ("a", "b", "c"):
            sim.spawn(holder(sim, resource, 1.0, log, name))
        sim.run()
        order = [entry[0] for entry in log if entry[1] == "acquired"]
        assert order == ["a", "b", "c"]

    def test_capacity_respected(self):
        sim = Simulator()
        resource = Resource(sim, 3)
        peak = []

        def flow():
            yield Acquire(resource)
            peak.append(resource.in_use)
            yield Delay(1.0)
            yield Release(resource)

        for _ in range(10):
            sim.spawn(flow())
        sim.run()
        assert max(peak) == 3
        assert resource.in_use == 0

    def test_zero_capacity_acquire_raises(self):
        sim = Simulator()
        resource = Resource(sim, 0)
        sim.spawn(holder(sim, resource, 1.0))
        with pytest.raises(RuntimeError, match="zero capacity"):
            sim.run()

    def test_release_without_acquire_raises(self):
        sim = Simulator()
        resource = Resource(sim, 1)

        def bad():
            yield Release(resource)

        sim.spawn(bad())
        with pytest.raises(RuntimeError, match="none in use"):
            sim.run()

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            Resource(Simulator(), -1)


class TestStatistics:
    def test_wait_time_recorded(self):
        sim = Simulator()
        resource = Resource(sim, 1)
        sim.spawn(holder(sim, resource, 5.0))
        sim.spawn(holder(sim, resource, 1.0))
        sim.run()
        assert resource.total_wait_time == pytest.approx(5.0)
        assert resource.total_acquisitions == 2

    def test_mean_busy_integral(self):
        sim = Simulator()
        resource = Resource(sim, 2)
        sim.spawn(holder(sim, resource, 4.0))
        sim.run_until(8.0)
        # One token held for 4 of 8 seconds -> mean busy 0.5.
        assert resource.mean_busy() == pytest.approx(0.5)

    def test_utilization(self):
        sim = Simulator()
        resource = Resource(sim, 2)
        sim.spawn(holder(sim, resource, 4.0))
        sim.run_until(8.0)
        assert resource.utilization() == pytest.approx(0.25)

    def test_max_queue_length(self):
        sim = Simulator()
        resource = Resource(sim, 1)
        for _ in range(4):
            sim.spawn(holder(sim, resource, 1.0))
        sim.run()
        assert resource.max_queue_length == 3


class TestAbandonment:
    def test_timeout_resumes_with_false(self):
        sim = Simulator()
        resource = Resource(sim, 1)
        outcomes = []

        def impatient():
            granted = yield Acquire(resource, timeout=1.0)
            outcomes.append(granted)

        sim.spawn(holder(sim, resource, 10.0))
        sim.spawn(impatient())
        sim.run_until(5.0)
        assert outcomes == [False]
        assert resource.total_abandonments == 1

    def test_granted_before_timeout(self):
        sim = Simulator()
        resource = Resource(sim, 1)
        outcomes = []

        def patient_enough():
            granted = yield Acquire(resource, timeout=5.0)
            outcomes.append((granted, sim.now))
            yield Release(resource)

        sim.spawn(holder(sim, resource, 2.0))
        sim.spawn(patient_enough())
        sim.run()
        assert outcomes == [(True, 2.0)]
        assert resource.total_abandonments == 0

    def test_abandoned_waiter_not_granted_later(self):
        sim = Simulator()
        resource = Resource(sim, 1)
        grants = []

        def impatient():
            granted = yield Acquire(resource, timeout=0.5)
            grants.append(granted)

        def patient():
            granted = yield Acquire(resource)
            grants.append(("patient", granted, sim.now))
            yield Release(resource)

        sim.spawn(holder(sim, resource, 2.0))
        sim.spawn(impatient())
        sim.spawn(patient())
        sim.run()
        assert False in grants
        assert ("patient", True, 2.0) in grants
        assert resource.in_use == 0

    def test_abandonment_bounds_queue(self):
        """With patience 1s and 1s service, the queue cannot grow without
        bound even at 10x overload."""
        sim = Simulator()
        resource = Resource(sim, 1)
        for i in range(50):
            def flow(i=i):
                granted = yield Acquire(resource, timeout=1.0)
                if granted:
                    yield Delay(1.0)
                    yield Release(resource)
            sim.spawn(flow())
        sim.run()
        assert resource.total_abandonments > 0
        assert resource.total_abandonments + resource.total_acquisitions == 50

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            Acquire(Resource(Simulator(), 1), timeout=0.0)
