"""Dense layers: forward math, backward chain rule, parameter plumbing."""

import numpy as np
import pytest

from repro.nn.layers import Dense


def make_layer(**kwargs):
    defaults = dict(
        in_features=3,
        out_features=2,
        activation="identity",
        rng=np.random.default_rng(0),
    )
    defaults.update(kwargs)
    return Dense(**defaults)


class TestForward:
    def test_identity_layer_is_affine(self):
        layer = make_layer()
        x = np.array([[1.0, 2.0, 3.0]])
        expected = x @ layer.weights + layer.bias
        np.testing.assert_allclose(layer.forward(x), expected)

    def test_batch_shape(self):
        layer = make_layer()
        out = layer.forward(np.zeros((7, 3)))
        assert out.shape == (7, 2)

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            make_layer().forward(np.zeros((2, 4)))

    def test_1d_input_rejected(self):
        with pytest.raises(ValueError):
            make_layer().forward(np.zeros(3))

    def test_logistic_layer_bounded(self):
        layer = make_layer(activation="logistic")
        out = layer.forward(np.random.default_rng(1).normal(size=(20, 3)) * 10)
        assert np.all(out > 0) and np.all(out < 1)


class TestBackward:
    def test_requires_forward_first(self):
        layer = make_layer()
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))

    def test_prediction_pass_does_not_enable_backward(self):
        layer = make_layer()
        layer.forward(np.zeros((1, 3)), remember=False)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))

    def test_gradient_shapes(self):
        layer = make_layer()
        layer.forward(np.ones((5, 3)))
        grad_in = layer.backward(np.ones((5, 2)))
        assert grad_in.shape == (5, 3)
        assert layer.grad_weights.shape == layer.weights.shape
        assert layer.grad_bias.shape == layer.bias.shape

    def test_identity_layer_gradients_exact(self):
        layer = make_layer()
        x = np.array([[1.0, -1.0, 2.0], [0.5, 0.0, -2.0]])
        layer.forward(x)
        grad_out = np.array([[1.0, 0.0], [0.0, 1.0]])
        grad_in = layer.backward(grad_out)
        np.testing.assert_allclose(layer.grad_weights, x.T @ grad_out)
        np.testing.assert_allclose(layer.grad_bias, grad_out.sum(axis=0))
        np.testing.assert_allclose(grad_in, grad_out @ layer.weights.T)

    def test_grad_output_shape_mismatch_rejected(self):
        layer = make_layer()
        layer.forward(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            layer.backward(np.zeros((3, 2)))


class TestParameters:
    def test_num_params(self):
        assert make_layer().num_params == 3 * 2 + 2

    def test_set_parameters_validates_shape(self):
        layer = make_layer()
        with pytest.raises(ValueError):
            layer.set_parameters(np.zeros((2, 3)), np.zeros(2))
        with pytest.raises(ValueError):
            layer.set_parameters(np.zeros((3, 2)), np.zeros(3))

    def test_set_parameters_copies(self):
        layer = make_layer()
        weights = np.ones((3, 2))
        layer.set_parameters(weights, np.zeros(2))
        weights[0, 0] = 99.0
        assert layer.weights[0, 0] == 1.0

    def test_reset_redraws(self):
        layer = make_layer()
        before = layer.weights.copy()
        layer.reset(np.random.default_rng(99))
        assert not np.array_equal(before, layer.weights)

    def test_reset_is_reproducible(self):
        a = make_layer()
        b = make_layer()
        a.reset(np.random.default_rng(5))
        b.reset(np.random.default_rng(5))
        np.testing.assert_array_equal(a.weights, b.weights)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Dense(0, 2)
        with pytest.raises(ValueError):
            Dense(2, 0)


def test_config_describes_layer():
    layer = make_layer(activation="logistic")
    config = layer.config()
    assert config["in_features"] == 3
    assert config["out_features"] == 2
    assert config["activation"]["name"] == "logistic"
