"""ETL stage: streaming parsers, skip-and-count, windowing."""

import numpy as np
import pytest

from repro.traces.etl import (
    CSV_HEADER,
    IngestedTrace,
    IngestStats,
    TraceRecord,
    ingest,
    iter_clf,
    iter_csv,
    parse_clf_line,
)

CLF_LINE = (
    '10.0.0.7 - - [14/Nov/2023:22:13:20 +0000] '
    '"GET /browse/item42 HTTP/1.1" 200 1234 0.042'
)
CLF_COMBINED = (
    '10.0.0.7 - frank [14/Nov/2023:22:13:21 +0000] '
    '"POST /checkout HTTP/1.1" 302 512 '
    '"http://example.com/cart" "Mozilla/5.0" 0.118'
)
CLF_NO_DURATION = (
    '10.0.0.8 - - [14/Nov/2023:22:13:22 +0000] '
    '"GET /manage HTTP/1.1" 200 99'
)


class TestClfParsing:
    def test_basic_line(self):
        record = parse_clf_line(CLF_LINE)
        assert record is not None
        assert record.class_name == "browse"
        assert record.service_time == pytest.approx(0.042)
        assert record.timestamp == pytest.approx(1_700_000_000.0)

    def test_combined_format_with_trailing_duration(self):
        record = parse_clf_line(CLF_COMBINED)
        assert record is not None
        assert record.class_name == "checkout"
        assert record.service_time == pytest.approx(0.118)

    def test_plain_clf_has_no_service_time(self):
        record = parse_clf_line(CLF_NO_DURATION)
        assert record is not None
        assert record.service_time is None

    def test_malformed_lines_return_none(self):
        for line in (
            "",
            "garbage",
            CLF_LINE[: len(CLF_LINE) // 2],  # truncated mid-line
            '10.0.0.1 - - [not-a-date] "GET / HTTP/1.1" 200 1',
        ):
            assert parse_clf_line(line) is None

    def test_iter_clf_skips_and_counts(self):
        stats = IngestStats()
        lines = [CLF_LINE, "truncated junk", "", CLF_COMBINED]
        records = list(iter_clf(lines, stats))
        assert len(records) == 2
        assert stats.parsed == 2
        assert stats.skipped.get("malformed") == 1
        assert stats.skipped.get("blank") == 1


class TestCsvParsing:
    def test_header_and_rows(self):
        stats = IngestStats()
        lines = [
            ",".join(CSV_HEADER),
            "100.0,browse,0.05",
            "100.5,purchase,0.10",
        ]
        records = list(iter_csv(lines, stats))
        assert [r.class_name for r in records] == ["browse", "purchase"]
        assert stats.parsed == 2

    def test_malformed_rows_skipped_never_raise(self):
        stats = IngestStats()
        lines = [
            "timestamp,class,service_time",
            "not-a-number,browse,0.05",  # bad timestamp
            "101.0",  # truncated row
            "",  # blank
            "102.0,browse,oops",  # bad duration: arrival kept
            "103.0,,0.02",  # empty class name
        ]
        records = list(iter_csv(lines, stats))
        assert len(records) == 2
        assert stats.skipped.get("malformed") == 2
        assert stats.skipped.get("blank") == 1
        assert stats.skipped.get("bad_service_time") == 1
        assert records[0].service_time is None
        assert records[-1].class_name == "unknown"


class TestIngestedTrace:
    def make(self, rows):
        return IngestedTrace(TraceRecord(*row) for row in rows)

    def test_normalizes_to_first_arrival(self):
        trace = self.make([(100.0, "a", 0.1), (101.5, "a", 0.2)])
        np.testing.assert_allclose(trace.arrivals, [0.0, 1.5])
        assert trace.origin == 100.0

    def test_out_of_order_dropped_and_counted(self):
        trace = self.make(
            [(10.0, "a", None), (12.0, "a", None), (11.0, "a", None),
             (13.0, "a", None)]
        )
        assert len(trace) == 3
        assert trace.stats.skipped.get("out_of_order") == 1

    def test_negative_service_time_keeps_arrival(self):
        trace = self.make([(0.0, "a", -1.0), (1.0, "a", 0.5)])
        assert len(trace) == 2
        assert trace.service_samples.tolist() == [0.5]
        assert trace.stats.skipped.get("bad_service_time") == 1

    def test_zero_gap_fraction(self):
        trace = self.make([(0.0, "a", None)] * 3 + [(1.0, "a", None)])
        assert trace.zero_gap_fraction() == pytest.approx(2 / 3)

    def test_class_service_samples_grouping(self):
        trace = self.make(
            [(0.0, "a", 0.1), (1.0, "b", None), (2.0, "a", 0.3),
             (3.0, "b", 0.7)]
        )
        grouped = trace.class_service_samples()
        np.testing.assert_allclose(grouped["a"], [0.1, 0.3])
        np.testing.assert_allclose(grouped["b"], [0.7])


class TestWindows:
    def make(self, times):
        return IngestedTrace(TraceRecord(t, "a", None) for t in times)

    def test_empty_trace_yields_no_windows(self):
        assert self.make([]).windows(1.0) == []

    def test_zero_duration_trace_yields_one_window(self):
        windows = self.make([5.0, 5.0, 5.0]).windows(10.0)
        assert len(windows) == 1
        assert windows[0].count == 3
        assert windows[0].rate > 0

    def test_interior_empty_window_kept_trailing_dropped(self):
        # Arrivals in [0, 1) and [2, 3); window 2 ([2,3)) holds the last
        # arrival exactly so nothing trails; gap window [1,2) must stay.
        windows = self.make([0.1, 0.5, 2.2, 2.4]).windows(1.0)
        counts = [w.count for w in windows]
        assert counts == [2, 0, 2]
        assert windows[1].rate == 0.0

    def test_window_interarrivals(self):
        windows = self.make([0.0, 0.25, 0.75]).windows(1.0)
        np.testing.assert_allclose(windows[0].interarrivals(), [0.25, 0.5])

    def test_invalid_window_width(self):
        with pytest.raises(ValueError):
            self.make([0.0, 1.0]).windows(0.0)


class TestIngestFile:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        trace = ingest(path)
        assert len(trace) == 0
        assert trace.windows(1.0) == []

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(OSError):
            ingest(tmp_path / "nope.csv")

    def test_format_sniffing(self, tmp_path):
        clf = tmp_path / "a.log"
        clf.write_text(CLF_LINE + "\n" + CLF_COMBINED + "\n")
        csv_file = tmp_path / "a.csv"
        csv_file.write_text("timestamp,class,service_time\n1.0,x,0.1\n")
        assert len(ingest(clf)) == 2
        assert len(ingest(csv_file)) == 1
        assert ingest(clf).classes == ["browse", "checkout"]

    def test_explicit_bad_format_rejected(self, tmp_path):
        path = tmp_path / "a.csv"
        path.write_text("timestamp,class,service_time\n")
        with pytest.raises(ValueError):
            ingest(path, fmt="xml")

    def test_garbage_heavy_file_never_raises(self, tmp_path):
        path = tmp_path / "noisy.csv"
        rows = ["timestamp,class,service_time"]
        for i in range(50):
            rows.append(f"{float(i)},c{i % 3},0.0{i % 9 + 1}")
            rows.append(f"corrupt line {i}")
        path.write_text("\n".join(rows) + "\n")
        trace = ingest(path)
        assert len(trace) == 50
        assert trace.stats.skipped.get("malformed") == 50
