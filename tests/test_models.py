"""Characterization models: neural, linear, polynomial, log-linear, RBF, DOE."""

import numpy as np
import pytest

from repro.models.base import WorkloadModel
from repro.models.doe import (
    DOEWorkloadModel,
    FactorLevels,
    central_composite,
    two_level_fractional_factorial,
    two_level_full_factorial,
)
from repro.models.linear import LinearWorkloadModel
from repro.models.loglinear import LogLinearWorkloadModel
from repro.models.neural import NeuralWorkloadModel
from repro.models.polynomial import PolynomialWorkloadModel, monomial_exponents
from repro.models.rbf import RBFWorkloadModel

ALL_MODELS = [
    lambda: NeuralWorkloadModel(hidden=(8,), error_threshold=0.05, max_epochs=800, seed=0),
    lambda: LinearWorkloadModel(),
    lambda: PolynomialWorkloadModel(degree=2),
    lambda: LogLinearWorkloadModel(),
    lambda: RBFWorkloadModel(n_centers=15, seed=0),
]


def nonlinear_problem(n=60, seed=0):
    """A positive-valued non-linear 3->2 problem (workload-like)."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(1.0, 10.0, size=(n, 3))
    y = np.column_stack(
        [
            5.0 + 20.0 / x[:, 0] + 0.3 * x[:, 1],
            2.0 + 0.1 * x[:, 1] * x[:, 2],
        ]
    )
    return x, y


@pytest.mark.parametrize(
    "factory", ALL_MODELS, ids=["neural", "linear", "poly", "loglin", "rbf"]
)
class TestModelContract:
    def test_fit_returns_self(self, factory):
        x, y = nonlinear_problem()
        model = factory()
        assert model.fit(x, y) is model

    def test_predict_shape(self, factory):
        x, y = nonlinear_problem()
        model = factory().fit(x, y)
        assert model.predict(x).shape == y.shape
        assert model.predict(x[0]).shape == (1, 2)

    def test_predict_before_fit_raises(self, factory):
        with pytest.raises(RuntimeError):
            factory().predict(np.zeros((1, 3)))

    def test_wrong_width_rejected(self, factory):
        x, y = nonlinear_problem()
        model = factory().fit(x, y)
        with pytest.raises(ValueError):
            model.predict(np.zeros((2, 5)))

    def test_nan_training_data_rejected(self, factory):
        x, y = nonlinear_problem()
        x[0, 0] = np.nan
        with pytest.raises(ValueError):
            factory().fit(x, y)

    def test_sample_mismatch_rejected(self, factory):
        with pytest.raises(ValueError):
            factory().fit(np.zeros((3, 2)), np.zeros((4, 1)))

    def test_reasonable_in_sample_fit(self, factory):
        x, y = nonlinear_problem()
        model = factory().fit(x, y)
        relative = np.abs(model.predict(x) - y) / np.abs(y)
        assert relative.mean() < 0.25


class TestNeuralModel:
    def test_paper_recipe_standardizes_outputs_when_joint(self):
        x, y = nonlinear_problem()
        model = NeuralWorkloadModel(hidden=(8,), max_epochs=10, seed=0).fit(x, y)
        assert model.y_scaler_.__class__.__name__ == "StandardScaler"

    def test_single_output_not_standardized(self):
        x, y = nonlinear_problem()
        model = NeuralWorkloadModel(hidden=(8,), max_epochs=10, seed=0).fit(
            x, y[:, :1]
        )
        assert model.y_scaler_.__class__.__name__ == "IdentityScaler"

    def test_separate_mode_builds_one_net_per_output(self):
        x, y = nonlinear_problem()
        model = NeuralWorkloadModel(
            hidden=(6,), joint=False, max_epochs=10, seed=0
        ).fit(x, y)
        assert len(model.networks_) == 2
        assert model.predict(x).shape == y.shape

    def test_joint_mode_builds_single_net(self):
        x, y = nonlinear_problem()
        model = NeuralWorkloadModel(hidden=(6,), max_epochs=10, seed=0).fit(x, y)
        assert len(model.networks_) == 1
        assert model.networks_[0].n_outputs == 2

    def test_error_threshold_stops_training(self):
        x, y = nonlinear_problem()
        loose = NeuralWorkloadModel(
            hidden=(8,), error_threshold=0.2, max_epochs=5000, seed=0
        ).fit(x, y)
        assert loose.training_results_[0].stopped_by == "error_threshold"
        assert loose.total_epochs_ < 5000

    def test_loose_fit_runs_fewer_epochs_than_tight(self):
        x, y = nonlinear_problem()
        loose = NeuralWorkloadModel(
            hidden=(8,), error_threshold=0.2, max_epochs=3000, seed=0
        ).fit(x, y)
        tight = NeuralWorkloadModel(
            hidden=(8,), error_threshold=0.005, max_epochs=3000, seed=0
        ).fit(x, y)
        assert loose.total_epochs_ < tight.total_epochs_

    def test_beats_linear_on_nonlinear_data(self):
        x, y = nonlinear_problem(n=80)
        neural = NeuralWorkloadModel(
            hidden=(12,), error_threshold=0.002, max_epochs=6000, seed=0
        ).fit(x, y)
        linear = LinearWorkloadModel().fit(x, y)
        neural_err = np.abs(neural.predict(x) - y).mean()
        linear_err = np.abs(linear.predict(x) - y).mean()
        assert neural_err < linear_err

    def test_sgd_paper_exact_option(self):
        x, y = nonlinear_problem()
        model = NeuralWorkloadModel(
            hidden=(6,),
            optimizer="sgd",
            learning_rate=0.05,
            max_epochs=50,
            seed=0,
        ).fit(x, y)
        assert model.is_fitted

    def test_validation(self):
        with pytest.raises(ValueError):
            NeuralWorkloadModel(hidden=())
        with pytest.raises(ValueError):
            NeuralWorkloadModel(hidden=(0,))
        with pytest.raises(ValueError):
            NeuralWorkloadModel(error_threshold=-1.0)
        with pytest.raises(ValueError):
            NeuralWorkloadModel(max_epochs=0)


class TestLinearModel:
    def test_recovers_exact_coefficients(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(50, 3))
        true_w = np.array([[1.0, -2.0], [0.5, 3.0], [0.0, 1.0]])
        y = x @ true_w + np.array([4.0, -1.0])
        model = LinearWorkloadModel().fit(x, y)
        np.testing.assert_allclose(model.coefficients_, true_w, atol=1e-10)
        np.testing.assert_allclose(model.intercept_, [4.0, -1.0], atol=1e-10)

    def test_ridge_shrinks_coefficients(self):
        x, y = nonlinear_problem()
        plain = LinearWorkloadModel().fit(x, y)
        shrunk = LinearWorkloadModel(ridge=100.0).fit(x, y)
        assert np.linalg.norm(shrunk.coefficients_) < np.linalg.norm(
            plain.coefficients_
        )

    def test_ridge_never_shrinks_intercept(self):
        x = np.zeros((20, 2))
        y = np.full((20, 1), 7.0)
        model = LinearWorkloadModel(ridge=1e6).fit(x + 1e-9, y)
        assert model.intercept_[0] == pytest.approx(7.0, rel=1e-6)


class TestPolynomialModel:
    def test_monomial_exponents_degree2(self):
        exps = monomial_exponents(2, 2)
        assert set(exps) == {(1, 0), (0, 1), (2, 0), (1, 1), (0, 2)}

    def test_exponent_count_formula(self):
        # C(n + d, d) - 1 terms for degree-d polynomials in n variables.
        assert len(monomial_exponents(4, 2)) == 14
        assert len(monomial_exponents(3, 3)) == 19

    def test_fits_quadratic_exactly(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-2, 2, size=(40, 2))
        y = (1.0 + 2 * x[:, 0] - x[:, 1] + 0.5 * x[:, 0] * x[:, 1]).reshape(-1, 1)
        model = PolynomialWorkloadModel(degree=2, ridge=0.0, standardize=False)
        model.fit(x, y)
        np.testing.assert_allclose(model.predict(x), y, atol=1e-8)

    def test_n_terms_property(self):
        x, y = nonlinear_problem()
        model = PolynomialWorkloadModel(degree=2).fit(x, y)
        assert model.n_terms == 9

    def test_degree_validation(self):
        with pytest.raises(ValueError):
            PolynomialWorkloadModel(degree=0)


class TestLogLinearModel:
    def test_fits_reciprocal_queueing_curve_better_than_linear(self):
        x = np.linspace(1.0, 20.0, 50).reshape(-1, 1)
        y = (1.0 + 30.0 / x).reshape(-1, 1)
        loglinear = LogLinearWorkloadModel().fit(x, y)
        linear = LinearWorkloadModel().fit(x, y)
        assert np.abs(loglinear.predict(x) - y).mean() < np.abs(
            linear.predict(x) - y
        ).mean()

    def test_log_output_mode_keeps_predictions_positive(self):
        x, y = nonlinear_problem()
        model = LogLinearWorkloadModel(log_outputs=True).fit(x, y)
        assert np.all(model.predict(x) > 0)

    def test_raw_output_mode(self):
        x, y = nonlinear_problem()
        model = LogLinearWorkloadModel(log_outputs=False).fit(x, y)
        assert model.predict(x).shape == y.shape


class TestRBFModel:
    def test_interpolation_quality(self):
        x, y = nonlinear_problem(n=40)
        model = RBFWorkloadModel(n_centers=40, ridge=1e-9, seed=0).fit(x, y)
        relative = np.abs(model.predict(x) - y) / np.abs(y)
        assert relative.mean() < 0.02


class TestDOE:
    FACTORS = [
        FactorLevels("injection_rate", 400, 600),
        FactorLevels("default_threads", 4, 20),
        FactorLevels("web_threads", 14, 22),
    ]

    def test_full_factorial_corners(self):
        design = two_level_full_factorial(self.FACTORS)
        assert design.shape == (8, 3)
        assert set(design[:, 0]) == {400.0, 600.0}

    def test_fractional_factorial_halves_runs(self):
        design = two_level_fractional_factorial(
            self.FACTORS, n_base=2, generators=[(0, 1)]
        )
        assert design.shape == (4, 3)
        # Generated column = product of the base columns (coded units).
        coded = (design - [500, 12, 18]) / [100, 8, 4]
        np.testing.assert_allclose(coded[:, 2], coded[:, 0] * coded[:, 1])

    def test_central_composite_counts(self):
        design = central_composite(self.FACTORS, center_points=2)
        assert design.shape == (8 + 6 + 2, 3)

    def test_doe_model_recovers_main_effects(self):
        design = two_level_full_factorial(self.FACTORS)
        # Response: strong effect of factor 0, weak of factor 2, none of 1.
        coded = (design - [500, 12, 18]) / [100, 8, 4]
        response = (10.0 + 5.0 * coded[:, 0] + 0.5 * coded[:, 2]).reshape(-1, 1)
        model = DOEWorkloadModel(self.FACTORS, interactions=False).fit(
            design, response
        )
        effects = model.effects(0)
        names = list(effects)
        assert names[0] == "injection_rate"
        assert abs(effects["injection_rate"]) == pytest.approx(5.0, abs=1e-8)
        assert abs(effects["default_threads"]) < 1e-8

    def test_doe_model_predicts_on_design(self):
        design = two_level_full_factorial(self.FACTORS)
        response = design[:, :1] * 0.01
        model = DOEWorkloadModel(self.FACTORS).fit(design, response)
        np.testing.assert_allclose(
            model.predict(design), response, atol=1e-6
        )

    def test_quadratic_needs_composite_design(self):
        design = central_composite(self.FACTORS)
        coded = (design - [500, 12, 18]) / [100, 8, 4]
        response = (coded[:, 0] ** 2).reshape(-1, 1)
        model = DOEWorkloadModel(self.FACTORS, quadratic=True).fit(
            design, response
        )
        effects = model.effects(0)
        assert abs(effects["injection_rate^2"]) == pytest.approx(1.0, abs=1e-6)

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            two_level_fractional_factorial(
                self.FACTORS, n_base=2, generators=[]
            )
        with pytest.raises(ValueError):
            two_level_fractional_factorial(
                self.FACTORS, n_base=2, generators=[(5,)]
            )

    def test_factor_validation(self):
        with pytest.raises(ValueError):
            FactorLevels("x", 2.0, 2.0)
        with pytest.raises(ValueError):
            DOEWorkloadModel([])

    def test_effects_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DOEWorkloadModel(self.FACTORS).effects()


def test_base_class_is_abstract():
    model = WorkloadModel()
    with pytest.raises(NotImplementedError):
        model.fit(np.zeros((1, 1)), np.zeros((1, 1)))
    with pytest.raises(NotImplementedError):
        model.predict(np.zeros((1, 1)))
