"""Shared fixtures: small, fast instances of the core objects.

Tests never run full-length simulations or long NN trainings; the fixtures
here provide scaled-down versions that exercise the same code paths in
milliseconds.
"""

import numpy as np
import pytest

from repro.workload.service import ThreeTierWorkload, WorkloadConfig


@pytest.fixture
def rng():
    """A deterministic generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_regression_data(rng):
    """A small smooth non-linear regression problem: 30 samples, 3 -> 2."""
    x = rng.uniform(-1.0, 1.0, size=(30, 3))
    y = np.column_stack(
        [
            np.sin(2.0 * x[:, 0]) + 0.5 * x[:, 1] ** 2,
            x[:, 0] - x[:, 2] + 0.2 * x[:, 1] * x[:, 2],
        ]
    )
    return x, y


@pytest.fixture
def fast_workload():
    """A short-window simulator run (sub-second wall time per config)."""
    return ThreeTierWorkload(warmup=0.5, duration=2.0, seed=7)


@pytest.fixture
def nominal_config():
    """A healthy operating point of the 3-tier system."""
    return WorkloadConfig(
        injection_rate=400,
        default_threads=14,
        mfg_threads=16,
        web_threads=18,
    )
