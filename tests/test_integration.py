"""End-to-end integration: the full paper pipeline at miniature scale.

Collect samples from the real simulator, train the paper's neural model,
cross-validate with the paper's metric, sweep a response surface, classify
it, and ask the advisor for a configuration — the complete methodology in
one flow.
"""

import numpy as np
import pytest

from repro.analysis.surface import sweep
from repro.analysis.topology import classify_surface
from repro.analysis.tuning import ConfigurationAdvisor, ScoringFunction
from repro.model_selection.cross_validation import cross_validate
from repro.models.linear import LinearWorkloadModel
from repro.models.neural import NeuralWorkloadModel
from repro.nn.serialization import load_mlp, save_mlp
from repro.workload.sampler import (
    ConfigSpace,
    ParameterRange,
    SampleCollector,
    latin_hypercube,
)
from repro.workload.service import (
    OUTPUT_NAMES,
    ThreeTierWorkload,
    WorkloadConfig,
)

SPACE = ConfigSpace(
    [
        ParameterRange("injection_rate", 250, 450),
        ParameterRange("default_threads", 2, 20),
        ParameterRange("mfg_threads", 10, 20),
        ParameterRange("web_threads", 12, 22),
    ]
)


@pytest.fixture(scope="module")
def collection():
    workload = ThreeTierWorkload(warmup=0.5, duration=2.5, seed=11)
    configs = latin_hypercube(SPACE, 24, seed=2)
    dataset = SampleCollector(workload).collect(configs)
    dataset.y = np.maximum(dataset.y, 1e-3)
    return dataset


@pytest.fixture(scope="module")
def fitted_model(collection):
    model = NeuralWorkloadModel(
        hidden=(12, 6), error_threshold=0.01, max_epochs=3000, seed=0
    )
    return model.fit(collection.x, collection.y)


class TestPipeline:
    def test_cross_validation_yields_table2_shaped_report(self, collection):
        report = cross_validate(
            lambda t: NeuralWorkloadModel(
                hidden=(10,), error_threshold=0.02, max_epochs=1500, seed=t
            ),
            collection.x,
            collection.y,
            k=4,
            seed=0,
            output_names=OUTPUT_NAMES,
        )
        assert report.error_matrix.shape == (4, 5)
        assert 0.0 < report.overall_accuracy <= 1.0
        assert "Overall accuracy" in report.to_table()

    def test_model_interpolates_within_region(self, fitted_model, collection):
        predicted = fitted_model.predict(collection.x)
        relative = np.abs(predicted - collection.y) / np.abs(collection.y)
        # In-sample fit on a small noisy collection: loose but sane.
        assert np.median(relative) < 0.35

    def test_surface_sweep_and_classification(self, fitted_model):
        surface = sweep(
            fitted_model,
            indicator_index=OUTPUT_NAMES.index("dealer_browse_rt"),
            indicator_name="dealer_browse_rt",
            row_param="default_threads",
            row_values=np.arange(2, 21, 3),
            col_param="web_threads",
            col_values=np.arange(12, 23, 2),
            fixed={"injection_rate": 350.0, "mfg_threads": 16.0},
        )
        assert np.all(np.isfinite(surface.z))
        result = classify_surface(surface, log_scale=bool(np.all(surface.z > 0)))
        assert result.kind in (
            "flat",
            "parallel_slopes",
            "valley",
            "hill",
            "slope",
            "saddle",
        )

    def test_advisor_recommendation_is_actually_good(self, fitted_model):
        """Close the loop: simulate the advisor's pick and a known-bad
        config; the pick must win on the real system."""
        scoring = ScoringFunction(
            response_limits={
                "dealer_browse_rt": 0.3,
                "manufacturing_rt": 0.4,
            }
        )
        advisor = ConfigurationAdvisor(fitted_model, scoring=scoring)
        best = advisor.recommend(SPACE, levels=5, top_k=1)[0]

        workload = ThreeTierWorkload(warmup=0.5, duration=2.5, seed=99)
        chosen = workload.run(best.config)
        bad = workload.run(WorkloadConfig(450, 2, 10, 12))
        assert (
            chosen.indicators["effective_tps"]
            > bad.indicators["effective_tps"]
        )

    def test_trained_network_survives_serialization(
        self, fitted_model, collection, tmp_path
    ):
        network = fitted_model.networks_[0]
        loaded = load_mlp(save_mlp(network, tmp_path / "net.json"))
        scaled = fitted_model.x_scaler_.transform(collection.x)
        np.testing.assert_allclose(
            loaded.predict(scaled), network.predict(scaled)
        )

    def test_neural_no_worse_than_linear_in_cv(self, collection):
        neural = cross_validate(
            lambda t: NeuralWorkloadModel(
                hidden=(12, 6), error_threshold=0.005, max_epochs=3000, seed=t
            ),
            collection.x,
            collection.y,
            k=4,
            seed=1,
        )
        linear = cross_validate(
            lambda t: LinearWorkloadModel(), collection.x, collection.y, k=4, seed=1
        )
        # At miniature scale (24 noisy samples) the simpler model can edge
        # ahead; require the neural model to stay in the same error band.
        # The paper-scale gap is demonstrated by bench_model_comparison.
        assert neural.overall_error <= linear.overall_error * 1.6
