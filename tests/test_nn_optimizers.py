"""Optimizers and learning-rate schedules."""

import numpy as np
import pytest

from repro.nn.optimizers import (
    SGD,
    Adam,
    ConstantSchedule,
    ExponentialDecay,
    Momentum,
    Nesterov,
    RMSProp,
    StepDecay,
    available_optimizers,
    get_optimizer,
)

ALL = [SGD(0.1), Momentum(0.1), Nesterov(0.1), RMSProp(0.1), Adam(0.1)]


def quadratic_grad(params):
    """Gradient of f(p) = 0.5 * ||p - target||^2 with target = (1, -2)."""
    return params - np.array([1.0, -2.0])


@pytest.mark.parametrize("optimizer", ALL, ids=lambda o: o.name)
class TestConvergence:
    def test_minimizes_quadratic(self, optimizer):
        optimizer.reset()
        params = np.array([10.0, 10.0])
        for _ in range(500):
            params = optimizer.step(params, quadratic_grad(params))
        np.testing.assert_allclose(params, [1.0, -2.0], atol=0.05)

    def test_step_counts(self, optimizer):
        optimizer.reset()
        params = np.zeros(2)
        optimizer.step(params, np.zeros(2))
        optimizer.step(params, np.zeros(2))
        assert optimizer.step_count == 2
        optimizer.reset()
        assert optimizer.step_count == 0

    def test_shape_mismatch_rejected(self, optimizer):
        optimizer.reset()
        with pytest.raises(ValueError):
            optimizer.step(np.zeros(3), np.zeros(2))


class TestSGD:
    def test_exact_update(self):
        sgd = SGD(learning_rate=0.5)
        updated = sgd.step(np.array([1.0]), np.array([2.0]))
        assert updated[0] == pytest.approx(0.0)


class TestMomentum:
    def test_velocity_accumulates(self):
        momentum = Momentum(learning_rate=0.1, momentum=0.9)
        params = np.array([0.0])
        grad = np.array([1.0])
        first = momentum.step(params, grad)
        second = momentum.step(first, grad)
        # Second step moves farther than the first (velocity build-up).
        assert abs(second[0] - first[0]) > abs(first[0] - params[0])

    def test_momentum_bounds(self):
        with pytest.raises(ValueError):
            Momentum(momentum=1.0)


class TestAdam:
    def test_first_step_size_is_learning_rate(self):
        adam = Adam(learning_rate=0.1)
        updated = adam.step(np.zeros(1), np.array([123.0]))
        # Bias correction makes the first step ~ -lr * sign(grad).
        assert updated[0] == pytest.approx(-0.1, rel=1e-5)

    def test_hyperparameter_validation(self):
        with pytest.raises(ValueError):
            Adam(beta1=1.0)
        with pytest.raises(ValueError):
            Adam(beta2=-0.1)
        with pytest.raises(ValueError):
            Adam(epsilon=0.0)


class TestRMSProp:
    def test_validation(self):
        with pytest.raises(ValueError):
            RMSProp(decay=1.0)
        with pytest.raises(ValueError):
            RMSProp(epsilon=0.0)


class TestSchedules:
    def test_constant(self):
        schedule = ConstantSchedule(0.05)
        assert schedule(0) == schedule(1000) == 0.05

    def test_constant_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ConstantSchedule(0.0)

    def test_step_decay(self):
        schedule = StepDecay(initial=1.0, factor=0.5, every=10)
        assert schedule(0) == 1.0
        assert schedule(9) == 1.0
        assert schedule(10) == 0.5
        assert schedule(20) == 0.25

    def test_exponential_decay(self):
        schedule = ExponentialDecay(initial=1.0, decay=0.1)
        assert schedule(0) == pytest.approx(1.0)
        assert schedule(10) == pytest.approx(np.exp(-1.0))

    def test_optimizer_consumes_schedule(self):
        sgd = SGD(learning_rate=StepDecay(initial=1.0, factor=0.1, every=1))
        params = np.array([0.0])
        first = sgd.step(params, np.array([1.0]))
        second = sgd.step(first, np.array([1.0]))
        assert first[0] == pytest.approx(-1.0)
        assert second[0] == pytest.approx(-1.1)


def test_registry():
    assert isinstance(get_optimizer("adam"), Adam)
    assert set(available_optimizers()) == {
        "sgd",
        "momentum",
        "nesterov",
        "rmsprop",
        "adam",
    }
    with pytest.raises(KeyError):
        get_optimizer("lion")
    instance = SGD(0.2)
    assert get_optimizer(instance) is instance
    with pytest.raises(ValueError):
        get_optimizer(instance, learning_rate=0.1)
