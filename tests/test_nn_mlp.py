"""MLP: structure, forward/backward, flat parameters, universality-in-small."""

import numpy as np
import pytest

from repro.nn.gradcheck import check_gradients
from repro.nn.mlp import MLP
from repro.nn.optimizers import Adam
from repro.nn.training import Trainer


class TestStructure:
    def test_shapes(self):
        net = MLP([4, 16, 8, 5], seed=0)
        assert net.n_inputs == 4
        assert net.n_outputs == 5
        assert net.n_hidden_layers == 2
        assert len(net.layers) == 3

    def test_num_params(self):
        net = MLP([2, 3, 1], seed=0)
        assert net.num_params == (2 * 3 + 3) + (3 * 1 + 1)

    def test_needs_two_sizes(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            MLP([4, 0, 2])

    def test_hidden_activation_applied(self):
        net = MLP([2, 4, 1], hidden_activation="tanh", seed=0)
        assert net.layers[0].activation.name == "tanh"
        assert net.layers[-1].activation.name == "identity"


class TestForward:
    def test_single_sample_promoted_to_batch(self):
        net = MLP([3, 4, 2], seed=0)
        assert net.forward(np.zeros(3)).shape == (1, 2)

    def test_batch_forward(self):
        net = MLP([3, 4, 2], seed=0)
        assert net.predict(np.zeros((9, 3))).shape == (9, 2)

    def test_deterministic_given_seed(self):
        x = np.ones((2, 3))
        a = MLP([3, 5, 2], seed=11).predict(x)
        b = MLP([3, 5, 2], seed=11).predict(x)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        x = np.ones((2, 3))
        a = MLP([3, 5, 2], seed=1).predict(x)
        b = MLP([3, 5, 2], seed=2).predict(x)
        assert not np.array_equal(a, b)


class TestFlatParams:
    def test_round_trip(self):
        net = MLP([3, 6, 2], seed=0)
        flat = net.get_flat_params()
        assert flat.shape == (net.num_params,)
        net.set_flat_params(flat * 2.0)
        np.testing.assert_allclose(net.get_flat_params(), flat * 2.0)

    def test_wrong_size_rejected(self):
        net = MLP([3, 6, 2], seed=0)
        with pytest.raises(ValueError):
            net.set_flat_params(np.zeros(net.num_params + 1))

    def test_flat_grads_align_with_params(self):
        net = MLP([2, 3, 1], seed=0)
        x = np.ones((4, 2))
        y = np.zeros((4, 1))
        predicted = net.forward(x)
        net.backward(predicted - y)
        grads = net.get_flat_grads()
        assert grads.shape == (net.num_params,)

    def test_copy_is_independent(self):
        net = MLP([2, 3, 1], seed=0)
        clone = net.copy()
        np.testing.assert_array_equal(
            net.get_flat_params(), clone.get_flat_params()
        )
        clone.set_flat_params(clone.get_flat_params() + 1.0)
        assert not np.array_equal(
            net.get_flat_params(), clone.get_flat_params()
        )


class TestGradients:
    @pytest.mark.parametrize("hidden_activation", ["logistic", "tanh", "softplus"])
    def test_backprop_matches_finite_difference(self, hidden_activation, rng):
        net = MLP([3, 5, 2], hidden_activation=hidden_activation, seed=2)
        x = rng.normal(size=(6, 3))
        y = rng.normal(size=(6, 2))
        report = check_gradients(net, x, y)
        assert report.passed, str(report)

    def test_two_hidden_layers(self, rng):
        net = MLP([2, 4, 3, 1], seed=3)
        x = rng.normal(size=(5, 2))
        y = rng.normal(size=(5, 1))
        assert check_gradients(net, x, y).passed


class TestReset:
    def test_reset_restores_initial_state(self):
        net = MLP([2, 4, 1], seed=7)
        initial = net.get_flat_params().copy()
        net.set_flat_params(initial + 5.0)
        net.reset()
        np.testing.assert_array_equal(net.get_flat_params(), initial)

    def test_reset_with_new_seed(self):
        net = MLP([2, 4, 1], seed=7)
        initial = net.get_flat_params().copy()
        net.reset(seed=8)
        assert not np.array_equal(net.get_flat_params(), initial)


class TestConfig:
    def test_round_trip_structure(self):
        net = MLP([3, 8, 2], hidden_activation="tanh", seed=5)
        rebuilt = MLP.from_config(net.config())
        assert rebuilt.layer_sizes == net.layer_sizes
        assert rebuilt.layers[0].activation.name == "tanh"
        # Same seed -> same initial parameters.
        np.testing.assert_array_equal(
            rebuilt.get_flat_params(), net.get_flat_params()
        )


def test_mlp_approximates_a_nonlinear_function(rng):
    """Small-scale universality: fit sin on [-pi, pi] to visible accuracy.

    The paper's premise (Hornik et al. [7]) is that MLPs approximate any
    continuous function; this exercises the property end-to-end.
    """
    x = np.linspace(-np.pi, np.pi, 60).reshape(-1, 1)
    y = np.sin(x)
    net = MLP([1, 12, 1], seed=4)
    trainer = Trainer(net, optimizer=Adam(learning_rate=0.02), seed=0)
    trainer.fit(x, y, max_epochs=1500)
    mse = float(np.mean((net.predict(x) - y) ** 2))
    assert mse < 0.01
