"""Measured surfaces, surface agreement, what-if analysis."""

import numpy as np
import pytest

from repro.analysis.measured import (
    measure_surface,
    surface_agreement,
)
from repro.analysis.surface import ResponseSurface, sweep
from repro.analysis.whatif import WhatIfAnalyzer
from repro.models.ensemble import NeuralEnsemble
from repro.workload.sampler import SampleCollector, latin_hypercube
from repro.workload.sampler import ConfigSpace, ParameterRange
from repro.workload.service import (
    OUTPUT_NAMES,
    ThreeTierWorkload,
    WorkloadConfig,
)


class TestMeasureSurface:
    @pytest.fixture(scope="class")
    def measured(self, ):
        workload = ThreeTierWorkload(warmup=0.3, duration=1.5, seed=3)
        return measure_surface(
            workload,
            indicator="dealer_browse_rt",
            row_param="default_threads",
            row_values=[6, 14],
            col_param="web_threads",
            col_values=[14, 18, 22],
            fixed={"injection_rate": 400.0, "mfg_threads": 16.0},
        )

    def test_grid_shape_and_positivity(self, measured):
        assert measured.z.shape == (2, 3)
        assert np.all(measured.z > 0)

    def test_caption_matches_sweep(self, measured):
        assert measured.caption_tuple() == "(400, x, 16, y)"

    def test_wall_visible_in_measured_surface(self, measured):
        # web=14 must be slower than web=18 at this rate.
        assert measured.z[:, 0].mean() > measured.z[:, 1].mean()

    def test_validation(self):
        workload = ThreeTierWorkload(warmup=0.2, duration=1.0, seed=0)
        with pytest.raises(ValueError, match="indicator"):
            measure_surface(
                workload, "nope", "default_threads", [1], "web_threads", [1],
                fixed={"injection_rate": 300, "mfg_threads": 16},
            )
        with pytest.raises(ValueError, match="fixed"):
            measure_surface(
                workload, "effective_tps", "default_threads", [1],
                "web_threads", [1], fixed={},
            )


class TestSurfaceAgreement:
    def make_pair(self, scale=1.1):
        rows = np.array([0.0, 10.0])
        cols = np.array([14.0, 18.0])
        z = np.array([[1.0, 2.0], [3.0, 4.0]])
        measured = ResponseSurface(
            "default_threads", "web_threads", rows, cols, z, "t", {}
        )
        predicted = ResponseSurface(
            "default_threads", "web_threads", rows, cols, z * scale, "t", {}
        )
        return predicted, measured

    def test_uniform_scale_error(self):
        predicted, measured = self.make_pair(scale=1.1)
        agreement = surface_agreement(predicted, measured)
        assert agreement.harmonic_mean_error == pytest.approx(0.1)
        assert agreement.median_error == pytest.approx(0.1)

    def test_worst_cell_located(self):
        predicted, measured = self.make_pair(scale=1.0)
        predicted.z[1, 1] *= 2.0
        agreement = surface_agreement(predicted, measured)
        (row, col), worst = agreement.worst_cell
        assert (row, col) == (10.0, 18.0)
        assert worst == pytest.approx(1.0)

    def test_grid_mismatch_rejected(self):
        predicted, measured = self.make_pair()
        other = ResponseSurface(
            "default_threads",
            "web_threads",
            np.array([0.0, 10.0, 20.0]),
            measured.col_values,
            np.ones((3, 2)),
            "t",
            {},
        )
        with pytest.raises(ValueError):
            surface_agreement(other, measured)

    def test_text(self):
        predicted, measured = self.make_pair()
        assert "harmonic-mean error" in surface_agreement(
            predicted, measured
        ).to_text()


class TestWhatIf:
    @pytest.fixture(scope="class")
    def analyzer(self):
        space = ConfigSpace(
            [
                ParameterRange("injection_rate", 300, 500),
                ParameterRange("default_threads", 4, 20),
                ParameterRange("mfg_threads", 12, 20),
                ParameterRange("web_threads", 12, 22),
            ]
        )
        workload = ThreeTierWorkload(warmup=0.3, duration=1.5, seed=6)
        dataset = SampleCollector(workload).collect(
            latin_hypercube(space, 24, seed=6)
        )
        dataset.y = np.maximum(dataset.y, 1e-3)
        ensemble = NeuralEnsemble(
            n_members=3,
            seed=0,
            hidden=(10,),
            error_threshold=0.01,
            max_epochs=2500,
        ).fit(dataset.x, dataset.y)
        return WhatIfAnalyzer(ensemble)

    def test_change_report_covers_all_indicators(self, analyzer):
        result = analyzer.compare(
            WorkloadConfig(400, 12, 16, 18), {"web_threads": 4}
        )
        assert {c.indicator for c in result.changes} == set(OUTPUT_NAMES)
        assert result.proposed.web_threads == 22

    def test_starving_the_web_pool_predicts_latency_increase(self, analyzer):
        result = analyzer.compare(
            WorkloadConfig(450, 12, 16, 18), {"web_threads": -6}
        )
        assert result["dealer_browse_rt"].delta > 0

    def test_unknown_parameter_rejected(self, analyzer):
        with pytest.raises(ValueError):
            analyzer.compare(WorkloadConfig(400, 12, 16, 18), {"gpu": 1})

    def test_unfitted_ensemble_rejected(self):
        with pytest.raises(ValueError):
            WhatIfAnalyzer(NeuralEnsemble(n_members=2))

    def test_text(self, analyzer):
        result = analyzer.compare(
            WorkloadConfig(400, 12, 16, 18), {"default_threads": 2}
        )
        text = result.to_text()
        assert "What if" in text and "default_threads 12 -> 14" in text
