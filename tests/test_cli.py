"""The repro-characterize and repro-serve command-line interfaces."""

import pytest

from repro.cli import build_parser, main, serve_main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.samples == 50
        assert args.scenario == "paper"
        assert args.backend == "simulator"

    def test_scenario_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scenario", "black_friday"])

    def test_injection_range(self):
        args = build_parser().parse_args(["--injection", "300", "500"])
        assert args.injection == [300.0, 500.0]


class TestMain:
    def test_fast_analytic_run_writes_report(self, tmp_path):
        output = tmp_path / "report.md"
        code = main(
            [
                "--backend",
                "analytic",
                "--fast",
                "--samples",
                "15",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        text = output.read_text()
        assert "# Workload characterization report" in text
        assert "Pareto frontier" in text

    def test_too_few_samples_rejected(self):
        with pytest.raises(SystemExit):
            main(["--samples", "5"])

    def test_inverted_injection_rejected(self):
        with pytest.raises(SystemExit):
            main(
                ["--backend", "analytic", "--injection", "500", "400",
                 "--samples", "12", "--fast"]
            )


class TestServeCLI:
    def test_parser_defaults(self):
        from repro.serving.server import build_parser as serve_parser

        args = serve_parser().parse_args(["--models-dir", "models"])
        assert args.port == 8700
        assert args.max_batch_size == 32
        assert args.cache_size == 1024
        assert not args.no_batching

    def test_models_dir_required(self):
        from repro.serving.server import build_parser as serve_parser

        with pytest.raises(SystemExit):
            serve_parser().parse_args([])

    def test_missing_directory_exits_nonzero(self, tmp_path):
        with pytest.raises(SystemExit, match="does not exist"):
            serve_main(["--models-dir", str(tmp_path / "absent")])
