"""The repro-characterize command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.samples == 50
        assert args.scenario == "paper"
        assert args.backend == "simulator"

    def test_scenario_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scenario", "black_friday"])

    def test_injection_range(self):
        args = build_parser().parse_args(["--injection", "300", "500"])
        assert args.injection == [300.0, 500.0]


class TestMain:
    def test_fast_analytic_run_writes_report(self, tmp_path):
        output = tmp_path / "report.md"
        code = main(
            [
                "--backend",
                "analytic",
                "--fast",
                "--samples",
                "15",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        text = output.read_text()
        assert "# Workload characterization report" in text
        assert "Pareto frontier" in text

    def test_too_few_samples_rejected(self):
        with pytest.raises(SystemExit):
            main(["--samples", "5"])

    def test_inverted_injection_rejected(self):
        with pytest.raises(SystemExit):
            main(
                ["--backend", "analytic", "--injection", "500", "400",
                 "--samples", "12", "--fast"]
            )
