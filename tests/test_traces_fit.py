"""Fit stage: MLE recovery, KS goodness-of-fit, diagnostics."""

import numpy as np
import pytest

from repro.traces.etl import IngestedTrace, TraceRecord
from repro.traces.fit import (
    FAMILIES,
    FitResult,
    build_distribution,
    exponentiality,
    fit_best,
    fit_family,
    fit_trace,
    ks_statistic,
    ks_threshold,
)


class TestKs:
    def test_perfect_fit_is_small(self):
        rng = np.random.default_rng(0)
        samples = rng.exponential(1.0, size=2000)
        scale = samples.mean()
        d = ks_statistic(samples, lambda x: 1.0 - np.exp(-np.asarray(x) / scale))
        assert d < ks_threshold(samples.size)

    def test_wrong_family_is_large(self):
        rng = np.random.default_rng(1)
        samples = rng.uniform(0.9, 1.1, size=2000)  # nearly deterministic
        d = ks_statistic(samples, lambda x: 1.0 - np.exp(-np.asarray(x)))
        assert d > ks_threshold(samples.size)

    def test_threshold_shrinks_with_n(self):
        assert ks_threshold(100) < ks_threshold(10)

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            ks_statistic(np.array([]), lambda x: x)
        with pytest.raises(ValueError):
            ks_threshold(0)


class TestExponentiality:
    def test_exponential_like(self):
        rng = np.random.default_rng(2)
        cv, verdict = exponentiality(rng.exponential(1.0, size=4000))
        assert verdict == "exponential-like"
        assert cv == pytest.approx(1.0, abs=0.1)

    def test_smooth_and_bursty(self):
        rng = np.random.default_rng(3)
        assert exponentiality(rng.uniform(0.9, 1.1, 500))[1] == "smooth"
        bursty = np.concatenate(
            [rng.exponential(0.05, 450), rng.exponential(5.0, 50)]
        )
        assert exponentiality(bursty)[1] == "bursty"

    def test_insufficient(self):
        assert exponentiality([1.0])[1] == "insufficient"


class TestFamilyRecovery:
    def test_exponential_mean_recovered(self):
        rng = np.random.default_rng(4)
        fit = fit_family(rng.exponential(0.25, size=3000), "exponential")
        assert fit.params["mean"] == pytest.approx(0.25, rel=0.1)
        assert fit.ks_pass

    def test_lognormal_recovered(self):
        rng = np.random.default_rng(5)
        sigma = 0.6
        mean = 0.05
        mu = np.log(mean) - 0.5 * sigma**2
        fit = fit_family(rng.lognormal(mu, sigma, size=3000), "lognormal")
        assert fit.params["mean"] == pytest.approx(mean, rel=0.1)
        assert fit.params["sigma"] == pytest.approx(sigma, rel=0.1)
        assert fit.ks_pass

    def test_hyperexponential_recovers_branches(self):
        rng = np.random.default_rng(6)
        samples = np.concatenate(
            [rng.exponential(0.02, 1400), rng.exponential(1.0, 600)]
        )
        fit = fit_family(samples, "hyperexponential")
        means = sorted(fit.params["means"])
        assert means[0] == pytest.approx(0.02, rel=0.3)
        assert means[1] == pytest.approx(1.0, rel=0.3)
        assert fit.cv > 1.15

    def test_fit_is_deterministic(self):
        rng = np.random.default_rng(7)
        samples = np.concatenate(
            [rng.exponential(0.1, 500), rng.exponential(2.0, 500)]
        )
        a = fit_family(samples, "hyperexponential")
        b = fit_family(samples, "hyperexponential")
        assert a.params == b.params

    def test_min_samples_enforced(self):
        with pytest.raises(ValueError):
            fit_family([1.0], "exponential")
        with pytest.raises(ValueError):
            fit_family([1.0, 2.0, 3.0], "hyperexponential")

    def test_unknown_family(self):
        with pytest.raises(KeyError):
            fit_family([1.0, 2.0], "pareto")
        with pytest.raises(KeyError):
            build_distribution("pareto", {})


class TestFitBest:
    def test_picks_exponential_for_exponential_data(self):
        rng = np.random.default_rng(8)
        best = fit_best(rng.exponential(1.0, size=3000))
        # KS is lowest for the true family (or the hyperexponential that
        # degenerates to it); either way the fit must be accepted.
        assert best.ks_pass
        assert best.mean == pytest.approx(1.0, rel=0.1)

    def test_picks_heavier_family_for_bimodal_data(self):
        rng = np.random.default_rng(9)
        samples = np.concatenate(
            [rng.exponential(0.02, 1500), rng.exponential(1.5, 500)]
        )
        best = fit_best(samples)
        assert best.family == "hyperexponential"

    def test_no_family_fittable(self):
        with pytest.raises(ValueError):
            fit_best([])

    def test_round_trip_through_dict(self):
        rng = np.random.default_rng(10)
        best = fit_best(rng.exponential(0.5, size=200))
        clone = FitResult.from_dict(best.to_dict())
        assert clone == best
        assert clone.distribution().mean() == pytest.approx(
            best.mean, rel=0.01
        )


class TestFitTrace:
    def make_trace(self, times, services=None):
        rows = [
            TraceRecord(t, "a", None if services is None else services[i])
            for i, t in enumerate(times)
        ]
        return IngestedTrace(rows)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            fit_trace(self.make_trace([]))

    def test_pooled_and_windows(self):
        rng = np.random.default_rng(11)
        times = np.cumsum(rng.exponential(0.02, size=4000))
        services = rng.lognormal(-3.0, 0.5, size=4000)
        fit = fit_trace(self.make_trace(times, services), window_s=None)
        assert fit.interarrival.mean == pytest.approx(0.02, rel=0.15)
        assert fit.service is not None
        assert len(fit.windows) >= 2
        # A sparse trailing window may carry too few samples to fit, but
        # full interior windows must all get a service model.
        assert all(w.service is not None for w in fit.windows[:-1])
        assert fit.arrival_verdict in ("exponential-like", "smooth", "bursty")

    def test_quantized_trace_falls_back_to_rate(self):
        # 1-second stamps at ~20/s: most gaps are exactly zero.
        rng = np.random.default_rng(12)
        times = np.floor(np.cumsum(rng.exponential(0.05, size=2000)))
        fit = fit_trace(self.make_trace(times))
        assert fit.arrival_verdict == "quantized"
        assert fit.interarrival.family == "exponential"
        # The fallback mean is the reciprocal of the measured rate, not
        # the (meaningless) mean positive gap.
        assert fit.interarrival.mean == pytest.approx(0.05, rel=0.1)
        assert all(w.interarrival is None for w in fit.windows)

    def test_class_service_fits_respect_min_samples(self):
        rng = np.random.default_rng(13)
        times = np.cumsum(rng.exponential(0.1, size=300))
        rows = [
            TraceRecord(
                t,
                "big" if i % 10 else "rare",
                float(rng.lognormal(-3.0, 0.4)),
            )
            for i, t in enumerate(times)
        ]
        fit = fit_trace(IngestedTrace(rows), min_class_samples=50)
        assert "big" in fit.class_service
        assert "rare" not in fit.class_service
