"""The discrete-event engine: clock, ordering, processes, effects."""

import numpy as np
import pytest

from repro.workload.des import Delay, Effect, Process, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(3.0, lambda: log.append("c"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(2.0, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append("first"))
        sim.schedule(1.0, lambda: log.append("second"))
        sim.run()
        assert log == ["first", "second"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-0.1, lambda: None)

    def test_cancelled_events_skipped(self):
        sim = Simulator()
        log = []
        event = sim.schedule(1.0, lambda: log.append("cancelled"))
        sim.schedule(2.0, lambda: log.append("kept"))
        event.cancel()
        sim.run()
        assert log == ["kept"]

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        log = []

        def chain():
            log.append(sim.now)
            if sim.now < 3.0:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert log == [1.0, 2.0, 3.0]


class TestRunUntil:
    def test_stops_at_horizon(self):
        sim = Simulator()
        log = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda t=t: log.append(t))
        sim.run_until(2.0)
        assert log == [1.0, 2.0]
        assert sim.now == 2.0

    def test_clock_lands_on_horizon_even_when_idle(self):
        sim = Simulator()
        sim.run_until(5.0)
        assert sim.now == 5.0

    def test_backwards_horizon_rejected(self):
        sim = Simulator()
        sim.run_until(2.0)
        with pytest.raises(ValueError):
            sim.run_until(1.0)

    def test_remaining_events_still_pending(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run_until(5.0)
        assert sim.pending == 1


class TestRunawayGuard:
    def test_run_raises_on_infinite_loop(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(RuntimeError, match="max_events"):
            sim.run(max_events=100)


class TestProcesses:
    def test_generator_delay_sequence(self):
        sim = Simulator()
        log = []

        def flow():
            log.append(("start", sim.now))
            yield Delay(2.0)
            log.append(("middle", sim.now))
            yield Delay(3.0)
            log.append(("end", sim.now))

        sim.spawn(flow())
        sim.run()
        assert log == [("start", 0.0), ("middle", 2.0), ("end", 5.0)]

    def test_on_complete_callback(self):
        sim = Simulator()
        finished = []

        def flow():
            yield Delay(1.0)

        sim.spawn(flow(), on_complete=lambda p: finished.append(p.name))
        sim.run()
        assert len(finished) == 1

    def test_yielding_non_effect_raises(self):
        sim = Simulator()

        def bad():
            yield "not-an-effect"

        sim.spawn(bad())
        with pytest.raises(TypeError, match="not an Effect"):
            sim.run()

    def test_resume_after_finish_raises(self):
        sim = Simulator()

        def flow():
            yield Delay(0.0)

        process = sim.spawn(flow())
        sim.run()
        assert process.finished
        with pytest.raises(RuntimeError):
            process.resume()

    def test_immediate_effects_resume_synchronously(self):
        class Instant(Effect):
            def apply(self, sim, process):
                return (True, "value")

        sim = Simulator()
        received = []

        def flow():
            received.append((yield Instant()))

        sim.spawn(flow())
        sim.run()
        assert received == ["value"]

    def test_many_concurrent_processes(self):
        sim = Simulator()
        done = []

        def flow(i):
            yield Delay(float(i % 5))
            done.append(i)

        for i in range(100):
            sim.spawn(flow(i))
        sim.run()
        assert len(done) == 100
        assert sim.processes_spawned == 100

    def test_negative_delay_effect_rejected(self):
        with pytest.raises(ValueError):
            Delay(-1.0)
