"""The one-shot characterization report generator."""

import numpy as np
import pytest

from repro.analysis.report import characterize
from repro.models.neural import NeuralWorkloadModel
from repro.workload.dataset import Dataset
from repro.workload.sampler import (
    ConfigSpace,
    ParameterRange,
    SampleCollector,
    latin_hypercube,
)
from repro.workload.service import OUTPUT_NAMES, ThreeTierWorkload


@pytest.fixture(scope="module")
def small_collection():
    space = ConfigSpace(
        [
            ParameterRange("injection_rate", 300, 450),
            ParameterRange("default_threads", 6, 20),
            ParameterRange("mfg_threads", 12, 20),
            ParameterRange("web_threads", 15, 22),
        ]
    )
    workload = ThreeTierWorkload(warmup=0.5, duration=2.0, seed=4)
    dataset = SampleCollector(workload).collect(
        latin_hypercube(space, 20, seed=4)
    )
    dataset.y = np.maximum(dataset.y, 1e-3)
    return dataset


@pytest.fixture(scope="module")
def report(small_collection):
    model = NeuralWorkloadModel(
        hidden=(10,), error_threshold=0.02, max_epochs=1200, seed=0
    )
    return characterize(
        small_collection,
        model=model,
        response_limits={"dealer_browse_rt": 0.2},
        cv_folds=4,
        seed=0,
    )


class TestCharacterize:
    def test_contains_every_section(self, report):
        for heading in (
            "# Workload characterization report",
            "## Model accuracy",
            "## Surface shapes",
            "## Parameter sensitivities",
            "## Local effects",
            "## Recommended configurations",
            "## Pareto frontier",
        ):
            assert heading in report.text, heading

    def test_accuracy_recorded(self, report):
        assert 0.0 < report.accuracy <= 1.0

    def test_every_indicator_classified(self, report):
        assert set(report.surface_kinds) == set(OUTPUT_NAMES)

    def test_save(self, report, tmp_path):
        path = report.save(tmp_path / "report.md")
        assert path.read_text() == report.text

    def test_rejects_wrong_input_count(self):
        bad = Dataset(
            np.zeros((6, 2)), np.ones((6, 5)), input_names=["a", "b"]
        )
        with pytest.raises(ValueError, match="canonical"):
            characterize(bad)
