"""The lifecycle subsystem: capture, drift, versioned store, orchestrator.

Includes the end-to-end acceptance path: serve → shift the workload
distribution → drift trips → gated retrain → hot-reload promotion →
rollback, deterministic under fixed seeds and free of wall-clock sleeps.
"""

import json
import os
import threading

import numpy as np
import pytest

from repro.lifecycle import (
    DriftDetector,
    DriftThresholds,
    GateThresholds,
    LifecycleOrchestrator,
    Observation,
    ObservationLog,
    VersionedModelStore,
    config_drift_scores,
    residual_errors,
    serving_tap,
)
from repro.models.neural import NeuralWorkloadModel
from repro.models.persistence import load_model, save_model
from repro.serving import ModelRegistry, PredictionCache, ServingEngine
from repro.serving.metrics import ServingMetrics


def truth(x, scale=1.0):
    """Deterministic synthetic ground truth: 4 configs -> 5 indicators."""
    x = np.atleast_2d(np.asarray(x, dtype=float))
    y = np.column_stack(
        [
            0.1 + 0.02 * (x[:, 1] - 4.0) ** 2,
            0.1 + 0.01 * x[:, 3],
            x[:, 0] * 0.05,
            x[:, 2] * 0.03 + 0.2,
            400.0 - 3.0 * (x[:, 3] - 5.0) ** 2,
        ]
    )
    return scale * y


def fit_baseline(seed=0):
    """A model fitted on the in-distribution window (configs in [1, 8])."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(1.0, 8.0, size=(48, 4))
    model = NeuralWorkloadModel(
        hidden=(10,), error_threshold=0.005, max_epochs=4000, seed=seed
    )
    return model.fit(x, truth(x)), x


@pytest.fixture(scope="module")
def baseline():
    return fit_baseline()


@pytest.fixture()
def registry_dir(baseline, tmp_path):
    model, _ = baseline
    registry = tmp_path / "registry"
    registry.mkdir()
    save_model(model, registry / "paper.json")
    return registry


def record_window(log, model, rng, n, low, high, scale=1.0, name="paper"):
    """Paired (config, prediction, measurement) driver traffic."""
    configs = rng.uniform(low, high, size=(n, 4))
    predicted = model.predict(configs)
    measured = truth(configs, scale=scale)
    log.record_batch(
        name, configs, predicted=predicted, measured=measured, source="driver"
    )
    return configs


class TestObservationLog:
    def test_record_and_snapshot_roundtrip(self):
        log = ObservationLog(capacity=8)
        assert log.record("m", [1, 2, 3, 4], measured=[1, 2, 3, 4, 5])
        (obs,) = log.snapshot("m")
        assert obs.config == (1.0, 2.0, 3.0, 4.0)
        assert obs.measured == (1.0, 2.0, 3.0, 4.0, 5.0)
        assert obs.predicted is None and not obs.is_paired
        assert obs.seq == 1

    def test_ring_buffer_drops_oldest(self):
        log = ObservationLog(capacity=3)
        for i in range(5):
            log.record("m", [float(i)] * 4)
        assert len(log) == 3
        assert log.observations_total == 5
        assert [o.config[0] for o in log.snapshot()] == [2.0, 3.0, 4.0]

    def test_sampling_rate_zero_drops_everything(self):
        log = ObservationLog(sampling_rate=0.0)
        assert not log.record("m", [1, 2, 3, 4])
        assert len(log) == 0 and log.sampled_out_total == 1

    def test_sampling_is_deterministic_under_seed(self):
        def kept(seed):
            log = ObservationLog(sampling_rate=0.5, seed=seed)
            return [log.record("m", [i, 0, 0, 0]) for i in range(50)]

        assert kept(3) == kept(3)
        count = sum(kept(3))
        assert 10 < count < 40  # roughly half, never all or none

    def test_paired_and_training_data_filters(self):
        log = ObservationLog()
        log.record("m", [1, 1, 1, 1])  # config only
        log.record("m", [2, 2, 2, 2], predicted=[1] * 5)  # serving tap
        log.record("m", [3, 3, 3, 3], measured=[2] * 5)  # driver only
        log.record("m", [4, 4, 4, 4], predicted=[1] * 5, measured=[2] * 5)
        log.record("other", [9, 9, 9, 9], predicted=[1] * 5, measured=[2] * 5)
        assert log.configs("m").shape == (4, 4)
        configs, predicted, measured = log.paired("m")
        assert configs.shape == (1, 4)
        assert predicted.shape == measured.shape == (1, 5)
        x, y = log.training_data("m")
        assert x.shape == (2, 4) and y.shape == (2, 5)

    def test_spill_and_replay(self, tmp_path):
        path = tmp_path / "obs.jsonl"
        with ObservationLog(spill_path=path) as log:
            log.record("m", [1, 2, 3, 4], measured=[5] * 5, source="driver")
            log.record("m", [5, 6, 7, 8])
        replayed = ObservationLog.replay(path)
        assert replayed.observations_total == 2
        assert replayed.snapshot("m")[0].measured == (5.0,) * 5
        # Replay continues the sequence rather than reusing it.
        replayed.record("m", [9, 9, 9, 9])
        assert replayed.snapshot()[-1].seq == 3

    def test_observation_json_roundtrip(self):
        obs = Observation(
            model="m",
            config=(1.0, 2.0),
            predicted=None,
            measured=(3.0,),
            source="driver",
            seq=7,
        )
        assert Observation.from_json(obs.to_json()) == obs

    def test_concurrent_recording_is_lossless(self):
        log = ObservationLog(capacity=4096)

        def worker(k):
            for i in range(100):
                log.record("m", [k, i, 0, 0])

        threads = [
            threading.Thread(target=worker, args=(k,)) for k in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert log.observations_total == 800
        assert len({o.seq for o in log.snapshot()}) == 800

    def test_metrics_counter_mirrors_accepts(self):
        metrics = ServingMetrics()
        log = ObservationLog(sampling_rate=0.0, metrics=metrics)
        log.record("m", [1, 2, 3, 4])
        assert metrics.observations_total == 0
        log = ObservationLog(metrics=metrics)
        log.record("m", [1, 2, 3, 4])
        assert metrics.observations_total == 1

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            ObservationLog(capacity=0)
        with pytest.raises(ValueError):
            ObservationLog(sampling_rate=1.5)


class TestDrift:
    def test_in_distribution_scores_near_zero(self):
        rng = np.random.default_rng(0)
        reference = rng.normal(3.0, 2.0, size=(2000, 4))
        mean, scale = reference.mean(axis=0), reference.std(axis=0)
        live = rng.normal(3.0, 2.0, size=(500, 4))
        assert config_drift_scores(live, mean, scale).max() < 0.2

    def test_shifted_mean_scores_high(self):
        mean, scale = np.zeros(4), np.ones(4)
        live = np.random.default_rng(0).normal(2.0, 1.0, size=(200, 4))
        scores = config_drift_scores(live, mean, scale)
        assert scores.min() > 1.5

    def test_residual_errors_skip_vanishing_indicators(self):
        predicted = np.column_stack([np.full(10, 2.0), np.full(10, 0.5)])
        measured = np.column_stack([np.full(10, 1.0), np.full(10, 1e-12)])
        errors = residual_errors(predicted, measured)
        assert errors[0] == pytest.approx(1.0)
        assert np.isnan(errors[1])  # saturated column renders no verdict

    def test_detector_insufficient_observations(self, baseline):
        model, _ = baseline
        log = ObservationLog()
        log.record("paper", [1, 2, 3, 4])
        report = DriftDetector().check(log, "paper", model)
        assert report.insufficient and not report.drifted
        assert "insufficient" in report.reasons[0]

    def test_detector_quiet_on_in_distribution_traffic(self, baseline):
        model, _ = baseline
        log = ObservationLog()
        record_window(log, model, np.random.default_rng(1), 40, 1.0, 8.0)
        report = DriftDetector().check(log, "paper", model)
        assert not report.drifted
        assert report.config_score is not None

    def test_detector_trips_on_config_shift(self, baseline):
        model, _ = baseline
        log = ObservationLog()
        record_window(log, model, np.random.default_rng(1), 40, 6.0, 13.0)
        report = DriftDetector().check(log, "paper", model)
        assert report.drifted
        assert any("configuration drift" in r for r in report.reasons)

    def test_detector_trips_on_residual_shift(self, baseline):
        model, _ = baseline
        log = ObservationLog()
        # Same configuration window, but the system now behaves differently.
        record_window(
            log, model, np.random.default_rng(1), 40, 1.0, 8.0, scale=1.4
        )
        report = DriftDetector(
            DriftThresholds(config_score=50.0)  # isolate the residual signal
        ).check(log, "paper", model)
        assert report.drifted
        assert any("residual drift" in r for r in report.reasons)
        assert report.residual_overall > 0.1
        assert report.to_dict()["drifted"]

    def test_thresholds_validated(self):
        with pytest.raises(ValueError):
            DriftThresholds(config_score=0.0)
        with pytest.raises(ValueError):
            DriftThresholds(min_observations=0)


class TestVersionedModelStore:
    def test_save_load_roundtrip_and_numbering(self, baseline, tmp_path):
        model, x = baseline
        store = VersionedModelStore(tmp_path / "store")
        assert store.latest_version("paper") is None
        v1 = store.save_version("paper", model, {"note": "first"})
        v2 = store.save_version("paper", model)
        assert (v1, v2) == (1, 2)
        loaded = store.load_version("paper", 1)
        np.testing.assert_allclose(loaded.predict(x[:3]), model.predict(x[:3]))
        assert store.list_versions("paper")[0]["metadata"] == {"note": "first"}

    def test_promote_deploys_with_strictly_newer_mtime(
        self, baseline, registry_dir, tmp_path
    ):
        model, _ = baseline
        store = VersionedModelStore(tmp_path / "store")
        version = store.save_version("paper", model)
        target = registry_dir / "paper.json"
        before = os.stat(target).st_mtime_ns
        store.promote("paper", version, registry_dir)
        assert os.stat(target).st_mtime_ns > before
        assert store.promoted_version("paper") == version

    def test_rollback_toggles_between_versions(
        self, baseline, registry_dir, tmp_path
    ):
        model, x = baseline
        other, _ = fit_baseline(seed=5)
        store = VersionedModelStore(tmp_path / "store")
        store.save_version("paper", model)
        store.save_version("paper", other)
        store.promote("paper", 1, registry_dir)
        store.promote("paper", 2, registry_dir)
        assert store.rollback("paper", registry_dir) == 1
        np.testing.assert_allclose(
            load_model(registry_dir / "paper.json").predict(x[:2]),
            model.predict(x[:2]),
        )
        # Rolling "forward" again is one more rollback.
        assert store.rollback("paper", registry_dir) == 2

    def test_rollback_without_history_raises(self, registry_dir, tmp_path):
        store = VersionedModelStore(tmp_path / "store")
        with pytest.raises(RuntimeError, match="no previous version"):
            store.rollback("paper", registry_dir)

    def test_retention_prunes_but_pins_promoted(
        self, baseline, registry_dir, tmp_path
    ):
        model, _ = baseline
        store = VersionedModelStore(tmp_path / "store", retention=2)
        store.save_version("paper", model)
        store.promote("paper", 1, registry_dir)
        for _ in range(4):
            store.save_version("paper", model)
        versions = [v["version"] for v in store.list_versions("paper")]
        assert 1 in versions  # promoted survives retention
        assert versions[-2:] == [4, 5]
        assert not (tmp_path / "store" / "paper" / "v0002.json").exists()

    def test_adopt_brings_deployment_under_management(
        self, baseline, registry_dir, tmp_path
    ):
        model, x = baseline
        store = VersionedModelStore(tmp_path / "store")
        version = store.adopt("paper", registry_dir / "paper.json")
        assert version == 1
        assert store.promoted_version("paper") == 1
        np.testing.assert_allclose(
            store.load_version("paper", 1).predict(x[:2]),
            model.predict(x[:2]),
        )

    def test_invalid_names_rejected(self, tmp_path):
        store = VersionedModelStore(tmp_path / "store")
        for name in ("", "../x", "a/b", ".hidden"):
            with pytest.raises(KeyError):
                store.save_version(
                    name, NeuralWorkloadModel(hidden=(4,), max_epochs=1)
                )
        with pytest.raises(ValueError):
            VersionedModelStore(tmp_path / "s2", retention=1)


class TestWarmStart:
    def test_warm_retrain_reaches_threshold_in_fewer_epochs(self, baseline):
        base, _ = baseline
        rng = np.random.default_rng(10)
        x = rng.uniform(2.0, 9.0, size=(48, 4))
        y = truth(x, scale=1.15)

        def clone():
            return NeuralWorkloadModel(
                hidden=(10,), error_threshold=0.005, max_epochs=4000, seed=1
            )

        warm = clone().fit(x, y, warm_start_from=base)
        cold = clone().fit(x, y)
        assert warm.total_epochs_ < cold.total_epochs_

    def test_warm_start_requires_fitted_source(self):
        source = NeuralWorkloadModel(hidden=(10,))
        target = NeuralWorkloadModel(hidden=(10,), max_epochs=5)
        x = np.random.default_rng(0).uniform(1, 8, size=(20, 4))
        with pytest.raises(ValueError, match="not fitted"):
            target.fit(x, truth(x), warm_start_from=source)

    def test_warm_start_requires_identical_architecture(self, baseline):
        base, _ = baseline
        target = NeuralWorkloadModel(hidden=(6,), max_epochs=5)
        x = np.random.default_rng(0).uniform(1, 8, size=(20, 4))
        with pytest.raises(ValueError, match="identical architecture"):
            target.fit(x, truth(x), warm_start_from=base)

    def test_trainer_rejects_mismatched_initial_params(self):
        from repro.nn.mlp import MLP
        from repro.nn.training import Trainer

        trainer = Trainer(MLP([4, 8, 5], seed=0))
        x = np.zeros((4, 4))
        y = np.zeros((4, 5))
        with pytest.raises(ValueError, match="initial_params"):
            trainer.fit(x, y, max_epochs=1, initial_params=np.zeros(3))


class TestCacheInvalidation:
    def test_other_models_survive_invalidation(self):
        cache = PredictionCache(max_entries=64)
        for i in range(10):
            cache.put(cache.key("a", [i, 0, 0, 0]), np.full(5, float(i)))
            cache.put(cache.key("b", [i, 0, 0, 0]), np.full(5, float(-i)))
        assert cache.invalidate_model("a") == 10
        assert len(cache) == 10
        for i in range(10):
            assert cache.get(cache.key("a", [i, 0, 0, 0])) is None
            np.testing.assert_array_equal(
                cache.get(cache.key("b", [i, 0, 0, 0])), np.full(5, float(-i))
            )

    def test_index_tracks_lru_evictions(self):
        cache = PredictionCache(max_entries=4)
        for i in range(8):  # first four entries get LRU-evicted
            cache.put(cache.key("m", [i, 0, 0, 0]), np.zeros(5))
        assert cache.invalidate_model("m") == 4
        assert len(cache) == 0
        assert cache.invalidate_model("m") == 0

    def test_clear_resets_index(self):
        cache = PredictionCache()
        cache.put(cache.key("m", [1, 2, 3, 4]), np.zeros(5))
        cache.clear()
        assert cache.invalidate_model("m") == 0


class TestRegistryConcurrency:
    def test_reload_racing_evict_stays_consistent(self, registry_dir):
        registry = ModelRegistry(registry_dir)
        errors = []

        def hammer(op):
            try:
                for _ in range(50):
                    op("paper")
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(op,))
            for op in (registry.reload, registry.evict, registry.get)
            for _ in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert registry.get("paper") is not None

    def test_parallel_loads_keep_newer_mtime(self, registry_dir, baseline):
        """A slow stale load must not clobber a newer artifact's entry."""
        model, x = baseline
        registry = ModelRegistry(registry_dir)
        path = registry_dir / "paper.json"
        old_mtime = os.stat(path).st_mtime_ns

        stale_load_started = threading.Event()
        release_stale_load = threading.Event()
        original_load = registry._load

        def gated_load(name, artifact_path, mtime_ns):
            entry = original_load(name, artifact_path, mtime_ns)
            if mtime_ns == old_mtime:
                stale_load_started.set()
                assert release_stale_load.wait(10.0)
            return entry

        registry._load = gated_load
        result = {}

        def stale_reader():
            result["entry"] = registry.get_entry("paper")

        thread = threading.Thread(target=stale_reader)
        thread.start()
        assert stale_load_started.wait(10.0)

        # While the stale load is stuck, deploy and load a newer artifact.
        retrained, _ = fit_baseline(seed=5)
        save_model(retrained, path)
        stat = os.stat(path)
        os.utime(path, ns=(stat.st_atime_ns, old_mtime + 1_000_000_000))
        new_entry = registry.get_entry("paper")
        assert new_entry.mtime_ns > old_mtime

        release_stale_load.set()
        thread.join(10.0)
        assert not thread.is_alive()
        # The stale loader observed the merge and returned the newer entry.
        assert result["entry"].mtime_ns == new_entry.mtime_ns
        np.testing.assert_allclose(
            registry.get("paper").predict(x[:2]), retrained.predict(x[:2])
        )


class TestOrchestrator:
    def make(self, registry_dir, tmp_path, log, **kwargs):
        return LifecycleOrchestrator(
            registry_dir,
            VersionedModelStore(tmp_path / "store"),
            log,
            seed=2,
            **kwargs,
        )

    def test_quiet_traffic_skips_retraining(
        self, baseline, registry_dir, tmp_path
    ):
        model, _ = baseline
        log = ObservationLog()
        record_window(log, model, np.random.default_rng(1), 40, 1.0, 8.0)
        orch = self.make(registry_dir, tmp_path, log)
        report = orch.run_cycle("paper")
        assert not report.drift.drifted and not report.retrained
        assert report.version is None and not report.promoted

    def test_gate_rejection_archives_but_never_promotes(
        self, baseline, registry_dir, tmp_path
    ):
        model, x = baseline
        log = ObservationLog()
        record_window(log, model, np.random.default_rng(1), 60, 1.0, 8.0)
        orch = self.make(
            registry_dir,
            tmp_path,
            log,
            gate=GateThresholds(max_error=1e-9),  # unpassable
        )
        before = load_model(registry_dir / "paper.json").predict(x[:2])
        report = orch.run_cycle("paper", force=True)
        assert report.retrained and not report.gate.passed
        assert not report.promoted
        stored = orch.store.list_versions("paper")
        assert stored[-1]["metadata"]["status"] == "rejected"
        # Baseline was adopted, candidate archived, deployment untouched.
        assert orch.store.promoted_version("paper") == 1
        np.testing.assert_array_equal(
            load_model(registry_dir / "paper.json").predict(x[:2]), before
        )

    def test_status_payload_is_json_serializable(
        self, baseline, registry_dir, tmp_path
    ):
        model, _ = baseline
        log = ObservationLog()
        record_window(log, model, np.random.default_rng(1), 40, 1.0, 8.0)
        metrics = ServingMetrics()
        orch = self.make(registry_dir, tmp_path, log, metrics=metrics)
        orch.check_drift("paper")
        payload = json.loads(json.dumps(orch.status()))
        assert payload["models"]["paper"]["last_drift"] is not None
        assert payload["observations"]["total"] == 40
        assert payload["counters"]["retrains_total"] == 0

    def test_kfold_cycle_reports_cv_error(
        self, baseline, registry_dir, tmp_path
    ):
        model, _ = baseline
        log = ObservationLog()
        record_window(log, model, np.random.default_rng(1), 60, 1.0, 8.0)
        orch = self.make(registry_dir, tmp_path, log, kfold=3)
        report = orch.run_cycle("paper", force=True, promote=False)
        assert report.retrained
        assert report.cv_error is not None and report.cv_error >= 0.0


class TestCLI:
    @pytest.fixture()
    def analytic_deployment(self, tmp_path):
        """A registry artifact trained on the analytic backend's window."""
        from repro.workload.analytic import AnalyticWorkloadModel
        from repro.workload.service import WorkloadConfig

        rng = np.random.default_rng(7)
        backend = AnalyticWorkloadModel()
        xs, ys = [], []
        for _ in range(64):
            config = WorkloadConfig(
                injection_rate=float(rng.uniform(150, 400)),
                default_threads=int(rng.integers(12, 28)),
                mfg_threads=int(rng.integers(12, 28)),
                web_threads=int(rng.integers(12, 28)),
            )
            xs.append(config.as_vector())
            ys.append(backend.evaluate_vector(config))
        model = NeuralWorkloadModel(
            hidden=(12,), error_threshold=0.002, max_epochs=8000, seed=7
        )
        model.fit(np.array(xs), np.array(ys))
        registry = tmp_path / "registry"
        registry.mkdir()
        save_model(model, registry / "paper.json")
        return registry

    def test_record_drift_retrain_rollback_loop(
        self, analytic_deployment, tmp_path, capsys
    ):
        from repro.lifecycle.cli import main

        registry = str(analytic_deployment)
        store = str(tmp_path / "store")
        log = str(tmp_path / "obs.jsonl")

        def run(*argv):
            code = main(list(argv))
            return code, json.loads(capsys.readouterr().out)

        code, out = run(
            "record", "--models-dir", registry, "--log", log,
            "--samples", "96", "--seed", "1",
            "--rate-min", "150", "--rate-max", "400", "--rate-shift", "150",
            "--threads-min", "12", "--threads-max", "27",
            "--indicator-scale", "1.2",
        )
        assert code == 0 and out["recorded"] == 96

        code, out = run(
            "check-drift", "--models-dir", registry, "--log", log
        )
        assert code == 0 and out["drifted"]

        code, out = run(
            "retrain", "--models-dir", registry, "--store-dir", store,
            "--log", log, "--seed", "3", "--promote",
        )
        assert code == 0
        assert out["retrained"] and out["gate"]["passed"] and out["promoted"]
        assert out["version"] == 2  # v1 = adopted pre-existing deployment

        code, out = run(
            "rollback", "--models-dir", registry, "--store-dir", store
        )
        assert code == 0 and out["restored_version"] == 1

        code, out = run(
            "status", "--models-dir", registry, "--store-dir", store,
            "--log", log,
        )
        assert code == 0
        assert out["models"]["paper"]["promoted_version"] == 1
        assert out["models"]["paper"]["previous_version"] == 2

    def test_errors_exit_nonzero(self, tmp_path, capsys):
        from repro.lifecycle.cli import main

        (tmp_path / "registry").mkdir()
        code = main(
            [
                "rollback",
                "--models-dir", str(tmp_path / "registry"),
                "--store-dir", str(tmp_path / "store"),
            ]
        )
        assert code == 1
        assert "no previous version" in capsys.readouterr().err


class TestEndToEndLifecycle:
    def test_serve_drift_retrain_promote_rollback(
        self, baseline, registry_dir, tmp_path
    ):
        model, _ = baseline
        probe = [[6.0, 6.0, 6.0, 6.0]]
        log = ObservationLog(seed=0)
        with ServingEngine(
            registry_dir, batching=False, observer=serving_tap(log)
        ) as engine:
            metrics = engine.metrics
            orch = LifecycleOrchestrator(
                registry_dir,
                VersionedModelStore(tmp_path / "store"),
                log,
                gate=GateThresholds(max_error=0.15),
                metrics=metrics,
                seed=2,
            )

            # Phase 1 — in-distribution traffic: serve, measure, no drift.
            rng = np.random.default_rng(1)
            configs = rng.uniform(1.0, 8.0, size=(30, 4))
            for row in configs:
                predicted = engine.predict_one("paper", row)
                log.record(
                    "paper",
                    row,
                    predicted=predicted,
                    measured=truth(row)[0],
                    source="driver",
                )
            assert metrics.observations_total == 0  # log not wired to metrics
            quiet = orch.run_cycle("paper")
            assert not quiet.drift.drifted and not quiet.retrained

            baseline_probe = engine.predict_one("paper", probe[0])

            # Phase 2 — the workload walks away: new configuration window
            # and the system responds differently (ground truth rescaled).
            log.clear()
            shifted = rng.uniform(5.0, 12.0, size=(48, 4))
            for row in shifted:
                predicted = engine.predict_one("paper", row)
                log.record(
                    "paper",
                    row,
                    predicted=predicted,
                    measured=truth(row, scale=1.3)[0],
                    source="driver",
                )

            # Phase 3 — drift trips both signals and the cycle promotes.
            report = orch.run_cycle("paper")
            assert report.drift.drifted
            assert report.retrained and report.gate.passed
            assert report.version == 2  # v1 = adopted baseline
            assert report.promoted
            assert metrics.retrains_total == 1
            assert metrics.promotions_total == 1
            assert metrics.drift_scores()["paper"] > 0.5

            # Phase 4 — the hot-reload registry serves the new version.
            candidate = orch.store.load_version("paper", 2)
            np.testing.assert_allclose(
                engine.predict_one("paper", probe[0]),
                candidate.predict(probe)[0],
                rtol=1e-10,
            )
            assert not np.allclose(
                engine.predict_one("paper", probe[0]), baseline_probe
            )

            # Phase 5 — rollback restores the prior artifact in one call.
            assert orch.rollback("paper") == 1
            assert metrics.rollbacks_total == 1
            np.testing.assert_allclose(
                engine.predict_one("paper", probe[0]),
                baseline_probe,
                rtol=1e-10,
            )
        assert "repro_serving_retrains_total 1" in metrics.to_prometheus()
