"""The reliability layer: retries, breakers, deadlines, faults, degradation.

Includes the chaos acceptance test: under an injected ``FaultPlan`` that
corrupts the active artifact and spikes micro-batcher latency, the HTTP
server keeps answering ``/predict`` (2xx, ``"degraded": true``) from the
linear surrogate, ``/healthz`` reports ``degraded``, and full recovery
(breaker half-open → closed) happens once the faults clear.  Everything is
deterministic — fake clocks for breaker timing, recorded sleeps for
backoff — and no injected latency exceeds 0.5 s.
"""

import json
import math
import os
import threading
import time

import numpy as np
import pytest

from repro.models.neural import NeuralWorkloadModel
from repro.models.persistence import load_model, save_model
from repro.nn.mlp import MLP
from repro.nn.optimizers import get_optimizer
from repro.nn.training import Trainer, TrainingDivergedError
from repro.reliability import (
    CLOSED,
    DEGRADED,
    HALF_OPEN,
    HEALTHY,
    OPEN,
    SITE_BATCHER_FLUSH,
    SITE_DRIVER_INJECT,
    SITE_REGISTRY_STAT,
    UNHEALTHY,
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    FallbackChain,
    FaultPlan,
    FaultRule,
    HealthMonitor,
    InjectedFault,
    OverloadedError,
    RetryPolicy,
    fit_linear_surrogate,
)
from repro.serving import (
    BatcherClosedError,
    MicroBatcher,
    ModelRegistry,
    ServingClient,
    ServingEngine,
    ServingError,
    create_server,
)
from repro.workload.service import INPUT_NAMES, ThreeTierWorkload, WorkloadConfig


class FakeClock:
    """A hand-cranked monotonic clock for deterministic breaker timing."""

    def __init__(self, start: float = 0.0):
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += float(seconds)


def fit_tiny_model(seed=0):
    """A fast-fitting 4-in/5-out workload model plus its training inputs."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(1.0, 8.0, size=(40, 4))
    y = np.column_stack(
        [
            0.1 + 0.02 * (x[:, 1] - 4.0) ** 2,
            0.1 + 0.01 * x[:, 3],
            x[:, 0] * 0.05,
            x[:, 2] * 0.03 + 0.2,
            400.0 - 3.0 * (x[:, 3] - 5.0) ** 2,
        ]
    )
    model = NeuralWorkloadModel(
        hidden=(8,), error_threshold=0.05, max_epochs=500, seed=seed
    )
    return model.fit(x, y), x


def bump_mtime(path, seconds=2):
    """Force a visibly newer mtime regardless of filesystem granularity."""
    stat = os.stat(path)
    os.utime(
        path, ns=(stat.st_atime_ns, stat.st_mtime_ns + seconds * 1_000_000_000)
    )


@pytest.fixture(scope="module")
def tiny_model():
    return fit_tiny_model()


# ----------------------------------------------------------------------
# Deadline
# ----------------------------------------------------------------------


class TestDeadline:
    def test_counts_down_and_expires(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        assert deadline.remaining() == pytest.approx(1.0)
        assert not deadline.expired
        clock.advance(0.6)
        assert deadline.remaining() == pytest.approx(0.4)
        clock.advance(0.5)
        assert deadline.expired

    def test_check_raises_once_expired(self):
        clock = FakeClock()
        deadline = Deadline.after(0.1, clock=clock)
        deadline.check("thing")
        clock.advance(0.2)
        with pytest.raises(DeadlineExceeded, match="thing"):
            deadline.check("thing")

    def test_clamp_bounds_timeouts(self):
        clock = FakeClock()
        deadline = Deadline(0.5, clock=clock)
        assert deadline.clamp(10.0) == pytest.approx(0.5)
        assert deadline.clamp(0.2) == pytest.approx(0.2)
        assert deadline.clamp() == pytest.approx(0.5)
        clock.advance(1.0)
        assert deadline.clamp(10.0) == 0.0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Deadline(-1.0)


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------


class TestRetryPolicy:
    def test_jitter_bounds_all_sleeps_within_base_cap(self):
        policy = RetryPolicy(
            max_attempts=8, base=0.05, cap=0.4, seed=1234, sleep=lambda s: None
        )
        for _ in range(50):
            delays = list(policy.delays())
            assert len(delays) == 7
            for delay in delays:
                assert 0.05 <= delay <= 0.4

    def test_monotone_attempt_count_and_final_raise(self):
        sleeps = []
        policy = RetryPolicy(
            max_attempts=4, base=0.01, cap=0.05, seed=0, sleep=sleeps.append
        )
        attempts = []

        def always_fails():
            attempts.append(len(attempts) + 1)
            raise ConnectionError("down")

        with pytest.raises(ConnectionError):
            policy.call(always_fails)
        assert attempts == [1, 2, 3, 4]
        assert len(sleeps) == 3
        assert all(0.01 <= s <= 0.05 for s in sleeps)

    def test_succeeds_mid_sequence(self):
        policy = RetryPolicy(max_attempts=5, base=0.0, cap=0.0, sleep=lambda s: None)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise ValueError("transient")
            return "ok"

        assert policy.call(flaky) == "ok"
        assert calls["n"] == 3

    def test_non_retryable_raises_immediately(self):
        policy = RetryPolicy(
            max_attempts=5, retry_on=ConnectionError, sleep=lambda s: None
        )
        calls = {"n": 0}

        def boom():
            calls["n"] += 1
            raise KeyError("not transient")

        with pytest.raises(KeyError):
            policy.call(boom)
        assert calls["n"] == 1

    def test_retry_after_hint_raises_delay_capped(self):
        sleeps = []
        policy = RetryPolicy(
            max_attempts=2, base=0.01, cap=0.3, seed=0, sleep=sleeps.append
        )

        class Hinted(RuntimeError):
            retry_after = 0.2

        with pytest.raises(Hinted):
            policy.call(lambda: (_ for _ in ()).throw(Hinted()))
        assert len(sleeps) == 1
        assert 0.2 <= sleeps[0] <= 0.3

    def test_deadline_stops_retrying_without_sleeping(self):
        clock = FakeClock()
        deadline = Deadline(0.005, clock=clock)
        sleeps = []
        policy = RetryPolicy(
            max_attempts=5, base=0.05, cap=0.1, seed=0, sleep=sleeps.append
        )
        calls = {"n": 0}

        def fails():
            calls["n"] += 1
            raise ConnectionError("down")

        with pytest.raises(ConnectionError):
            policy.call(fails, deadline=deadline)
        assert calls["n"] == 1  # first backoff would outlive the budget
        assert sleeps == []

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="base"):
            RetryPolicy(base=0.5, cap=0.1)


# ----------------------------------------------------------------------
# CircuitBreaker — the full state-transition table
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def make(self, clock, **kwargs):
        events = []
        defaults = dict(
            window=4,
            failure_threshold=0.5,
            min_samples=4,
            reset_timeout=1.0,
            clock=clock,
            on_state_change=lambda old, new: events.append((old, new)),
        )
        defaults.update(kwargs)
        return CircuitBreaker(**defaults), events

    def test_starts_closed_and_allows(self):
        breaker, _ = self.make(FakeClock())
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_stays_closed_below_volume_floor(self):
        breaker, events = self.make(FakeClock())
        for _ in range(3):  # min_samples=4: three failures are not enough
            breaker.record_failure()
        assert breaker.state == CLOSED
        assert events == []

    def test_trips_open_at_failure_rate(self):
        breaker, events = self.make(FakeClock())
        for outcome in (True, False, True, False):
            (breaker.record_success if outcome else breaker.record_failure)()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.retry_after() == pytest.approx(1.0)
        assert events == [(CLOSED, OPEN)]

    def test_open_half_opens_after_reset_timeout(self):
        clock = FakeClock()
        breaker, events = self.make(clock)
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(0.5)
        assert not breaker.allow()
        clock.advance(0.6)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # reserves the single probe
        assert not breaker.allow()  # probe budget spent
        assert events == [(CLOSED, OPEN), (OPEN, HALF_OPEN)]

    def test_half_open_probe_success_closes_and_clears_window(self):
        clock = FakeClock()
        breaker, events = self.make(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.failure_rate() == 0.0
        assert events[-1] == (HALF_OPEN, CLOSED)

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker, events = self.make(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.retry_after() == pytest.approx(1.0)
        assert events == [
            (CLOSED, OPEN), (OPEN, HALF_OPEN), (HALF_OPEN, OPEN),
        ]

    def test_multiple_probes_required_when_configured(self):
        clock = FakeClock()
        breaker, _ = self.make(clock, half_open_probes=2)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()
        breaker.record_success()
        assert breaker.state == HALF_OPEN  # one success is not enough
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_cancel_returns_probe_slot(self):
        clock = FakeClock()
        breaker, _ = self.make(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow()
        breaker.cancel()
        assert breaker.allow()  # slot was returned

    def test_call_wrapper_guards_and_records(self):
        clock = FakeClock()
        breaker, _ = self.make(clock)
        for _ in range(4):
            with pytest.raises(RuntimeError, match="down"):
                breaker.call(lambda: (_ for _ in ()).throw(RuntimeError("down")))
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.call(lambda: "unreachable")
        assert excinfo.value.retry_after == pytest.approx(1.0)
        clock.advance(1.1)
        assert breaker.call(lambda: "ok") == "ok"
        assert breaker.state == CLOSED

    def test_reset_forces_closed(self):
        breaker, _ = self.make(FakeClock())
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == OPEN
        breaker.reset()
        assert breaker.state == CLOSED
        assert breaker.allow()


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_after_and_count_slice_hits_deterministically(self):
        sleeps = []
        plan = FaultPlan(sleep=sleeps.append)
        plan.add("site", "latency", after=1, count=2, latency_s=0.01)
        for _ in range(5):
            plan.fire("site")
        assert sleeps == [0.01, 0.01]  # hits 1 and 2 only
        assert plan.hits("site") == 5

    def test_error_rule_raises_injected_fault(self):
        plan = FaultPlan()
        plan.add("x", "error", message="kaboom")
        with pytest.raises(InjectedFault, match="kaboom") as excinfo:
            plan.fire("x")
        assert excinfo.value.site == "x"

    def test_disabled_plan_is_inert_but_counts_hits(self):
        plan = FaultPlan()
        plan.add("x", "error")
        plan.enabled = False
        plan.fire("x")
        assert plan.hits("x") == 1

    def test_clear_disarms_rules(self):
        plan = FaultPlan()
        plan.add("x", "error")
        plan.clear()
        plan.fire("x")  # no raise

    def test_probability_stream_is_seeded(self):
        def outcomes(seed):
            plan = FaultPlan(seed=seed)
            plan.add("x", "error", probability=0.5)
            fired = []
            for _ in range(20):
                try:
                    plan.fire("x")
                    fired.append(False)
                except InjectedFault:
                    fired.append(True)
            return fired

        assert outcomes(7) == outcomes(7)
        assert outcomes(7) != outcomes(8)

    def test_corrupt_artifact_truncates_and_bumps_mtime(self, tmp_path):
        target = tmp_path / "artifact.json"
        target.write_text(json.dumps({"a": list(range(50))}))
        before = os.stat(target).st_mtime_ns
        plan = FaultPlan()
        plan.add(SITE_REGISTRY_STAT, "corrupt_artifact", count=1)
        plan.fire(SITE_REGISTRY_STAT, path=target)
        with pytest.raises(json.JSONDecodeError):
            json.loads(target.read_text())
        assert os.stat(target).st_mtime_ns > before

    def test_clock_skew_shifts_mtime_only(self, tmp_path):
        target = tmp_path / "artifact.json"
        target.write_text("{}")
        before = os.stat(target).st_mtime_ns
        plan = FaultPlan()
        plan.add("s", "clock_skew", skew_s=100.0, count=1)
        plan.fire("s", path=target)
        assert target.read_text() == "{}"
        assert os.stat(target).st_mtime_ns == before + 100 * 1_000_000_000

    def test_file_fault_without_path_is_an_error(self):
        plan = FaultPlan()
        plan.add("s", "corrupt_artifact")
        with pytest.raises(ValueError, match="path"):
            plan.fire("s")

    def test_rule_validation(self):
        with pytest.raises(ValueError, match="kind"):
            FaultRule(site="s", kind="meteor_strike")
        with pytest.raises(ValueError, match="probability"):
            FaultRule(site="s", kind="latency", probability=1.5)

    def test_hook_fires_site(self):
        plan = FaultPlan()
        hook = plan.hook("driver.inject")
        hook()
        assert plan.hits("driver.inject") == 1


# ----------------------------------------------------------------------
# Satellite: atomic save_model
# ----------------------------------------------------------------------


class TestAtomicSave:
    def test_no_temp_files_left_behind(self, tiny_model, tmp_path):
        model, _ = tiny_model
        save_model(model, tmp_path / "m.json")
        # The artifact plus its sha256 sidecar — nothing else (no .tmp).
        leftovers = [
            p
            for p in tmp_path.iterdir()
            if p.name not in ("m.json", "m.json.sha256")
        ]
        assert leftovers == []

    def test_failed_save_cleans_up_and_keeps_old_artifact(
        self, tiny_model, tmp_path
    ):
        model, _ = tiny_model
        path = tmp_path / "m.json"
        save_model(model, path)
        good = path.read_text()
        with pytest.raises(ValueError, match="fitted"):
            save_model(NeuralWorkloadModel(), path)  # unfitted → refuses
        assert path.read_text() == good
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "m.json",
            "m.json.sha256",
        ]

    def test_concurrent_saves_never_expose_truncated_artifact(
        self, tiny_model, tmp_path
    ):
        """The regression: save + hot-reload get() must never see torn JSON."""
        model, x = tiny_model
        path = tmp_path / "m.json"
        save_model(model, path)
        registry = ModelRegistry(tmp_path)
        stop = threading.Event()
        writer_error = []

        def writer():
            while not stop.is_set():
                try:
                    save_model(model, path)
                    bump_mtime(path, seconds=1)
                except Exception as exc:  # noqa: BLE001 - reported below
                    writer_error.append(exc)
                    return

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            deadline = time.monotonic() + 1.5
            reads = 0
            while time.monotonic() < deadline:
                entry = registry.get_entry("m")  # raises on a torn artifact
                assert entry.model.predict(x[:1]).shape == (1, 5)
                reads += 1
        finally:
            stop.set()
            thread.join(5.0)
        assert not writer_error
        assert reads > 0
        load_model(path)  # final artifact is whole


# ----------------------------------------------------------------------
# Satellite: MicroBatcher close semantics
# ----------------------------------------------------------------------


class TestBatcherClose:
    def test_queued_futures_fail_fast_instead_of_blocking(self):
        release = threading.Event()
        entered = threading.Event()

        def slow_predict(batch):
            entered.set()
            release.wait(2.0)
            return np.zeros((batch.shape[0], 5))

        mb = MicroBatcher(slow_predict, max_batch_size=1, max_wait_ms=0.0)
        first = mb.submit([1.0, 2.0, 3.0, 4.0])
        assert entered.wait(2.0)  # worker is inside predict_fn with batch=[first]
        queued = [mb.submit([float(i), 0.0, 0.0, 0.0]) for i in range(3)]
        started = time.monotonic()
        mb.close(timeout=0.05)  # worker is wedged; close must still drain
        for future in queued:
            with pytest.raises(BatcherClosedError):
                future.result(timeout=0.2)
        assert time.monotonic() - started < 1.0  # failed fast, no 2 s waits
        release.set()
        assert first.result(timeout=2.0).shape == (5,)  # in-flight batch completes

    def test_submit_after_close_raises_batcher_closed(self):
        mb = MicroBatcher(lambda b: np.zeros((b.shape[0], 5)))
        mb.close()
        with pytest.raises(BatcherClosedError, match="closed"):
            mb.submit([1.0, 2.0, 3.0, 4.0])

    def test_close_is_idempotent(self):
        mb = MicroBatcher(lambda b: np.zeros((b.shape[0], 5)))
        mb.close()
        mb.close()

    def test_latency_fault_at_flush_site(self):
        sleeps = []
        plan = FaultPlan(sleep=sleeps.append)
        plan.add(SITE_BATCHER_FLUSH, "latency", latency_s=0.05, count=1)
        with MicroBatcher(
            lambda b: np.zeros((b.shape[0], 5)), max_wait_ms=0.5, faults=plan
        ) as mb:
            mb.predict([1.0, 2.0, 3.0, 4.0], timeout=2.0)
        assert sleeps == [0.05]

    def test_error_fault_at_flush_site_fails_the_batch(self):
        plan = FaultPlan()
        plan.add(SITE_BATCHER_FLUSH, "error", count=1)
        with MicroBatcher(
            lambda b: np.zeros((b.shape[0], 5)), max_wait_ms=0.5, faults=plan
        ) as mb:
            with pytest.raises(InjectedFault):
                mb.predict([1.0, 2.0, 3.0, 4.0], timeout=2.0)
            # next batch is clean again
            assert mb.predict([1.0, 2.0, 3.0, 4.0], timeout=2.0).shape == (5,)


# ----------------------------------------------------------------------
# Satellite: training divergence guard
# ----------------------------------------------------------------------


class TestTrainingDivergence:
    def diverging_trainer(self, **kwargs):
        net = MLP([2, 6, 1], seed=0)
        return Trainer(
            net,
            optimizer=get_optimizer("sgd", learning_rate=1e12),
            seed=0,
            **kwargs,
        )

    def data(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, size=(24, 2))
        return x, x[:, :1] + 0.5 * x[:, 1:2]

    def test_nan_guard_raises_naming_the_epoch(self):
        trainer = self.diverging_trainer()
        x, y = self.data()
        with pytest.raises(TrainingDivergedError, match="epoch") as excinfo:
            trainer.fit(x, y, max_epochs=50)
        assert excinfo.value.epoch >= 0
        assert not math.isfinite(excinfo.value.loss)

    def test_nan_guard_off_preserves_old_behavior(self):
        trainer = self.diverging_trainer(nan_guard=False)
        x, y = self.data()
        result = trainer.fit(x, y, max_epochs=50)
        assert any(not math.isfinite(v) for v in result.history.train_loss)

    def test_healthy_training_is_untouched(self):
        net = MLP([2, 6, 1], seed=0)
        trainer = Trainer(net, optimizer=get_optimizer("sgd", learning_rate=0.05))
        x, y = self.data()
        result = trainer.fit(x, y, max_epochs=20)
        assert all(math.isfinite(v) for v in result.history.train_loss)


# ----------------------------------------------------------------------
# Degradation building blocks
# ----------------------------------------------------------------------


class TestSurrogateAndFallback:
    def test_surrogate_is_deterministic_and_well_shaped(self, tiny_model):
        model, x = tiny_model
        surrogate = fit_linear_surrogate(model, seed=3)
        again = fit_linear_surrogate(model, seed=3)
        np.testing.assert_allclose(surrogate.coefficients_, again.coefficients_)
        out = surrogate.predict(x[:7])
        assert out.shape == (7, 5)
        assert np.all(np.isfinite(out))

    def test_surrogate_tracks_the_mlp_roughly(self, tiny_model):
        """A linear distillation cannot match the MLP, but it must correlate."""
        model, x = tiny_model
        surrogate = fit_linear_surrogate(model)
        mlp_out = model.predict(x)
        sur_out = surrogate.predict(x)
        # Throughput (column 4) spans hundreds of units; the surrogate
        # should explain the bulk of its variance over the training region.
        corr = np.corrcoef(mlp_out[:, 4], sur_out[:, 4])[0, 1]
        assert corr > 0.6

    def test_fallback_chain_tries_tiers_in_order(self):
        def broken(x):
            raise RuntimeError("primary down")

        chain = FallbackChain(
            [("mlp", broken), ("surrogate", lambda x: np.ones((len(x), 5)))]
        )
        result = chain.predict(np.zeros((3, 4)))
        assert result.degraded
        assert result.source == "surrogate"
        assert result.tier == 1
        assert result.outputs.shape == (3, 5)

    def test_fallback_chain_primary_answer_is_not_degraded(self):
        chain = FallbackChain([("mlp", lambda x: np.zeros((len(x), 5)))])
        result = chain.predict(np.zeros((2, 4)))
        assert not result.degraded
        assert result.source == "mlp"

    def test_fallback_chain_raises_primary_error_when_all_fail(self):
        def broken_a(x):
            raise RuntimeError("root cause")

        def broken_b(x):
            raise ValueError("secondary noise")

        chain = FallbackChain([("a", broken_a), ("b", broken_b)])
        with pytest.raises(RuntimeError, match="root cause"):
            chain.predict(np.zeros((1, 4)))

    def test_health_monitor_state_machine(self):
        monitor = HealthMonitor()
        assert monitor.status == HEALTHY
        assert monitor.update({"m": "open"}) == DEGRADED
        assert monitor.update({"m": "half_open"}) == DEGRADED
        assert monitor.update({}, servable=False) == UNHEALTHY
        assert monitor.update({"m": "closed"}) == HEALTHY
        moves = [(old, new) for old, new, _ in monitor.transitions]
        assert moves == [
            (HEALTHY, DEGRADED), (DEGRADED, UNHEALTHY), (UNHEALTHY, HEALTHY),
        ]

    def test_health_monitor_shedding_is_degraded(self):
        monitor = HealthMonitor()
        assert monitor.update({}, shedding=True) == DEGRADED


# ----------------------------------------------------------------------
# Engine-level degradation (no HTTP)
# ----------------------------------------------------------------------


@pytest.fixture()
def chaos_engine(tiny_model, tmp_path):
    model, x = tiny_model
    save_model(model, tmp_path / "paper.json")
    clock = FakeClock()
    plan = FaultPlan()
    engine = ServingEngine(
        tmp_path,
        faults=plan,
        clock=clock,
        breaker_min_samples=2,
        breaker_window=4,
        breaker_reset_timeout=1.0,
        max_wait_ms=0.5,
    )
    yield engine, plan, clock, model, x, tmp_path
    engine.close()


class TestEngineDegradation:
    def test_corrupt_artifact_degrades_then_recovers(self, chaos_engine):
        engine, plan, clock, model, x, tmp_path = chaos_engine
        result = engine.predict_detailed("paper", x[:3])
        assert not result.degraded and result.source == "mlp"
        assert engine.health()["status"] == HEALTHY

        plan.add(SITE_REGISTRY_STAT, "corrupt_artifact", count=1)
        for i in range(3):
            result = engine.predict_detailed("paper", x[i : i + 1])
            assert result.degraded
            assert result.source == "surrogate:linear"
            assert result.outputs.shape == (1, 5)
        health = engine.health()
        assert health["status"] == DEGRADED
        assert health["breakers"]["paper"] == OPEN
        assert engine.metrics.degraded_requests_total >= 3
        assert engine.metrics.breaker_states()["paper"] == OPEN

        # faults clear, a good artifact is redeployed, the reset timeout
        # lapses: the half-open probe must close the breaker again.
        plan.clear()
        save_model(model, tmp_path / "paper.json")
        bump_mtime(tmp_path / "paper.json")
        clock.advance(5.0)
        result = engine.predict_detailed("paper", x[:3])
        assert not result.degraded and result.source == "mlp"
        assert engine.health()["status"] == HEALTHY
        assert engine.metrics.breaker_states()["paper"] == CLOSED

    def test_without_fallback_breaker_opens_and_refuses(
        self, tiny_model, tmp_path
    ):
        model, x = tiny_model
        save_model(model, tmp_path / "paper.json")
        clock = FakeClock()
        with ServingEngine(
            tmp_path,
            fallback=False,
            clock=clock,
            breaker_min_samples=2,
            breaker_reset_timeout=1.0,
            batching=False,
        ) as engine:
            engine.predict("paper", x[:1])
            (tmp_path / "paper.json").write_text("{torn")
            bump_mtime(tmp_path / "paper.json")
            # one success + one failure fills the min_samples=2 window at a
            # 50% failure rate, so a single torn load trips the breaker
            with pytest.raises(ValueError):
                engine.predict("paper", x[:1])
            with pytest.raises(CircuitOpenError) as excinfo:
                engine.predict("paper", x[:1])
            assert excinfo.value.retry_after > 0

    def test_hard_bound_sheds_with_retry_after(self, chaos_engine):
        engine, _, _, _, x, _ = chaos_engine
        engine.predict("paper", x[:1])
        engine.shed_inflight = 0  # every request is now over the bound
        with pytest.raises(OverloadedError) as excinfo:
            engine.predict("paper", x[:1])
        assert excinfo.value.retry_after > 0
        assert engine.metrics.shed_requests_total == 1
        engine.shed_inflight = None
        assert engine.predict("paper", x[:1]).shape == (1, 5)

    def test_soft_bound_answers_from_surrogate(self, chaos_engine):
        engine, _, _, _, x, _ = chaos_engine
        engine.predict("paper", x[:1])  # registers the surrogate
        engine.max_inflight = 0
        result = engine.predict_detailed("paper", x[1:2])
        assert result.degraded
        assert result.source == "surrogate:linear"
        engine.max_inflight = None

    def test_expired_deadline_raises(self, chaos_engine):
        engine, _, _, _, x, _ = chaos_engine
        engine.predict("paper", x[:1])
        clock = FakeClock()
        deadline = Deadline(0.001, clock=clock)
        clock.advance(1.0)
        with pytest.raises(DeadlineExceeded):
            engine.predict("paper", x[1:2], deadline=deadline)

    def test_unknown_model_is_still_a_key_error(self, chaos_engine):
        engine, _, _, _, x, _ = chaos_engine
        for _ in range(4):
            with pytest.raises(KeyError):
                engine.predict("nope", x[:1])
        # caller errors must not trip the breaker for that name
        assert engine.health()["breakers"]["nope"] == CLOSED


# ----------------------------------------------------------------------
# Satellite: driver fault hook
# ----------------------------------------------------------------------


class TestDriverFaultInjection:
    def test_driver_site_is_hit_per_transaction(self):
        plan = FaultPlan()
        workload = ThreeTierWorkload(
            warmup=0.2, duration=1.0, seed=7,
            fault_hook=plan.hook(SITE_DRIVER_INJECT),
        )
        config = WorkloadConfig(
            injection_rate=200, default_threads=8, mfg_threads=8, web_threads=8
        )
        metrics = workload.run(config)
        assert plan.hits(SITE_DRIVER_INJECT) == metrics.injected
        assert metrics.injected > 0

    def test_error_fault_crashes_the_injection_tier(self):
        plan = FaultPlan()
        plan.add(SITE_DRIVER_INJECT, "error", after=20)
        workload = ThreeTierWorkload(
            warmup=0.2, duration=1.0, seed=7,
            fault_hook=plan.hook(SITE_DRIVER_INJECT),
        )
        config = WorkloadConfig(
            injection_rate=200, default_threads=8, mfg_threads=8, web_threads=8
        )
        with pytest.raises(InjectedFault):
            workload.run(config)


# ----------------------------------------------------------------------
# The chaos acceptance test: HTTP server under an injected FaultPlan
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def chaos_server(tiny_model, tmp_path_factory):
    model, x = tiny_model
    directory = tmp_path_factory.mktemp("chaos-models")
    save_model(model, directory / "paper.json")
    clock = FakeClock()
    plan = FaultPlan()
    engine = ServingEngine(
        directory,
        faults=plan,
        clock=clock,
        breaker_min_samples=2,
        breaker_window=4,
        breaker_reset_timeout=1.0,
        max_wait_ms=0.5,
    )
    server = create_server(engine, port=0)
    server.serve_background()
    yield {
        "client": ServingClient(server.url, timeout=5.0),
        "engine": engine,
        "plan": plan,
        "clock": clock,
        "model": model,
        "x": x,
        "dir": directory,
    }
    server.shutdown()
    server.server_close()


def _config_from_row(row):
    return {name: float(v) for name, v in zip(INPUT_NAMES, row)}


class TestHTTPChaos:
    def test_degraded_serving_and_full_recovery_under_fault_plan(
        self, chaos_server
    ):
        client = chaos_server["client"]
        plan = chaos_server["plan"]
        clock = chaos_server["clock"]
        x = chaos_server["x"]

        # 1. Baseline: healthy, primary path, no degradation flag.
        body = client.predict_detailed("paper", _config_from_row(x[0]))
        assert body["degraded"] is False
        assert body["source"] == "mlp"
        assert client.health()["status"] == HEALTHY

        # 2. Latency spike alone (<= 0.5 s): answers stay healthy 2xx.
        plan.add(SITE_BATCHER_FLUSH, "latency", latency_s=0.05, count=2)
        body = client.predict_detailed("paper", _config_from_row(x[1]))
        assert body["degraded"] is False

        # 3. The active artifact is corrupted mid-serving: every /predict
        #    keeps answering 2xx from the fallback chain, flagged degraded.
        plan.add(SITE_REGISTRY_STAT, "corrupt_artifact", count=1)
        for i in range(3):
            body = client.predict_detailed("paper", _config_from_row(x[2 + i]))
            assert body["degraded"] is True
            assert body["source"] == "surrogate:linear"
            assert set(body["prediction"]) == {
                "manufacturing_rt", "dealer_purchase_rt", "dealer_manage_rt",
                "dealer_browse_rt", "effective_tps",
            }

        # 4. /healthz reports degraded; metrics expose the new series.
        health = client.health()
        assert health["status"] == DEGRADED
        assert health["breakers"]["paper"] == OPEN
        snapshot = client.metrics()
        assert snapshot["degraded_requests_total"] >= 3
        assert snapshot["breaker_states"]["paper"] == OPEN
        text = client.metrics_text()
        assert "repro_serving_shed_requests_total" in text
        assert 'repro_serving_breaker_state{model="paper"} 2' in text

        # 5. Faults clear and a good artifact is redeployed; once the
        #    reset timeout lapses the half-open probe closes the breaker.
        plan.clear()
        save_model(chaos_server["model"], chaos_server["dir"] / "paper.json")
        bump_mtime(chaos_server["dir"] / "paper.json")
        clock.advance(5.0)
        body = client.predict_detailed("paper", _config_from_row(x[0]))
        assert body["degraded"] is False
        assert body["source"] == "mlp"
        assert client.health()["status"] == HEALTHY
        assert client.metrics()["breaker_states"]["paper"] == CLOSED
        assert 'repro_serving_breaker_state{model="paper"} 0' in client.metrics_text()

    def test_shedding_returns_503_with_retry_after(self, chaos_server):
        client = chaos_server["client"]
        engine = chaos_server["engine"]
        client.predict("paper", _config_from_row(chaos_server["x"][0]))
        engine.shed_inflight = 0
        try:
            with pytest.raises(ServingError) as excinfo:
                client.predict("paper", _config_from_row(chaos_server["x"][0]))
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after is not None
            assert excinfo.value.retry_after >= 1
        finally:
            engine.shed_inflight = None
        assert client.metrics()["shed_requests_total"] >= 1

    def test_retrying_client_backs_off_and_then_succeeds(self, chaos_server):
        engine = chaos_server["engine"]
        sleeps = []
        retry_client = ServingClient(
            chaos_server["client"].base_url,
            timeout=5.0,
            retry=RetryPolicy(
                max_attempts=3, base=0.01, cap=0.05, seed=0, sleep=sleeps.append
            ),
        )
        config = _config_from_row(chaos_server["x"][0])
        engine.shed_inflight = 0
        try:
            with pytest.raises(ServingError) as excinfo:
                retry_client.predict("paper", config)
            assert excinfo.value.status == 503
        finally:
            engine.shed_inflight = None
        assert len(sleeps) == 2  # three attempts, two backoffs
        assert all(0.01 <= s <= 0.05 for s in sleeps)
        assert retry_client.predict("paper", config)  # recovers once unshed

    def test_deadline_header_turns_slow_batcher_into_504(self, chaos_server):
        client = chaos_server["client"]
        plan = chaos_server["plan"]
        plan.add(SITE_BATCHER_FLUSH, "latency", latency_s=0.3, count=1)
        fresh = {
            name: value + 0.625
            for name, value in _config_from_row(chaos_server["x"][9]).items()
        }  # unseen config: must miss the cache and hit the slow batcher
        with pytest.raises(ServingError) as excinfo:
            client.predict("paper", fresh, deadline_s=0.05)
        assert excinfo.value.status == 504
