"""RBF networks, k-means, and the logarithmic extrapolation network."""

import numpy as np
import pytest

from repro.nn.logarithmic import LogarithmicNetwork
from repro.nn.mlp import MLP
from repro.nn.optimizers import Adam
from repro.nn.rbf import RBFNetwork, kmeans
from repro.nn.training import Trainer


class TestKMeans:
    def test_finds_obvious_clusters(self):
        rng = np.random.default_rng(0)
        a = rng.normal(loc=[0, 0], scale=0.1, size=(30, 2))
        b = rng.normal(loc=[5, 5], scale=0.1, size=(30, 2))
        centers = kmeans(np.vstack([a, b]), 2, np.random.default_rng(1))
        centers = centers[np.argsort(centers[:, 0])]
        np.testing.assert_allclose(centers[0], [0, 0], atol=0.2)
        np.testing.assert_allclose(centers[1], [5, 5], atol=0.2)

    def test_k_equals_n_returns_points(self):
        x = np.array([[0.0], [1.0], [2.0]])
        centers = kmeans(x, 3, np.random.default_rng(0))
        assert sorted(centers.ravel().tolist()) == [0.0, 1.0, 2.0]

    def test_k_larger_than_n_rejected(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((2, 1)), 3, np.random.default_rng(0))

    def test_duplicate_points_keep_k_centers(self):
        x = np.zeros((10, 2))
        x[0] = [1.0, 1.0]
        centers = kmeans(x, 2, np.random.default_rng(0))
        assert centers.shape == (2, 2)


class TestRBFNetwork:
    def test_interpolates_training_points(self, tiny_regression_data):
        x, y = tiny_regression_data
        net = RBFNetwork(n_centers=30, ridge=1e-10, seed=0).fit(x, y)
        mse = float(np.mean((net.predict(x) - y) ** 2))
        assert mse < 1e-3

    def test_multi_output(self, tiny_regression_data):
        x, y = tiny_regression_data
        net = RBFNetwork(n_centers=10, seed=0).fit(x, y)
        assert net.predict(x).shape == y.shape

    def test_centers_capped_at_sample_count(self):
        x = np.array([[0.0], [1.0], [2.0]])
        y = np.array([0.0, 1.0, 4.0])
        net = RBFNetwork(n_centers=50, seed=0).fit(x, y)
        assert net.centers_.shape[0] == 3

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RBFNetwork().predict(np.zeros((1, 2)))

    def test_explicit_width_used(self, tiny_regression_data):
        x, y = tiny_regression_data
        net = RBFNetwork(n_centers=5, width=2.5, seed=0).fit(x, y)
        assert net.width_ == 2.5

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RBFNetwork(n_centers=0)
        with pytest.raises(ValueError):
            RBFNetwork(width=0.0)
        with pytest.raises(ValueError):
            RBFNetwork(ridge=-1.0)

    def test_sample_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RBFNetwork().fit(np.zeros((3, 2)), np.zeros((4, 1)))


class TestLogarithmicNetwork:
    def test_fits_logarithmic_function(self):
        x = np.linspace(1.0, 50.0, 60).reshape(-1, 1)
        y = np.log(x)
        net = LogarithmicNetwork(1, 1, seed=0).fit(x, y, max_epochs=1500)
        mse = float(np.mean((net.predict(x) - y) ** 2))
        assert mse < 0.05

    def test_extrapolates_beyond_training_range(self):
        """The paper's stated MLP weakness and the ref-[23] remedy.

        A logistic MLP saturates outside its training range; the
        logarithmic network keeps growing.  Train both on an unbounded
        logarithmic curve over [1, 100] and compare at 400.
        """
        rng = np.random.default_rng(0)
        x = rng.uniform(1.0, 100.0, size=(80, 1))
        y = 3.0 * np.log1p(x)

        log_net = LogarithmicNetwork(
            1, 1, include_linear_features=False, seed=0
        ).fit(x, y, max_epochs=2500)

        mlp = MLP([1, 16, 1], seed=0)
        scaled_x = (x - x.mean()) / x.std()
        Trainer(mlp, optimizer=Adam(learning_rate=0.01), seed=0).fit(
            scaled_x, y, max_epochs=2500
        )

        far = np.array([[400.0]])
        truth = 3.0 * np.log1p(400.0)
        log_error = abs(float(log_net.predict(far)[0, 0]) - truth)
        mlp_error = abs(
            float(mlp.predict((far - x.mean()) / x.std())[0, 0]) - truth
        )
        assert log_error < mlp_error

    def test_predict_shape(self):
        x = np.abs(np.random.default_rng(0).normal(size=(20, 3))) + 1.0
        y = np.column_stack([x.sum(axis=1), x.prod(axis=1) ** 0.25])
        net = LogarithmicNetwork(3, 2, seed=0).fit(x, y, max_epochs=50)
        assert net.predict(x).shape == (20, 2)

    def test_handles_nonpositive_inputs_via_shift(self):
        x = np.linspace(-5.0, 5.0, 40).reshape(-1, 1)
        y = x**2
        net = LogarithmicNetwork(1, 1, seed=0).fit(x, y, max_epochs=200)
        assert np.all(np.isfinite(net.predict(x)))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LogarithmicNetwork(1, 1).predict(np.zeros((1, 1)))

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            LogarithmicNetwork(0, 1)
        net = LogarithmicNetwork(2, 1, seed=0).fit(
            np.ones((5, 2)), np.ones((5, 1)), max_epochs=5
        )
        with pytest.raises(ValueError):
            net.predict(np.ones((2, 3)))
