"""Pinball loss, quantile models, adaptive sampling, traces, residuals."""

import numpy as np
import pytest

from repro.model_selection.residuals import residual_report
from repro.models.quantile import QuantileWorkloadModel, tail_targets
from repro.nn.losses import Pinball
from repro.workload.adaptive import AdaptiveSampler
from repro.workload.analytic import AnalyticWorkloadModel
from repro.workload.appserver import AppServer
from repro.workload.database import Database
from repro.workload.des import Simulator
from repro.workload.driver import LoadDriver
from repro.workload.rng import StreamRegistry
from repro.workload.sampler import ConfigSpace, ParameterRange
from repro.workload.service import ThreeTierWorkload, WorkloadConfig
from repro.workload.trace import ArrivalTrace, TraceDriver, record_trace
from repro.workload.transactions import standard_mix


class TestPinball:
    def test_zero_at_exact_prediction(self):
        y = np.array([[1.0], [2.0]])
        assert Pinball(0.9).value(y, y) == 0.0

    def test_asymmetric_penalties(self):
        loss = Pinball(0.9)
        actual = np.array([[1.0]])
        under = loss.value(np.array([[0.5]]), actual)  # under-prediction
        over = loss.value(np.array([[1.5]]), actual)  # over-prediction
        # q = 0.9 punishes under-prediction 9x more than over-prediction.
        assert under == pytest.approx(9 * over)

    def test_gradient_matches_finite_difference(self, rng):
        loss = Pinball(0.75)
        predicted = rng.normal(size=(5, 2))
        actual = rng.normal(size=(5, 2))
        analytic = loss.gradient(predicted, actual)
        eps = 1e-6
        numeric = np.zeros_like(predicted)
        for index in np.ndindex(predicted.shape):
            bump = predicted.copy()
            bump[index] += eps
            up = loss.value(bump, actual)
            bump[index] -= 2 * eps
            down = loss.value(bump, actual)
            numeric[index] = (up - down) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-9)

    def test_constant_fit_converges_to_quantile(self):
        """The defining property: minimizing pinball predicts the quantile."""
        from repro.nn.mlp import MLP
        from repro.nn.optimizers import Adam
        from repro.nn.training import Trainer

        rng = np.random.default_rng(0)
        x = np.zeros((500, 1))
        y = rng.exponential(1.0, size=(500, 1))
        net = MLP([1, 1], seed=0)
        Trainer(net, loss=Pinball(0.9), optimizer=Adam(0.05), seed=0).fit(
            x, y, max_epochs=2500
        )
        predicted = float(net.predict(np.zeros((1, 1)))[0, 0])
        assert predicted == pytest.approx(float(np.quantile(y, 0.9)), rel=0.08)

    def test_quantile_bounds(self):
        with pytest.raises(ValueError):
            Pinball(0.0)
        with pytest.raises(ValueError):
            Pinball(1.0)


class TestQuantileModel:
    @pytest.fixture(scope="class")
    def tail_data(self):
        workload = ThreeTierWorkload(warmup=0.5, duration=2.5, seed=3)
        configs = [
            WorkloadConfig(rate, d, 16, w)
            for rate in (300, 400)
            for d in (10, 16)
            for w in (16, 19, 22)
        ]
        metrics = [workload.run(c) for c in configs]
        x = np.vstack([c.as_vector() for c in configs])
        return x, metrics

    def test_tail_targets_shape_and_order(self, tail_data):
        x, metrics = tail_data
        targets = tail_targets(metrics, percentile=90)
        assert targets.shape == (len(metrics), 5)
        # p90 >= p50 for every response-time column.
        p50 = tail_targets(metrics, percentile=50)
        assert np.all(targets[:, :4] >= p50[:, :4])

    def test_tail_targets_validation(self, tail_data):
        _, metrics = tail_data
        with pytest.raises(ValueError):
            tail_targets(metrics, percentile=75)

    def test_quantile_model_predicts_above_the_mean_model(self, tail_data):
        x, metrics = tail_data
        p90 = tail_targets(metrics, percentile=90)
        model = QuantileWorkloadModel(
            quantile=0.9, hidden=(8,), max_epochs=2000, seed=0
        ).fit(x, p90)
        predicted = model.predict(x)
        means = np.vstack([m.as_vector() for m in metrics])
        # Predicted p90 response times sit above the mean response times
        # for the bulk of the samples.
        above = predicted[:, :4] > means[:, :4]
        assert above.mean() > 0.7

    def test_contract(self, tail_data):
        x, metrics = tail_data
        p90 = tail_targets(metrics, percentile=90)
        model = QuantileWorkloadModel(hidden=(6,), max_epochs=50, seed=0)
        with pytest.raises(RuntimeError):
            model.predict(x)
        model.fit(x, p90)
        assert model.predict(x).shape == p90.shape
        assert model.quantile == 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            QuantileWorkloadModel(quantile=1.5)
        with pytest.raises(ValueError):
            QuantileWorkloadModel(hidden=())


SPACE = ConfigSpace(
    [
        ParameterRange("injection_rate", 400, 600),
        ParameterRange("default_threads", 2, 22),
        ParameterRange("mfg_threads", 12, 20),
        ParameterRange("web_threads", 14, 23),
    ]
)


class TestAdaptiveSampler:
    def test_budget_respected_and_rounds_recorded(self):
        sampler = AdaptiveSampler(
            AnalyticWorkloadModel(),
            SPACE,
            n_initial=8,
            batch_size=3,
            n_candidates=40,
            seed=0,
        )
        result = sampler.collect(budget=14)
        assert 8 <= len(result.dataset) <= 14
        assert len(result.rounds) == 2
        assert result.rounds[-1].n_samples_after == len(result.dataset)
        assert "round" in result.to_text()

    def test_acquired_points_are_novel(self):
        sampler = AdaptiveSampler(
            AnalyticWorkloadModel(),
            SPACE,
            n_initial=8,
            batch_size=4,
            n_candidates=60,
            seed=1,
        )
        result = sampler.collect(budget=12)
        rows = [tuple(r) for r in result.dataset.x]
        assert len(set(rows)) == len(rows)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveSampler(AnalyticWorkloadModel(), SPACE, n_initial=2)
        with pytest.raises(ValueError):
            AdaptiveSampler(AnalyticWorkloadModel(), SPACE, batch_size=0)
        sampler = AdaptiveSampler(AnalyticWorkloadModel(), SPACE)
        with pytest.raises(ValueError):
            sampler.collect(budget=3)


def _serving_stack(seed=0):
    sim = Simulator()
    streams = StreamRegistry(seed)
    db = Database(sim, connections=10, rng=streams.stream("db"))
    server = AppServer(
        sim,
        db,
        mfg_threads=10,
        web_threads=14,
        default_threads=10,
        rng=streams.stream("svc"),
    )
    return sim, streams, server


class TestTrace:
    def make_trace(self):
        sim, streams, server = _serving_stack()
        driver = LoadDriver(
            sim,
            standard_mix(),
            injection_rate=150,
            handler=server.handle,
            arrival_rng=streams.stream("arr"),
            mix_rng=streams.stream("mix"),
        )
        driver.start()
        sim.run_until(2.0)
        driver.stop()
        return record_trace(driver)

    def test_record_preserves_counts(self):
        trace = self.make_trace()
        assert len(trace) > 100
        assert trace.mean_rate() == pytest.approx(150, rel=0.3)
        assert set(trace.class_counts()) <= {c.name for c in standard_mix()}

    def test_csv_round_trip(self, tmp_path):
        trace = self.make_trace()
        loaded = ArrivalTrace.load_csv(trace.save_csv(tmp_path / "t.csv"))
        assert len(loaded) == len(trace)
        assert loaded.class_counts() == trace.class_counts()
        assert loaded.duration == trace.duration

    def test_replay_injects_identical_arrivals(self):
        trace = self.make_trace()
        sim, streams, server = _serving_stack(seed=9)
        replay = TraceDriver(sim, standard_mix(), trace, server.handle)
        replay.start()
        sim.run_until(trace.duration + 1.0)
        assert replay.injected == len(trace)
        replayed_times = sorted(t.arrived_at for t in replay.transactions)
        original_times = sorted(a.time for a in trace)
        np.testing.assert_allclose(replayed_times, original_times)

    def test_replay_paired_comparison_is_deterministic(self):
        """Replaying the same trace twice gives identical indicators."""
        trace = self.make_trace()

        def run_once():
            sim, streams, server = _serving_stack(seed=5)
            replay = TraceDriver(sim, standard_mix(), trace, server.handle)
            replay.start()
            sim.run_until(trace.duration + 1.0)
            return sorted(
                t.response_time for t in replay.transactions if t.is_complete
            )

        np.testing.assert_allclose(run_once(), run_once())

    def test_unknown_class_rejected(self):
        trace = ArrivalTrace([(0.1, "warp_drive")])
        sim, streams, server = _serving_stack()
        with pytest.raises(ValueError, match="warp_drive"):
            TraceDriver(sim, standard_mix(), trace, server.handle)

    def test_unordered_trace_rejected(self):
        with pytest.raises(ValueError):
            ArrivalTrace([(1.0, "a"), (0.5, "a")])

    def test_mid_run_start_rejected(self):
        # Regression: starting a replay after the clock passed the first
        # arrival used to surface as an opaque negative-delay scheduling
        # error from deep inside the simulator.
        trace = ArrivalTrace([(0.5, "dealer_browse")])
        sim, streams, server = _serving_stack()
        sim.schedule(2.0, lambda: None)
        sim.run_until(2.0)
        replay = TraceDriver(sim, standard_mix(), trace, server.handle)
        with pytest.raises(ValueError, match="clock is already"):
            replay.start()


class TestResiduals:
    def test_unbiased_clean_fit_not_flagged(self, rng):
        actual = rng.normal(loc=10.0, scale=1.0, size=(100, 2))
        predicted = actual + rng.normal(scale=0.1, size=(100, 2))
        report = residual_report(predicted, actual, output_names=["a", "b"])
        assert report.flagged() == []

    def test_bias_detected(self, rng):
        actual = rng.normal(size=(100, 1))
        predicted = actual + 0.5 + rng.normal(scale=0.1, size=(100, 1))
        report = residual_report(predicted, actual, output_names=["x"])
        assert report["x"].biased
        assert "BIASED" in report.to_text()

    def test_heteroscedasticity_detected(self, rng):
        predicted = np.linspace(1.0, 100.0, 200).reshape(-1, 1)
        noise = rng.normal(size=(200, 1)) * predicted * 0.1
        actual = predicted + noise
        report = residual_report(predicted, actual)
        assert report.per_indicator[0].heteroscedastic

    def test_outliers_found(self, rng):
        actual = np.zeros((50, 1))
        predicted = rng.normal(scale=0.1, size=(50, 1))
        predicted[7, 0] = 5.0
        report = residual_report(predicted, actual)
        assert 7 in report.per_indicator[0].outliers

    def test_validation(self):
        with pytest.raises(ValueError):
            residual_report(np.zeros((2, 1)), np.zeros((2, 1)))
        with pytest.raises(ValueError):
            residual_report(np.zeros((5, 1)), np.zeros((5, 2)))
        with pytest.raises(KeyError):
            residual_report(np.zeros((5, 1)), np.ones((5, 1)))["missing"]
