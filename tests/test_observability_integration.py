"""Trace propagation through the real stack: client → HTTP → engine → batcher.

The acceptance path for the observability subsystem: one traced request
must come back as a single trace whose parent/child nesting shows the
batcher queue-wait and flush-execute as separate children of the engine
span, retrievable over ``GET /traces``.  Also covers the satellite
contracts — ``X-Request-Id`` on every response (4xx included), the
Prometheus content type, retry/breaker trace propagation, and lifecycle
cycle spans.
"""

import json
import time
import urllib.request
from urllib.error import HTTPError

import numpy as np
import pytest

from repro.lifecycle import (
    DriftThresholds,
    GateThresholds,
    LifecycleOrchestrator,
    ObservationLog,
    VersionedModelStore,
)
from repro.models.neural import NeuralWorkloadModel
from repro.models.persistence import save_model
from repro.observability import (
    REQUEST_ID_HEADER,
    STATUS_ERROR,
    TRACE_ID_HEADER,
    Tracer,
)
from repro.reliability import RetryPolicy
from repro.serving import ServingClient, ServingEngine, ServingError
from repro.serving.server import create_server
from repro.workload.analytic import AnalyticWorkloadModel
from repro.workload.sampler import (
    ConfigSpace,
    ParameterRange,
    SampleCollector,
    latin_hypercube,
)

GOOD_CONFIG = {
    "injection_rate": 450.0,
    "default_threads": 14.0,
    "mfg_threads": 16.0,
    "web_threads": 18.0,
}


@pytest.fixture(scope="module")
def fitted():
    """A model fitted on a tiny simulated sample set (analytic backend)."""
    space = ConfigSpace(
        [
            ParameterRange("injection_rate", 350, 520),
            ParameterRange("default_threads", 6, 20),
            ParameterRange("mfg_threads", 12, 20),
            ParameterRange("web_threads", 15, 22),
        ]
    )
    dataset = SampleCollector(AnalyticWorkloadModel()).collect(
        latin_hypercube(space, 20, seed=5)
    )
    dataset.y = np.maximum(dataset.y, 1e-3)
    model = NeuralWorkloadModel(
        hidden=(8,), error_threshold=0.05, max_epochs=800, seed=0
    )
    return model.fit(dataset.x, dataset.y), dataset


@pytest.fixture(scope="module")
def traced(fitted, tmp_path_factory):
    """Server and client sharing one tracer, so both halves of every
    trace land in the same buffer the tests (and ``GET /traces``) read."""
    model, _ = fitted
    directory = tmp_path_factory.mktemp("models")
    save_model(model, directory / "paper.json")
    tracer = Tracer(sample_rate=1.0, slow_threshold_s=None, seed=3)
    engine = ServingEngine(directory, max_wait_ms=1.0, tracer=tracer)
    server = create_server(engine, port=0)
    server.serve_background()
    client = ServingClient(server.url, tracer=tracer)
    yield client, tracer, server
    server.shutdown()
    server.server_close()


def wait_for(predicate, timeout=5.0):
    """Poll until ``predicate()`` is truthy (span recording can trail the
    HTTP response by the time it takes the handler to close its span)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        result = predicate()
        if result:
            return result
        time.sleep(0.01)
    return predicate()


def last_full_trace(tracer):
    """Spans of the newest trace that crossed the client/server boundary."""

    def find():
        for trace in tracer.buffer.traces(limit=20):
            names = {s["name"] for s in trace["spans"]}
            if "client.request" in names and "http.request" in names:
                return trace["spans"]
        return None

    spans = wait_for(find)
    assert spans is not None, "no end-to-end trace was recorded"
    return spans


def by_name(spans):
    index = {}
    for span in spans:
        index.setdefault(span["name"], []).append(span)
    return index


class TestEndToEndTrace:
    def test_one_trace_with_nested_pipeline_stages(self, traced):
        client, tracer, _ = traced
        tracer.buffer.clear()
        # A fresh config so the cache misses and the batcher actually runs.
        client.predict("paper", dict(GOOD_CONFIG, injection_rate=430.25))
        spans = last_full_trace(tracer)
        names = by_name(spans)

        # Every stage shares one trace id.
        assert len({s["trace_id"] for s in spans}) == 1

        root = names["client.request"][0]
        assert root["parent_id"] is None
        http = names["http.request"][0]
        parse = names["request.parse"][0]
        predict = names["engine.predict"][0]
        assert parse["parent_id"] == http["span_id"]
        assert predict["parent_id"] == http["span_id"]
        # The server span nests under the client (directly, or under the
        # per-attempt span when a retry policy is configured).
        client_side_ids = {root["span_id"]} | {
            s["span_id"] for s in names.get("client.attempt", [])
        }
        assert http["parent_id"] in client_side_ids

        # The acceptance criterion: queue-wait and flush-execute are
        # separate children of the engine span.
        queue_wait = names["batcher.queue_wait"][0]
        execute = names["batcher.execute"][0]
        assert queue_wait["parent_id"] == predict["span_id"]
        assert execute["parent_id"] == predict["span_id"]
        assert queue_wait["duration_s"] >= 0
        assert execute["duration_s"] >= 0
        assert execute["attributes"]["batch_size"] >= 1

        # Cache lookup ran (and missed) inside the engine span.
        lookup = names["cache.lookup"][0]
        assert lookup["parent_id"] == predict["span_id"]
        assert lookup["attributes"]["misses"] >= 1

        assert predict["attributes"]["model"] == "paper"
        assert http["attributes"]["http_status"] == 200

    def test_registry_load_is_traced_on_first_touch(self, traced):
        client, tracer, _ = traced
        # The registry load happened on some earlier request in this
        # module; it must appear in one of the buffered traces.
        client.predict("paper", GOOD_CONFIG)

        def find():
            for trace in tracer.buffer.traces():
                for span in trace["spans"]:
                    if span["name"] == "registry.load":
                        return span
            return None

        load = wait_for(find, timeout=1.0)
        if load is None:
            pytest.skip("registry load predates the buffer clear")
        assert load["attributes"]["model"] == "paper"

    def test_response_echoes_trace_and_request_ids(self, traced):
        client, tracer, server = traced
        body = json.dumps({"model": "paper", "config": GOOD_CONFIG}).encode()
        request = urllib.request.Request(
            server.url + "/predict",
            data=body,
            headers={
                "Content-Type": "application/json",
                TRACE_ID_HEADER: "c0ffee" * 5 + "00",
                REQUEST_ID_HEADER: "req-abc123",
            },
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.headers[REQUEST_ID_HEADER] == "req-abc123"
            assert response.headers[TRACE_ID_HEADER] == "c0ffee" * 5 + "00"

    def test_cache_hit_skips_the_batcher_spans(self, traced):
        client, tracer, _ = traced
        config = dict(GOOD_CONFIG, injection_rate=512.5)
        client.predict("paper", config)  # warm the cache
        tracer.buffer.clear()
        client.predict("paper", config)  # now a pure cache hit
        spans = last_full_trace(tracer)
        names = by_name(spans)
        assert names["cache.lookup"][0]["attributes"]["hits"] >= 1
        assert "batcher.queue_wait" not in names
        assert "batcher.execute" not in names


class TestTracesEndpoint:
    def test_traces_returns_buffered_traces(self, traced):
        client, tracer, _ = traced
        client.predict("paper", GOOD_CONFIG)
        payload = client._get_json("/traces?limit=5")
        assert payload["sample_rate"] == 1.0
        assert payload["spans_recorded"] >= 1
        assert "dropped_spans" in payload and "evicted_traces" in payload
        assert len(payload["traces"]) >= 1
        trace = payload["traces"][0]
        assert set(trace) >= {"trace_id", "duration_s", "n_spans", "spans"}

    def test_min_duration_filter(self, traced):
        client, _, _ = traced
        client.predict("paper", GOOD_CONFIG)
        payload = client._get_json("/traces?min_duration_ms=3600000")
        assert payload["traces"] == []

    def test_status_filter_only_matches_errors(self, traced):
        client, tracer, _ = traced
        tracer.buffer.clear()
        client.predict("paper", GOOD_CONFIG)
        with pytest.raises(ServingError):
            client.predict("absent", GOOD_CONFIG)
        wait_for(
            lambda: any(
                s["status"] == STATUS_ERROR
                for t in tracer.buffer.traces()
                for s in t["spans"]
            )
        )
        payload = client._get_json("/traces?status=error")
        assert payload["traces"]
        for trace in payload["traces"]:
            assert any(s["status"] == STATUS_ERROR for s in trace["spans"])

    def test_slow_view(self, traced):
        client, _, _ = traced
        payload = client._get_json("/traces?slow=1")
        assert "slow_spans" in payload and "traces" not in payload

    def test_bad_query_parameter_is_a_400(self, traced):
        client, _, _ = traced
        with pytest.raises(ServingError) as err:
            client._get_json("/traces?limit=banana")
        assert err.value.status == 400
        assert "bad query parameter" in err.value.message

    def test_untraced_engine_returns_404(self, fitted, tmp_path):
        model, _ = fitted
        save_model(model, tmp_path / "paper.json")
        engine = ServingEngine(tmp_path, tracing=False, batching=False)
        server = create_server(engine, port=0)
        server.serve_background()
        try:
            client = ServingClient(server.url)
            with pytest.raises(ServingError) as err:
                client._get_json("/traces")
            assert err.value.status == 404
        finally:
            server.shutdown()
            server.server_close()


class TestRequestIdSatellite:
    def test_success_response_carries_a_request_id(self, traced):
        _, _, server = traced
        body = json.dumps({"model": "paper", "config": GOOD_CONFIG}).encode()
        request = urllib.request.Request(
            server.url + "/predict",
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.headers[REQUEST_ID_HEADER]

    def test_404_and_400_responses_carry_request_ids(self, traced):
        _, _, server = traced
        with pytest.raises(HTTPError) as err:
            urllib.request.urlopen(server.url + "/no-such-route", timeout=10)
        assert err.value.code == 404
        assert err.value.headers[REQUEST_ID_HEADER]

        bad = urllib.request.Request(
            server.url + "/predict",
            data=b"not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(HTTPError) as err:
            urllib.request.urlopen(bad, timeout=10)
        assert err.value.code == 400
        assert err.value.headers[REQUEST_ID_HEADER]

    def test_client_supplied_id_is_echoed_on_errors_too(self, traced):
        _, _, server = traced
        request = urllib.request.Request(
            server.url + "/predict",
            data=b"{}",
            headers={
                "Content-Type": "application/json",
                REQUEST_ID_HEADER: "my-id-42",
            },
            method="POST",
        )
        with pytest.raises(HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.headers[REQUEST_ID_HEADER] == "my-id-42"

    def test_serving_error_exposes_the_request_id(self, traced):
        client, _, _ = traced
        with pytest.raises(ServingError) as err:
            client.predict("absent", GOOD_CONFIG)
        assert err.value.request_id
        assert f"(request {err.value.request_id})" in str(err.value)

    def test_keep_alive_requests_get_fresh_ids(self, traced):
        client, _, _ = traced
        first = pytest.raises(
            ServingError, client.predict, "absent", GOOD_CONFIG
        )
        second = pytest.raises(
            ServingError, client.predict, "absent", GOOD_CONFIG
        )
        assert first.value.request_id != second.value.request_id


class TestMetricsSatellite:
    def test_prometheus_content_type_and_trailing_newline(self, traced):
        _, _, server = traced
        with urllib.request.urlopen(server.url + "/metrics", timeout=10) as r:
            assert (
                r.headers["Content-Type"]
                == "text/plain; version=0.0.4; charset=utf-8"
            )
            text = r.read().decode()
        assert text.endswith("\n")

    def test_stage_latency_histograms_exported(self, traced):
        client, _, _ = traced
        client.predict("paper", GOOD_CONFIG)
        text = client.metrics_text()
        assert "repro_serving_stage_latency_seconds_bucket" in text
        assert 'stage="engine.predict"' in text
        assert 'le="+Inf"' in text
        assert "repro_serving_stage_latency_seconds_count" in text
        snapshot = client.metrics()
        assert "engine.predict" in snapshot["stage_latency_seconds"]


class TestRetryPropagation:
    @pytest.fixture()
    def broken(self, fitted, tmp_path):
        """A no-fallback server whose breaker is already open: every
        predict is refused with a retryable 503."""
        model, _ = fitted
        save_model(model, tmp_path / "paper.json")
        tracer = Tracer(sample_rate=1.0, slow_threshold_s=None, seed=9)
        engine = ServingEngine(
            tmp_path,
            batching=False,
            fallback=False,
            retry_after_s=0.01,
            tracer=tracer,
        )
        breaker = engine._breaker_for("paper")
        for _ in range(5):
            breaker.record_failure()
        server = create_server(engine, port=0)
        server.serve_background()
        client = ServingClient(
            server.url,
            retry=RetryPolicy(
                max_attempts=3, base=0.001, cap=0.005, seed=0
            ),
            tracer=tracer,
        )
        yield client, tracer
        server.shutdown()
        server.server_close()

    def test_all_attempts_share_one_trace(self, broken):
        client, tracer = broken
        with pytest.raises(ServingError) as err:
            client.predict("paper", GOOD_CONFIG)
        assert err.value.status == 503

        def find():
            for trace in tracer.buffer.traces(limit=10):
                names = by_name(trace["spans"])
                if len(names.get("client.attempt", [])) == 3:
                    return trace["spans"]
            return None

        spans = wait_for(find)
        assert spans is not None, "expected 3 client.attempt spans"
        names = by_name(spans)

        # One trace id across the root, every attempt, and the server side.
        assert len({s["trace_id"] for s in spans}) == 1
        root = names["client.request"][0]
        attempts = sorted(
            names["client.attempt"], key=lambda s: s["attributes"]["attempt"]
        )
        assert [a["attributes"]["attempt"] for a in attempts] == [1, 2, 3]
        for attempt in attempts:
            assert attempt["parent_id"] == root["span_id"]
            assert attempt["status"] == STATUS_ERROR
            assert "503" in attempt["error"]

        # Each attempt produced a server-side http.request error span
        # nested under it, plus the breaker's rejection marker.
        https = names["http.request"]
        assert len(https) == 3
        attempt_ids = {a["span_id"] for a in attempts}
        assert {h["parent_id"] for h in https} <= attempt_ids
        for h in https:
            assert h["status"] == STATUS_ERROR
            assert h["attributes"]["http_status"] == 503
        rejected = names["breaker.rejected"]
        assert len(rejected) == 3
        for span in rejected:
            assert span["status"] == STATUS_ERROR
            assert "CircuitOpenError" in span["error"]
            assert span["attributes"]["model"] == "paper"


# ----------------------------------------------------------------------
# lifecycle cycle spans
# ----------------------------------------------------------------------


def truth(x):
    """Deterministic synthetic ground truth: 4 configs -> 5 indicators."""
    x = np.atleast_2d(np.asarray(x, dtype=float))
    return np.column_stack(
        [
            0.1 + 0.02 * (x[:, 1] - 4.0) ** 2,
            0.1 + 0.01 * x[:, 3],
            x[:, 0] * 0.05,
            x[:, 2] * 0.03 + 0.2,
            400.0 - 3.0 * (x[:, 3] - 5.0) ** 2,
        ]
    )


class TestLifecycleTracing:
    def test_run_cycle_emits_the_full_span_tree(self, tmp_path):
        rng = np.random.default_rng(0)
        x = rng.uniform(1.0, 8.0, size=(40, 4))
        # error_threshold=None trains exactly max_epochs epochs, making
        # the per-epoch span count deterministic: 40 epochs / every 10.
        baseline = NeuralWorkloadModel(
            hidden=(6,), error_threshold=None, max_epochs=40, seed=0
        ).fit(x, truth(x))
        registry = tmp_path / "registry"
        registry.mkdir()
        save_model(baseline, registry / "paper.json")

        log = ObservationLog()
        configs = rng.uniform(1.0, 8.0, size=(60, 4))
        log.record_batch(
            "paper",
            configs,
            predicted=baseline.predict(configs),
            measured=truth(configs),
            source="driver",
        )
        tracer = Tracer(sample_rate=1.0, slow_threshold_s=None, seed=11)
        orch = LifecycleOrchestrator(
            registry,
            VersionedModelStore(tmp_path / "store"),
            log,
            gate=GateThresholds(max_error=1e6),  # always promote
            seed=2,
            tracer=tracer,
        )
        report = orch.run_cycle("paper", force=True)
        assert report.retrained and report.promoted

        traces = tracer.buffer.traces()
        assert len(traces) == 1, "one cycle must be one trace"
        spans = traces[0]["spans"]
        names = by_name(spans)

        cycle = names["lifecycle.run_cycle"][0]
        assert cycle["parent_id"] is None
        assert cycle["attributes"]["retrained"] is True
        assert cycle["attributes"]["promoted"] is True

        for stage in (
            "lifecycle.drift_check",
            "lifecycle.retrain",
            "lifecycle.gate",
            "lifecycle.promote",
        ):
            assert names[stage][0]["parent_id"] == cycle["span_id"], stage

        retrain = names["lifecycle.retrain"][0]
        assert retrain["attributes"]["epochs"] == 40
        epochs = names["lifecycle.retrain.epoch"]
        assert len(epochs) == 4  # epochs 9, 19, 29, 39 at every=10
        for span in epochs:
            assert span["parent_id"] == retrain["span_id"]
            assert span["attributes"]["epochs_covered"] >= 1
        assert names["lifecycle.gate"][0]["attributes"]["passed"] is True

    def test_quiet_cycle_traces_only_the_drift_check(self, tmp_path):
        rng = np.random.default_rng(1)
        x = rng.uniform(1.0, 8.0, size=(40, 4))
        baseline = NeuralWorkloadModel(
            hidden=(6,), error_threshold=None, max_epochs=20, seed=0
        ).fit(x, truth(x))
        registry = tmp_path / "registry"
        registry.mkdir()
        save_model(baseline, registry / "paper.json")

        log = ObservationLog()
        configs = rng.uniform(1.0, 8.0, size=(40, 4))
        log.record_batch(
            "paper",
            configs,
            predicted=baseline.predict(configs),
            measured=truth(configs),
            source="driver",
        )
        tracer = Tracer(sample_rate=1.0, slow_threshold_s=None, seed=12)
        orch = LifecycleOrchestrator(
            registry,
            VersionedModelStore(tmp_path / "store"),
            log,
            # Loose enough that the deliberately under-trained baseline's
            # residuals do not count as drift.
            drift_thresholds=DriftThresholds(
                config_score=100.0, residual_error=100.0
            ),
            seed=2,
            tracer=tracer,
        )
        report = orch.run_cycle("paper")
        assert not report.retrained

        spans = tracer.buffer.traces()[0]["spans"]
        names = by_name(spans)
        assert names["lifecycle.run_cycle"][0]["attributes"]["retrained"] is False
        assert "lifecycle.drift_check" in names
        assert "lifecycle.retrain" not in names
