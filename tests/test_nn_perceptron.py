"""Single perceptrons and the paper's Section 2.2 geometric constructions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.perceptron import (
    Perceptron,
    and_perceptron,
    confinement_network,
    not_perceptron,
    or_perceptron,
)


class TestPerceptron:
    def test_figure1_semantics(self):
        # y = f(sum w_i x_i - w0); with hard limiter and w=(1,1), w0=1.5
        # this is the AND gate.
        p = Perceptron([1.0, 1.0], threshold=1.5)
        assert p([1.0, 1.0])[0] == 1.0
        assert p([1.0, 0.0])[0] == 0.0

    def test_batch_evaluation(self):
        p = Perceptron([1.0, -1.0], threshold=0.0)
        out = p(np.array([[2.0, 1.0], [1.0, 2.0]]))
        np.testing.assert_allclose(out, [1.0, 0.0])

    def test_decision_distance_is_signed_euclidean(self):
        # Hyperplane x + y = 2 has distance sqrt(2) from the origin.
        p = Perceptron([1.0, 1.0], threshold=2.0)
        d = p.decision_distance(np.array([0.0, 0.0]))[0]
        assert d == pytest.approx(-np.sqrt(2.0))

    def test_zero_weights_have_no_hyperplane(self):
        with pytest.raises(ValueError):
            Perceptron([0.0, 0.0]).decision_distance(np.array([1.0, 1.0]))

    def test_empty_weights_rejected(self):
        with pytest.raises(ValueError):
            Perceptron([])

    def test_input_width_checked(self):
        with pytest.raises(ValueError):
            Perceptron([1.0, 1.0])(np.array([1.0, 2.0, 3.0]))


class TestLearning:
    def test_learns_linearly_separable_data(self):
        x = np.array([[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]])
        y = np.array([0.0, 0.0, 0.0, 1.0])  # AND
        p = Perceptron([0.0, 0.0], threshold=0.0)
        epochs = p.fit(x, y, max_epochs=50)
        assert epochs < 50
        np.testing.assert_allclose(p(x), y)

    def test_learning_requires_hard_limiter(self):
        p = Perceptron([0.0], activation="logistic")
        with pytest.raises(ValueError, match="hard limiter"):
            p.fit(np.array([[0.0]]), np.array([0.0]))

    def test_learning_rejects_non_binary_targets(self):
        p = Perceptron([0.0])
        with pytest.raises(ValueError, match="0/1"):
            p.fit(np.array([[1.0]]), np.array([0.5]))

    def test_xor_does_not_converge(self):
        x = np.array([[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]])
        y = np.array([0.0, 1.0, 1.0, 0.0])
        p = Perceptron([0.0, 0.0], threshold=0.0)
        epochs = p.fit(x, y, max_epochs=30)
        assert epochs == 30  # hit the cap: XOR is not linearly separable


class TestPaperConstructions:
    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    def test_and_gate(self, n):
        gate = and_perceptron(n)
        all_ones = np.ones((1, n))
        assert gate(all_ones)[0] == 1.0
        for flipped in range(n):
            bits = np.ones((1, n))
            bits[0, flipped] = 0.0
            assert gate(bits)[0] == 0.0

    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_or_gate(self, n):
        gate = or_perceptron(n)
        assert gate(np.zeros((1, n)))[0] == 0.0
        for hot in range(n):
            bits = np.zeros((1, n))
            bits[0, hot] = 1.0
            assert gate(bits)[0] == 1.0

    def test_not_gate(self):
        gate = not_perceptron()
        assert gate([0.0])[0] == 1.0
        assert gate([1.0])[0] == 0.0

    def test_and_margin_validated(self):
        with pytest.raises(ValueError):
            and_perceptron(3, margin=1.5)

    def test_confinement_indicates_box(self):
        # 2n perceptrons + an AND node carve an n-dimensional box
        # (paper: "usually 2n perceptrons are needed to create a
        # confinement in an n dimensional space").
        box = confinement_network([0.0, 0.0], [1.0, 2.0])
        assert len(box.half_spaces) == 4
        assert box(np.array([0.5, 1.0]))[0] == 1.0
        assert box(np.array([1.5, 1.0]))[0] == 0.0
        assert box(np.array([0.5, -0.1]))[0] == 0.0

    def test_confinement_boundary_is_inside(self):
        box = confinement_network([0.0], [1.0])
        assert box(np.array([0.0]))[0] == 1.0
        assert box(np.array([1.0]))[0] == 1.0

    def test_confinement_validates_bounds(self):
        with pytest.raises(ValueError):
            confinement_network([1.0], [0.0])
        with pytest.raises(ValueError):
            confinement_network([0.0, 0.0], [1.0])


@given(
    st.lists(
        st.floats(min_value=-5, max_value=5), min_size=2, max_size=2
    ),
)
@settings(max_examples=60, deadline=None)
def test_confinement_matches_interval_arithmetic(point):
    """The perceptron box agrees with direct bound checks everywhere."""
    lower = np.array([-1.0, 0.5])
    upper = np.array([2.0, 3.0])
    box = confinement_network(lower, upper)
    p = np.array(point)
    expected = float(np.all(p >= lower) and np.all(p <= upper))
    assert box(p)[0] == expected
