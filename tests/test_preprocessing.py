"""Scalers (paper Section 3.1 standardization) and the scaled-estimator pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.preprocessing.pipeline import ScaledEstimator
from repro.preprocessing.scalers import (
    IdentityScaler,
    MinMaxScaler,
    StandardScaler,
    available_scalers,
    get_scaler,
)

ALL_SCALERS = [StandardScaler, MinMaxScaler, IdentityScaler]


@pytest.fixture
def features(rng):
    return rng.normal(loc=[10.0, -5.0, 0.0], scale=[3.0, 0.5, 1.0], size=(50, 3))


class TestStandardScaler:
    def test_zero_mean_unit_std(self, features):
        scaled = StandardScaler().fit_transform(features)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-12)

    def test_inverse_round_trip(self, features):
        scaler = StandardScaler().fit(features)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(features)),
            features,
            rtol=1e-10,
        )

    def test_constant_feature_centered_not_scaled(self):
        x = np.column_stack([np.full(10, 7.0), np.arange(10.0)])
        scaled = StandardScaler().fit_transform(x)
        np.testing.assert_allclose(scaled[:, 0], 0.0)
        assert np.isfinite(scaled).all()

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_feature_count_checked(self, features):
        scaler = StandardScaler().fit(features)
        with pytest.raises(ValueError):
            scaler.transform(np.zeros((2, 4)))

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros((0, 3)))

    def test_1d_treated_as_single_feature(self):
        scaled = StandardScaler().fit_transform(np.array([1.0, 2.0, 3.0]))
        assert scaled.shape == (3, 1)


class TestMinMaxScaler:
    def test_default_unit_interval(self, features):
        scaled = MinMaxScaler().fit_transform(features)
        np.testing.assert_allclose(scaled.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(scaled.max(axis=0), 1.0, atol=1e-12)

    def test_custom_interval(self, features):
        scaled = MinMaxScaler(low=-1.0, high=1.0).fit_transform(features)
        assert scaled.min() == pytest.approx(-1.0)
        assert scaled.max() == pytest.approx(1.0)

    def test_inverse_round_trip(self, features):
        scaler = MinMaxScaler().fit(features)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(features)),
            features,
            rtol=1e-10,
        )

    def test_constant_feature_maps_to_midpoint(self):
        x = np.column_stack([np.full(5, 3.0), np.arange(5.0)])
        scaled = MinMaxScaler().fit_transform(x)
        np.testing.assert_allclose(scaled[:, 0], 0.5)

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            MinMaxScaler(low=1.0, high=1.0)


class TestIdentityScaler:
    def test_passthrough_and_copy(self, features):
        scaler = IdentityScaler().fit(features)
        out = scaler.transform(features)
        np.testing.assert_array_equal(out, features)
        out[0, 0] = 999.0
        assert features[0, 0] != 999.0

    def test_inverse_is_identity(self, features):
        scaler = IdentityScaler().fit(features)
        np.testing.assert_array_equal(
            scaler.inverse_transform(features), features
        )


class TestRegistry:
    def test_by_name(self):
        assert isinstance(get_scaler("standard"), StandardScaler)
        assert isinstance(get_scaler("minmax", low=0, high=2), MinMaxScaler)

    def test_none_means_identity(self):
        assert isinstance(get_scaler(None), IdentityScaler)

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            get_scaler("robust")

    def test_listing(self):
        assert set(available_scalers()) == {"standard", "minmax", "identity"}


class _RecordingEstimator:
    """Captures what it was fitted on; predicts a constant in scaled space."""

    def __init__(self):
        self.seen_x = None
        self.seen_y = None

    def fit(self, x, y):
        self.seen_x = x.copy()
        self.seen_y = y.copy()
        return self

    def predict(self, x):
        return np.tile(self.seen_y.mean(axis=0), (x.shape[0], 1))


class TestScaledEstimator:
    def test_estimator_sees_standardized_data(self, features):
        inner = _RecordingEstimator()
        pipeline = ScaledEstimator(inner)
        y = features[:, :2] * 100.0 + 5.0
        pipeline.fit(features, y)
        np.testing.assert_allclose(inner.seen_x.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(inner.seen_y.std(axis=0), 1.0, atol=1e-10)

    def test_predictions_in_physical_units(self, features):
        pipeline = ScaledEstimator(_RecordingEstimator())
        y = features[:, :2] * 100.0 + 5.0
        pipeline.fit(features, y)
        predicted = pipeline.predict(features)
        # Constant-in-scaled-space prediction = the physical mean.
        np.testing.assert_allclose(
            predicted[0], y.mean(axis=0), rtol=1e-8
        )

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            ScaledEstimator(_RecordingEstimator()).predict(np.zeros((1, 2)))

    def test_identity_scalers_optional(self, features):
        inner = _RecordingEstimator()
        pipeline = ScaledEstimator(inner, x_scaler=None, y_scaler=None)
        y = features[:, :1]
        pipeline.fit(features, y)
        np.testing.assert_array_equal(inner.seen_x, features)


@given(
    arrays(
        np.float64,
        (7, 3),
        elements=st.floats(min_value=-1e6, max_value=1e6),
    )
)
@settings(max_examples=60, deadline=None)
def test_scaler_round_trip_property(x):
    """transform∘inverse_transform is the identity for every scaler."""
    for scaler_cls in ALL_SCALERS:
        scaler = scaler_cls().fit(x)
        round_tripped = scaler.inverse_transform(scaler.transform(x))
        np.testing.assert_allclose(round_tripped, x, rtol=1e-7, atol=1e-6)
