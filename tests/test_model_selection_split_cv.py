"""k-fold splitting, holdout splitting and the cross-validation driver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model_selection.cross_validation import cross_validate
from repro.model_selection.search import GridSearch
from repro.model_selection.split import KFold, train_test_split
from repro.models.linear import LinearWorkloadModel


class TestKFold:
    def test_paper_semantics(self):
        """k trials; each uses k-1 folds to train, 1 to validate."""
        folds = KFold(k=5, seed=0).split(50)
        assert len(folds) == 5
        for fold in folds:
            assert len(fold.train_indices) + len(fold.validation_indices) == 50
            assert not set(fold.train_indices) & set(fold.validation_indices)

    def test_every_sample_validated_exactly_once(self):
        folds = KFold(k=4, seed=1).split(22)
        validated = np.concatenate([f.validation_indices for f in folds])
        assert sorted(validated.tolist()) == list(range(22))

    def test_fold_sizes_near_equal(self):
        folds = KFold(k=5, seed=0).split(52)
        sizes = [len(f.validation_indices) for f in folds]
        assert max(sizes) - min(sizes) <= 1

    def test_shuffle_off_is_contiguous(self):
        folds = KFold(k=2, shuffle=False).split(4)
        np.testing.assert_array_equal(folds[0].validation_indices, [0, 1])
        np.testing.assert_array_equal(folds[1].validation_indices, [2, 3])

    def test_reproducible_with_seed(self):
        a = KFold(k=3, seed=9).split(10)
        b = KFold(k=3, seed=9).split(10)
        for fa, fb in zip(a, b):
            np.testing.assert_array_equal(
                fa.validation_indices, fb.validation_indices
            )

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            KFold(k=5).split(4)

    def test_k_must_be_at_least_two(self):
        with pytest.raises(ValueError):
            KFold(k=1)


class TestTrainTestSplit:
    def test_sizes(self, rng):
        x = rng.normal(size=(20, 3))
        y = rng.normal(size=(20, 2))
        x_train, x_test, y_train, y_test = train_test_split(
            x, y, test_fraction=0.25, seed=0
        )
        assert x_test.shape[0] == 5
        assert x_train.shape[0] == 15
        assert y_test.shape[0] == 5

    def test_rows_stay_paired(self, rng):
        x = np.arange(10).reshape(-1, 1).astype(float)
        y = x * 10.0
        x_train, x_test, y_train, y_test = train_test_split(x, y, seed=3)
        np.testing.assert_allclose(y_train, x_train * 10.0)
        np.testing.assert_allclose(y_test, x_test * 10.0)

    def test_at_least_one_each_side(self, rng):
        x = rng.normal(size=(3, 1))
        y = rng.normal(size=(3, 1))
        x_train, x_test, *_ = train_test_split(x, y, test_fraction=0.01, seed=0)
        assert x_test.shape[0] >= 1 and x_train.shape[0] >= 1

    def test_fraction_bounds(self, rng):
        x = rng.normal(size=(5, 1))
        with pytest.raises(ValueError):
            train_test_split(x, x, test_fraction=1.0)
        with pytest.raises(ValueError):
            train_test_split(x, x, test_fraction=0.0)


def linear_problem(n=40, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.5, 2.0, size=(n, 3))
    y = np.column_stack([x @ [1.0, 2.0, 3.0] + 1.0, x @ [-1.0, 0.5, 0.0] + 5.0])
    if noise:
        y = y + rng.normal(scale=noise, size=y.shape)
    return x, y


class TestCrossValidate:
    def test_report_shape(self):
        x, y = linear_problem()
        report = cross_validate(
            lambda t: LinearWorkloadModel(), x, y, k=5, seed=0
        )
        assert report.k == 5
        assert report.error_matrix.shape == (5, 2)
        assert report.average_errors.shape == (2,)

    def test_linear_model_on_linear_data_is_near_perfect(self):
        x, y = linear_problem()
        report = cross_validate(
            lambda t: LinearWorkloadModel(), x, y, k=5, seed=0
        )
        assert report.overall_error < 1e-8
        assert report.overall_accuracy == pytest.approx(1.0, abs=1e-8)

    def test_factory_receives_trial_index(self):
        x, y = linear_problem()
        seen = []

        def factory(trial):
            seen.append(trial)
            return LinearWorkloadModel()

        cross_validate(factory, x, y, k=4, seed=0)
        assert seen == [0, 1, 2, 3]

    def test_trial_records_series_for_figures_5_and_6(self):
        x, y = linear_problem()
        report = cross_validate(
            lambda t: LinearWorkloadModel(), x, y, k=5, seed=0
        )
        trial = report.trials[0]
        assert trial.train_actual.shape == trial.train_predicted.shape
        assert trial.validation_actual.shape == trial.validation_predicted.shape
        assert trial.train_actual.shape[0] + trial.validation_actual.shape[0] == 40

    def test_table_rendering(self):
        x, y = linear_problem(noise=0.05)
        report = cross_validate(
            lambda t: LinearWorkloadModel(),
            x,
            y,
            k=3,
            seed=0,
            output_names=["alpha", "beta"],
        )
        table = report.to_table()
        assert "alpha" in table and "beta" in table
        assert "Average" in table
        assert "Overall accuracy" in table

    def test_1d_targets(self):
        x, y = linear_problem()
        report = cross_validate(
            lambda t: LinearWorkloadModel(), x, y[:, 0], k=3, seed=0
        )
        assert report.error_matrix.shape == (3, 1)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            cross_validate(
                lambda t: LinearWorkloadModel(),
                np.zeros((5, 2)),
                np.zeros((6, 1)),
                k=2,
            )


class TestGridSearch:
    def test_picks_lower_error_configuration(self):
        x, y = linear_problem(noise=0.1)

        def factory(ridge):
            return LinearWorkloadModel(ridge=ridge)

        search = GridSearch(factory, {"ridge": [0.0, 1e6]}, k=3, seed=0)
        best = search.fit(x, y)
        # An absurd ridge destroys the fit; plain OLS must win.
        assert best.params == {"ridge": 0.0}
        assert len(search.results_) == 2

    def test_cartesian_product(self):
        search = GridSearch(
            lambda a, b: LinearWorkloadModel(),
            {"a": [1, 2, 3], "b": ["x", "y"]},
        )
        assert len(search.combinations()) == 6

    def test_summary_before_fit_raises(self):
        search = GridSearch(lambda: None, {"a": [1]})
        with pytest.raises(RuntimeError):
            search.summary()
        with pytest.raises(RuntimeError):
            search.best_

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            GridSearch(lambda: None, {})
        with pytest.raises(ValueError):
            GridSearch(lambda a: None, {"a": []})

    def test_summary_lists_all_points(self):
        x, y = linear_problem(noise=0.1)
        search = GridSearch(
            lambda ridge: LinearWorkloadModel(ridge=ridge),
            {"ridge": [0.0, 0.1]},
            k=3,
            seed=0,
        )
        search.fit(x, y)
        summary = search.summary()
        assert "0.0" in summary and "0.1" in summary


@given(st.integers(min_value=2, max_value=8), st.integers(min_value=8, max_value=60))
@settings(max_examples=40, deadline=None)
def test_kfold_partition_property(k, n):
    """For any (k, n) with n >= k: folds partition range(n) exactly."""
    folds = KFold(k=k, seed=0).split(n)
    validated = sorted(
        int(i) for f in folds for i in f.validation_indices
    )
    assert validated == list(range(n))
    for fold in folds:
        combined = sorted(
            int(i)
            for i in np.concatenate(
                [fold.train_indices, fold.validation_indices]
            )
        )
        assert combined == list(range(n))
