"""Crash-safe state layer: journals, artifact integrity, recovery, drain.

The durability subsystem's contract is stated as invariants, and the tests
here attack each one the way a crash would:

* an artifact is either absent or bit-identical to what was written
  (sha256 sidecars, verify-on-load, quarantine of anything that fails);
* a journal replay returns every record up to the first torn frame and
  nothing after it — loss is bounded to the unsynced tail;
* after a crash at *any* injection point, startup recovery leaves the
  store's manifest naming only existing checksum-valid files and the
  registry serving the last verified-good version (the randomized
  kill-point test sweeps the crash site across seeds);
* a drain completes queued work, stops admission, and leaves a clean
  shutdown marker.
"""

import json
import os
import random
import threading

import numpy as np
import pytest

from repro.durability.integrity import (
    ArtifactIntegrityError,
    CleanShutdownMarker,
    IntegrityGuard,
    checksum_path,
    quarantine_file,
    read_checksum,
    sha256_bytes,
    verify_file,
    write_checksum,
)
from repro.durability.journal import (
    FRAME_HEADER,
    Journal,
    frame_record,
    read_segment,
    replay_journal,
)
from repro.durability.recovery import RecoveryManager
from repro.lifecycle.observations import ObservationLog
from repro.lifecycle.store import VersionedModelStore
from repro.models.neural import NeuralWorkloadModel
from repro.models.persistence import save_model
from repro.reliability.degradation import OverloadedError
from repro.reliability.faults import (
    SITE_JOURNAL_APPEND,
    SITE_JOURNAL_COMPACT,
    SITE_STORE_PROMOTE,
    SITE_STORE_SAVE,
    FaultPlan,
    SimulatedCrash,
)
from repro.serving.batcher import BatcherClosedError, MicroBatcher
from repro.serving.engine import ServingEngine
from repro.workload.service import INPUT_NAMES, OUTPUT_NAMES

CONFIG = [450.0, 14.0, 16.0, 18.0]


def _fit(seed: int) -> NeuralWorkloadModel:
    """A tiny fitted model mapping the serving contract's 4 -> 5 shape."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.1, 1.0, size=(24, len(INPUT_NAMES)))
    y = rng.uniform(0.1, 1.0, size=(24, len(OUTPUT_NAMES)))
    return NeuralWorkloadModel(hidden=(4,), max_epochs=3, seed=seed).fit(x, y)


@pytest.fixture(scope="module")
def model_a():
    return _fit(1)


@pytest.fixture(scope="module")
def model_b():
    return _fit(2)


# ----------------------------------------------------------------------
# journal framing + segments
# ----------------------------------------------------------------------


class TestJournalFraming:
    def test_round_trip(self, tmp_path):
        seg = tmp_path / "seg-00000001.wal"
        payloads = [b"alpha", b"", b"\x00\xffbinary", b"x" * 3000]
        seg.write_bytes(b"".join(frame_record(p) for p in payloads))
        recovered, dropped, bytes_dropped = read_segment(seg)
        assert recovered == payloads
        assert dropped == 0 and bytes_dropped == 0

    def test_torn_tail_stops_at_last_good_frame(self, tmp_path):
        seg = tmp_path / "seg-00000001.wal"
        frames = [frame_record(b"a"), frame_record(b"b"), frame_record(b"c")]
        blob = b"".join(frames)
        seg.write_bytes(blob[:-3])  # tear mid-frame
        recovered, dropped, bytes_dropped = read_segment(seg)
        assert recovered == [b"a", b"b"]
        assert dropped == 1
        assert bytes_dropped == len(frames[2]) - 3

    def test_crc_mismatch_drops_rest_of_segment(self, tmp_path):
        seg = tmp_path / "seg-00000001.wal"
        blob = frame_record(b"good") + frame_record(b"flip") + frame_record(b"after")
        blob = bytearray(blob)
        blob[len(frame_record(b"good")) + FRAME_HEADER.size] ^= 0xFF
        seg.write_bytes(bytes(blob))
        recovered, dropped, _ = read_segment(seg)
        # Nothing after a bad frame can be trusted: its length field may
        # itself be the corruption.
        assert recovered == [b"good"]
        assert dropped >= 1

    def test_insane_length_field_is_bounded(self, tmp_path):
        seg = tmp_path / "seg-00000001.wal"
        seg.write_bytes(
            frame_record(b"ok") + FRAME_HEADER.pack(0x7FFFFFFF, 0) + b"tail"
        )
        recovered, dropped, _ = read_segment(seg)
        assert recovered == [b"ok"]
        assert dropped >= 1

    def test_repair_truncates_to_frame_boundary(self, tmp_path):
        seg = tmp_path / "seg-00000001.wal"
        good = frame_record(b"keep")
        seg.write_bytes(good + frame_record(b"lost")[:-2])
        read_segment(seg, repair=True)
        assert seg.stat().st_size == len(good)
        recovered, dropped, _ = read_segment(seg)
        assert recovered == [b"keep"] and dropped == 0


class TestJournal:
    def test_append_replay_round_trip(self, tmp_path):
        with Journal(tmp_path / "j") as journal:
            for i in range(20):
                journal.append(f"rec-{i}".encode())
            assert journal.records_written == 20
            assert list(journal.replay()) == [
                f"rec-{i}".encode() for i in range(20)
            ]

    def test_rotation_bounds_segment_size(self, tmp_path):
        journal = Journal(tmp_path / "j", max_segment_bytes=256)
        for i in range(50):
            journal.append(b"p" * 30)
        journal.close()
        segments = replay_journal(tmp_path / "j")
        assert segments.segments > 1
        assert segments.recovered == 50
        for path in sorted((tmp_path / "j").glob("seg-*.wal")):
            assert path.stat().st_size <= 256 + FRAME_HEADER.size + 30

    def test_reopen_continues_after_tail_repair(self, tmp_path):
        journal = Journal(tmp_path / "j", sync="flush")
        for i in range(5):
            journal.append(f"r{i}".encode())
        journal.close()
        seg = journal.segment_paths()[-1]
        with open(seg, "r+b") as handle:
            handle.truncate(seg.stat().st_size - 2)
        reopened = Journal(tmp_path / "j")
        assert reopened.tail_repaired_bytes > 0
        reopened.append(b"fresh")
        reopened.close()
        recovery = replay_journal(tmp_path / "j")
        assert recovery.records == [b"r0", b"r1", b"r2", b"r3", b"fresh"]
        assert recovery.dropped == 0  # repair already excised the tear

    def test_compact_merges_sealed_segments(self, tmp_path):
        journal = Journal(tmp_path / "j", max_segment_bytes=64)
        for i in range(24):
            journal.append(f"c{i}".encode())
        before = len(journal.segment_paths())
        assert before > 2
        journal.compact()
        after = journal.segment_paths()
        assert len(after) == 2  # one merged sealed segment + the live one
        journal.append(b"post")
        journal.close()
        recovery = replay_journal(tmp_path / "j")
        assert recovery.records == [
            f"c{i}".encode() for i in range(24)
        ] + [b"post"]

    def test_sync_modes_validated(self, tmp_path):
        with pytest.raises(ValueError, match="sync"):
            Journal(tmp_path / "j", sync="yolo")

    def test_closed_journal_refuses_append(self, tmp_path):
        journal = Journal(tmp_path / "j")
        journal.close()
        with pytest.raises(ValueError, match="closed"):
            journal.append(b"x")


# ----------------------------------------------------------------------
# artifact integrity primitives
# ----------------------------------------------------------------------


class TestIntegrity:
    def test_save_model_writes_sidecar(self, tmp_path, model_a):
        path = tmp_path / "m.json"
        save_model(model_a, path)
        sidecar = checksum_path(path)
        assert sidecar.is_file()
        assert read_checksum(path) == sha256_bytes(path.read_bytes())
        assert verify_file(path)[0] is True

    def test_verify_file_verdicts(self, tmp_path):
        path = tmp_path / "a.bin"
        path.write_bytes(b"payload")
        assert verify_file(path)[0] is None  # no sidecar: unverifiable
        write_checksum(path)
        assert verify_file(path)[0] is True
        path.write_bytes(b"tampered")
        assert verify_file(path, retries=0)[0] is False

    def test_quarantine_moves_artifact_and_sidecar(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_bytes(b"{}")
        write_checksum(path)
        moved = quarantine_file(path)
        assert not path.exists()
        assert not checksum_path(path).exists()
        assert moved.parent.name == "quarantine"
        assert moved.name.startswith("bad.json.quarantined-")
        # Evidence accumulates: a second quarantine of the same name
        # gets the next slot, never overwrites the first.
        path.write_bytes(b"{}")
        again = quarantine_file(path)
        assert again != moved and again.exists() and moved.exists()

    def test_guard_verify_raises_and_counts(self, tmp_path):
        path = tmp_path / "a.json"
        path.write_bytes(b"{}")
        write_checksum(path)
        path.write_bytes(b"{ }")

        class Counts:
            failures = 0

            def record_verify_failure(self):
                Counts.failures += 1

        guard = IntegrityGuard(metrics=Counts())
        with pytest.raises(ArtifactIntegrityError):
            guard.verify(path)
        assert Counts.failures == 1

    def test_guard_handle_corrupt_quarantines_and_rolls_back(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_bytes(b"corrupt")
        write_checksum(path, sha256_bytes(b"original"))
        restored = []
        guard = IntegrityGuard(rollback=lambda name: restored.append(name) or True)
        assert guard.handle_corrupt("m", path, ValueError("boom")) is True
        assert restored == ["m"]
        assert not path.exists()
        assert (tmp_path / "quarantine").is_dir()

    def test_clean_shutdown_marker_lifecycle(self, tmp_path):
        marker = CleanShutdownMarker(tmp_path)
        assert marker.present() is False
        assert marker.consume() is False
        marker.write({"drained": True})
        assert marker.present() is True
        assert marker.consume() is True  # consuming removes it
        assert marker.present() is False


# ----------------------------------------------------------------------
# versioned store integrity
# ----------------------------------------------------------------------


class TestStoreIntegrity:
    def test_manifest_records_sha256(self, tmp_path, model_a):
        store = VersionedModelStore(tmp_path / "store")
        version = store.save_version("paper", model_a)
        entry = store.list_versions("paper")[-1]
        path = tmp_path / "store" / "paper" / entry["file"]
        assert entry["sha256"] == sha256_bytes(path.read_bytes())
        assert store.verify_version("paper", version)["verdict"] == "ok"

    def test_promote_refuses_corrupt_version(self, tmp_path, model_a):
        store = VersionedModelStore(tmp_path / "store")
        version = store.save_version("paper", model_a)
        vpath = tmp_path / "store" / "paper" / ("v%04d.json" % version)
        vpath.write_text(vpath.read_text()[:-40] + "}")  # still JSON-ish bytes
        with pytest.raises(ValueError, match="refusing to promote"):
            store.promote("paper", version, tmp_path / "registry")
        assert not (tmp_path / "registry" / "paper.json").exists()

    def test_prune_removes_sidecars(self, tmp_path, model_a, model_b):
        store = VersionedModelStore(tmp_path / "store", retention=2)
        for model in (model_a, model_b, model_a, model_b):
            store.save_version("paper", model)
        directory = tmp_path / "store" / "paper"
        files = sorted(p.name for p in directory.glob("v*.json"))
        sidecars = sorted(p.name for p in directory.glob("v*.json.sha256"))
        assert files == ["v0003.json", "v0004.json"]
        assert sidecars == ["v0003.json.sha256", "v0004.json.sha256"]

    def test_repair_manifest_quarantines_and_recovers(
        self, tmp_path, model_a, model_b
    ):
        store = VersionedModelStore(tmp_path / "store")
        v1 = store.save_version("paper", model_a)
        v2 = store.save_version("paper", model_b)
        store.promote("paper", v2, tmp_path / "registry")
        directory = tmp_path / "store" / "paper"
        # Corrupt v2's bytes, orphan a v3 file the manifest never saw,
        # and tear the manifest itself.
        (directory / "v0002.json").write_text("{garbage")
        v3 = directory / "v0003.json"
        save_model(model_b, v3)
        (directory / "manifest.json").write_text('{"versions": [')
        report = store.repair_manifest("paper")
        assert report["repaired"] and report["manifest_rebuilt"]
        assert [q["version"] for q in report["quarantined"]] == [v2]
        assert set(report["recovered"]) == {v1, 3}
        versions = {v["version"] for v in store.list_versions("paper")}
        assert versions == {v1, 3}
        assert store.promoted_version("paper") == 3
        assert (directory / "quarantine").is_dir()
        for entry in store.list_versions("paper"):
            assert verify_file(directory / entry["file"])[0] is True

    def test_repair_manifest_drops_missing_files(self, tmp_path, model_a):
        store = VersionedModelStore(tmp_path / "store")
        v1 = store.save_version("paper", model_a)
        v2 = store.save_version("paper", model_a)
        os.unlink(tmp_path / "store" / "paper" / ("v%04d.json" % v2))
        report = store.repair_manifest("paper")
        assert report["dropped"] == [v2]
        assert {v["version"] for v in store.list_versions("paper")} == {v1}

    def test_redeploy_verified_prefers_promoted_then_previous(
        self, tmp_path, model_a, model_b
    ):
        store = VersionedModelStore(tmp_path / "store")
        registry = tmp_path / "registry"
        v1 = store.save_version("paper", model_a)
        v2 = store.save_version("paper", model_b)
        store.promote("paper", v1, registry)
        store.promote("paper", v2, registry)  # promoted=v2, previous=v1
        assert store.redeploy_verified("paper", registry) == v2
        # Corrupt the promoted version: redeploy falls through to previous.
        (tmp_path / "store" / "paper" / ("v%04d.json" % v2)).write_text("{bad")
        assert store.redeploy_verified("paper", registry) == v1
        deployed = registry / "paper.json"
        assert verify_file(deployed)[0] is True
        expected = store.load_version("paper", v1)
        engine = ServingEngine(registry, batching=False, tracing=False)
        np.testing.assert_allclose(
            engine.predict("paper", [CONFIG])[0],
            expected.predict(np.asarray([CONFIG]))[0],
            rtol=1e-9,
        )
        engine.close()

    def test_redeploy_verified_exhausted_returns_none(self, tmp_path, model_a):
        store = VersionedModelStore(tmp_path / "store")
        v1 = store.save_version("paper", model_a)
        (tmp_path / "store" / "paper" / ("v%04d.json" % v1)).write_text("{bad")
        assert store.redeploy_verified("paper", tmp_path / "registry") is None


# ----------------------------------------------------------------------
# registry verify-on-load + auto-rollback
# ----------------------------------------------------------------------


class TestRegistryIntegrity:
    def _served_engine(self, tmp_path, model_a, model_b):
        store = VersionedModelStore(tmp_path / "store")
        registry_dir = tmp_path / "registry"
        v1 = store.save_version("paper", model_a)
        v2 = store.save_version("paper", model_b)
        store.promote("paper", v1, registry_dir)
        store.promote("paper", v2, registry_dir)
        guard = IntegrityGuard(
            rollback=lambda name: store.redeploy_verified(name, registry_dir)
            is not None
        )
        engine = ServingEngine(
            registry_dir, batching=False, tracing=False, integrity=guard
        )
        return store, registry_dir, engine, v1, v2

    def test_corrupt_hot_reload_rolls_back_to_good_version(
        self, tmp_path, model_a, model_b
    ):
        store, registry_dir, engine, v1, v2 = self._served_engine(
            tmp_path, model_a, model_b
        )
        with engine:
            engine.predict("paper", [CONFIG])  # loads v2 cleanly
            # A torn re-deploy lands: artifact bytes no longer match the
            # sidecar, and the mtime bump forces a hot reload.
            deployed = registry_dir / "paper.json"
            payload = deployed.read_bytes()
            deployed.write_bytes(payload[: len(payload) // 2])
            stat = os.stat(deployed)
            os.utime(deployed, ns=(stat.st_atime_ns, stat.st_mtime_ns + 10))
            outputs = engine.predict("paper", [CONFIG])
            expected = store.load_version(
                "paper", store.promoted_version("paper")
            )
            np.testing.assert_allclose(
                outputs[0],
                expected.predict(np.asarray([CONFIG]))[0],
                rtol=1e-9,
            )
            assert engine.metrics.to_dict()["artifact_verify_failures_total"] >= 1
            assert engine.metrics.to_dict()["artifacts_quarantined_total"] >= 1
            assert engine.metrics.to_dict()["auto_rollbacks_total"] >= 1
            quarantined = list((registry_dir / "quarantine").iterdir())
            assert quarantined

    def test_without_guard_corruption_still_raises(self, tmp_path, model_a):
        registry_dir = tmp_path / "registry"
        registry_dir.mkdir()
        save_model(model_a, registry_dir / "paper.json")
        engine = ServingEngine(registry_dir, batching=False, tracing=False)
        with engine:
            engine.predict("paper", [CONFIG])
            deployed = registry_dir / "paper.json"
            deployed.write_text("{torn")
            stat = os.stat(deployed)
            os.utime(deployed, ns=(stat.st_atime_ns, stat.st_mtime_ns + 10))
            with pytest.raises(ValueError):
                engine.registry.get_entry("paper")


# ----------------------------------------------------------------------
# startup recovery
# ----------------------------------------------------------------------


class TestRecoveryManager:
    def test_clean_shutdown_is_a_no_op(self, tmp_path, model_a):
        store = VersionedModelStore(tmp_path / "store")
        registry = tmp_path / "registry"
        v1 = store.save_version("paper", model_a)
        store.promote("paper", v1, registry)
        CleanShutdownMarker(registry).write()
        report = RecoveryManager(
            store=store, registry_dir=registry, marker=registry
        ).run()
        assert report.clean_shutdown is True
        assert report.repaired_anything is False
        # The marker is consumed: a crash before the *next* clean
        # shutdown will be seen as such.
        assert CleanShutdownMarker(registry).present() is False

    def test_recovers_corrupt_deployed_artifact(self, tmp_path, model_a):
        store = VersionedModelStore(tmp_path / "store")
        registry = tmp_path / "registry"
        v1 = store.save_version("paper", model_a)
        store.promote("paper", v1, registry)
        (registry / "paper.json").write_text("{torn-by-crash")
        report = RecoveryManager(
            store=store, registry_dir=registry, marker=registry
        ).run()
        assert report.clean_shutdown is False
        assert report.redeployed == {"paper": v1}
        assert report.quarantined_artifacts
        assert verify_file(registry / "paper.json")[0] is True

    def test_replays_journal_tail(self, tmp_path):
        journal_dir = tmp_path / "journal"
        journal = Journal(journal_dir, sync="flush")
        for i in range(8):
            journal.append(json.dumps({"i": i}).encode())
        journal.close()
        seg = sorted(journal_dir.glob("seg-*.wal"))[-1]
        with open(seg, "r+b") as handle:
            handle.truncate(seg.stat().st_size - 4)

        class Metrics:
            recovered = dropped = recoveries = 0

            def record_journal_recovered(self, n=1):
                Metrics.recovered += n

            def record_journal_dropped(self, n=1):
                Metrics.dropped += n

            def record_recovery(self):
                Metrics.recoveries += 1

        report = RecoveryManager(
            journal_dir=journal_dir, marker=tmp_path, metrics=Metrics()
        ).run()
        assert report.journal["recovered"] == 7
        assert report.journal["dropped"] == 1
        assert Metrics.recovered == 7 and Metrics.dropped == 1
        assert Metrics.recoveries == 1

    def test_report_serializes(self, tmp_path):
        report = RecoveryManager(marker=tmp_path).run()
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["clean_shutdown"] is False


# ----------------------------------------------------------------------
# fault kinds
# ----------------------------------------------------------------------


class TestFaultKinds:
    def test_partial_write_tears_the_tail(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"x" * 1000)
        plan = FaultPlan()
        plan.add("site", "partial_write")
        plan.fire("site", path=path)
        assert 0 < path.stat().st_size < 1000

    def test_disk_full_raises_enospc(self, tmp_path):
        plan = FaultPlan()
        plan.add("site", "disk_full")
        with pytest.raises(OSError) as excinfo:
            plan.fire("site", path=tmp_path / "f")
        import errno

        assert excinfo.value.errno == errno.ENOSPC

    def test_crash_at_raises_simulated_crash(self):
        plan = FaultPlan()
        plan.add("site", "crash_at", after=1)
        plan.fire("site")  # hit 0: armed but not due
        with pytest.raises(SimulatedCrash):
            plan.fire("site")

    def test_simulated_crash_escapes_except_exception(self):
        plan = FaultPlan()
        plan.add("site", "crash_at")
        with pytest.raises(SimulatedCrash):
            try:
                plan.fire("site")
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("SimulatedCrash must not be an Exception")

    def test_disk_full_during_save_leaves_store_recoverable(
        self, tmp_path, model_a
    ):
        plan = FaultPlan()
        plan.add(SITE_STORE_SAVE, "disk_full", count=1)
        store = VersionedModelStore(tmp_path / "store", faults=plan)
        with pytest.raises(OSError):
            store.save_version("paper", model_a)
        # The version file exists but the manifest never saw it; repair
        # adopts it.
        report = store.repair_manifest("paper")
        assert report["recovered"] == [1]
        assert store.latest_version("paper") == 1


# ----------------------------------------------------------------------
# randomized kill-point crash recovery
# ----------------------------------------------------------------------


CRASH_SITES = (SITE_STORE_SAVE, SITE_STORE_PROMOTE, SITE_JOURNAL_APPEND)


@pytest.mark.parametrize("seed", range(24))
def test_kill_point_recovery(tmp_path, seed, model_a, model_b):
    """Crash at a random injection point; recovery must restore service.

    Invariants checked after restart, for every seed:

    * ``/predict`` answers from a version the store can prove is good —
      the outputs equal the promoted version's own predictions;
    * the manifest names only files that exist and verify;
    * journal loss is bounded to the record being appended at the crash.
    """
    rng = random.Random(seed)
    store_root = tmp_path / "store"
    registry = tmp_path / "registry"
    journal_dir = tmp_path / "journal"

    # ---- before the crash: a healthy deployment with history ----------
    setup_store = VersionedModelStore(store_root)
    v1 = setup_store.save_version("paper", model_a)
    setup_store.promote("paper", v1, registry)

    plan = FaultPlan(seed=seed)
    site = rng.choice(CRASH_SITES)
    crash_after = rng.randrange(3)
    if rng.random() < 0.5:
        # Half the seeds tear bytes at the same hit the crash fires on,
        # modelling a partially-flushed write under the kill (rules fire
        # in add order, so the tear lands just before the crash raises).
        plan.add(site, "partial_write", after=crash_after, count=1)
    plan.add(site, "crash_at", after=crash_after)

    store = VersionedModelStore(store_root, faults=plan)
    journal = Journal(journal_dir, sync="flush", faults=plan)
    appended = 0
    crashed = False
    try:
        for step in range(6):
            journal.append(json.dumps({"step": step, "seed": seed}).encode())
            appended += 1
            version = store.save_version(
                "paper", model_b if step % 2 else model_a
            )
            store.promote("paper", version, registry)
    except SimulatedCrash:
        crashed = True
    assert crashed, "the fault plan must fire within the workload"
    # Simulated kill: the journal object is abandoned, never closed.

    # ---- restart: recovery, then serving ------------------------------
    recovered_store = VersionedModelStore(store_root)
    report = RecoveryManager(
        store=recovered_store,
        registry_dir=registry,
        journal_dir=journal_dir,
        marker=registry,
    ).run()
    assert report.clean_shutdown is False

    # Manifest names only existing, checksum-valid files; pointers valid.
    entries = recovered_store.list_versions("paper")
    assert entries, "recovery must never lose every version"
    versions = {entry["version"] for entry in entries}
    for entry in entries:
        path = store_root / "paper" / entry["file"]
        assert path.is_file()
        assert verify_file(path)[0] is True
    promoted = recovered_store.promoted_version("paper")
    assert promoted in versions

    # The registry serves, and serves the promoted version's exact bytes.
    engine = ServingEngine(registry, batching=False, tracing=False)
    with engine:
        outputs = engine.predict("paper", [CONFIG])
    expected = recovered_store.load_version("paper", promoted)
    np.testing.assert_allclose(
        outputs[0], expected.predict(np.asarray([CONFIG]))[0], rtol=1e-9
    )

    # Journal loss bounded to the record in flight at the crash: with
    # per-record flush, every fully-appended record except possibly the
    # torn tail survives.
    assert report.journal["recovered"] >= appended - 1
    assert report.journal["recovered"] + report.journal["dropped"] >= appended - 1


# ----------------------------------------------------------------------
# graceful drain
# ----------------------------------------------------------------------


class TestBatcherDrain:
    def test_drain_completes_queued_futures(self):
        release = threading.Event()
        calls = []

        def predict_fn(batch):
            calls.append(batch.shape[0])
            release.wait(1.0)
            return np.ones((batch.shape[0], 2))

        batcher = MicroBatcher(predict_fn, max_batch_size=1, max_wait_ms=0.0)
        futures = [batcher.submit([float(i)]) for i in range(6)]
        release.set()
        batcher.close(drain=True)
        for future in futures:
            np.testing.assert_allclose(future.result(1.0), [1.0, 1.0])
        assert sum(calls) == 6

    def test_fail_fast_close_still_fails_queued(self):
        gate = threading.Event()

        def predict_fn(batch):
            gate.wait(0.5)
            return np.zeros((batch.shape[0], 1))

        batcher = MicroBatcher(predict_fn, max_batch_size=1, max_wait_ms=0.0)
        futures = [batcher.submit([float(i)]) for i in range(4)]
        batcher.close(timeout=0.05, drain=False)
        gate.set()
        outcomes = []
        for future in futures:
            try:
                future.result(1.0)
                outcomes.append("ok")
            except BatcherClosedError:
                outcomes.append("closed")
        assert "closed" in outcomes  # queued work was failed, not stranded

    def test_submit_after_close_raises_either_mode(self):
        batcher = MicroBatcher(lambda b: np.zeros((b.shape[0], 1)))
        batcher.close(drain=True)
        with pytest.raises(BatcherClosedError):
            batcher.submit([1.0])


class TestEngineDrain:
    def test_drain_stops_admission_with_retry_after(self, tmp_path, model_a):
        registry = tmp_path / "registry"
        registry.mkdir()
        save_model(model_a, registry / "paper.json")
        engine = ServingEngine(registry, batching=False, tracing=False)
        engine.predict("paper", [CONFIG])
        assert engine.draining is False
        engine.drain()
        assert engine.draining is True
        with pytest.raises(OverloadedError) as excinfo:
            engine.predict("paper", [CONFIG])
        assert excinfo.value.retry_after > 0
        assert engine.health()["draining"] is True
        engine.drain()  # idempotent
        engine.close()

    def test_drain_completes_batched_inflight_work(self, tmp_path, model_a):
        registry = tmp_path / "registry"
        registry.mkdir()
        save_model(model_a, registry / "paper.json")
        engine = ServingEngine(
            registry, batching=True, max_wait_ms=20.0, tracing=False
        )
        results = []

        def worker():
            results.append(engine.predict("paper", [CONFIG]))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(2.0)
        engine.drain()
        assert len(results) == 4
        engine.close()


# ----------------------------------------------------------------------
# observation log durability
# ----------------------------------------------------------------------


class TestObservationLogDurability:
    def test_spill_and_journal_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="mutually exclusive"):
            ObservationLog(
                spill_path=tmp_path / "log.jsonl",
                journal_dir=tmp_path / "journal",
            )

    def test_replay_skips_malformed_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = ObservationLog(spill_path=path)
        log.record("paper", CONFIG, measured=[1.0] * 5, source="test")
        log.record("paper", CONFIG, measured=[2.0] * 5, source="test")
        log.close()
        with path.open("a") as handle:
            handle.write("{torn line\n")
            handle.write("not json at all\n")
        replayed = ObservationLog.replay(path)
        assert len(replayed) == 2
        assert replayed.journal_records_dropped == 2
        assert replayed.journal_records_recovered == 2

    def test_journal_backed_log_round_trips(self, tmp_path):
        journal_dir = tmp_path / "journal"
        log = ObservationLog(journal_dir=journal_dir, journal_sync="flush")
        for i in range(5):
            log.record(
                "paper", CONFIG, measured=[float(i)] * 5, source="test"
            )
        log.close()
        replayed = ObservationLog.replay_journal(journal_dir, resume=True)
        assert len(replayed) == 5
        assert replayed.journal is not None  # resume: keeps journaling
        replayed.record("paper", CONFIG, measured=[9.0] * 5, source="test")
        replayed.close()
        final = ObservationLog.replay_journal(journal_dir, resume=False)
        assert len(final) == 6
        assert final.journal is None

    def test_journal_torn_tail_bounded_loss(self, tmp_path):
        journal_dir = tmp_path / "journal"
        log = ObservationLog(journal_dir=journal_dir, journal_sync="flush")
        for i in range(6):
            log.record("paper", CONFIG, measured=[float(i)] * 5, source="t")
        log.close()
        seg = sorted(journal_dir.glob("seg-*.wal"))[-1]
        with open(seg, "r+b") as handle:
            handle.truncate(seg.stat().st_size - 5)
        replayed = ObservationLog.replay_journal(journal_dir)
        assert len(replayed) == 5
        assert replayed.journal_records_dropped == 1
        replayed.close()


# ----------------------------------------------------------------------
# concurrent promote vs rollback (satellite)
# ----------------------------------------------------------------------


def test_promote_rollback_hammer(tmp_path, model_a, model_b):
    """Concurrent promote/rollback must never leave a dangling manifest.

    Whatever interleaving wins, the manifest's promoted pointer names a
    version whose file exists and verifies, and the deployed artifact is
    checksum-valid JSON.
    """
    store = VersionedModelStore(tmp_path / "store")
    registry = tmp_path / "registry"
    v1 = store.save_version("paper", model_a)
    v2 = store.save_version("paper", model_b)
    store.promote("paper", v1, registry)
    store.promote("paper", v2, registry)
    stop = threading.Event()
    errors = []

    def promoter():
        toggle = [v1, v2]
        i = 0
        while not stop.is_set():
            try:
                store.promote("paper", toggle[i % 2], registry)
            except (RuntimeError, KeyError, ValueError) as exc:
                errors.append(exc)
            i += 1

    def rollbacker():
        while not stop.is_set():
            try:
                store.rollback("paper", registry)
            except RuntimeError:
                pass  # legitimately no previous yet
            except (KeyError, ValueError) as exc:
                errors.append(exc)

    threads = [
        threading.Thread(target=promoter),
        threading.Thread(target=rollbacker),
        threading.Thread(target=rollbacker),
    ]
    for thread in threads:
        thread.start()
    deadline = threading.Event()
    deadline.wait(0.5)
    stop.set()
    for thread in threads:
        thread.join(2.0)
    assert not errors, errors[:3]
    promoted = store.promoted_version("paper")
    source = tmp_path / "store" / "paper" / ("v%04d.json" % promoted)
    assert source.is_file()
    assert verify_file(source)[0] is True
    deployed = registry / "paper.json"
    assert verify_file(deployed)[0] is True
    json.loads(deployed.read_text())  # parseable, not torn
