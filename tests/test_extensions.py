"""Jacobians/attribution, ensembles, bootstrap CIs, learning curves, Pareto."""

import numpy as np
import pytest

from repro.analysis.attribution import attribute
from repro.analysis.pareto import pareto_frontier
from repro.model_selection.bootstrap import bootstrap_cv_errors
from repro.model_selection.cross_validation import cross_validate
from repro.model_selection.learning_curve import learning_curve
from repro.models.ensemble import NeuralEnsemble
from repro.models.linear import LinearWorkloadModel
from repro.models.neural import NeuralWorkloadModel
from repro.nn.jacobian import finite_difference_jacobian, input_jacobian
from repro.nn.mlp import MLP
from repro.workload.service import WorkloadConfig


def smooth_problem(n=50, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(1.0, 5.0, size=(n, 3))
    y = np.column_stack(
        [x[:, 0] ** 2 + x[:, 1], 3.0 * x[:, 2] + 0.5 * x[:, 0] * x[:, 1]]
    )
    return x, y


class TestJacobian:
    @pytest.mark.parametrize("activation", ["logistic", "tanh", "softplus"])
    def test_matches_finite_differences(self, activation, rng):
        net = MLP([3, 7, 2], hidden_activation=activation, seed=1)
        x = rng.normal(size=(5, 3))
        exact = input_jacobian(net, x)
        numeric = finite_difference_jacobian(net.predict, x)
        np.testing.assert_allclose(exact, numeric, rtol=1e-5, atol=1e-7)

    def test_shape(self, rng):
        net = MLP([4, 6, 3], seed=0)
        assert input_jacobian(net, rng.normal(size=(7, 4))).shape == (7, 3, 4)

    def test_single_sample(self, rng):
        net = MLP([2, 4, 1], seed=0)
        assert input_jacobian(net, np.zeros(2)).shape == (1, 1, 2)

    def test_linear_network_jacobian_is_its_weights(self):
        net = MLP([3, 2], seed=0)  # no hidden layer: y = xW + b
        jacobian = input_jacobian(net, np.zeros((1, 3)))
        np.testing.assert_allclose(jacobian[0], net.layers[0].weights.T)


class TestAttribution:
    def test_physical_units_recovered(self):
        x, y = smooth_problem()
        model = NeuralWorkloadModel(
            hidden=(12,), error_threshold=1e-4, max_epochs=6000, seed=0
        ).fit(x, y)
        report = attribute(
            model, x[:3], input_names=list("abc"), output_names=["u", "v"]
        )
        numeric = finite_difference_jacobian(model.predict, x[:3])
        np.testing.assert_allclose(
            report.jacobian, numeric, rtol=1e-4, atol=1e-5
        )

    def test_effect_lookup_and_ranking(self):
        x, y = smooth_problem()
        model = NeuralWorkloadModel(
            hidden=(12,), error_threshold=1e-4, max_epochs=6000, seed=0
        ).fit(x, y)
        report = attribute(
            model,
            np.array([[3.0, 3.0, 3.0]]),
            input_names=list("abc"),
            output_names=["u", "v"],
        )
        # du/da ~ 2a = 6 dominates du/db ~ 1 and du/dc ~ 0.
        ranked = report.ranked_effects("u")
        assert list(ranked)[0] == "a"
        assert report.effect("u", "a") == pytest.approx(6.0, rel=0.3)
        assert "Local effects" in report.to_text()

    def test_requires_fit_and_joint(self):
        model = NeuralWorkloadModel(hidden=(4,))
        with pytest.raises(RuntimeError):
            attribute(model, np.zeros((1, 3)))
        x, y = smooth_problem(n=20)
        separate = NeuralWorkloadModel(
            hidden=(4,), joint=False, max_epochs=5, seed=0
        ).fit(x, y)
        with pytest.raises(ValueError, match="joint"):
            attribute(separate, x[:1])


class TestEnsemble:
    @pytest.fixture(scope="class")
    def fitted(self):
        x, y = smooth_problem()
        ensemble = NeuralEnsemble(
            n_members=3,
            seed=0,
            hidden=(10,),
            error_threshold=0.01,
            max_epochs=2000,
        )
        return ensemble.fit(x, y), x, y

    def test_members_differ(self, fitted):
        ensemble, x, _ = fitted
        a = ensemble.members_[0].predict(x)
        b = ensemble.members_[1].predict(x)
        assert not np.allclose(a, b)

    def test_mean_is_member_average(self, fitted):
        ensemble, x, _ = fitted
        prediction = ensemble.predict_with_uncertainty(x)
        np.testing.assert_allclose(
            prediction.mean, prediction.members.mean(axis=0)
        )
        np.testing.assert_allclose(ensemble.predict(x), prediction.mean)

    def test_interval_brackets_mean(self, fitted):
        ensemble, x, _ = fitted
        prediction = ensemble.predict_with_uncertainty(x)
        lower, upper = prediction.interval(2.0)
        assert np.all(lower <= prediction.mean)
        assert np.all(prediction.mean <= upper)

    def test_uncertainty_grows_out_of_distribution(self, fitted):
        ensemble, x, _ = fitted
        inside = ensemble.predict_with_uncertainty(x)
        outside = ensemble.predict_with_uncertainty(x + 10.0)  # far away
        assert (
            outside.relative_spread.mean() > inside.relative_spread.mean()
        )

    def test_hotspots_prefer_uncertain_inputs(self, fitted):
        ensemble, x, _ = fitted
        probe = np.vstack([x[:5], x[:1] + 10.0])  # last row is far out
        hotspots = ensemble.disagreement_hotspots(probe, top_k=1)
        assert hotspots == [5]

    def test_validation(self):
        with pytest.raises(ValueError):
            NeuralEnsemble(n_members=1)

    def test_model_kwargs_forwarded(self):
        ensemble = NeuralEnsemble(n_members=2, seed=0, hidden=(5,))
        x, y = smooth_problem(n=15)
        ensemble.model_kwargs["max_epochs"] = 3
        ensemble.fit(x, y)
        assert all(m.hidden == (5,) for m in ensemble.members_)


class TestBootstrap:
    @pytest.fixture(scope="class")
    def cv_report(self):
        x, y = smooth_problem(n=60)
        return cross_validate(
            lambda t: LinearWorkloadModel(),
            x,
            y + np.random.default_rng(0).normal(scale=0.3, size=y.shape),
            k=5,
            seed=0,
            output_names=["u", "v"],
        )

    def test_interval_contains_point_estimate(self, cv_report):
        result = bootstrap_cv_errors(cv_report, n_resamples=300, seed=0)
        for interval in result.per_indicator + [result.overall]:
            assert interval.lower <= interval.estimate <= interval.upper

    def test_higher_confidence_wider_interval(self, cv_report):
        narrow = bootstrap_cv_errors(
            cv_report, n_resamples=300, confidence=0.5, seed=0
        )
        wide = bootstrap_cv_errors(
            cv_report, n_resamples=300, confidence=0.99, seed=0
        )
        assert (
            wide.overall.upper - wide.overall.lower
            > narrow.overall.upper - narrow.overall.lower
        )

    def test_reproducible(self, cv_report):
        a = bootstrap_cv_errors(cv_report, n_resamples=100, seed=3)
        b = bootstrap_cv_errors(cv_report, n_resamples=100, seed=3)
        assert a.overall == b.overall

    def test_text(self, cv_report):
        text = bootstrap_cv_errors(cv_report, n_resamples=100, seed=0).to_text()
        assert "CI" in text and "overall" in text

    def test_validation(self, cv_report):
        with pytest.raises(ValueError):
            bootstrap_cv_errors(cv_report, n_resamples=1)
        with pytest.raises(ValueError):
            bootstrap_cv_errors(cv_report, confidence=1.0)


class TestLearningCurve:
    def test_error_decreases_with_more_samples(self):
        x, y = smooth_problem(n=120)
        noisy = y + np.random.default_rng(1).normal(scale=0.5, size=y.shape)
        curve = learning_curve(
            lambda t: LinearWorkloadModel(),
            x,
            noisy,
            sizes=[10, 40, 120],
            k=5,
            seed=0,
        )
        assert curve.errors[0] > curve.errors[-1]

    def test_samples_for_error(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(1.0, 5.0, size=(100, 3))
        y = x @ np.array([[1.0], [2.0], [-1.0]]) + 4.0  # exactly linear
        curve = learning_curve(
            lambda t: LinearWorkloadModel(), x, y, sizes=[10, 50, 100], k=5
        )
        # Linear data: even 10 samples fit (near) exactly.
        assert curve.samples_for_error(0.05) == 10
        assert curve.samples_for_error(-1.0) is None

    def test_size_validation(self):
        x, y = smooth_problem(n=30)
        with pytest.raises(ValueError):
            learning_curve(lambda t: LinearWorkloadModel(), x, y, sizes=[])
        with pytest.raises(ValueError):
            learning_curve(
                lambda t: LinearWorkloadModel(), x, y, sizes=[3], k=5
            )
        with pytest.raises(ValueError):
            learning_curve(
                lambda t: LinearWorkloadModel(), x, y, sizes=[500], k=5
            )

    def test_text(self):
        x, y = smooth_problem(n=40)
        curve = learning_curve(
            lambda t: LinearWorkloadModel(), x, y, sizes=[10, 40], k=5
        )
        assert "samples" in curve.to_text()


class _TradeoffModel:
    """Throughput and latency both rise with default_threads: a clean
    2-point trade plus dominated interior points via a penalty."""

    def predict(self, x):
        x = np.asarray(x, dtype=float)
        d = x[:, 1]
        rt = 0.05 + 0.01 * d
        tps = 300.0 + 10.0 * d
        # web != 18 strictly hurts both objectives -> dominated points.
        penalty = np.abs(x[:, 3] - 18.0)
        return np.column_stack(
            [rt + 0.01 * penalty] * 4 + [tps - 5.0 * penalty]
        )


class TestPareto:
    CONFIGS = [
        WorkloadConfig(500, d, 16, w)
        for d in (4, 8, 12, 16)
        for w in (16, 18, 20)
    ]

    def test_frontier_keeps_only_web18(self):
        frontier = pareto_frontier(_TradeoffModel(), self.CONFIGS)
        assert all(p.config.web_threads == 18 for p in frontier)
        # All four default levels trade throughput vs latency: none dominate.
        assert len(frontier) == 4

    def test_endpoints(self):
        frontier = pareto_frontier(_TradeoffModel(), self.CONFIGS)
        assert frontier.best_throughput().config.default_threads == 16
        assert frontier.best_latency().config.default_threads == 4

    def test_knee_is_on_the_frontier(self):
        frontier = pareto_frontier(_TradeoffModel(), self.CONFIGS)
        assert frontier.knee() in list(frontier)

    def test_sorted_by_throughput(self):
        frontier = pareto_frontier(_TradeoffModel(), self.CONFIGS)
        tps = [p.throughput for p in frontier]
        assert tps == sorted(tps, reverse=True)

    def test_text(self):
        frontier = pareto_frontier(_TradeoffModel(), self.CONFIGS)
        assert "Pareto frontier" in frontier.to_text()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            pareto_frontier(_TradeoffModel(), [])
