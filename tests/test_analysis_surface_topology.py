"""Response surfaces and the Section 5 shape taxonomy."""

import numpy as np
import pytest

from repro.analysis.surface import ResponseSurface, sweep
from repro.analysis.topology import (
    SurfaceKind,
    classify_profile,
    classify_surface,
)


def make_surface(z, rows=None, cols=None, **kwargs):
    z = np.asarray(z, dtype=float)
    rows = np.arange(z.shape[0]) if rows is None else np.asarray(rows)
    cols = np.arange(z.shape[1]) if cols is None else np.asarray(cols)
    defaults = dict(
        row_param="default_threads",
        col_param="web_threads",
        row_values=rows,
        col_values=cols,
        z=z,
        indicator="test",
        fixed={"injection_rate": 560, "mfg_threads": 16},
    )
    defaults.update(kwargs)
    return ResponseSurface(**defaults)


def grid_from(fn, rows, cols):
    return np.array([[fn(r, c) for c in cols] for r in rows])


class _GridModel:
    """Deterministic 4-in/1-out model for sweep tests."""

    def predict(self, x):
        x = np.asarray(x)
        # One output column: a function of default (col 1) and web (col 3).
        z = (x[:, 1] - 10.0) ** 2 + (x[:, 3] - 18.0) ** 2
        return z.reshape(-1, 1)


class TestSweep:
    def test_grid_layout(self):
        surface = sweep(
            _GridModel(),
            indicator_index=0,
            indicator_name="quadratic",
            row_param="default_threads",
            row_values=[8, 10, 12],
            col_param="web_threads",
            col_values=[16, 18, 20],
            fixed={"injection_rate": 560, "mfg_threads": 16},
        )
        assert surface.shape == (3, 3)
        # Center of the bowl.
        assert surface.z[1, 1] == pytest.approx(0.0)
        assert surface.minimum() == (10.0, 18.0, 0.0)

    def test_missing_fixed_value_rejected(self):
        with pytest.raises(ValueError, match="fixed values missing"):
            sweep(
                _GridModel(),
                0,
                "z",
                "default_threads",
                [1, 2],
                "web_threads",
                [1, 2],
                fixed={"injection_rate": 560},
            )

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="unknown swept"):
            sweep(
                _GridModel(),
                0,
                "z",
                "turbo_mode",
                [1],
                "web_threads",
                [1],
                fixed={},
            )


class TestResponseSurface:
    def test_caption_tuple_matches_paper_format(self):
        surface = make_surface(np.zeros((2, 2)))
        assert surface.caption_tuple() == "(560, x, 16, y)"

    def test_extrema(self):
        z = np.array([[5.0, 1.0], [9.0, 2.0]])
        surface = make_surface(z, rows=[10, 20], cols=[14, 16])
        assert surface.minimum() == (10.0, 16.0, 1.0)
        assert surface.maximum() == (20.0, 14.0, 9.0)

    def test_slices(self):
        z = np.array([[1.0, 2.0], [3.0, 4.0]])
        surface = make_surface(z, rows=[0, 10], cols=[5, 6])
        np.testing.assert_allclose(surface.row_slice(10), [3.0, 4.0])
        np.testing.assert_allclose(surface.col_slice(6), [2.0, 4.0])
        # Nearest-value lookup.
        np.testing.assert_allclose(surface.row_slice(9.4), [3.0, 4.0])

    def test_valley_path_tracks_per_row_minimum(self):
        rows = [0, 1, 2]
        cols = [0, 1, 2, 3]
        z = grid_from(lambda r, c: (c - r) ** 2, rows, cols)
        surface = make_surface(z, rows=rows, cols=cols)
        path = surface.valley_path()
        assert [p[1] for p in path] == [0.0, 1.0, 2.0]
        assert all(p[2] == 0.0 for p in path)

    def test_relative_span(self):
        surface = make_surface(np.array([[1.0, 10.0]]))
        assert surface.relative_span() == pytest.approx(10.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            make_surface(np.zeros((2, 2)), rows=[1, 2, 3])


class TestClassifyProfile:
    def test_flat(self):
        assert classify_profile(np.array([1.0, 1.001, 0.999])) == SurfaceKind.FLAT

    def test_valley(self):
        assert (
            classify_profile(np.array([5.0, 1.0, 4.0])) == SurfaceKind.VALLEY
        )

    def test_hill(self):
        assert classify_profile(np.array([1.0, 5.0, 2.0])) == SurfaceKind.HILL

    def test_slope(self):
        assert (
            classify_profile(np.array([1.0, 2.0, 3.0, 4.0])) == SurfaceKind.SLOPE
        )

    def test_margin_suppresses_noise_dips(self):
        # A 1% dip on a otherwise monotone profile is not a valley.
        values = np.array([10.0, 5.0, 4.95, 5.05, 1.0])
        assert classify_profile(values, margin=0.10) == SurfaceKind.SLOPE

    def test_needs_three_points(self):
        with pytest.raises(ValueError):
            classify_profile(np.array([1.0, 2.0]))


class TestClassifySurface:
    ROWS = np.arange(0, 21, 2)
    COLS = np.arange(14, 23)

    def test_flat_surface(self):
        surface = make_surface(np.ones((5, 5)))
        assert classify_surface(surface).kind == SurfaceKind.FLAT

    def test_parallel_slopes_identifies_insensitive_param(self):
        # Varies only with web (columns): the paper's Figure 4 situation.
        z = grid_from(lambda r, c: 10.0 - 0.4 * c, self.ROWS, self.COLS)
        surface = make_surface(z, rows=self.ROWS, cols=self.COLS)
        result = classify_surface(surface)
        assert result.kind == SurfaceKind.PARALLEL_SLOPES
        assert result.insensitive_param == "default_threads"

    def test_valley_along_columns(self):
        # A trough in the web direction whose floor drifts with default —
        # the paper's Figure 7 geometry.
        z = grid_from(
            lambda r, c: 1.0 + 0.5 * (c - 18.0 - r * 0.1) ** 2,
            self.ROWS,
            self.COLS,
        )
        surface = make_surface(z, rows=self.ROWS, cols=self.COLS)
        result = classify_surface(surface)
        assert result.kind == SurfaceKind.VALLEY
        assert result.along_param == "web_threads"

    def test_hill_with_interior_peak(self):
        # A dome peaked at (10, 18) — the paper's Figure 8 geometry.
        z = grid_from(
            lambda r, c: 500.0 - 2.0 * (r - 10.0) ** 2 - 3.0 * (c - 18.0) ** 2,
            self.ROWS,
            self.COLS,
        )
        surface = make_surface(z, rows=self.ROWS, cols=self.COLS)
        assert classify_surface(surface).kind == SurfaceKind.HILL

    def test_plateau_with_noise_bump_is_not_a_hill(self):
        z = np.full((11, 9), 100.0)
        z[5, 4] = 101.0  # interior bump barely above a flat plateau
        surface = make_surface(z, rows=self.ROWS, cols=self.COLS)
        assert classify_surface(surface).kind != SurfaceKind.HILL

    def test_diagonal_slope(self):
        z = grid_from(lambda r, c: r + c, self.ROWS, self.COLS)
        surface = make_surface(z, rows=self.ROWS, cols=self.COLS)
        assert classify_surface(surface).kind == SurfaceKind.SLOPE

    def test_log_scale_reveals_structure_next_to_walls(self):
        # A 10x wall at low web plus a mild (35%) interior valley whose
        # floor drifts with default: linear classification sees only the
        # wall, log-scale sees the valley.
        def fn(r, c):
            wall = 10.0 if c == 14 else 0.0
            return 1.0 + wall + 0.35 * abs(c - 18.0) / 4.0 + 0.08 * r

        z = grid_from(fn, self.ROWS, self.COLS)
        surface = make_surface(z, rows=self.ROWS, cols=self.COLS)
        linear = classify_surface(surface, margin=0.05)
        logarithmic = classify_surface(surface, margin=0.05, log_scale=True)
        assert logarithmic.kind == SurfaceKind.VALLEY
        assert linear.kind != SurfaceKind.VALLEY

    def test_log_scale_requires_positive(self):
        surface = make_surface(np.array([[1.0, -1.0], [1.0, 1.0]]))
        with pytest.raises(ValueError):
            classify_surface(surface, log_scale=True)

    def test_scores_reported(self):
        z = grid_from(lambda r, c: r + c, self.ROWS, self.COLS)
        surface = make_surface(z, rows=self.ROWS, cols=self.COLS)
        result = classify_surface(surface)
        assert "variation_along_row_param" in result.scores
