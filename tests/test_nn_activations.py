"""Activation functions: values, derivatives, registry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.activations import (
    HardLimiter,
    Identity,
    LeakyReLU,
    Logistic,
    ReLU,
    Softplus,
    Tanh,
    available_activations,
    get_activation,
)

ALL_DIFFERENTIABLE = [Logistic(), Tanh(), ReLU(), LeakyReLU(), Softplus(), Identity()]


class TestLogistic:
    def test_midpoint_is_half(self):
        assert Logistic().forward(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_range_is_open_unit_interval(self):
        # |x| <= 30 keeps 1 - f(x) above float64 resolution.
        x = np.linspace(-30, 30, 201)
        out = Logistic().forward(x)
        assert np.all(out > 0.0) and np.all(out < 1.0)

    def test_strictly_increasing(self):
        x = np.linspace(-10, 10, 101)
        out = Logistic().forward(x)
        assert np.all(np.diff(out) > 0)

    def test_slope_parameter_sharpens_boundary(self):
        # Paper Figure 2: larger slope approaches a hard limiter.
        x = np.array([0.5])
        gentle = Logistic(slope=1.0).forward(x)[0]
        sharp = Logistic(slope=10.0).forward(x)[0]
        assert sharp > gentle
        assert sharp == pytest.approx(1.0, abs=0.01)

    def test_extreme_inputs_are_stable(self):
        out = Logistic().forward(np.array([-1000.0, 1000.0]))
        assert np.all(np.isfinite(out))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)

    def test_rejects_nonpositive_slope(self):
        with pytest.raises(ValueError):
            Logistic(slope=0.0)
        with pytest.raises(ValueError):
            Logistic(slope=-1.0)


class TestShapes:
    def test_tanh_is_odd(self):
        x = np.linspace(-3, 3, 13)
        np.testing.assert_allclose(Tanh().forward(-x), -Tanh().forward(x))

    def test_relu_zeroes_negatives(self):
        out = ReLU().forward(np.array([-2.0, 0.0, 3.0]))
        np.testing.assert_allclose(out, [0.0, 0.0, 3.0])

    def test_leaky_relu_leaks(self):
        out = LeakyReLU(alpha=0.1).forward(np.array([-10.0, 10.0]))
        np.testing.assert_allclose(out, [-1.0, 10.0])

    def test_leaky_relu_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            LeakyReLU(alpha=-0.5)

    def test_softplus_positive_and_asymptotically_linear(self):
        out = Softplus().forward(np.array([-40.0, 0.0, 40.0]))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(np.log(2.0))
        assert out[2] == pytest.approx(40.0, rel=1e-9)

    def test_identity_passes_through(self):
        x = np.array([-1.5, 0.0, 2.5])
        np.testing.assert_allclose(Identity().forward(x), x)

    def test_hard_limiter_is_a_step(self):
        out = HardLimiter().forward(np.array([-0.1, 0.0, 0.1]))
        np.testing.assert_allclose(out, [0.0, 1.0, 1.0])

    def test_hard_limiter_derivative_raises(self):
        x = np.array([0.5])
        with pytest.raises(ValueError):
            HardLimiter().derivative(x, HardLimiter().forward(x))


class TestDerivatives:
    @pytest.mark.parametrize(
        "activation", ALL_DIFFERENTIABLE, ids=lambda a: a.name
    )
    def test_matches_finite_difference(self, activation):
        # Stay away from ReLU's kink at 0.
        x = np.array([-2.3, -0.7, 0.4, 1.9])
        eps = 1e-6
        fx = activation.forward(x)
        analytic = activation.derivative(x, fx)
        numeric = (activation.forward(x + eps) - activation.forward(x - eps)) / (
            2 * eps
        )
        np.testing.assert_allclose(analytic, numeric, rtol=1e-5, atol=1e-7)

    def test_logistic_derivative_uses_slope(self):
        x = np.array([0.0])
        act = Logistic(slope=3.0)
        assert act.derivative(x, act.forward(x))[0] == pytest.approx(3.0 * 0.25)


class TestRegistry:
    def test_lookup_by_name(self):
        assert isinstance(get_activation("tanh"), Tanh)

    def test_lookup_with_kwargs(self):
        act = get_activation("logistic", slope=2.5)
        assert act.slope == 2.5

    def test_lookup_from_config_dict(self):
        act = get_activation({"name": "logistic", "slope": 4.0})
        assert isinstance(act, Logistic) and act.slope == 4.0

    def test_instance_passthrough(self):
        act = Tanh()
        assert get_activation(act) is act

    def test_instance_with_kwargs_rejected(self):
        with pytest.raises(ValueError):
            get_activation(Tanh(), slope=2.0)

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(KeyError, match="unknown activation"):
            get_activation("sigmoidal-flux")

    def test_available_contains_paper_activation(self):
        assert "logistic" in available_activations()

    def test_config_round_trip(self):
        original = Logistic(slope=1.7)
        rebuilt = get_activation(original.config())
        assert rebuilt == original


@given(st.floats(min_value=-30, max_value=30))
@settings(max_examples=50, deadline=None)
def test_logistic_complements_to_one(x):
    """f(x) + f(-x) == 1 for any symmetric sigmoid."""
    act = Logistic()
    total = act.forward(np.array([x]))[0] + act.forward(np.array([-x]))[0]
    assert total == pytest.approx(1.0, abs=1e-12)


@given(
    st.lists(st.floats(min_value=-20, max_value=20), min_size=1, max_size=20)
)
@settings(max_examples=50, deadline=None)
def test_differentiable_activations_preserve_shape(values):
    x = np.array(values)
    for activation in ALL_DIFFERENTIABLE:
        assert activation.forward(x).shape == x.shape
