"""Sobol indices, disturbances, and timeline metrics."""

import numpy as np
import pytest

from repro.analysis.sobol import sobol_indices
from repro.workload.disturbances import (
    CpuHog,
    DatabaseSlowdown,
    Disturbance,
    TrafficSurge,
)
from repro.workload.sampler import ConfigSpace, ParameterRange
from repro.workload.service import ThreeTierWorkload, WorkloadConfig
from repro.workload.timeline import Timeline, timeline_from_transactions
from repro.workload.transactions import Transaction, standard_mix


class _AdditiveModel:
    """y0 = x0 (strong, no interactions); y1 = x1 * x3 (pure interaction)."""

    def predict(self, x):
        x = np.asarray(x, dtype=float)
        return np.column_stack([x[:, 0], x[:, 1] * x[:, 3]])


SPACE = ConfigSpace(
    [
        ParameterRange("injection_rate", 0, 1, integer=False),
        ParameterRange("default_threads", 0, 1, integer=False),
        ParameterRange("mfg_threads", 0, 1, integer=False),
        ParameterRange("web_threads", 0, 1, integer=False),
    ]
)


class TestSobol:
    @pytest.fixture(scope="class")
    def indices(self):
        return sobol_indices(
            _AdditiveModel(),
            SPACE,
            n_samples=4096,
            seed=0,
            output_names=["linear", "interaction"],
        )

    def test_linear_output_fully_explained_by_x0(self, indices):
        first = indices.first_order("linear")
        assert first["injection_rate"] == pytest.approx(1.0, abs=0.05)
        assert first["default_threads"] == pytest.approx(0.0, abs=0.05)

    def test_total_equals_first_without_interactions(self, indices):
        gap = indices.interaction_strength("linear")["injection_rate"]
        assert abs(gap) < 0.05

    def test_interaction_output_detected(self, indices):
        # For y = x1 * x3 on U[0,1]: S_i ~ 0.545 each, S_Ti ~ 0.455 + ...
        first = indices.first_order("interaction")
        total = indices.total_order("interaction")
        assert first["default_threads"] > 0.3
        assert first["web_threads"] > 0.3
        assert total["default_threads"] > first["default_threads"] - 0.05
        # The uninvolved parameters carry ~nothing.
        assert total["mfg_threads"] < 0.05

    def test_indices_within_unit_interval(self, indices):
        assert np.all(indices.first >= 0) and np.all(indices.first <= 1)
        assert np.all(indices.total >= 0) and np.all(indices.total <= 1)

    def test_text(self, indices):
        text = indices.to_text()
        assert "first-order / total-order" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            sobol_indices(_AdditiveModel(), SPACE, n_samples=4)


@pytest.fixture(scope="module")
def disturbed_run():
    workload = ThreeTierWorkload(
        warmup=1.0, duration=8.0, seed=2, collect_transactions=True
    )
    config = WorkloadConfig(400, 14, 16, 18)
    calm = workload.run(config)
    shaken = workload.run(
        config,
        disturbances=[DatabaseSlowdown(start=4.0, duration=2.0, factor=5.0)],
    )
    return calm, shaken


class TestDisturbances:
    def test_db_slowdown_hurts_the_run(self, disturbed_run):
        calm, shaken = disturbed_run
        assert (
            shaken.indicators["dealer_browse_rt"]
            > calm.indicators["dealer_browse_rt"]
        )
        assert (
            shaken.indicators["effective_tps"]
            < calm.indicators["effective_tps"]
        )

    def test_mfg_partition_slowdown_targets_manufacturing(self):
        workload = ThreeTierWorkload(warmup=0.5, duration=5.0, seed=3)
        config = WorkloadConfig(400, 14, 16, 18)
        calm = workload.run(config)
        shaken = workload.run(
            config,
            disturbances=[
                DatabaseSlowdown(
                    start=1.0, duration=4.0, factor=4.0, partition="mfg"
                )
            ],
        )
        mfg_hit = (
            shaken.indicators["manufacturing_rt"]
            / calm.indicators["manufacturing_rt"]
        )
        browse_hit = (
            shaken.indicators["dealer_browse_rt"]
            / calm.indicators["dealer_browse_rt"]
        )
        assert mfg_hit > 1.5
        assert browse_hit < mfg_hit

    def test_traffic_surge_raises_injection(self):
        workload = ThreeTierWorkload(warmup=0.5, duration=4.0, seed=4)
        config = WorkloadConfig(300, 14, 16, 18)
        calm = workload.run(config)
        surged = workload.run(
            config,
            disturbances=[TrafficSurge(start=0.0, duration=10.0, multiplier=1.5)],
        )
        assert surged.injected > 1.3 * calm.injected

    def test_cpu_hog_slows_cpu_bound_work(self):
        workload = ThreeTierWorkload(warmup=0.5, duration=4.0, seed=5)
        config = WorkloadConfig(450, 14, 16, 18)
        calm = workload.run(config)
        hogged = workload.run(
            config,
            disturbances=[CpuHog(start=0.5, duration=4.0, cores=4)],
        )
        assert (
            hogged.indicators["dealer_browse_rt"]
            > calm.indicators["dealer_browse_rt"]
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            DatabaseSlowdown(start=-1.0, duration=1.0)
        with pytest.raises(ValueError):
            DatabaseSlowdown(start=0.0, duration=0.0)
        with pytest.raises(ValueError):
            DatabaseSlowdown(start=0.0, duration=1.0, factor=0.0)
        with pytest.raises(ValueError):
            DatabaseSlowdown(start=0.0, duration=1.0, partition="replica")
        with pytest.raises(ValueError):
            TrafficSurge(start=0.0, duration=1.0, multiplier=0.0)
        with pytest.raises(ValueError):
            CpuHog(start=0.0, duration=1.0, cores=0)

    def test_non_disturbance_rejected(self):
        workload = ThreeTierWorkload(warmup=0.2, duration=1.0, seed=0)
        with pytest.raises(TypeError):
            workload.run(
                WorkloadConfig(200, 8, 8, 8), disturbances=["boom"]
            )


class TestTimeline:
    def test_windows_cover_the_run(self, disturbed_run):
        _, shaken = disturbed_run
        timeline = timeline_from_transactions(
            shaken.transactions, interval=1.0, start=1.0
        )
        assert timeline.n_windows >= 7
        assert timeline.indicator("effective_tps").shape == (
            timeline.n_windows,
        )

    def test_disturbance_visible_then_recovers(self, disturbed_run):
        _, shaken = disturbed_run
        timeline = timeline_from_transactions(
            shaken.transactions, interval=1.0, start=1.0
        )
        deviation = timeline.peak_deviation(
            "dealer_browse_rt",
            after=4.0,
            baseline=timeline.baseline("dealer_browse_rt", until=4.0),
        )
        assert deviation > 1.0  # the spike is unmistakable
        recovery = timeline.recovery_time(
            "dealer_browse_rt",
            disturbance_end=6.0,
            baseline_until=4.0,
            tolerance=0.5,
        )
        assert recovery is not None and recovery <= 3.0

    def test_effective_tps_windows_sum_to_total(self, disturbed_run):
        calm, _ = disturbed_run
        timeline = timeline_from_transactions(
            calm.transactions, interval=1.0, start=1.0, end=9.0
        )
        windowed_total = float(
            np.nansum(timeline.indicator("effective_tps")) * timeline.interval
        )
        assert windowed_total == pytest.approx(
            calm.effective_completed, rel=0.02
        )

    def test_unknown_indicator(self, disturbed_run):
        calm, _ = disturbed_run
        timeline = timeline_from_transactions(calm.transactions)
        with pytest.raises(KeyError):
            timeline.indicator("latency_of_dreams")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            timeline_from_transactions([])
        pending = Transaction(txn_class=standard_mix()[0], arrived_at=0.0)
        with pytest.raises(ValueError):
            timeline_from_transactions([pending])

    def test_text(self, disturbed_run):
        calm, _ = disturbed_run
        timeline = timeline_from_transactions(calm.transactions)
        assert "effective_tps" in timeline.to_text()
