"""The paper's error metric and the standard regression metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model_selection.metrics import (
    harmonic_mean,
    harmonic_mean_relative_error,
    max_absolute_error,
    mean_absolute_error,
    mean_relative_error,
    prediction_accuracy,
    r_squared,
    relative_errors,
    root_mean_squared_error,
)


class TestHarmonicMean:
    def test_known_value(self):
        # HM(1, 2, 4) = 3 / (1 + 0.5 + 0.25) = 12/7
        assert harmonic_mean(np.array([1.0, 2.0, 4.0])) == pytest.approx(12 / 7)

    def test_zero_dominates(self):
        assert harmonic_mean(np.array([0.0, 5.0])) == 0.0

    def test_leq_arithmetic_mean(self, rng):
        values = rng.uniform(0.1, 10.0, size=20)
        assert harmonic_mean(values) <= values.mean() + 1e-12

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            harmonic_mean(np.array([-1.0, 2.0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            harmonic_mean(np.array([]))


class TestRelativeErrors:
    def test_elementwise(self):
        errors = relative_errors(
            np.array([[1.1, 2.0]]), np.array([[1.0, 4.0]])
        )
        np.testing.assert_allclose(errors, [[0.1, 0.5]])

    def test_zero_actual_rejected(self):
        with pytest.raises(ValueError, match="zero actual"):
            relative_errors(np.array([1.0]), np.array([0.0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            relative_errors(np.zeros((2, 2)), np.zeros((2, 3)))


class TestPaperMetric:
    def test_per_indicator_columns(self):
        predicted = np.array([[1.1, 10.0], [0.9, 30.0]])
        actual = np.array([[1.0, 20.0], [1.0, 20.0]])
        per_column = harmonic_mean_relative_error(predicted, actual, axis=0)
        assert per_column.shape == (2,)
        assert per_column[0] == pytest.approx(0.1)
        assert per_column[1] == pytest.approx(0.5)

    def test_scalar_over_all_elements(self):
        predicted = np.array([[1.1], [0.9]])
        actual = np.ones((2, 1))
        assert harmonic_mean_relative_error(predicted, actual) == pytest.approx(
            0.1
        )

    def test_perfect_prediction_is_zero_error(self):
        y = np.array([[2.0, 3.0]])
        assert harmonic_mean_relative_error(y, y) == 0.0

    def test_invalid_axis(self):
        with pytest.raises(ValueError):
            harmonic_mean_relative_error(np.ones((2, 2)), np.ones((2, 2)), axis=1)

    def test_accuracy_complements_error(self):
        predicted = np.array([[1.05]])
        actual = np.array([[1.0]])
        assert prediction_accuracy(predicted, actual) == pytest.approx(0.95)

    def test_harmonic_leq_arithmetic_relative_error(self, rng):
        predicted = rng.uniform(0.5, 2.0, size=(20, 3))
        actual = rng.uniform(0.5, 2.0, size=(20, 3))
        assert harmonic_mean_relative_error(predicted, actual) <= (
            mean_relative_error(predicted, actual) + 1e-12
        )


class TestStandardMetrics:
    def test_mae(self):
        assert mean_absolute_error(
            np.array([1.0, 3.0]), np.array([0.0, 0.0])
        ) == pytest.approx(2.0)

    def test_rmse(self):
        assert root_mean_squared_error(
            np.array([3.0, 4.0]), np.array([0.0, 0.0])
        ) == pytest.approx(np.sqrt(12.5))

    def test_max_error(self):
        assert max_absolute_error(
            np.array([1.0, -7.0]), np.array([0.0, 0.0])
        ) == pytest.approx(7.0)

    def test_r_squared_perfect(self, rng):
        y = rng.normal(size=(10, 2))
        assert r_squared(y, y) == pytest.approx(1.0)

    def test_r_squared_mean_predictor_is_zero(self, rng):
        y = rng.normal(size=(20, 1))
        mean_prediction = np.full_like(y, y.mean())
        assert r_squared(mean_prediction, y) == pytest.approx(0.0)

    def test_r_squared_worse_than_mean_is_negative(self):
        y = np.array([[1.0], [2.0], [3.0]])
        bad = np.array([[3.0], [1.0], [5.0]])
        assert r_squared(bad, y) < 0.0

    def test_r_squared_constant_column(self):
        y = np.full((5, 1), 2.0)
        assert r_squared(y, y) == 1.0
        assert r_squared(y + 1.0, y) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_absolute_error(np.zeros((0, 1)), np.zeros((0, 1)))


@given(
    st.lists(
        st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=30
    )
)
@settings(max_examples=60, deadline=None)
def test_harmonic_mean_bounded_by_min_and_max(values):
    hm = harmonic_mean(np.array(values))
    assert min(values) - 1e-9 <= hm <= max(values) + 1e-9
