"""The multicore round-robin CPU scheduler."""

import pytest

from repro.workload.cpu import CpuJob, Execute, MultiCoreCpu
from repro.workload.des import Delay, Simulator


def burn(sim, cpu, work, done, name=""):
    def flow():
        yield Execute(cpu, work)
        done.append((name or "job", sim.now))

    return flow()


def make_cpu(sim, **kwargs):
    defaults = dict(cores=2, quantum=1.0, switch_cost=0.0, pollution_factor=0.0)
    defaults.update(kwargs)
    return MultiCoreCpu(sim, **defaults)


class TestBasicExecution:
    def test_single_job_takes_its_service_time(self):
        sim = Simulator()
        cpu = make_cpu(sim)
        done = []
        sim.spawn(burn(sim, cpu, 3.0, done))
        sim.run()
        assert done[0][1] == pytest.approx(3.0)

    def test_jobs_up_to_core_count_run_in_parallel(self):
        sim = Simulator()
        cpu = make_cpu(sim, cores=2)
        done = []
        sim.spawn(burn(sim, cpu, 2.0, done, "a"))
        sim.spawn(burn(sim, cpu, 2.0, done, "b"))
        sim.run()
        assert all(t == pytest.approx(2.0) for _, t in done)

    def test_excess_jobs_share_via_round_robin(self):
        # 3 equal jobs on 2 cores with quantum 1: total work 6 over 2
        # cores -> everything done by t=3, nothing before t=2.
        sim = Simulator()
        cpu = make_cpu(sim, cores=2, quantum=1.0)
        done = []
        for name in "abc":
            sim.spawn(burn(sim, cpu, 2.0, done, name))
        sim.run()
        finish_times = sorted(t for _, t in done)
        assert finish_times[-1] == pytest.approx(3.0)
        assert finish_times[0] >= 2.0 - 1e-12

    def test_round_robin_interleaves_fairly(self):
        # A long and a short job on 1 core: the short job should not wait
        # for the long one to finish completely (preemption at quantum).
        sim = Simulator()
        cpu = make_cpu(sim, cores=1, quantum=1.0)
        done = []
        sim.spawn(burn(sim, cpu, 10.0, done, "long"))
        sim.spawn(burn(sim, cpu, 1.0, done, "short"))
        sim.run()
        short_finish = dict((n, t) for n, t in done)["short"]
        assert short_finish < 5.0

    def test_zero_work_completes_immediately(self):
        sim = Simulator()
        cpu = make_cpu(sim)
        done = []
        sim.spawn(burn(sim, cpu, 0.0, done))
        sim.run()
        assert done[0][1] == 0.0
        assert cpu.total_dispatches == 0

    def test_negative_work_rejected(self):
        sim = Simulator()
        cpu = make_cpu(sim)
        with pytest.raises(ValueError):
            Execute(cpu, -1.0)


class TestOverhead:
    def test_switch_cost_charged_per_dispatch(self):
        sim = Simulator()
        cpu = make_cpu(sim, cores=1, quantum=1.0, switch_cost=0.1)
        done = []
        sim.spawn(burn(sim, cpu, 3.0, done))  # 3 quanta
        sim.run()
        assert done[0][1] == pytest.approx(3.0 + 3 * 0.1)
        assert cpu.total_overhead == pytest.approx(0.3)
        assert cpu.total_dispatches == 3

    def test_pollution_engages_above_half_cores(self):
        sim = Simulator()
        cpu = make_cpu(
            sim, cores=4, switch_cost=0.01, pollution_factor=1.0, excess_cap=10
        )
        # threshold = cores // 2 = 2
        assert cpu.dispatch_overhead(runnable=2) == pytest.approx(0.01)
        assert cpu.dispatch_overhead(runnable=3) == pytest.approx(0.02)
        assert cpu.dispatch_overhead(runnable=6) == pytest.approx(0.05)

    def test_pollution_saturates_at_cap(self):
        sim = Simulator()
        cpu = make_cpu(
            sim, cores=4, switch_cost=0.01, pollution_factor=1.0, excess_cap=3
        )
        assert cpu.dispatch_overhead(runnable=100) == pytest.approx(
            0.01 * (1 + 3)
        )

    def test_contention_slows_completion(self):
        def total_time(n_jobs):
            sim = Simulator()
            cpu = make_cpu(
                sim,
                cores=2,
                switch_cost=0.05,
                pollution_factor=0.5,
                quantum=0.5,
            )
            done = []
            for i in range(n_jobs):
                sim.spawn(burn(sim, cpu, 1.0, done, str(i)))
            sim.run()
            return max(t for _, t in done) / n_jobs  # time per job

        # Per-job completion time grows when jobs exceed cores.
        assert total_time(8) > total_time(2)


class TestAccounting:
    def test_work_conservation(self):
        sim = Simulator()
        cpu = make_cpu(sim, cores=3, quantum=0.7)
        done = []
        works = [0.5, 1.3, 2.1, 0.9]
        for i, work in enumerate(works):
            sim.spawn(burn(sim, cpu, work, done, str(i)))
        sim.run()
        assert cpu.total_work_done == pytest.approx(sum(works))

    def test_utilization_bounds(self):
        sim = Simulator()
        cpu = make_cpu(sim, cores=2)
        done = []
        sim.spawn(burn(sim, cpu, 4.0, done))
        sim.run_until(8.0)
        # One core busy 4s of 8s over 2 cores -> 0.25.
        assert cpu.utilization() == pytest.approx(0.25)

    def test_runnable_count(self):
        sim = Simulator()
        cpu = make_cpu(sim, cores=1)
        for _ in range(3):
            sim.spawn(burn(sim, cpu, 1.0, []))
        sim.run_until(0.5)
        assert cpu.runnable == 3

    def test_job_dispatch_counts(self):
        sim = Simulator()
        cpu = make_cpu(sim, cores=1, quantum=1.0)
        job = None

        def flow():
            yield Execute(cpu, 2.5)

        process = sim.spawn(flow())
        sim.run()
        assert cpu.total_dispatches == 3  # ceil(2.5 / 1.0)


class TestValidation:
    def test_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            MultiCoreCpu(sim, cores=0)
        with pytest.raises(ValueError):
            MultiCoreCpu(sim, quantum=0.0)
        with pytest.raises(ValueError):
            MultiCoreCpu(sim, switch_cost=-1.0)
        with pytest.raises(ValueError):
            MultiCoreCpu(sim, pollution_factor=-0.1)
        with pytest.raises(ValueError):
            MultiCoreCpu(sim, excess_cap=-1)
