"""Gradient checking and model persistence."""

import numpy as np
import pytest

from repro.nn.gradcheck import check_gradients, numerical_gradient
from repro.nn.losses import MeanSquaredError
from repro.nn.mlp import MLP
from repro.nn.serialization import (
    FORMAT_VERSION,
    from_dict,
    load_mlp,
    save_mlp,
    to_dict,
)


class TestGradCheck:
    def test_passes_on_correct_network(self, rng):
        net = MLP([2, 4, 2], seed=0)
        x = rng.normal(size=(3, 2))
        y = rng.normal(size=(3, 2))
        report = check_gradients(net, x, y)
        assert report.passed
        assert report.n_params == net.num_params

    def test_detects_corrupted_gradients(self, rng):
        net = MLP([2, 4, 1], seed=0)
        x = rng.normal(size=(3, 2))
        y = rng.normal(size=(3, 1))

        original_backward = net.backward

        def corrupted_backward(grad):
            out = original_backward(grad)
            net.layers[0].grad_weights = net.layers[0].grad_weights * 1.5
            return out

        net.backward = corrupted_backward
        report = check_gradients(net, x, y)
        assert not report.passed

    def test_numerical_gradient_restores_params(self, rng):
        net = MLP([2, 3, 1], seed=0)
        before = net.get_flat_params().copy()
        numerical_gradient(
            net, rng.normal(size=(2, 2)), rng.normal(size=(2, 1))
        )
        np.testing.assert_array_equal(net.get_flat_params(), before)

    def test_works_with_loss_objects(self, rng):
        net = MLP([2, 3, 1], seed=0)
        report = check_gradients(
            net,
            rng.normal(size=(2, 2)),
            rng.normal(size=(2, 1)),
            loss=MeanSquaredError(),
        )
        assert report.passed


class TestSerialization:
    def test_dict_round_trip(self, rng):
        net = MLP([3, 7, 2], hidden_activation="tanh", seed=9)
        rebuilt = from_dict(to_dict(net))
        x = rng.normal(size=(5, 3))
        np.testing.assert_allclose(rebuilt.predict(x), net.predict(x))

    def test_file_round_trip(self, tmp_path, rng):
        net = MLP([2, 4, 1], seed=1)
        path = save_mlp(net, tmp_path / "model.json")
        assert path.exists()
        loaded = load_mlp(path)
        x = rng.normal(size=(4, 2))
        np.testing.assert_allclose(loaded.predict(x), net.predict(x))

    def test_trained_weights_survive(self, tmp_path, rng):
        net = MLP([1, 4, 1], seed=2)
        # Perturb from the seed-default so we know weights were saved,
        # not re-initialized.
        net.set_flat_params(net.get_flat_params() + 0.123)
        loaded = load_mlp(save_mlp(net, tmp_path / "m.json"))
        np.testing.assert_allclose(
            loaded.get_flat_params(), net.get_flat_params()
        )

    def test_version_field_present(self):
        payload = to_dict(MLP([1, 2, 1], seed=0))
        assert payload["format_version"] == FORMAT_VERSION

    def test_bad_version_rejected(self):
        payload = to_dict(MLP([1, 2, 1], seed=0))
        payload["format_version"] = 999
        with pytest.raises(ValueError, match="format_version"):
            from_dict(payload)

    def test_bad_kind_rejected(self):
        payload = to_dict(MLP([1, 2, 1], seed=0))
        payload["kind"] = "rbf"
        with pytest.raises(ValueError, match="kind"):
            from_dict(payload)

    def test_non_dict_rejected(self):
        with pytest.raises(TypeError):
            from_dict([1, 2, 3])

    def test_json_is_plain_text(self, tmp_path):
        path = save_mlp(MLP([1, 2, 1], seed=0), tmp_path / "m.json")
        text = path.read_text()
        assert text.startswith("{")
        assert "parameters" in text
