"""Sensitivity analysis, configuration advisor, PCA, and text plots."""

import numpy as np
import pytest

from repro.analysis.pca import PCA, subset_benchmarks
from repro.analysis.plots import (
    render_series,
    render_surface,
    series_to_csv,
    surface_to_csv,
)
from repro.analysis.sensitivity import sensitivity_analysis
from repro.analysis.surface import ResponseSurface
from repro.analysis.tuning import (
    ConfigurationAdvisor,
    Recommendation,
    ScoringFunction,
)
from repro.workload.sampler import ConfigSpace, ParameterRange
from repro.workload.service import OUTPUT_NAMES, WorkloadConfig


class _BowlModel:
    """5-output model: RTs form a bowl around (rate 500, d 10, m 16, w 18);
    throughput peaks there."""

    def predict(self, x):
        x = np.asarray(x, dtype=float)
        distance = (
            ((x[:, 0] - 500.0) / 100.0) ** 2
            + ((x[:, 1] - 10.0) / 5.0) ** 2
            + ((x[:, 2] - 16.0) / 5.0) ** 2
            + ((x[:, 3] - 18.0) / 4.0) ** 2
        )
        rt = 0.05 + 0.05 * distance
        tps = 500.0 - 50.0 * distance
        return np.column_stack([rt, rt, rt, rt, tps])


class _MfgInsensitiveModel:
    """Manufacturing RT ignores default_threads; others react."""

    def predict(self, x):
        x = np.asarray(x, dtype=float)
        mfg = 0.08 + 0.001 * (22.0 - x[:, 3])
        dealer = 0.05 + 0.002 * x[:, 1] + 0.001 * (22.0 - x[:, 3])
        tps = 400.0 + x[:, 1] * 2.0
        return np.column_stack([mfg, dealer, dealer, dealer, tps])


BASELINE = {
    "injection_rate": 500.0,
    "default_threads": 10.0,
    "mfg_threads": 16.0,
    "web_threads": 18.0,
}

SWEEPS = {
    "default_threads": np.arange(2, 23, 2),
    "web_threads": np.arange(14, 23),
}


class TestSensitivity:
    def test_detects_insensitive_parameter(self):
        report = sensitivity_analysis(_MfgInsensitiveModel(), BASELINE, SWEEPS)
        insensitive = report.insensitive_parameters("manufacturing_rt")
        assert "default_threads" in insensitive
        assert "default_threads" not in report.insensitive_parameters(
            "dealer_browse_rt", threshold=0.05
        )

    def test_ordering_by_influence(self):
        report = sensitivity_analysis(_MfgInsensitiveModel(), BASELINE, SWEEPS)
        ranked = report.for_indicator("effective_tps")
        assert ranked[0].parameter == "default_threads"

    def test_shapes_labelled(self):
        report = sensitivity_analysis(_BowlModel(), BASELINE, SWEEPS)
        entry = [
            e
            for e in report.for_indicator("effective_tps")
            if e.parameter == "default_threads"
        ][0]
        assert entry.shape == "hill"

    def test_text_rendering(self):
        report = sensitivity_analysis(_BowlModel(), BASELINE, SWEEPS)
        text = report.to_text()
        assert "default_threads" in text and "web_threads" in text

    def test_missing_baseline_rejected(self):
        with pytest.raises(ValueError):
            sensitivity_analysis(_BowlModel(), {}, SWEEPS)

    def test_unknown_sweep_rejected(self):
        with pytest.raises(ValueError):
            sensitivity_analysis(
                _BowlModel(), BASELINE, {"gpu_threads": [1, 2, 3]}
            )

    def test_short_sweep_rejected(self):
        with pytest.raises(ValueError):
            sensitivity_analysis(
                _BowlModel(), BASELINE, {"web_threads": [1, 2]}
            )


class TestScoringFunction:
    def test_rewards_throughput(self):
        scoring = ScoringFunction()
        low = scoring.score({"effective_tps": 100.0})
        high = scoring.score({"effective_tps": 400.0})
        assert high > low

    def test_penalizes_violations(self):
        scoring = ScoringFunction(response_limits={"dealer_browse_rt": 0.1})
        ok = scoring.score({"effective_tps": 400.0, "dealer_browse_rt": 0.05})
        bad = scoring.score({"effective_tps": 400.0, "dealer_browse_rt": 0.30})
        assert ok > bad
        assert scoring.satisfied(
            {"effective_tps": 400.0, "dealer_browse_rt": 0.05}
        )
        assert not scoring.satisfied(
            {"effective_tps": 400.0, "dealer_browse_rt": 0.30}
        )

    def test_missing_indicator_rejected(self):
        scoring = ScoringFunction(response_limits={"dealer_browse_rt": 0.1})
        with pytest.raises(KeyError):
            scoring.score({"effective_tps": 1.0})

    def test_validation(self):
        with pytest.raises(ValueError):
            ScoringFunction(response_limits={"x": 0.0})
        with pytest.raises(ValueError):
            ScoringFunction(penalty_weight=-1.0)


SPACE = ConfigSpace(
    [
        ParameterRange("injection_rate", 400, 600),
        ParameterRange("default_threads", 2, 20),
        ParameterRange("mfg_threads", 10, 22),
        ParameterRange("web_threads", 14, 22),
    ]
)


class TestAdvisor:
    def test_recommends_near_the_true_optimum(self):
        advisor = ConfigurationAdvisor(_BowlModel())
        best = advisor.recommend(SPACE, levels=7, top_k=1)[0]
        assert best.config.default_threads == pytest.approx(10, abs=3)
        assert best.config.web_threads == pytest.approx(18, abs=2)

    def test_limit_feasibility_flagged(self):
        scoring = ScoringFunction(
            response_limits={"dealer_browse_rt": 0.08}
        )
        advisor = ConfigurationAdvisor(_BowlModel(), scoring=scoring)
        ranked = advisor.evaluate(
            [
                WorkloadConfig(500, 10, 16, 18),  # bowl center: fast
                WorkloadConfig(600, 2, 22, 14),  # far corner: slow
            ]
        )
        assert ranked[0].meets_limits
        assert not ranked[-1].meets_limits

    def test_plan_experiments_budget_and_diversity(self):
        advisor = ConfigurationAdvisor(_BowlModel())
        plan = advisor.plan_experiments(SPACE, budget=5, levels=5)
        assert len(plan) == 5
        # All chosen configurations differ.
        assert len({p.config for p in plan}) == 5

    def test_plan_experiments_beats_blind_corner(self):
        """The model-guided plan concentrates where performance is good —
        the paper's 'radically reducing ineffectual experiments'."""
        advisor = ConfigurationAdvisor(_BowlModel())
        plan = advisor.plan_experiments(SPACE, budget=3, levels=5)
        worst_corner = _BowlModel().predict(
            np.array([[600.0, 2.0, 22.0, 14.0]])
        )[0, 4]
        assert all(p.predicted["effective_tps"] > worst_corner for p in plan)

    def test_to_text(self):
        advisor = ConfigurationAdvisor(_BowlModel())
        text = advisor.to_text(advisor.recommend(SPACE, levels=3, top_k=3))
        assert "rank" in text and "score" in text

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            ConfigurationAdvisor(_BowlModel()).evaluate([])

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError):
            ConfigurationAdvisor(_BowlModel()).plan_experiments(SPACE, budget=0)


class TestPCA:
    def test_components_orthonormal(self, rng):
        x = rng.normal(size=(100, 6))
        pca = PCA().fit(x)
        gram = pca.components_ @ pca.components_.T
        np.testing.assert_allclose(gram, np.eye(6), atol=1e-10)

    def test_variance_ratios_sorted_and_sum_to_one(self, rng):
        x = rng.normal(size=(80, 5)) * [5.0, 3.0, 1.0, 0.5, 0.1]
        pca = PCA(correlation=False).fit(x)
        ratios = pca.explained_variance_ratio_
        assert np.all(np.diff(ratios) <= 1e-12)
        assert ratios.sum() == pytest.approx(1.0)

    def test_recovers_dominant_direction(self, rng):
        t = rng.normal(size=(200, 1))
        x = np.hstack([t, 2 * t, -t]) + rng.normal(scale=0.01, size=(200, 3))
        pca = PCA(correlation=False).fit(x)
        assert pca.explained_variance_ratio_[0] > 0.99

    def test_transform_inverse_round_trip(self, rng):
        x = rng.normal(size=(40, 4))
        pca = PCA().fit(x)
        np.testing.assert_allclose(
            pca.inverse_transform(pca.transform(x)), x, atol=1e-8
        )

    def test_n_components_truncation(self, rng):
        x = rng.normal(size=(40, 6))
        pca = PCA(n_components=2).fit(x)
        assert pca.transform(x).shape == (40, 2)

    def test_n_components_for_variance(self, rng):
        x = rng.normal(size=(100, 4)) * [10.0, 1.0, 0.1, 0.01]
        pca = PCA(correlation=False).fit(x)
        assert pca.n_components_for_variance(0.95) <= 2
        assert pca.n_components_for_variance(1.0) <= 4

    def test_validation(self):
        with pytest.raises(ValueError):
            PCA(n_components=0)
        with pytest.raises(ValueError):
            PCA().fit(np.zeros((1, 3)))
        with pytest.raises(RuntimeError):
            PCA().transform(np.zeros((2, 2)))


class TestSubsetting:
    def test_picks_spread_out_representatives(self, rng):
        # Three tight clusters; a 3-subset should take one from each.
        centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        points = np.vstack(
            [c + rng.normal(scale=0.1, size=(10, 2)) for c in centers]
        )
        chosen = subset_benchmarks(points, 3)
        clusters = {int(i) // 10 for i in chosen}
        assert clusters == {0, 1, 2}

    def test_k_bounds(self, rng):
        points = rng.normal(size=(5, 2))
        assert len(subset_benchmarks(points, 5)) == 5
        with pytest.raises(ValueError):
            subset_benchmarks(points, 6)
        with pytest.raises(ValueError):
            subset_benchmarks(points, 0)

    def test_indices_unique(self, rng):
        points = rng.normal(size=(30, 4))
        chosen = subset_benchmarks(points, 10)
        assert len(set(chosen)) == 10


def surface_fixture():
    return ResponseSurface(
        row_param="default_threads",
        col_param="web_threads",
        row_values=np.array([0.0, 10.0, 20.0]),
        col_values=np.array([14.0, 18.0, 22.0]),
        z=np.array([[5.0, 1.0, 2.0], [4.0, 0.5, 1.5], [6.0, 2.0, 3.0]]),
        indicator="dealer_purchase_rt",
        fixed={"injection_rate": 560, "mfg_threads": 16},
    )


class TestPlots:
    def test_render_surface_contains_axes(self):
        text = render_surface(surface_fixture())
        assert "dealer_purchase_rt" in text
        assert "14" in text and "22" in text

    def test_render_series_marks_points(self):
        text = render_series(
            np.array([1.0, 2.0, 3.0]), np.array([1.1, 1.9, 3.0]), title="t"
        )
        assert "o" in text and ("x" in text or "*" in text)
        assert text.count("|") >= 6

    def test_render_series_shape_mismatch(self):
        with pytest.raises(ValueError):
            render_series(np.zeros(3), np.zeros(4))

    def test_surface_csv(self, tmp_path):
        path = surface_to_csv(surface_fixture(), tmp_path / "s.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "default_threads,web_threads,dealer_purchase_rt"
        assert len(lines) == 1 + 9

    def test_series_csv(self, tmp_path):
        actual = np.array([[1.0, 10.0], [2.0, 20.0]])
        predicted = actual * 1.1
        path = series_to_csv(
            actual, predicted, tmp_path / "f.csv", labels=["a", "b"]
        )
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "sample,a_actual,a_predicted,b_actual,b_predicted"
        assert len(lines) == 3

    def test_series_csv_label_mismatch(self, tmp_path):
        with pytest.raises(ValueError):
            series_to_csv(
                np.zeros((2, 2)), np.zeros((2, 2)), tmp_path / "x.csv",
                labels=["only-one"],
            )
