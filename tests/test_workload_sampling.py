"""Experiment designs, sample collection, datasets, analytic surrogate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.analytic import AnalyticWorkloadModel, erlang_c_wait
from repro.workload.dataset import Dataset
from repro.workload.sampler import (
    ConfigSpace,
    ParameterRange,
    SampleCollector,
    full_factorial,
    latin_hypercube,
    random_design,
)
from repro.workload.service import OUTPUT_NAMES, WorkloadConfig


class TestParameterRange:
    def test_grid(self):
        r = ParameterRange("web_threads", 14, 22)
        np.testing.assert_allclose(r.grid(5), [14, 16, 18, 20, 22])

    def test_single_level_is_midpoint(self):
        r = ParameterRange("x", 0, 10)
        np.testing.assert_allclose(r.grid(1), [5])

    def test_integer_rounding(self, rng):
        r = ParameterRange("threads", 1, 9)
        values = r.sample(rng, 50)
        np.testing.assert_allclose(values, np.round(values))

    def test_float_ranges_not_rounded(self, rng):
        r = ParameterRange("rate", 1.0, 2.0, integer=False)
        values = r.sample(rng, 50)
        assert np.any(values != np.round(values))

    def test_validation(self):
        with pytest.raises(ValueError):
            ParameterRange("x", 5, 4)


class TestConfigSpace:
    def test_default_space_has_canonical_order(self):
        space = ConfigSpace()
        assert [r.name for r in space.ranges] == [
            "injection_rate",
            "default_threads",
            "mfg_threads",
            "web_threads",
        ]

    def test_wrong_order_rejected(self):
        with pytest.raises(ValueError, match="canonical order"):
            ConfigSpace(
                [
                    ParameterRange("default_threads", 0, 10),
                    ParameterRange("injection_rate", 100, 200),
                ]
            )

    def test_clip(self):
        space = ConfigSpace()
        clipped = space.clip(np.array([10000.0, -5.0, 16.4, 20.0]))
        assert clipped[0] == space.ranges[0].high
        assert clipped[1] == space.ranges[1].low
        assert clipped[2] == 16.0


class TestDesigns:
    def test_full_factorial_size(self):
        space = ConfigSpace()
        configs = full_factorial(space, 3)
        assert len(configs) == 3**4

    def test_full_factorial_per_dimension_levels(self):
        space = ConfigSpace()
        configs = full_factorial(space, [2, 3, 1, 1])
        assert len(configs) == 6

    def test_random_design_within_bounds(self):
        space = ConfigSpace()
        for config in random_design(space, 30, seed=0):
            vector = config.as_vector()
            for value, r in zip(vector, space.ranges):
                assert r.low <= value <= r.high

    def test_latin_hypercube_stratification(self):
        space = ConfigSpace(
            [
                ParameterRange("injection_rate", 0, 1000, integer=False),
                ParameterRange("default_threads", 1, 1),
                ParameterRange("mfg_threads", 1, 1),
                ParameterRange("web_threads", 1, 1),
            ]
        )
        configs = latin_hypercube(space, 10, seed=0)
        rates = sorted(c.injection_rate for c in configs)
        # One sample per decile of the swept axis.
        for index, rate in enumerate(rates):
            assert 100 * index <= rate <= 100 * (index + 1)

    def test_designs_reproducible(self):
        space = ConfigSpace()
        a = latin_hypercube(space, 8, seed=5)
        b = latin_hypercube(space, 8, seed=5)
        assert a == b

    def test_size_validation(self):
        with pytest.raises(ValueError):
            random_design(ConfigSpace(), 0)
        with pytest.raises(ValueError):
            latin_hypercube(ConfigSpace(), 0)
        with pytest.raises(ValueError):
            full_factorial(ConfigSpace(), [2, 2])


class TestDataset:
    def make(self, n=6):
        x = np.arange(n * 4, dtype=float).reshape(n, 4)
        y = np.arange(n * 5, dtype=float).reshape(n, 5) + 100.0
        return Dataset(x, y)

    def test_len_and_dims(self):
        ds = self.make()
        assert len(ds) == 6
        assert ds.n_inputs == 4
        assert ds.n_outputs == 5

    def test_default_names(self):
        ds = self.make()
        assert ds.output_names == OUTPUT_NAMES

    def test_column_access(self):
        ds = self.make()
        np.testing.assert_array_equal(
            ds.output_column("effective_tps"), ds.y[:, 4]
        )
        np.testing.assert_array_equal(
            ds.input_column("injection_rate"), ds.x[:, 0]
        )
        with pytest.raises(KeyError):
            ds.output_column("nope")

    def test_subset_preserves_schema(self):
        ds = self.make()
        sub = ds.subset([4, 1])
        assert len(sub) == 2
        np.testing.assert_array_equal(sub.x[0], ds.x[4])

    def test_concat(self):
        ds = self.make()
        combined = ds.concat(ds)
        assert len(combined) == 12

    def test_concat_schema_mismatch(self):
        ds = self.make()
        other = Dataset(ds.x, ds.y, output_names=list("abcde"))
        with pytest.raises(ValueError):
            ds.concat(other)

    def test_csv_round_trip(self, tmp_path):
        ds = self.make()
        path = ds.save_csv(tmp_path / "samples.csv")
        loaded = Dataset.load_csv(path)
        np.testing.assert_array_equal(loaded.x, ds.x)
        np.testing.assert_array_equal(loaded.y, ds.y)
        assert loaded.output_names == ds.output_names

    def test_csv_full_float_precision(self, tmp_path):
        x = np.array([[1.0 / 3.0]])
        y = np.array([[np.pi]])
        ds = Dataset(x, y, input_names=["a"], output_names=["b"])
        loaded = Dataset.load_csv(ds.save_csv(tmp_path / "p.csv"))
        assert loaded.x[0, 0] == x[0, 0]
        assert loaded.y[0, 0] == y[0, 0]

    def test_configs_requires_four_inputs(self):
        ds = Dataset(np.zeros((2, 3)), np.zeros((2, 5)), input_names=list("abc"))
        with pytest.raises(ValueError):
            ds.configs()

    def test_configs_round_trip(self):
        configs = [WorkloadConfig(500, 10, 16, 18), WorkloadConfig(400, 5, 12, 20)]
        ds = Dataset(
            np.vstack([c.as_vector() for c in configs]), np.zeros((2, 5))
        )
        assert ds.configs() == configs

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((2, 4)), np.zeros((3, 5)))
        with pytest.raises(ValueError):
            Dataset(np.zeros(4), np.zeros(5))

    def test_summary_mentions_columns(self):
        text = self.make().summary()
        assert "injection_rate" in text and "effective_tps" in text


class TestSampleCollector:
    def test_collects_from_analytic_backend(self):
        configs = [WorkloadConfig(400, 10, 16, 18), WorkloadConfig(450, 12, 16, 20)]
        ds = SampleCollector(AnalyticWorkloadModel()).collect(configs)
        assert len(ds) == 2
        assert ds.n_outputs == 5

    def test_collects_from_simulator_backend(self, fast_workload):
        configs = [WorkloadConfig(300, 10, 16, 18)]
        ds = SampleCollector(fast_workload).collect(configs)
        assert len(ds) == 1
        assert np.all(np.isfinite(ds.y))

    def test_cache_round_trip(self, tmp_path):
        configs = [WorkloadConfig(400, 10, 16, 18)]
        cache = tmp_path / "cache.csv"
        first = SampleCollector(
            AnalyticWorkloadModel(), cache_path=cache
        ).collect(configs)
        assert cache.exists()

        class ExplodingBackend:
            def run(self, config):
                raise AssertionError("cache should have been used")

        second = SampleCollector(ExplodingBackend(), cache_path=cache).collect(
            configs
        )
        np.testing.assert_array_equal(first.y, second.y)

    def test_progress_callback(self):
        seen = []
        configs = [WorkloadConfig(400, 10, 16, 18)] * 3
        SampleCollector(AnalyticWorkloadModel()).collect(
            configs, progress=lambda done, total: seen.append((done, total))
        )
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_bad_backend_rejected(self):
        with pytest.raises(TypeError):
            SampleCollector(object()).collect([WorkloadConfig(400, 1, 1, 1)])

    def test_empty_configs_rejected(self):
        with pytest.raises(ValueError):
            SampleCollector(AnalyticWorkloadModel()).collect([])


class TestErlangC:
    def test_zero_load_zero_wait(self):
        assert erlang_c_wait(0.0, 1.0, 4) == 0.0

    def test_mm1_closed_form(self):
        # M/M/1: W_q = rho / (1 - rho) * S
        rho = 0.5
        wait = erlang_c_wait(rho, 1.0, 1)
        assert wait == pytest.approx(rho / (1 - rho), rel=1e-9)

    def test_wait_increases_with_load(self):
        waits = [erlang_c_wait(lam, 1.0, 4) for lam in (1.0, 2.0, 3.0, 3.8)]
        assert all(a < b for a, b in zip(waits, waits[1:]))

    def test_more_servers_less_wait(self):
        assert erlang_c_wait(3.0, 1.0, 8) < erlang_c_wait(3.0, 1.0, 4)

    def test_saturated_is_finite(self):
        assert np.isfinite(erlang_c_wait(100.0, 1.0, 4))

    def test_validation(self):
        with pytest.raises(ValueError):
            erlang_c_wait(-1.0, 1.0, 1)
        with pytest.raises(ValueError):
            erlang_c_wait(1.0, 1.0, 0)


class TestAnalyticModel:
    def test_indicator_keys(self):
        values = AnalyticWorkloadModel().evaluate(WorkloadConfig(400, 10, 16, 18))
        assert set(values) == set(OUTPUT_NAMES)

    def test_vector_matches_evaluate(self):
        model = AnalyticWorkloadModel()
        config = WorkloadConfig(450, 12, 16, 20)
        values = model.evaluate(config)
        np.testing.assert_allclose(
            model.evaluate_vector(config),
            [values[name] for name in OUTPUT_NAMES],
        )

    def test_starved_web_wall(self):
        model = AnalyticWorkloadModel()
        good = model.evaluate(WorkloadConfig(560, 12, 16, 18))
        starved = model.evaluate(WorkloadConfig(560, 12, 16, 4))
        assert starved["dealer_browse_rt"] > 3 * good["dealer_browse_rt"]

    def test_misc_ramp_in_effective_tps(self):
        model = AnalyticWorkloadModel()
        no_default = model.evaluate(WorkloadConfig(560, 1, 16, 18))
        ample = model.evaluate(WorkloadConfig(560, 16, 16, 18))
        assert ample["effective_tps"] > no_default["effective_tps"]

    def test_tracks_simulator_in_stable_region(self, fast_workload):
        """Shared-nothing implementations agree within a factor of two on
        a healthy configuration — a cross-validation of both."""
        config = WorkloadConfig(400, 14, 16, 18)
        simulated = fast_workload.run(config).as_vector()
        analytic = AnalyticWorkloadModel().evaluate_vector(config)
        for sim_value, model_value in zip(simulated, analytic):
            assert model_value == pytest.approx(sim_value, rel=1.0)


@given(
    lam=st.floats(min_value=0.1, max_value=50.0),
    service=st.floats(min_value=0.001, max_value=2.0),
    servers=st.integers(min_value=1, max_value=32),
)
@settings(max_examples=60, deadline=None)
def test_erlang_c_wait_nonnegative_finite(lam, service, servers):
    wait = erlang_c_wait(lam, service, servers)
    assert wait >= 0.0
    assert np.isfinite(wait)
