"""End-to-end trace factory: synth -> ingest -> fit -> emit -> replay ->
validate, plus registry wiring, persistence, CLI and the serving bridge."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.lifecycle.observations import ObservationLog
from repro.traces import (
    RateSchedule,
    RateStep,
    ScenarioFamily,
    emit_family,
    fit_trace,
    ingest,
    replay_family,
    run_three_tier,
    trace_shaped_requests,
    validate_family,
)
from repro.traces.cli import main as ingest_main
from repro.traces.synthetic import (
    SyntheticTraceSpec,
    TracePhase,
    default_sample_spec,
    generate_synthetic_trace,
)
from repro.workload.scenarios import (
    available_scenarios,
    scenario,
    unregister_scenario,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
SAMPLE_CSV = REPO_ROOT / "data" / "sample_trace.csv"
SAMPLE_CLF = REPO_ROOT / "data" / "sample_access.log"


def quick_spec(seed=7):
    """A small two-phase spec that keeps pipeline tests fast."""
    return SyntheticTraceSpec(
        phases=[TracePhase(20.0, 30.0), TracePhase(20.0, 60.0)],
        classes=[("browse", 0.7, 1.0), ("checkout", 0.3, 2.0)],
        service_mean=0.04,
        seed=seed,
    )


@pytest.fixture
def family(tmp_path):
    path = generate_synthetic_trace(tmp_path / "t.csv", quick_spec())
    trace = ingest(path)
    fit = fit_trace(trace, window_s=20.0)
    return emit_family(fit, "unittest", class_counts=trace.class_counts()), trace


class TestEmission:
    def test_family_recovers_generator_structure(self, family):
        fam, trace = family
        assert fam.base_rate == pytest.approx(45.0, rel=0.15)
        assert set(fam.class_weights) == {"browse", "checkout"}
        assert len(fam.windows) == 2
        # checkout's service scale is 2x browse's.
        browse = fam.class_service["browse"].mean
        checkout = fam.class_service["checkout"].mean
        assert checkout / browse == pytest.approx(2.0, rel=0.25)

    def test_classes_are_simulator_ready(self, family):
        fam, _ = family
        classes = fam.classes()
        assert sum(c.mix_weight for c in classes) == pytest.approx(1.0)
        names = {c.name for c in classes}
        assert names == {"trace_browse", "trace_checkout"}
        for cls in classes:
            assert cls.deadline > 0

    def test_registration_round_trip(self, family):
        fam, _ = family
        name = fam.register()
        try:
            assert name == "trace:unittest"
            assert name in available_scenarios()
            classes = scenario(name)
            assert {c.name for c in classes} == {
                "trace_browse",
                "trace_checkout",
            }
        finally:
            unregister_scenario(name)
        assert name not in available_scenarios()

    def test_json_round_trip(self, family, tmp_path):
        fam, _ = family
        path = fam.save(tmp_path / "fam.json")
        clone = ScenarioFamily.load(path)
        assert clone.to_dict() == fam.to_dict()

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError):
            ScenarioFamily.load(path)


class TestRateSchedule:
    def test_profile_matches_windows(self, family):
        fam, _ = family
        schedule = fam.rate_schedule()
        assert schedule.duration == pytest.approx(40.0)
        # Phase rates: 30/s then 60/s.
        assert schedule.rate_at(5.0) == pytest.approx(30.0, rel=0.2)
        assert schedule.rate_at(30.0) == pytest.approx(60.0, rel=0.2)
        assert schedule.multiplier_at(100.0) == 1.0

    def test_disturbances_offset_and_restore(self, family):
        fam, _ = family
        steps = fam.rate_schedule().disturbances(offset=2.0)
        assert steps[0].start == pytest.approx(2.0)
        assert not steps[0].restore and steps[-1].restore
        with pytest.raises(ValueError):
            fam.rate_schedule().disturbances(offset=-1.0)

    def test_rate_step_validation(self):
        with pytest.raises(ValueError):
            RateStep(start=0.0, duration=1.0, multiplier=0.0)

    def test_empty_schedule(self):
        schedule = RateSchedule(base_rate=10.0)
        assert schedule.duration == 0.0
        assert schedule.rate_at(1.0) == 10.0


class TestReplay:
    def test_deterministic_for_fixed_seed(self, family):
        fam, _ = family
        a = replay_family(fam, seed=3)
        b = replay_family(fam, seed=3)
        np.testing.assert_array_equal(a.arrival_times, b.arrival_times)
        np.testing.assert_array_equal(a.service_samples, b.service_samples)
        assert a.class_names == b.class_names

    def test_seed_changes_the_draw(self, family):
        fam, _ = family
        a = replay_family(fam, seed=3)
        b = replay_family(fam, seed=4)
        assert not np.array_equal(a.arrival_times, b.arrival_times)

    def test_arrivals_monotone_and_window_shaped(self, family):
        fam, _ = family
        replay = replay_family(fam, seed=0)
        assert np.all(np.diff(replay.arrival_times) >= 0)
        # Second window runs twice as hot as the first.
        first, second = replay.per_window_counts
        assert second / first == pytest.approx(2.0, rel=0.3)

    def test_validation_passes_on_own_trace(self, family):
        fam, trace = family
        report = validate_family(fam, trace, seed=0)
        assert report.passed, report.to_text()

    def test_three_tier_replay_returns_metrics(self, family):
        fam, _ = family
        metrics = run_three_tier(fam, warmup=1.0, duration=6.0, seed=1)
        assert metrics.completed > 0
        assert set(metrics.indicators) == {
            "manufacturing_rt",
            "dealer_purchase_rt",
            "dealer_manage_rt",
            "dealer_browse_rt",
            "effective_tps",
        }
        assert metrics.indicators["effective_tps"] > 0


class TestBundledSample:
    def test_sample_csv_validates_within_tolerance(self):
        trace = ingest(SAMPLE_CSV)
        fit = fit_trace(trace, window_s=40.0)
        fam = emit_family(fit, "sample", class_counts=trace.class_counts())
        report = validate_family(fam, trace, seed=0, tolerance=0.10)
        assert report.passed, report.to_text()

    def test_sample_csv_is_deterministic(self, tmp_path):
        regenerated = generate_synthetic_trace(
            tmp_path / "regen.csv", default_sample_spec()
        )
        assert regenerated.read_bytes() == SAMPLE_CSV.read_bytes()

    def test_sample_clf_quantization_fallback(self):
        trace = ingest(SAMPLE_CLF)
        assert trace.zero_gap_fraction() > 0.25
        fit = fit_trace(trace, window_s=30.0)
        assert fit.arrival_verdict == "quantized"
        fam = emit_family(fit, "clf", class_counts=trace.class_counts())
        report = validate_family(fam, trace, seed=0)
        assert report.passed, report.to_text()


class TestServingBridge:
    def test_trace_shaped_requests(self, family):
        fam, _ = family
        requests = trace_shaped_requests(fam, n=50, seed=0, time_scale=0.1)
        assert len(requests) == 50
        times = [at for at, _ in requests]
        assert times == sorted(times)
        assert times[-1] <= fam.duration * 0.1 + 1e-9
        for _, vector in requests:
            assert vector.shape == (4,)
            assert vector[0] > 0  # instantaneous rate

    def test_observation_log_export_reingests(self, tmp_path):
        log = ObservationLog(capacity=64)
        for i in range(30):
            log.record(
                "paper-mlp",
                [500.0 + i, 10, 16, 20],
                predicted=[0.1, 0.2, 0.2, 0.1, 450.0],
                measured=[0.12, 0.22, 0.18, 0.11, 440.0],
            )
        path = tmp_path / "observations.csv"
        assert log.export_trace(path, time_scale=0.5) == 30
        trace = ingest(path)
        assert len(trace) == 30
        assert trace.class_counts() == {"paper-mlp": 30}
        assert trace.duration == pytest.approx(14.5)  # (30-1) * 0.5
        # Service time = mean of the four measured response times.
        assert trace.service_samples[0] == pytest.approx(
            np.mean([0.12, 0.22, 0.18, 0.11])
        )

    def test_export_trace_falls_back_to_prediction(self, tmp_path):
        log = ObservationLog()
        log.record("m", [1.0], predicted=[0.3, 0.5, 100.0])
        log.record("m", [2.0])  # neither measured nor predicted
        path = tmp_path / "obs.csv"
        assert log.export_trace(path) == 2
        trace = ingest(path)
        assert len(trace) == 2
        assert trace.service_samples.tolist() == pytest.approx([0.4])
        with pytest.raises(ValueError):
            log.export_trace(path, time_scale=0.0)


class TestCli:
    def run(self, *argv):
        return ingest_main([str(a) for a in argv])

    def test_ingest_fit_emit_validate(self, tmp_path, capsys):
        out = tmp_path / "fam.json"
        assert self.run("ingest", SAMPLE_CSV, "--json") == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["arrivals"] == 6889
        assert self.run("fit", SAMPLE_CSV, "--window", 40) == 0
        assert (
            self.run(
                "emit", SAMPLE_CSV, "--name", "cli-sample", "--out", out,
                "--window", 40,
            )
            == 0
        )
        unregister_scenario("trace:cli-sample")
        assert out.is_file()
        assert (
            self.run("validate", SAMPLE_CSV, "--window", 40, "--seed", 0) == 0
        )
        assert self.run("replay", out, "--duration", 10) == 0

    def test_synth_then_validate(self, tmp_path):
        trace = tmp_path / "synth.csv"
        assert self.run("synth", trace, "--seed", 99) == 0
        assert self.run("validate", trace, "--window", 40) == 0

    def test_validate_fails_loudly_on_degenerate_input(self, tmp_path):
        path = tmp_path / "tiny.csv"
        path.write_text("timestamp,class,service_time\n1.0,a,0.1\n")
        assert self.run("validate", path) == 1  # ValueError -> exit 1

    def test_missing_file(self):
        with pytest.raises(SystemExit):
            self.run("ingest", "/nonexistent/trace.csv")
