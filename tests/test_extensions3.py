"""Model persistence, curvature analysis, scenarios, regression detection."""

import numpy as np
import pytest

from repro.analysis.curvature import local_curvature
from repro.analysis.regression import detect_regressions
from repro.models.neural import NeuralWorkloadModel
from repro.models.persistence import (
    load_model,
    load_model_document,
    model_from_dict,
    model_to_dict,
    save_model,
)
from repro.workload.dataset import Dataset
from repro.workload.scenarios import available_scenarios, scenario
from repro.workload.service import (
    OUTPUT_NAMES,
    ThreeTierWorkload,
    WorkloadConfig,
)
from repro.workload.transactions import validate_mix


def fitted_model(n=40, seed=0, joint=True):
    rng = np.random.default_rng(seed)
    x = rng.uniform(1.0, 8.0, size=(n, 4))
    y = np.column_stack(
        [
            0.1 + 0.02 * (x[:, 1] - 4.0) ** 2,
            0.1 + 0.01 * x[:, 3],
            x[:, 0] * 0.05,
            x[:, 2] * 0.03 + 0.2,
            400.0 - 3.0 * (x[:, 3] - 5.0) ** 2,
        ]
    )
    model = NeuralWorkloadModel(
        hidden=(10,), error_threshold=1e-4, max_epochs=6000, joint=joint, seed=seed
    )
    return model.fit(x, y), x, y


class TestPersistence:
    def test_round_trip_predictions_identical(self, tmp_path):
        model, x, _ = fitted_model()
        loaded = load_model(save_model(model, tmp_path / "model.json"))
        np.testing.assert_allclose(loaded.predict(x), model.predict(x))

    def test_separate_mode_round_trip(self, tmp_path):
        model, x, _ = fitted_model(joint=False)
        loaded = load_model(save_model(model, tmp_path / "model.json"))
        np.testing.assert_allclose(loaded.predict(x), model.predict(x))

    def test_hyperparameters_preserved(self, tmp_path):
        model, _, _ = fitted_model()
        loaded = load_model(save_model(model, tmp_path / "m.json"))
        assert loaded.hidden == model.hidden
        assert loaded.error_threshold == model.error_threshold
        assert loaded.joint == model.joint

    def test_unfitted_rejected(self):
        with pytest.raises(ValueError, match="fitted"):
            model_to_dict(NeuralWorkloadModel(hidden=(4,)))

    def test_version_checked(self):
        model, _, _ = fitted_model()
        payload = model_to_dict(model)
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="format_version"):
            model_from_dict(payload)

    def test_kind_checked(self):
        model, _, _ = fitted_model()
        payload = model_to_dict(model)
        payload["kind"] = "something_else"
        with pytest.raises(ValueError, match="kind"):
            model_from_dict(payload)

    def test_json_is_portable_text(self, tmp_path):
        model, _, _ = fitted_model()
        path = save_model(model, tmp_path / "m.json")
        assert path.read_text().startswith("{")

    def test_truncated_json_names_file(self, tmp_path):
        path = tmp_path / "cut.json"
        model, _, _ = fitted_model()
        path.write_text(save_model(model, tmp_path / "ok.json").read_text()[:40])
        with pytest.raises(ValueError, match="cut.json"):
            load_model(path)

    def test_version_mismatch_on_disk_names_file(self, tmp_path):
        model, _, _ = fitted_model()
        payload = model_to_dict(model)
        payload["format_version"] = 99
        path = tmp_path / "future.json"
        path.write_text(__import__("json").dumps(payload))
        with pytest.raises(ValueError, match="future.json"):
            load_model(path)

    def test_missing_field_raises_valueerror_not_keyerror(self, tmp_path):
        model, _, _ = fitted_model()
        payload = model_to_dict(model)
        del payload["x_scaler"]
        path = tmp_path / "partial.json"
        path.write_text(__import__("json").dumps(payload))
        with pytest.raises(ValueError, match="partial.json"):
            load_model(path)

    def test_missing_file_raises_valueerror(self, tmp_path):
        with pytest.raises(ValueError, match="absent.json"):
            load_model(tmp_path / "absent.json")

    def test_document_helper_rejects_non_object_json(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="expected an object"):
            load_model_document(path)

    def test_document_helper_exposes_raw_payload(self, tmp_path):
        model, _, _ = fitted_model()
        path = save_model(model, tmp_path / "m.json")
        document = load_model_document(path)
        assert document["format_version"] == 1
        assert document["kind"] == "neural_workload_model"


class TestCurvature:
    @pytest.fixture(scope="class")
    def model(self):
        # default_threads (col 1) forms a bowl in output 0 centered at 4;
        # web_threads (col 3) forms a dome in output 4 centered at 5.
        model, x, _ = fitted_model(n=80, seed=1)
        return model, x

    def test_bowl_detected(self, model):
        fitted, _ = model
        point = [4.0, 4.0, 4.0, 5.0]
        curvature = local_curvature(
            fitted, point, "manufacturing_rt",
            params=("default_threads", "web_threads"),
            step={"default_threads": 0.5, "web_threads": 0.5},
        )
        # Output 0 is quadratic in default only: bowl or flat-valley mix;
        # the strong eigenvalue must be positive.
        assert curvature.eigenvalues[-1] > 0
        assert curvature.kind in ("bowl", "saddle")

    def test_dome_detected(self, model):
        fitted, _ = model
        point = [4.0, 4.0, 4.0, 5.0]
        curvature = local_curvature(
            fitted, point, "effective_tps",
            params=("default_threads", "web_threads"),
            step={"default_threads": 0.5, "web_threads": 0.5},
        )
        assert curvature.eigenvalues[0] < 0
        assert curvature.kind in ("dome", "saddle")

    def test_trough_direction_of_a_1d_bowl(self, model):
        fitted, _ = model
        curvature = local_curvature(
            fitted, [4.0, 4.0, 4.0, 5.0], "manufacturing_rt",
            params=("default_threads", "web_threads"),
            step={"default_threads": 0.5, "web_threads": 0.5},
        )
        # Output 0 is flat along web: the least-curved direction is the
        # web axis.
        direction = curvature.trough_direction
        assert abs(direction[1]) > abs(direction[0])

    def test_hessian_symmetry(self, model):
        fitted, _ = model
        curvature = local_curvature(
            fitted, [4.0, 4.0, 4.0, 5.0], "effective_tps",
            params=("default_threads", "web_threads"),
        )
        np.testing.assert_allclose(curvature.hessian, curvature.hessian.T)

    def test_text(self, model):
        fitted, _ = model
        text = local_curvature(
            fitted, [4.0, 4.0, 4.0, 5.0], "effective_tps"
        ).to_text()
        assert "effective_tps" in text and "direction" in text

    def test_validation(self, model):
        fitted, _ = model
        with pytest.raises(ValueError, match="indicator"):
            local_curvature(fitted, [1, 1, 1, 1], "nonsense")
        with pytest.raises(ValueError, match="entries"):
            local_curvature(fitted, [1, 1], "effective_tps")


class TestScenarios:
    def test_all_scenarios_valid(self):
        for name in available_scenarios():
            validate_mix(scenario(name))

    def test_paper_scenario_is_the_default_mix(self):
        names = {c.name for c in scenario("paper")}
        assert "dealer_purchase" in names and "misc_background" in names

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            scenario("black_friday")

    def test_browse_heavy_shifts_the_mix(self):
        by_name = {c.name: c for c in scenario("browse_heavy")}
        assert by_name["dealer_browse"].mix_weight > 0.6
        assert by_name["dealer_purchase"].mix_weight < 0.05

    def test_scenarios_run_on_the_simulator(self):
        workload = ThreeTierWorkload(
            classes=scenario("batch_heavy"), warmup=0.3, duration=1.5, seed=2
        )
        metrics = workload.run(WorkloadConfig(300, 14, 16, 18))
        assert np.all(np.isfinite(metrics.as_vector()))

    def test_scenarios_return_fresh_lists(self):
        a = scenario("order_heavy")
        b = scenario("order_heavy")
        assert a is not b


class TestRegressionDetection:
    def make_pair(self, shift=None, noise=0.01, n=24, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.uniform(1, 20, size=(n, 4)).round()
        base_y = np.abs(rng.normal(loc=1.0, scale=0.2, size=(n, 5))) + 0.5
        baseline = Dataset(x, base_y)
        factors = np.ones(5)
        if shift:
            for name, factor in shift.items():
                factors[OUTPUT_NAMES.index(name)] = factor
        candidate_y = base_y * factors * (
            1.0 + rng.normal(scale=noise, size=base_y.shape)
        )
        order = rng.permutation(n)  # pairing must survive reordering
        candidate = Dataset(x[order], candidate_y[order])
        return baseline, candidate

    def test_no_change_no_flags(self):
        baseline, candidate = self.make_pair()
        report = detect_regressions(baseline, candidate)
        assert report.regressions() == []
        assert report.improvements() == []

    def test_latency_regression_detected(self):
        baseline, candidate = self.make_pair(
            shift={"dealer_purchase_rt": 1.3}
        )
        report = detect_regressions(baseline, candidate)
        assert report.regressions() == ["dealer_purchase_rt"]

    def test_throughput_drop_is_a_regression(self):
        baseline, candidate = self.make_pair(shift={"effective_tps": 0.8})
        report = detect_regressions(baseline, candidate)
        assert "effective_tps" in report.regressions()

    def test_throughput_gain_is_an_improvement(self):
        baseline, candidate = self.make_pair(shift={"effective_tps": 1.25})
        report = detect_regressions(baseline, candidate)
        assert "effective_tps" in report.improvements()

    def test_latency_drop_is_an_improvement(self):
        baseline, candidate = self.make_pair(
            shift={"manufacturing_rt": 0.8}
        )
        report = detect_regressions(baseline, candidate)
        assert "manufacturing_rt" in report.improvements()

    def test_below_threshold_not_flagged(self):
        baseline, candidate = self.make_pair(
            shift={"dealer_browse_rt": 1.02}, noise=0.001
        )
        report = detect_regressions(baseline, candidate, threshold=0.05)
        assert report.regressions() == []

    def test_mismatched_configs_rejected(self):
        baseline, candidate = self.make_pair()
        candidate.x[0] = candidate.x[0] + 999.0
        with pytest.raises(ValueError, match="missing"):
            detect_regressions(baseline, candidate)

    def test_text(self):
        baseline, candidate = self.make_pair(shift={"effective_tps": 0.7})
        text = detect_regressions(baseline, candidate).to_text()
        assert "REGRESSED" in text
