"""Transactions, database tier, app server and load driver."""

import numpy as np
import pytest

from repro.workload.appserver import AppServer, MachineSpec
from repro.workload.database import Database
from repro.workload.des import Simulator
from repro.workload.distributions import Deterministic, Erlang
from repro.workload.driver import LoadDriver
from repro.workload.transactions import (
    DEFAULT_QUEUE,
    MFG_QUEUE,
    Transaction,
    TransactionClass,
    standard_mix,
)
from repro.workload.transactions import validate_mix


class TestTransactionClass:
    def test_standard_mix_is_valid(self):
        classes = standard_mix()
        validate_mix(classes)
        names = {c.name for c in classes}
        assert {
            "manufacturing",
            "dealer_purchase",
            "dealer_manage",
            "dealer_browse",
            "misc_background",
        } == names

    def test_dealers_ride_the_web_queue(self):
        classes = {c.name: c for c in standard_mix()}
        for dealer in ("dealer_purchase", "dealer_manage", "dealer_browse"):
            assert classes[dealer].domain_queue is None
            assert classes[dealer].has_web_stage

    def test_background_class_skips_web(self):
        classes = {c.name: c for c in standard_mix()}
        misc = classes["misc_background"]
        assert not misc.has_web_stage
        assert misc.domain_queue == DEFAULT_QUEUE

    def test_manufacturing_has_its_own_partition(self):
        classes = {c.name: c for c in standard_mix()}
        assert classes["manufacturing"].db_partition == "mfg"
        assert classes["dealer_browse"].db_partition == "shared"

    def test_deadline_scale(self):
        base = {c.name: c.deadline for c in standard_mix()}
        scaled = {c.name: c.deadline for c in standard_mix(deadline_scale=2.0)}
        for name in base:
            assert scaled[name] == pytest.approx(2.0 * base[name])

    def test_mean_demand_helpers(self):
        classes = {c.name: c for c in standard_mix()}
        purchase = classes["dealer_purchase"]
        assert purchase.mean_cpu_demand() > 0
        # Dealers hold the web thread through their business work.
        assert purchase.mean_web_hold() > purchase.web_io.mean()
        misc = classes["misc_background"]
        assert misc.mean_web_hold() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="mix_weight"):
            TransactionClass(
                name="bad",
                mix_weight=0.0,
                web_cpu=Deterministic(0.001),
                web_io=Deterministic(0.001),
                domain_queue=MFG_QUEUE,
                domain_cpu=Deterministic(0.001),
                db_service=Deterministic(0.001),
                db_calls=1,
                deadline=0.1,
            )
        with pytest.raises(ValueError, match="domain_queue"):
            TransactionClass(
                name="bad",
                mix_weight=0.5,
                web_cpu=Deterministic(0.001),
                web_io=Deterministic(0.001),
                domain_queue="imaginary",
                domain_cpu=Deterministic(0.001),
                db_service=Deterministic(0.001),
                db_calls=1,
                deadline=0.1,
            )
        with pytest.raises(ValueError, match="web stage"):
            TransactionClass(
                name="bad",
                mix_weight=0.5,
                web_cpu=Deterministic(0.001),
                web_io=Deterministic(0.001),
                domain_queue=None,
                domain_cpu=Deterministic(0.001),
                db_service=Deterministic(0.001),
                db_calls=1,
                deadline=0.1,
                has_web_stage=False,
            )
        with pytest.raises(ValueError, match="lock_cpu"):
            TransactionClass(
                name="bad",
                mix_weight=0.5,
                web_cpu=Deterministic(0.001),
                web_io=Deterministic(0.001),
                domain_queue=None,
                domain_cpu=Deterministic(0.001),
                db_service=Deterministic(0.001),
                db_calls=1,
                deadline=0.1,
                uses_inventory_lock=True,
            )

    def test_mix_weights_must_sum_to_one(self):
        classes = standard_mix()
        with pytest.raises(ValueError, match="sum to 1"):
            validate_mix(classes[:2])


class TestTransactionRecord:
    def make(self):
        return Transaction(txn_class=standard_mix()[0], arrived_at=1.0)

    def test_lifecycle(self):
        txn = self.make()
        assert not txn.is_complete and not txn.is_abandoned
        txn.completed_at = 1.2
        assert txn.is_complete
        assert txn.response_time == pytest.approx(0.2)

    def test_deadline_check(self):
        txn = self.make()
        txn.completed_at = txn.arrived_at + txn.txn_class.deadline + 0.01
        assert not txn.met_deadline

    def test_response_time_requires_completion(self):
        with pytest.raises(ValueError):
            self.make().response_time


class TestDatabase:
    def test_call_takes_service_time(self):
        sim = Simulator()
        db = Database(sim, connections=2, rng=np.random.default_rng(0))
        finished = []

        def flow():
            yield from db.call(Deterministic(0.5))
            finished.append(sim.now)

        sim.spawn(flow())
        sim.run()
        assert finished == [pytest.approx(0.5)]
        assert db.calls_served == 1
        assert db.mean_service_time() == pytest.approx(0.5)

    def test_connection_pool_limits_concurrency(self):
        sim = Simulator()
        db = Database(sim, connections=1, rng=np.random.default_rng(0))
        finished = []

        def flow():
            yield from db.call(Deterministic(1.0))
            finished.append(sim.now)

        sim.spawn(flow())
        sim.spawn(flow())
        sim.run()
        assert sorted(finished) == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_validation(self):
        with pytest.raises(ValueError):
            Database(Simulator(), connections=0)


class TestMachineSpec:
    def test_defaults_model_table1(self):
        spec = MachineSpec()
        assert spec.cores == 8
        assert spec.memory_gb == 16.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineSpec(cores=0)
        with pytest.raises(ValueError):
            MachineSpec(quantum=0.0)
        with pytest.raises(ValueError):
            MachineSpec(switch_cost=-1.0)
        with pytest.raises(ValueError):
            MachineSpec(pollution_factor=-1.0)
        with pytest.raises(ValueError):
            MachineSpec(excess_cap=-1)


class TestAppServer:
    def make_server(self, **kwargs):
        sim = Simulator()
        db = Database(sim, connections=8, rng=np.random.default_rng(0))
        defaults = dict(
            mfg_threads=4,
            web_threads=6,
            default_threads=4,
            rng=np.random.default_rng(1),
        )
        defaults.update(kwargs)
        return sim, AppServer(sim, db, **defaults)

    def test_zero_thread_pools_clamped_to_one(self):
        _, server = self.make_server(default_threads=0)
        assert server.pools[DEFAULT_QUEUE].capacity == 1

    def test_negative_threads_rejected(self):
        with pytest.raises(ValueError):
            self.make_server(web_threads=-1)

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            self.make_server(request_timeout=0.0)

    def test_transaction_flows_to_completion(self):
        sim, server = self.make_server()
        txn = Transaction(txn_class=standard_mix()[0], arrived_at=0.0)
        sim.spawn(server.handle(txn))
        sim.run()
        assert txn.is_complete
        assert txn.response_time > 0
        assert server.transactions_completed == 1

    def test_every_class_completes(self):
        sim, server = self.make_server()
        txns = [
            Transaction(txn_class=cls, arrived_at=0.0)
            for cls in standard_mix()
        ]
        for txn in txns:
            sim.spawn(server.handle(txn))
        sim.run()
        assert all(t.is_complete for t in txns)

    def test_stage_times_recorded(self):
        sim, server = self.make_server()
        mfg = standard_mix()[0]
        txn = Transaction(txn_class=mfg, arrived_at=0.0)
        sim.spawn(server.handle(txn))
        sim.run()
        assert "web_start" in txn.stage_times
        assert "domain_start" in txn.stage_times
        assert txn.stage_times["domain_end"] >= txn.stage_times["web_end"]

    def test_overload_abandons_transactions(self):
        sim, server = self.make_server(web_threads=1, request_timeout=0.01)
        dealers = [c for c in standard_mix() if c.name == "dealer_browse"]
        txns = [
            Transaction(txn_class=dealers[0], arrived_at=0.0)
            for _ in range(30)
        ]
        for txn in txns:
            sim.spawn(server.handle(txn))
        sim.run()
        abandoned = [t for t in txns if t.is_abandoned]
        assert abandoned
        assert server.transactions_abandoned == len(abandoned)
        assert all(not t.is_complete for t in abandoned)


class TestLoadDriver:
    def make_driver(self, rate=200.0, sim=None):
        sim = sim or Simulator()
        db = Database(sim, connections=8, rng=np.random.default_rng(0))
        server = AppServer(
            sim,
            db,
            mfg_threads=8,
            web_threads=12,
            default_threads=8,
            rng=np.random.default_rng(1),
        )
        driver = LoadDriver(
            sim,
            standard_mix(),
            injection_rate=rate,
            handler=server.handle,
            arrival_rng=np.random.default_rng(2),
            mix_rng=np.random.default_rng(3),
        )
        return sim, driver

    def test_injection_rate_approximately_respected(self):
        sim, driver = self.make_driver(rate=200.0)
        driver.start()
        sim.run_until(10.0)
        assert driver.injected == pytest.approx(2000, rel=0.15)

    def test_mix_fractions_respected(self):
        sim, driver = self.make_driver(rate=400.0)
        driver.start()
        sim.run_until(10.0)
        browse = sum(
            1
            for t in driver.transactions
            if t.txn_class.name == "dealer_browse"
        )
        assert browse / driver.injected == pytest.approx(0.31, abs=0.05)

    def test_stop_halts_injection(self):
        sim, driver = self.make_driver()
        driver.start()
        sim.run_until(1.0)
        driver.stop()
        count = driver.injected
        sim.run_until(3.0)
        assert driver.injected == count

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            self.make_driver(rate=0.0)
