"""The autotuning subsystem: objectives, search, engine, HTTP, lifecycle.

Covers the closed loop the paper motivates in Section 5.3 — "a system
that recommends the best configuration according to a scoring function" —
as deployed: deterministic searches against the served model,
byte-identical repeat responses, cache invalidation on promote, standing
objectives re-tuned by the lifecycle orchestrator, and the load-shed
tier that keeps recommendations from competing with live traffic.
"""

import json

import numpy as np
import pytest

from repro.analysis.sobol import SOBOL_MAX_DIMS, sobol_design, sobol_sequence
from repro.analysis.tuning import ConfigurationAdvisor, ScoringFunction
from repro.lifecycle import (
    LifecycleOrchestrator,
    ObservationLog,
    VersionedModelStore,
)
from repro.models.neural import NeuralWorkloadModel
from repro.models.persistence import save_model
from repro.reliability.degradation import OverloadedError
from repro.serving import ServingClient, ServingEngine, ServingError
from repro.serving.metrics import ServingMetrics
from repro.serving.server import create_server
from repro.tuning import (
    Constraint,
    Objective,
    RecommendationEngine,
    SearchStrategy,
)
from repro.workload.analytic import AnalyticWorkloadModel
from repro.workload.sampler import (
    ConfigSpace,
    ParameterRange,
    SampleCollector,
    full_factorial,
    latin_hypercube,
)
from repro.workload.service import INPUT_NAMES, OUTPUT_NAMES, WorkloadConfig


@pytest.fixture(scope="module")
def fitted():
    """A joint model fitted on a tiny simulated sample set."""
    space = ConfigSpace()
    dataset = SampleCollector(AnalyticWorkloadModel()).collect(
        latin_hypercube(space, 20, seed=5)
    )
    dataset.y = np.maximum(dataset.y, 1e-3)
    model = NeuralWorkloadModel(
        hidden=(8,), error_threshold=0.05, max_epochs=800, seed=0
    )
    return model.fit(dataset.x, dataset.y)


@pytest.fixture(scope="module")
def alternative():
    """A second, differently-seeded model (the 'promoted candidate')."""
    space = ConfigSpace()
    dataset = SampleCollector(AnalyticWorkloadModel()).collect(
        latin_hypercube(space, 20, seed=9)
    )
    dataset.y = np.maximum(dataset.y * 1.3, 1e-3)
    model = NeuralWorkloadModel(
        hidden=(8,), error_threshold=0.05, max_epochs=800, seed=3
    )
    return model.fit(dataset.x, dataset.y)


@pytest.fixture()
def engine(fitted, tmp_path):
    save_model(fitted, tmp_path / "paper.json")
    engine = ServingEngine(tmp_path, batching=False)
    yield engine
    engine.close()


SLO = Objective(
    kind="slo", constraints=(Constraint("dealer_browse_rt", 0.5),)
)


# ----------------------------------------------------------------------
# objectives
# ----------------------------------------------------------------------


class TestObjective:
    def test_wire_round_trip(self):
        objective = Objective(
            kind="cost",
            target="effective_tps",
            constraints=(
                Constraint("dealer_browse_rt", 0.5),
                Constraint("manufacturing_rt", 1.2),
            ),
            penalty_weight=5.0,
            thread_cost=0.1,
        )
        assert Objective.from_dict(objective.to_dict()) == objective

    def test_canonical_is_order_independent(self):
        a = Objective(
            kind="slo",
            constraints=(
                Constraint("dealer_browse_rt", 0.5),
                Constraint("manufacturing_rt", 1.2),
            ),
        )
        b = Objective(
            kind="slo",
            constraints=(
                Constraint("manufacturing_rt", 1.2),
                Constraint("dealer_browse_rt", 0.5),
            ),
        )
        assert a.canonical() == b.canonical()

    @pytest.mark.parametrize(
        "payload, match",
        [
            ({"kind": "bogus"}, "unknown objective kind"),
            ({"target": "nope"}, "unknown target"),
            ({"kind": "slo"}, "at least one constraint"),
            ({"thread_cost": 0.5}, "applies only to 'cost'"),
            ({"penalty_weight": -1.0}, "non-negative"),
            ({"frobnicate": 1}, "unknown field"),
            ({"penalty_weight": "x"}, "must be a number"),
            (
                {
                    "kind": "slo",
                    "constraints": [
                        {"indicator": "dealer_browse_rt", "max_value": 0.5},
                        {"indicator": "dealer_browse_rt", "max_value": 0.6},
                    ],
                },
                "duplicate constraint",
            ),
            (
                {"constraints": [{"indicator": "nope", "max_value": 1.0}]},
                "unknown indicator",
            ),
            (
                {
                    "constraints": [
                        {"indicator": "dealer_browse_rt", "max_value": -1}
                    ]
                },
                "positive finite",
            ),
        ],
    )
    def test_validation(self, payload, match):
        with pytest.raises(ValueError, match=match):
            Objective.from_dict(payload)

    def test_score_rows_matches_scalar_score(self):
        objective = Objective(
            kind="cost",
            constraints=(Constraint("dealer_browse_rt", 0.3),),
            thread_cost=0.2,
        )
        rng = np.random.default_rng(0)
        outputs = rng.uniform(0.1, 2.0, size=(6, len(OUTPUT_NAMES)))
        vectors = rng.uniform(2.0, 20.0, size=(6, len(INPUT_NAMES)))
        rows = objective.score_rows(outputs, vectors)
        for i in range(6):
            indicators = dict(zip(OUTPUT_NAMES, outputs[i]))
            assert rows[i] == pytest.approx(
                objective.score(indicators, vectors[i])
            )

    def test_slo_penalty_keeps_feasible_ahead(self):
        objective = SLO
        j = OUTPUT_NAMES.index("dealer_browse_rt")
        tps = OUTPUT_NAMES.index("effective_tps")
        good = np.full(len(OUTPUT_NAMES), 0.2)
        good[tps] = 100.0
        bad = good.copy()
        bad[j] = 2.0  # violates the 0.5 SLO
        bad[tps] = 120.0  # even with more throughput...
        scores = objective.score_rows(
            np.vstack([good, bad]), np.zeros((2, len(INPUT_NAMES)))
        )
        assert scores[0] > scores[1]


# ----------------------------------------------------------------------
# sobol sequence edge cases (satellite c)
# ----------------------------------------------------------------------


class TestSobolSequence:
    def test_empty_sequence(self):
        points = sobol_sequence(0, 4, seed=1)
        assert points.shape == (0, 4)

    def test_single_point(self):
        points = sobol_sequence(1, 3, seed=1)
        assert points.shape == (1, 3)
        assert np.all((points >= 0.0) & (points < 1.0))

    def test_dims_bounds(self):
        with pytest.raises(ValueError):
            sobol_sequence(4, 0)
        with pytest.raises(ValueError):
            sobol_sequence(4, SOBOL_MAX_DIMS + 1)
        with pytest.raises(ValueError):
            sobol_sequence(-1, 2)

    def test_scramble_reproducible_under_seed(self):
        a = sobol_sequence(64, 4, seed=7)
        b = sobol_sequence(64, 4, seed=7)
        c = sobol_sequence(64, 4, seed=8)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_unscrambled_is_the_plain_sequence(self):
        a = sobol_sequence(16, 2, scramble=False)
        b = sobol_sequence(16, 2, seed=123, scramble=False)
        np.testing.assert_array_equal(a, b)
        # First dimension of the unscrambled sequence starts 0, 1/2, ...
        assert a[0, 0] == 0.0
        assert a[1, 0] == pytest.approx(0.5)

    def test_range_and_low_discrepancy(self):
        points = sobol_sequence(256, 4, seed=0)
        assert np.all((points >= 0.0) & (points < 1.0))
        # Each dimension's mean should be near 1/2 — far tighter than
        # the same bound would be for 256 uniform-random points.
        assert np.all(np.abs(points.mean(axis=0) - 0.5) < 0.05)

    def test_design_respects_degenerate_bounds(self):
        space = ConfigSpace(
            [
                ParameterRange("injection_rate", 500.0, 500.0, integer=False),
                ParameterRange("default_threads", 2, 22),
                ParameterRange("mfg_threads", 8, 8),
                ParameterRange("web_threads", 14, 24),
            ]
        )
        configs = sobol_design(space, 16, seed=3)
        assert len(configs) == 16
        for config in configs:
            vector = config.as_vector()
            assert vector[0] == 500.0
            assert vector[2] == 8.0
            assert 2 <= vector[1] <= 22
            assert 14 <= vector[3] <= 24

    def test_design_empty(self):
        assert sobol_design(ConfigSpace(), 0, seed=0) == []


# ----------------------------------------------------------------------
# advisor determinism + clamping (satellite a)
# ----------------------------------------------------------------------


class _ConstantModel:
    """Predicts the same indicators everywhere — every score ties."""

    def predict(self, matrix):
        matrix = np.atleast_2d(np.asarray(matrix, dtype=float))
        return np.tile(
            np.array([0.1, 0.1, 0.1, 0.1, 100.0]), (matrix.shape[0], 1)
        )


class TestAdvisorDeterminism:
    def test_tie_break_by_config_tuple(self):
        advisor = ConfigurationAdvisor(_ConstantModel())
        space = ConfigSpace()
        configs = full_factorial(space, 2)
        ranked = advisor.evaluate(configs)
        shuffled = list(configs)
        np.random.default_rng(1).shuffle(shuffled)
        reranked = advisor.evaluate(shuffled)
        first = [tuple(r.config.as_vector()) for r in ranked]
        second = [tuple(r.config.as_vector()) for r in reranked]
        assert first == second
        assert first == sorted(first)  # ties resolve in tuple order

    def test_recommend_is_repeatable(self):
        advisor = ConfigurationAdvisor(_ConstantModel())
        space = ConfigSpace()
        a = advisor.recommend(space, levels=3, top_k=4)
        b = advisor.recommend(space, levels=3, top_k=4)
        assert [tuple(r.config.as_vector()) for r in a] == [
            tuple(r.config.as_vector()) for r in b
        ]

    def test_candidates_clamped_to_fractional_bounds(self):
        # Integer grid generation rounds 2.6 down to 2; the advisor must
        # clamp candidates back inside the declared bounds.
        space = ConfigSpace(
            [
                ParameterRange("injection_rate", 400, 600, integer=False),
                ParameterRange("default_threads", 2.6, 21.4),
                ParameterRange("mfg_threads", 8, 24),
                ParameterRange("web_threads", 14, 24),
            ]
        )
        advisor = ConfigurationAdvisor(_ConstantModel())
        for rec in advisor.recommend(space, levels=3, top_k=10):
            vector = rec.config.as_vector()
            assert 2.6 <= vector[1] <= 21.4

    def test_plan_experiments_stays_in_bounds(self):
        space = ConfigSpace(
            [
                ParameterRange("injection_rate", 400, 600, integer=False),
                ParameterRange("default_threads", 2.6, 21.4),
                ParameterRange("mfg_threads", 8, 24),
                ParameterRange("web_threads", 14, 24),
            ]
        )
        advisor = ConfigurationAdvisor(_ConstantModel())
        chosen = advisor.plan_experiments(space, budget=3, levels=3)
        assert chosen
        for rec in chosen:
            assert 2.6 <= rec.config.as_vector()[1] <= 21.4


# ----------------------------------------------------------------------
# search strategy
# ----------------------------------------------------------------------


class TestSearchStrategy:
    def test_deterministic_and_budgeted(self, fitted):
        strategy = SearchStrategy()
        results = [
            strategy.run(fitted.predict, SLO, budget=64, seed=2)
            for _ in range(2)
        ]
        np.testing.assert_array_equal(results[0].vector, results[1].vector)
        assert results[0].score == results[1].score
        assert results[0].evals <= 64
        assert results[0].seed_evals >= 2

    def test_refinement_never_regresses(self, fitted):
        result = SearchStrategy().run(fitted.predict, SLO, budget=96, seed=0)
        assert result.score >= result.seed_score

    def test_different_seeds_may_differ_but_stay_in_space(self, fitted):
        space = ConfigSpace()
        for seed in range(3):
            result = SearchStrategy(space).run(
                fitted.predict, SLO, budget=32, seed=seed
            )
            for value, prange in zip(result.vector, space.ranges):
                assert prange.low <= value <= prange.high

    def test_budget_too_small(self, fitted):
        with pytest.raises(ValueError, match="budget"):
            SearchStrategy().run(fitted.predict, SLO, budget=3)


# ----------------------------------------------------------------------
# recommendation engine
# ----------------------------------------------------------------------


class TestRecommendationEngine:
    def test_cache_hit_skips_search(self, engine):
        tuner = RecommendationEngine(engine, default_budget=32)
        first = tuner.recommend("paper", SLO)
        evals_after_first = engine.metrics.recommendation_search_evals_total
        second = tuner.recommend("paper", SLO)
        assert first == second
        assert engine.metrics.recommendation_cache_hits_total == 1
        assert (
            engine.metrics.recommendation_search_evals_total
            == evals_after_first
        )

    def test_identical_requests_byte_identical(self, engine):
        tuner = RecommendationEngine(engine, default_budget=32, cache_size=0)
        a = tuner.recommend("paper", SLO, seed=1)
        b = tuner.recommend("paper", SLO, seed=1)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_unknown_model(self, engine):
        tuner = RecommendationEngine(engine)
        with pytest.raises(KeyError):
            tuner.recommend("nope", SLO)

    def test_budget_validation(self, engine):
        tuner = RecommendationEngine(engine, max_budget=128)
        with pytest.raises(ValueError):
            tuner.recommend("paper", SLO, budget=2)
        with pytest.raises(ValueError):
            tuner.recommend("paper", SLO, budget=4096)

    def test_draining_sheds(self, engine):
        tuner = RecommendationEngine(engine)
        engine.drain()
        with pytest.raises(OverloadedError):
            tuner.recommend("paper", SLO)

    def test_rationale_present(self, engine):
        tuner = RecommendationEngine(engine, default_budget=32)
        payload = tuner.recommend("paper", SLO)
        rationale = payload["rationale"]
        assert rationale["surface_class"] in (
            "bowl", "dome", "saddle", "flat", "unavailable",
        )
        if rationale["surface_class"] != "unavailable":
            assert rationale["indicator"] == "effective_tps"
            assert set(rationale["trough_direction"]) == {
                "default_threads", "web_threads",
            }

    def test_promote_invalidates_cache(self, fitted, alternative, tmp_path):
        """The acceptance path: a stale recommendation is never served."""
        registry = tmp_path / "registry"
        registry.mkdir()
        save_model(fitted, registry / "paper.json")
        engine = ServingEngine(registry, batching=False)
        try:
            store = VersionedModelStore(tmp_path / "store")
            store.adopt(
                engine_name := "paper", registry / "paper.json",
                metadata={"status": "baseline"},
            )
            tuner = RecommendationEngine(engine, default_budget=32)
            stale = tuner.recommend(engine_name, SLO)
            assert tuner.stats()["cache_entries"] == 1

            version = store.save_version(engine_name, alternative, {})
            store.promote(engine_name, version, registry)
            dropped = tuner.invalidate_model(engine_name)
            assert dropped == 1

            fresh = tuner.recommend(engine_name, SLO)
            # New artifact version — even an un-invalidated cache could
            # not have served the stale entry, because the key carries
            # the artifact mtime.
            assert (
                fresh["artifact_mtime_ns"] != stale["artifact_mtime_ns"]
            )
            assert fresh["predicted"] != stale["predicted"]
            assert engine.metrics.recommendation_cache_hits_total == 0
        finally:
            engine.close()

    def test_on_model_updated_retunes_standing(
        self, fitted, alternative, tmp_path
    ):
        registry = tmp_path / "registry"
        registry.mkdir()
        save_model(fitted, registry / "paper.json")
        engine = ServingEngine(registry, batching=False)
        try:
            tuner = RecommendationEngine(engine, default_budget=32)
            tuner.register_standing("paper", SLO)
            baseline = tuner.standing_status()["paper"][0]
            assert baseline["retunes"] == 0

            save_model(alternative, registry / "paper.json")
            records = tuner.on_model_updated("paper")
            assert len(records) == 1
            assert records[0]["invalidated"] >= 1
            status = tuner.standing_status()["paper"][0]
            assert status["retunes"] == 1
            assert status["error"] is None
            # shifted reflects whether the new artifact moved the config
            assert records[0]["shifted"] == status["shifted"]
        finally:
            engine.close()


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def served(fitted, tmp_path_factory):
    directory = tmp_path_factory.mktemp("models")
    save_model(fitted, directory / "paper.json")
    engine = ServingEngine(directory, max_wait_ms=1.0)
    tuner = RecommendationEngine(engine, default_budget=48)
    server = create_server(engine, port=0, tuner=tuner)
    server.serve_background()
    yield ServingClient(server.url), engine
    server.shutdown()
    server.server_close()


class TestRecommendHTTP:
    def test_byte_identical_and_cache_counter(self, served):
        client, engine = served
        objective = SLO.to_dict()
        hits_before = engine.metrics.recommendation_cache_hits_total
        a = client.recommend("paper", objective=objective, budget=48, seed=0)
        b = client.recommend("paper", objective=objective, budget=48, seed=0)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
        assert (
            engine.metrics.recommendation_cache_hits_total == hits_before + 1
        )
        assert set(a) >= {
            "config", "predicted", "score", "feasible", "rationale",
            "evals", "artifact_mtime_ns",
        }
        assert set(a["config"]) == set(INPUT_NAMES)

    def test_default_objective(self, served):
        client, _ = served
        body = client.recommend("paper", budget=32)
        assert body["objective"]["kind"] == "max_throughput"

    def test_unknown_model_404(self, served):
        client, _ = served
        with pytest.raises(ServingError) as excinfo:
            client.recommend("nope", budget=32)
        assert excinfo.value.status == 404

    @pytest.mark.parametrize(
        "body",
        [
            {"model": "paper", "objective": {"kind": "bogus"}},
            {"model": "paper", "budget": 1},
            {"model": "paper", "budget": "lots"},
            {"model": "paper", "seed": "x"},
            {"model": "paper", "frobnicate": 1},
            {"model": ""},
        ],
    )
    def test_bad_requests_400(self, served, body):
        client, _ = served
        with pytest.raises(ServingError) as excinfo:
            client._post_json("/recommend", body, None)
        assert excinfo.value.status == 400

    def test_tiny_deadline_504(self, served):
        # Send the deadline header directly (the client would clamp its
        # own socket timeout to the budget and time out before reading
        # the response).
        import urllib.error
        import urllib.request

        client, _ = served
        request = urllib.request.Request(
            client.base_url + "/recommend",
            data=json.dumps({"model": "paper", "budget": 64}).encode(),
            headers={
                "Content-Type": "application/json",
                "X-Deadline-Ms": "0.001",
            },
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 504

    def test_tuning_spans_recorded(self, served):
        client, engine = served
        client.recommend("paper", budget=32, seed=5)
        names = set()
        for trace in engine.tracer.buffer.traces(limit=100):
            for span in trace["spans"]:
                names.add(span["name"])
        assert {"tuning.cache", "tuning.search", "tuning.refine"} <= names

    def test_metrics_exposition(self, served):
        client, _ = served
        text = client.metrics_text()
        assert "repro_serving_recommendations_total" in text
        assert "repro_serving_recommendation_cache_hits_total" in text
        assert "repro_serving_recommendation_search_evals_total" in text
        snapshot = client.metrics()
        assert snapshot["recommendations_total"] >= 1

    def test_recommendations_listing(self, served):
        client, _ = served
        client.recommend("paper", budget=32, seed=7)
        payload = client.recommendations(limit=5)
        assert payload["recent"]
        assert payload["recent"][0]["model"] == "paper"
        assert "cached" in payload["recent"][0]
        assert payload["stats"]["cache_entries"] >= 1

    def test_tuning_disabled_404(self, fitted, tmp_path):
        save_model(fitted, tmp_path / "paper.json")
        engine = ServingEngine(tmp_path, batching=False)
        server = create_server(engine, port=0)  # no tuner
        server.serve_background()
        try:
            client = ServingClient(server.url)
            with pytest.raises(ServingError) as excinfo:
                client.recommend("paper", budget=32)
            assert excinfo.value.status == 404
            with pytest.raises(ServingError) as excinfo:
                client.recommendations()
            assert excinfo.value.status == 404
        finally:
            server.shutdown()
            server.server_close()


# ----------------------------------------------------------------------
# lifecycle promote hook
# ----------------------------------------------------------------------


class TestLifecycleRetune:
    def test_promote_triggers_retune(self, fitted, alternative, tmp_path):
        registry = tmp_path / "registry"
        registry.mkdir()
        save_model(fitted, registry / "paper.json")
        engine = ServingEngine(registry, batching=False)
        try:
            store = VersionedModelStore(tmp_path / "store")
            store.adopt(
                "paper", registry / "paper.json",
                metadata={"status": "baseline"},
            )
            tuner = RecommendationEngine(engine, default_budget=32)
            orchestrator = LifecycleOrchestrator(
                registry,
                store,
                ObservationLog(),
                metrics=engine.metrics,
                tuner=tuner,
            )
            tuner.register_standing("paper", SLO)
            version = store.save_version("paper", alternative, {})
            orchestrator.promote("paper", version)

            status = tuner.standing_status()["paper"][0]
            assert status["retunes"] == 1
            assert orchestrator.last_retune["paper"]
            payload = orchestrator.status()
            assert payload["tuning"]["paper"][0]["retunes"] == 1
            assert (
                payload["models"]["paper"]["last_retune"] is not None
            )

            orchestrator.rollback("paper")
            assert tuner.standing_status()["paper"][0]["retunes"] == 2
        finally:
            engine.close()

    def test_retune_failure_never_blocks_promote(
        self, fitted, alternative, tmp_path
    ):
        registry = tmp_path / "registry"
        registry.mkdir()
        save_model(fitted, registry / "paper.json")
        engine = ServingEngine(registry, batching=False)
        try:
            store = VersionedModelStore(tmp_path / "store")
            store.adopt("paper", registry / "paper.json", metadata={})

            class ExplodingTuner:
                def on_model_updated(self, name):
                    raise RuntimeError("search backend down")

                def standing_status(self):
                    return {}

            orchestrator = LifecycleOrchestrator(
                registry,
                store,
                ObservationLog(),
                tuner=ExplodingTuner(),
            )
            version = store.save_version("paper", alternative, {})
            orchestrator.promote("paper", version)  # must not raise
            assert "error" in orchestrator.last_retune["paper"][0]
        finally:
            engine.close()


# ----------------------------------------------------------------------
# repro-tune CLI
# ----------------------------------------------------------------------


class TestTuneCLI:
    def test_recommend_and_watch(self, served, capsys):
        client, _ = served
        from repro.tuning.cli import main as tune_main

        rc = tune_main(
            [
                "--url", client.base_url,
                "recommend",
                "--model", "paper",
                "--objective", "slo",
                "--limit", "dealer_browse_rt=0.5",
                "--budget", "32",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "recommended configuration" in out
        assert "effective_tps" in out

        rc = tune_main(["--url", client.base_url, "watch", "--iterations", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cache" in out

    def test_sweep_reports_stability(self, served, capsys):
        client, _ = served
        from repro.tuning.cli import main as tune_main

        rc = tune_main(
            [
                "--url", client.base_url,
                "sweep",
                "--model", "paper",
                "--budget", "16",
                "--seeds", "2",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "distinct configuration" in out

    def test_json_output(self, served, capsys):
        client, _ = served
        from repro.tuning.cli import main as tune_main

        rc = tune_main(
            [
                "--url", client.base_url,
                "recommend", "--model", "paper", "--budget", "16", "--json",
            ]
        )
        assert rc == 0
        body = json.loads(capsys.readouterr().out)
        assert set(body["config"]) == set(INPUT_NAMES)

    def test_bad_limit_flag(self):
        from repro.tuning.cli import main as tune_main

        with pytest.raises(SystemExit):
            tune_main(
                ["recommend", "--model", "paper", "--limit", "nope=0.5"]
            )
        with pytest.raises(SystemExit):
            tune_main(
                ["recommend", "--limit", "dealer_browse_rt"]
            )

    def test_server_error_exit_code(self, served, capsys):
        client, _ = served
        from repro.tuning.cli import main as tune_main

        rc = tune_main(
            ["--url", client.base_url, "recommend", "--model", "ghost"]
        )
        assert rc == 1
        assert "error" in capsys.readouterr().err
