"""Weight initializers: shapes, statistics, reproducibility."""

import numpy as np
import pytest

from repro.nn.initializers import (
    Constant,
    GlorotNormal,
    GlorotUniform,
    HeNormal,
    RandomNormal,
    RandomUniform,
    Zeros,
    available_initializers,
    get_initializer,
)

ALL = [
    Zeros(),
    Constant(0.3),
    RandomUniform(),
    RandomNormal(),
    GlorotUniform(),
    GlorotNormal(),
    HeNormal(),
]


@pytest.mark.parametrize("init", ALL, ids=lambda i: i.name)
def test_produces_requested_shape(init, rng):
    assert init((5, 7), rng).shape == (5, 7)
    assert init((4,), rng).shape == (4,)


@pytest.mark.parametrize("init", ALL, ids=lambda i: i.name)
def test_reproducible_given_same_seed(init):
    a = init((6, 6), np.random.default_rng(3))
    b = init((6, 6), np.random.default_rng(3))
    np.testing.assert_array_equal(a, b)


def test_zeros_are_zero(rng):
    assert not Zeros()((3, 3), rng).any()


def test_constant_value(rng):
    np.testing.assert_allclose(Constant(2.5)((2, 2), rng), 2.5)


def test_random_uniform_respects_bounds(rng):
    out = RandomUniform(low=-0.2, high=0.4)((100, 10), rng)
    assert out.min() >= -0.2 and out.max() < 0.4


def test_random_uniform_rejects_inverted_bounds():
    with pytest.raises(ValueError):
        RandomUniform(low=1.0, high=-1.0)


def test_random_normal_statistics(rng):
    out = RandomNormal(mean=1.0, stddev=0.5)((200, 50), rng)
    assert out.mean() == pytest.approx(1.0, abs=0.02)
    assert out.std() == pytest.approx(0.5, abs=0.02)


def test_random_normal_rejects_nonpositive_stddev():
    with pytest.raises(ValueError):
        RandomNormal(stddev=0.0)


def test_glorot_uniform_limit_shrinks_with_fan(rng):
    small = GlorotUniform()((4, 4), rng)
    large = GlorotUniform()((400, 400), rng)
    assert np.abs(large).max() < np.abs(small).max()


def test_glorot_normal_variance(rng):
    fan_in, fan_out = 100, 60
    out = GlorotNormal()((fan_in, fan_out), rng)
    expected_var = 2.0 / (fan_in + fan_out)
    assert out.var() == pytest.approx(expected_var, rel=0.15)


def test_he_normal_variance(rng):
    fan_in = 128
    out = HeNormal()((fan_in, 64), rng)
    assert out.var() == pytest.approx(2.0 / fan_in, rel=0.15)


def test_fans_reject_3d_shapes(rng):
    with pytest.raises(ValueError):
        GlorotUniform()((2, 3, 4), rng)


def test_registry_round_trip():
    init = get_initializer("constant", value=0.7)
    assert isinstance(init, Constant) and init.value == 0.7
    rebuilt = get_initializer(init.config())
    assert rebuilt.value == 0.7


def test_registry_unknown_name():
    with pytest.raises(KeyError):
        get_initializer("xavier-deluxe")


def test_registry_lists_all():
    names = available_initializers()
    assert {"zeros", "glorot_uniform", "he_normal"} <= set(names)
