"""The HTTP layer: endpoint contract, validation errors, full round trip.

The round trip is the paper's deployment story end to end: fit on simulated
samples, persist with ``save_model``, hot-load through the registry, and
query over HTTP — predictions must match the in-memory model bit for bit.
"""

import json

import numpy as np
import pytest

from repro.models.neural import NeuralWorkloadModel
from repro.models.persistence import save_model
from repro.serving import ServingClient, ServingEngine, ServingError
from repro.serving.server import create_server
from repro.workload.sampler import (
    ConfigSpace,
    ParameterRange,
    SampleCollector,
    latin_hypercube,
)
from repro.workload.analytic import AnalyticWorkloadModel
from repro.workload.service import INPUT_NAMES, OUTPUT_NAMES


@pytest.fixture(scope="module")
def fitted():
    """A model fitted on a tiny simulated sample set (analytic backend)."""
    space = ConfigSpace(
        [
            ParameterRange("injection_rate", 350, 520),
            ParameterRange("default_threads", 6, 20),
            ParameterRange("mfg_threads", 12, 20),
            ParameterRange("web_threads", 15, 22),
        ]
    )
    dataset = SampleCollector(AnalyticWorkloadModel()).collect(
        latin_hypercube(space, 20, seed=5)
    )
    dataset.y = np.maximum(dataset.y, 1e-3)
    model = NeuralWorkloadModel(
        hidden=(8,), error_threshold=0.05, max_epochs=800, seed=0
    )
    return model.fit(dataset.x, dataset.y), dataset


@pytest.fixture(scope="module")
def served(fitted, tmp_path_factory):
    model, _ = fitted
    directory = tmp_path_factory.mktemp("models")
    save_model(model, directory / "paper.json")
    engine = ServingEngine(directory, max_wait_ms=1.0)
    server = create_server(engine, port=0)
    server.serve_background()
    yield ServingClient(server.url), model
    server.shutdown()
    server.server_close()


GOOD_CONFIG = {
    "injection_rate": 450.0,
    "default_threads": 14.0,
    "mfg_threads": 16.0,
    "web_threads": 18.0,
}


class TestEndpoints:
    def test_healthz(self, served):
        client, _ = served
        assert client.healthz()

    def test_models_lists_artifact_and_contract(self, served):
        client, _ = served
        assert client.models() == ["paper"]
        payload = client._get_json("/models")
        assert payload["inputs"] == INPUT_NAMES
        assert payload["outputs"] == OUTPUT_NAMES

    def test_predict_single_matches_model(self, served):
        client, model = served
        prediction = client.predict("paper", GOOD_CONFIG)
        assert list(prediction) == OUTPUT_NAMES  # response key order
        expected = model.predict(
            [[GOOD_CONFIG[name] for name in INPUT_NAMES]]
        )[0]
        np.testing.assert_allclose(
            [prediction[name] for name in OUTPUT_NAMES], expected, rtol=1e-9
        )

    def test_predict_list_round_trip(self, served, fitted):
        client, model = served
        _, dataset = fitted
        out = client.predict_many("paper", dataset.x[:6])
        np.testing.assert_allclose(
            out, model.predict(dataset.x[:6]), rtol=1e-9
        )

    def test_repeated_query_shows_cache_hits_in_metrics(self, served):
        client, _ = served
        config = dict(GOOD_CONFIG, injection_rate=470.0)
        client.predict("paper", config)
        client.predict("paper", config)
        metrics = client.metrics()
        assert metrics["cache"]["hits"] >= 1
        assert metrics["cache"]["hit_rate"] > 0
        text = client.metrics_text()
        assert "repro_serving_cache_hits_total" in text
        assert "repro_serving_requests_total" in text

    def test_latency_quantiles_populated(self, served):
        client, _ = served
        client.predict("paper", GOOD_CONFIG)
        quantiles = client.metrics()["latency_seconds"]
        assert set(quantiles) == {"p50", "p95", "p99"}
        assert quantiles["p99"] >= quantiles["p50"] >= 0


class TestValidation:
    def test_unknown_model_404_lists_available(self, served):
        client, _ = served
        with pytest.raises(ServingError) as err:
            client.predict("absent", GOOD_CONFIG)
        assert err.value.status == 404
        assert "paper" in err.value.message

    def test_unknown_route_404(self, served):
        client, _ = served
        with pytest.raises(ServingError) as err:
            client._get_json("/nope")
        assert err.value.status == 404

    def test_missing_field_400_names_field(self, served):
        client, _ = served
        config = dict(GOOD_CONFIG)
        del config["mfg_threads"]
        with pytest.raises(ServingError) as err:
            client.predict("paper", config)
        assert err.value.status == 400
        assert "mfg_threads" in err.value.message

    def test_unknown_field_400(self, served):
        client, _ = served
        with pytest.raises(ServingError) as err:
            client.predict("paper", dict(GOOD_CONFIG, warp_factor=9.0))
        assert err.value.status == 400
        assert "warp_factor" in err.value.message

    def test_non_numeric_field_400(self, served):
        client, _ = served
        with pytest.raises(ServingError) as err:
            client.predict("paper", dict(GOOD_CONFIG, web_threads="many"))
        assert err.value.status == 400
        assert "web_threads" in err.value.message

    def test_indexed_error_for_list_requests(self, served):
        client, _ = served
        bad = dict(GOOD_CONFIG)
        del bad["web_threads"]
        with pytest.raises(ServingError) as err:
            client.predict_many("paper", [GOOD_CONFIG, bad])
        assert err.value.status == 400
        assert "configs[1].web_threads" in err.value.message

    def test_invalid_json_400(self, served):
        client, _ = served
        with pytest.raises(ServingError) as err:
            client._request(
                "POST", "/predict", data=b"{not json",
                headers={"Content-Type": "application/json"},
            )
        assert err.value.status == 400

    def test_empty_configs_400(self, served):
        client, _ = served
        with pytest.raises(ServingError) as err:
            client._post_json("/predict", {"model": "paper", "configs": []})
        assert err.value.status == 400

    def test_errors_are_counted(self, served):
        client, _ = served
        before = client.metrics()["errors_total"]
        with pytest.raises(ServingError):
            client.predict("absent", GOOD_CONFIG)
        assert client.metrics()["errors_total"] == before + 1
