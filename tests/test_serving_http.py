"""The HTTP layer: endpoint contract, validation errors, full round trip.

The round trip is the paper's deployment story end to end: fit on simulated
samples, persist with ``save_model``, hot-load through the registry, and
query over HTTP — predictions must match the in-memory model bit for bit.
"""

import json
import socket
import threading

import numpy as np
import pytest

from repro.models.neural import NeuralWorkloadModel
from repro.models.persistence import save_model
from repro.reliability.policies import RetryPolicy
from repro.serving import (
    ServingClient,
    ServingEngine,
    ServingError,
    TruncatedResponseError,
)
from repro.serving.server import create_server
from repro.workload.sampler import (
    ConfigSpace,
    ParameterRange,
    SampleCollector,
    latin_hypercube,
)
from repro.workload.analytic import AnalyticWorkloadModel
from repro.workload.service import INPUT_NAMES, OUTPUT_NAMES


@pytest.fixture(scope="module")
def fitted():
    """A model fitted on a tiny simulated sample set (analytic backend)."""
    space = ConfigSpace(
        [
            ParameterRange("injection_rate", 350, 520),
            ParameterRange("default_threads", 6, 20),
            ParameterRange("mfg_threads", 12, 20),
            ParameterRange("web_threads", 15, 22),
        ]
    )
    dataset = SampleCollector(AnalyticWorkloadModel()).collect(
        latin_hypercube(space, 20, seed=5)
    )
    dataset.y = np.maximum(dataset.y, 1e-3)
    model = NeuralWorkloadModel(
        hidden=(8,), error_threshold=0.05, max_epochs=800, seed=0
    )
    return model.fit(dataset.x, dataset.y), dataset


@pytest.fixture(scope="module")
def served(fitted, tmp_path_factory):
    model, _ = fitted
    directory = tmp_path_factory.mktemp("models")
    save_model(model, directory / "paper.json")
    engine = ServingEngine(directory, max_wait_ms=1.0)
    server = create_server(engine, port=0)
    server.serve_background()
    yield ServingClient(server.url), model
    server.shutdown()
    server.server_close()


GOOD_CONFIG = {
    "injection_rate": 450.0,
    "default_threads": 14.0,
    "mfg_threads": 16.0,
    "web_threads": 18.0,
}


class TestEndpoints:
    def test_healthz(self, served):
        client, _ = served
        assert client.healthz()

    def test_models_lists_artifact_and_contract(self, served):
        client, _ = served
        assert client.models() == ["paper"]
        payload = client._get_json("/models")
        assert payload["inputs"] == INPUT_NAMES
        assert payload["outputs"] == OUTPUT_NAMES

    def test_predict_single_matches_model(self, served):
        client, model = served
        prediction = client.predict("paper", GOOD_CONFIG)
        assert list(prediction) == OUTPUT_NAMES  # response key order
        expected = model.predict(
            [[GOOD_CONFIG[name] for name in INPUT_NAMES]]
        )[0]
        np.testing.assert_allclose(
            [prediction[name] for name in OUTPUT_NAMES], expected, rtol=1e-9
        )

    def test_predict_list_round_trip(self, served, fitted):
        client, model = served
        _, dataset = fitted
        out = client.predict_many("paper", dataset.x[:6])
        np.testing.assert_allclose(
            out, model.predict(dataset.x[:6]), rtol=1e-9
        )

    def test_repeated_query_shows_cache_hits_in_metrics(self, served):
        client, _ = served
        config = dict(GOOD_CONFIG, injection_rate=470.0)
        client.predict("paper", config)
        client.predict("paper", config)
        metrics = client.metrics()
        assert metrics["cache"]["hits"] >= 1
        assert metrics["cache"]["hit_rate"] > 0
        text = client.metrics_text()
        assert "repro_serving_cache_hits_total" in text
        assert "repro_serving_requests_total" in text

    def test_latency_quantiles_populated(self, served):
        client, _ = served
        client.predict("paper", GOOD_CONFIG)
        quantiles = client.metrics()["latency_seconds"]
        assert set(quantiles) == {"p50", "p95", "p99"}
        assert quantiles["p99"] >= quantiles["p50"] >= 0


class TestValidation:
    def test_unknown_model_404_lists_available(self, served):
        client, _ = served
        with pytest.raises(ServingError) as err:
            client.predict("absent", GOOD_CONFIG)
        assert err.value.status == 404
        assert "paper" in err.value.message

    def test_unknown_route_404(self, served):
        client, _ = served
        with pytest.raises(ServingError) as err:
            client._get_json("/nope")
        assert err.value.status == 404

    def test_missing_field_400_names_field(self, served):
        client, _ = served
        config = dict(GOOD_CONFIG)
        del config["mfg_threads"]
        with pytest.raises(ServingError) as err:
            client.predict("paper", config)
        assert err.value.status == 400
        assert "mfg_threads" in err.value.message

    def test_unknown_field_400(self, served):
        client, _ = served
        with pytest.raises(ServingError) as err:
            client.predict("paper", dict(GOOD_CONFIG, warp_factor=9.0))
        assert err.value.status == 400
        assert "warp_factor" in err.value.message

    def test_non_numeric_field_400(self, served):
        client, _ = served
        with pytest.raises(ServingError) as err:
            client.predict("paper", dict(GOOD_CONFIG, web_threads="many"))
        assert err.value.status == 400
        assert "web_threads" in err.value.message

    def test_indexed_error_for_list_requests(self, served):
        client, _ = served
        bad = dict(GOOD_CONFIG)
        del bad["web_threads"]
        with pytest.raises(ServingError) as err:
            client.predict_many("paper", [GOOD_CONFIG, bad])
        assert err.value.status == 400
        assert "configs[1].web_threads" in err.value.message

    def test_invalid_json_400(self, served):
        client, _ = served
        with pytest.raises(ServingError) as err:
            client._request(
                "POST", "/predict", data=b"{not json",
                headers={"Content-Type": "application/json"},
            )
        assert err.value.status == 400

    def test_empty_configs_400(self, served):
        client, _ = served
        with pytest.raises(ServingError) as err:
            client._post_json("/predict", {"model": "paper", "configs": []})
        assert err.value.status == 400

    def test_errors_are_counted(self, served):
        client, _ = served
        before = client.metrics()["errors_total"]
        with pytest.raises(ServingError):
            client.predict("absent", GOOD_CONFIG)
        assert client.metrics()["errors_total"] == before + 1


class _ScriptedServer:
    """A raw TCP server whose connections run scripted failure modes.

    ``scripts[i]`` handles connection ``i`` (the last script repeats);
    each is a callable ``(conn, request_bytes) -> None`` where
    ``request_bytes`` is the full HTTP request (headers + body), or
    ``b""`` for scripts flagged ``noread`` that slam the door first.
    """

    def __init__(self, scripts):
        self.scripts = scripts
        self.connections = 0
        self.requests_seen = 0
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.url = f"http://127.0.0.1:{self._sock.getsockname()[1]}"
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while True:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            index = min(self.connections, len(self.scripts) - 1)
            self.connections += 1
            script = self.scripts[index]
            try:
                if getattr(script, "noread", False):
                    script(conn, b"")
                else:
                    script(conn, self._read_request(conn))
                    self.requests_seen += 1
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    @staticmethod
    def _read_request(conn):
        conn.settimeout(5.0)
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = conn.recv(4096)
            if not chunk:
                return data
            data += chunk
        head, _, body = data.partition(b"\r\n\r\n")
        length = 0
        for line in head.split(b"\r\n"):
            if line.lower().startswith(b"content-length:"):
                length = int(line.split(b":", 1)[1])
        while len(body) < length:
            chunk = conn.recv(4096)
            if not chunk:
                break
            body += chunk
        return data

    def close(self):
        try:
            self._sock.close()
        except OSError:
            pass


def _truncate_mid_response(conn, _request):
    """Answer the status line and headers, then die mid-body — the wire
    shape of a server SIGKILL'd while writing its response."""
    conn.sendall(
        b"HTTP/1.1 200 OK\r\n"
        b"Content-Type: application/json\r\n"
        b"Content-Length: 100\r\n"
        b"\r\n"
        b'{"partial'
    )


def _refuse_silently(conn, _request):
    """Close before a single response byte — a pre-response failure."""
    conn.close()


_refuse_silently.noread = True


class TestTruncatedResponse:
    """Satellite: mid-response connection loss must not be retried.

    ``POST /predict`` is a pure function of its body, so connection
    resets are retryable — but *only* when no response bytes arrived.
    Once the status line is on the wire the server demonstrably executed
    the request; replaying it would double-count on whatever replaces
    the dead server.
    """

    def test_mid_response_death_raises_and_is_not_retried(self):
        server = _ScriptedServer([_truncate_mid_response])
        try:
            client = ServingClient(
                server.url,
                timeout=5.0,
                retry=RetryPolicy(max_attempts=3, base=0.01, cap=0.02),
            )
            with pytest.raises(TruncatedResponseError):
                client.predict("paper", GOOD_CONFIG)
            # The retry policy had 2 more attempts in budget; the typed
            # error must have stopped it after the first request.
            assert server.requests_seen == 1
            assert server.connections == 1
        finally:
            server.close()

    def test_truncation_is_an_oserror_with_request_id(self):
        server = _ScriptedServer([_truncate_mid_response])
        try:
            client = ServingClient(server.url, timeout=5.0)
            with pytest.raises(OSError) as err:
                client.predict("paper", GOOD_CONFIG)
            assert isinstance(err.value, TruncatedResponseError)
            assert err.value.request_id
            assert "mid-response" in str(err.value)
        finally:
            server.close()

    def test_pre_response_failure_is_retried(self):
        body = json.dumps(
            {"prediction": {name: 1.0 for name in OUTPUT_NAMES}}
        ).encode()

        def answer(conn, _request):
            conn.sendall(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/json\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode()
                + body
            )

        server = _ScriptedServer([_refuse_silently, answer])
        try:
            client = ServingClient(
                server.url,
                timeout=5.0,
                retry=RetryPolicy(max_attempts=3, base=0.01, cap=0.02),
            )
            prediction = client.predict("paper", GOOD_CONFIG)
            assert prediction == {name: 1.0 for name in OUTPUT_NAMES}
            # First connection died before any response byte — safely
            # replayed on a fresh connection.
            assert server.connections == 2
        finally:
            server.close()
