"""The multi-process cluster: protocol, router, supervisor, engine, chaos.

The tentpole claims under test:

* a SIGKILL'd worker never turns into a caller-visible failure — the
  request is answered by a sibling replica or the degraded surrogate;
* the supervisor restarts crashed workers (with backoff and a budget)
  and marks budget-exhausted workers failed, at which point the engine
  degrades instead of erroring;
* a registry promote landing while a worker is mid-restart is served by
  the restarted worker (it preloads whatever is on disk at spawn time).
"""

import os
import threading
import time

import numpy as np
import pytest

from repro.cluster import ClusterEngine, RendezvousRouter, WorkerSupervisor
from repro.cluster.protocol import (
    ProtocolError,
    pack_array,
    recv_frame,
    send_frame,
    unpack_array,
)
from repro.cluster.supervisor import FAILED, READY, STOPPED
from repro.models.neural import NeuralWorkloadModel
from repro.models.persistence import save_model
from repro.reliability.degradation import OverloadedError
from repro.reliability.faults import SITE_WORKER_HANDLE, FaultPlan, FaultRule
from repro.reliability.policies import Deadline, DeadlineExceeded

import socket


def fit_tiny_model(seed=0, scale=1.0):
    """A fast-fitting 4-in/5-out model; ``scale`` shifts its predictions."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(1.0, 8.0, size=(40, 4))
    y = scale * np.column_stack(
        [
            0.1 + 0.02 * (x[:, 1] - 4.0) ** 2,
            0.1 + 0.01 * x[:, 3],
            x[:, 0] * 0.05,
            x[:, 2] * 0.03 + 0.2,
            400.0 - 3.0 * (x[:, 3] - 5.0) ** 2,
        ]
    )
    model = NeuralWorkloadModel(
        hidden=(8,), error_threshold=0.05, max_epochs=500, seed=seed
    )
    return model.fit(x, y)


@pytest.fixture(scope="module")
def tiny_model():
    return fit_tiny_model()


@pytest.fixture()
def model_dir(tiny_model, tmp_path):
    save_model(tiny_model, tmp_path / "paper.json")
    return tmp_path


CONFIG = [450.0, 14.0, 16.0, 18.0]

# Worker spawn is an interpreter start (~0.5 s on a busy 1-core box);
# every poll loop below budgets generously rather than flaking.
_WAIT_S = 30.0


def _wait_for(predicate, timeout=_WAIT_S, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def _engine(model_dir, workers=1, **kwargs):
    supervisor_options = {
        "heartbeat_interval": 0.1,
        "restart_backoff_base": 0.05,
        "restart_window_s": 300.0,
        "restart_budget": 50,
    }
    supervisor_options.update(kwargs.pop("supervisor_options", {}))
    return ClusterEngine(
        model_dir,
        workers=workers,
        supervisor_options=supervisor_options,
        **kwargs,
    ).start()


# ----------------------------------------------------------------------
# wire protocol
# ----------------------------------------------------------------------


class TestProtocol:
    def test_frame_round_trip_with_payload(self):
        a, b = socket.socketpair()
        try:
            x = np.arange(12, dtype=float).reshape(3, 4)
            send_frame(a, {"op": "predict", "n": 3, "d": 4}, pack_array(x))
            header, payload = recv_frame(b, timeout=5.0)
            assert header["op"] == "predict"
            assert header["payload_len"] == 3 * 4 * 8
            np.testing.assert_array_equal(unpack_array(payload, 3, 4), x)
        finally:
            a.close()
            b.close()

    def test_frame_without_payload(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, {"op": "ping"})
            header, payload = recv_frame(b, timeout=5.0)
            assert header == {"op": "ping"}
            assert payload == b""
        finally:
            a.close()
            b.close()

    def test_eof_mid_frame_raises_protocol_error(self):
        a, b = socket.socketpair()
        # Half a length prefix, then the peer dies.
        a.sendall(b"\x00\x00")
        a.close()
        try:
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_frame(b, timeout=5.0)
        finally:
            b.close()

    def test_oversized_header_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"\x7f\xff\xff\xff")
            with pytest.raises(ProtocolError, match="exceeds bound"):
                recv_frame(b, timeout=5.0)
        finally:
            a.close()
            b.close()

    def test_unpack_validates_byte_count(self):
        with pytest.raises(ProtocolError, match="16 bytes"):
            unpack_array(b"\x00" * 16, 3, 4)

    def test_unpacked_array_owns_its_memory(self):
        x = np.ones((2, 2))
        out = unpack_array(pack_array(x), 2, 2)
        out[0, 0] = 7.0  # must not raise: .copy() detached the buffer
        assert out[0, 0] == 7.0


# ----------------------------------------------------------------------
# router
# ----------------------------------------------------------------------


class TestRouter:
    def test_replica_sets_are_deterministic(self):
        router = RendezvousRouter(replication=2)
        workers = [0, 1, 2, 3]
        assert router.replicas("paper", workers) == router.replicas(
            "paper", workers
        )
        assert len(router.replicas("paper", workers)) == 2

    def test_dead_worker_shifts_only_its_models(self):
        router = RendezvousRouter(replication=1)
        workers = [0, 1, 2, 3]
        models = [f"m{i}" for i in range(32)]
        before = {m: router.replicas(m, workers)[0] for m in models}
        dead = before["m0"]
        survivors = [w for w in workers if w != dead]
        for m in models:
            after = router.replicas(m, survivors)[0]
            if before[m] != dead:
                # Models that never touched the dead worker do not move.
                assert after == before[m]
            else:
                assert after != dead

    def test_failover_order_is_score_order(self):
        router = RendezvousRouter(replication=3)
        workers = [0, 1, 2, 3]
        first, second, third = router.replicas("paper", workers)
        # Removing the primary promotes the old second to primary.
        assert router.replicas("paper", [w for w in workers if w != first])[
            :2
        ] == [second, third]

    def test_hot_model_gets_wider_replication(self):
        router = RendezvousRouter(
            replication=1, hot_share=0.5, hot_min_requests=10
        )
        workers = [0, 1, 2]
        assert len(router.replicas("hot", workers)) == 1
        for _ in range(20):
            router.record("hot")
        assert router.is_hot("hot")
        assert len(router.replicas("hot", workers)) == 2
        # A cold model keeps the narrow set.
        assert not router.is_hot("cold")
        assert len(router.replicas("cold", workers)) == 1

    def test_empty_pool_routes_nowhere(self):
        assert RendezvousRouter().replicas("paper", []) == []

    def test_pool_smaller_than_replication(self):
        assert RendezvousRouter(replication=3).replicas("paper", [7]) == [7]


# ----------------------------------------------------------------------
# fault-plan wire form (ships to workers as JSON)
# ----------------------------------------------------------------------


class TestFaultPlanWireForm:
    def test_round_trip_preserves_rules_and_seed(self):
        plan = FaultPlan(
            [
                FaultRule(
                    site=SITE_WORKER_HANDLE,
                    kind="kill_worker",
                    after=2,
                    count=1,
                    probability=0.5,
                ),
                FaultRule(
                    site=SITE_WORKER_HANDLE, kind="slow_worker", latency_s=0.1
                ),
            ],
            seed=42,
        )
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.seed == 42
        assert len(clone.rules) == 2
        assert clone.rules[0].kind == "kill_worker"
        assert clone.rules[0].after == 2
        assert clone.rules[0].probability == 0.5
        assert clone.rules[1].latency_s == 0.1

    def test_fired_counter_not_serialized(self):
        plan = FaultPlan(
            [FaultRule(site=SITE_WORKER_HANDLE, kind="slow_worker",
                       latency_s=0.0)]
        )
        plan.rules[0].fired = 3
        clone = FaultPlan.from_dict(plan.to_dict())
        # A restarted worker starts with fresh hit counters.
        assert clone.rules[0].fired == 0

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError):
            FaultPlan.from_dict(
                {"seed": 0, "rules": [{"site": "x", "kind": "error",
                                       "bogus": 1}]}
            )


# ----------------------------------------------------------------------
# supervisor
# ----------------------------------------------------------------------


class TestSupervisor:
    def test_start_preloads_and_reports_ready(self, model_dir):
        with WorkerSupervisor(model_dir, n_workers=2) as sup:
            status = sup.status()
            assert status["ready"] == 2
            assert sorted(sup.ready_ids()) == [0, 1]
            for worker in status["workers"]:
                assert worker["models"] == ["paper"]
            header, _ = sup.call(0, {"op": "ping"}, timeout=5.0)
            assert header["op"] == "pong"
            assert header["pid"] == sup.handle(0).pid

    def test_sigkill_is_detected_and_restarted(self, model_dir):
        with WorkerSupervisor(
            model_dir,
            n_workers=1,
            heartbeat_interval=0.1,
            restart_backoff_base=0.05,
        ) as sup:
            old_pid = sup.handle(0).pid
            sup.kill_worker(0)
            assert _wait_for(
                lambda: sup.handle(0).state == READY
                and sup.handle(0).pid != old_pid
            ), f"worker stuck in state {sup.handle(0).state}"
            assert sup.handle(0).restarts == 1
            header, _ = sup.call(0, {"op": "ping"}, timeout=5.0)
            assert header["op"] == "pong"

    def test_restart_budget_exhaustion_marks_failed(self, model_dir):
        with WorkerSupervisor(
            model_dir,
            n_workers=1,
            heartbeat_interval=0.05,
            restart_backoff_base=0.01,
            restart_budget=0,
        ) as sup:
            sup.kill_worker(0)
            assert _wait_for(lambda: sup.handle(0).state == FAILED)
            assert sup.ready_ids() == []
            assert sup.status()["failed"] == 1

    def test_drain_acknowledges_and_stops(self, model_dir):
        sup = WorkerSupervisor(model_dir, n_workers=2).start()
        report = sup.drain(timeout=10.0)
        assert report == {0: True, 1: True}
        assert all(h.state == STOPPED for h in sup._handles)
        sup.stop()


# ----------------------------------------------------------------------
# cluster engine
# ----------------------------------------------------------------------


class TestClusterEngine:
    def test_predictions_match_the_artifact(self, model_dir, tiny_model):
        with _engine(model_dir, workers=2) as eng:
            result = eng.predict_detailed("paper", [CONFIG, CONFIG])
            assert not result.degraded
            assert result.source.startswith("worker:")
            np.testing.assert_allclose(
                result.outputs,
                tiny_model.predict(np.asarray([CONFIG, CONFIG])),
                rtol=1e-10,
            )

    def test_unknown_model_and_bad_input(self, model_dir):
        with _engine(model_dir) as eng:
            with pytest.raises(KeyError):
                eng.predict("ghost", [CONFIG])
            with pytest.raises(ValueError):
                eng.predict("paper", [[1.0, 2.0]])  # wrong dimensionality

    def test_expired_deadline_raises_504_semantics(self, model_dir):
        with _engine(model_dir) as eng:
            with pytest.raises(DeadlineExceeded):
                eng.predict("paper", [CONFIG], deadline=Deadline(0.0))

    def test_draining_sheds_with_retry_after(self, model_dir):
        with _engine(model_dir) as eng:
            eng.drain(timeout=5.0)
            with pytest.raises(OverloadedError):
                eng.predict("paper", [CONFIG])

    def test_sigkill_mid_pool_fails_over_to_sibling(self, model_dir):
        with _engine(model_dir, workers=2) as eng:
            first = eng.predict_detailed("paper", [CONFIG])
            primary = int(first.source.split(":")[1])
            eng.supervisor.kill_worker(primary)
            # Before the monitor notices, calls route to the corpse and
            # must fail over — never raise.
            result = eng.predict_detailed("paper", [CONFIG])
            assert result.outputs.shape == (1, 5)
            assert _wait_for(
                lambda: eng.supervisor.handle(primary).state == READY
            )
            assert eng.metrics.worker_restarts_total >= 1

    def test_all_workers_failed_degrades_to_surrogate(self, model_dir):
        with _engine(
            model_dir,
            workers=1,
            supervisor_options={"restart_budget": 0,
                                "heartbeat_interval": 0.05},
        ) as eng:
            assert not eng.predict_detailed("paper", [CONFIG]).degraded
            eng.supervisor.kill_worker(0)
            assert _wait_for(
                lambda: eng.supervisor.handle(0).state == FAILED
            )
            result = eng.predict_detailed("paper", [CONFIG])
            assert result.degraded
            assert result.source == "surrogate:linear"
            health = eng.health()
            assert health["status"] == "degraded"
            assert health["failed_workers"] == 1

    def test_no_workers_and_no_fallback_raises_overloaded(self, model_dir):
        with _engine(
            model_dir,
            workers=1,
            fallback=False,
            supervisor_options={"restart_budget": 0,
                                "heartbeat_interval": 0.05},
        ) as eng:
            eng.supervisor.kill_worker(0)
            assert _wait_for(
                lambda: eng.supervisor.handle(0).state == FAILED
            )
            with pytest.raises(OverloadedError):
                eng.predict("paper", [CONFIG])

    def test_worker_metrics_exported(self, model_dir):
        with _engine(model_dir, workers=1) as eng:
            eng.predict("paper", [CONFIG])
            snapshot = eng.metrics.to_dict()
            assert snapshot["worker_states"] == {"0": "ready"}
            assert "worker_queue_depths" in snapshot
            text = eng.metrics.to_prometheus()
            assert 'worker_state{worker="0"} 1' in text
            assert "worker_restarts_total 0" in text

    def test_health_lists_every_worker(self, model_dir):
        with _engine(model_dir, workers=2) as eng:
            health = eng.health()
            assert health["status"] == "healthy"
            assert health["ready_workers"] == 2
            assert [w["worker"] for w in health["workers"]] == [0, 1]
            assert health["fallbacks"] == ["paper"]


class TestWorkerFaultKinds:
    def test_kill_worker_fault_kills_mid_flight(self, model_dir):
        plan = FaultPlan(
            [FaultRule(site=SITE_WORKER_HANDLE, kind="kill_worker",
                       after=1, count=1)]
        )
        with _engine(model_dir, workers=1, worker_faults=plan) as eng:
            assert not eng.predict_detailed("paper", [CONFIG]).degraded
            # Second request: the worker SIGKILLs itself with the request
            # on its plate.  No sibling -> degraded surrogate answer.
            result = eng.predict_detailed("paper", [CONFIG])
            assert result.degraded
            assert result.source == "surrogate:linear"
            # The restarted worker gets fresh fault counters (after=1
            # means its first request is safe) and takes traffic back.
            assert _wait_for(
                lambda: eng.supervisor.handle(0).state == READY
            )
            assert _wait_for(
                lambda: not eng.predict_detailed("paper", [CONFIG]).degraded
            )

    def test_hang_worker_fault_times_out_and_degrades(self, model_dir):
        plan = FaultPlan(
            [FaultRule(site=SITE_WORKER_HANDLE, kind="hang_worker",
                       after=1, count=1)]
        )
        with _engine(
            model_dir, workers=1, worker_faults=plan, call_timeout=0.5
        ) as eng:
            assert not eng.predict_detailed("paper", [CONFIG]).degraded
            start = time.monotonic()
            result = eng.predict_detailed("paper", [CONFIG])
            # The hang burned only the call timeout, not the hang length.
            assert time.monotonic() - start < 5.0
            assert result.degraded
            assert _wait_for(
                lambda: eng.supervisor.handle(0).state == READY
            )

    def test_slow_worker_fault_injects_latency_only(self, model_dir):
        plan = FaultPlan(
            [FaultRule(site=SITE_WORKER_HANDLE, kind="slow_worker",
                       latency_s=0.05)]
        )
        with _engine(model_dir, workers=1, worker_faults=plan) as eng:
            start = time.monotonic()
            result = eng.predict_detailed("paper", [CONFIG])
            assert time.monotonic() - start >= 0.05
            assert not result.degraded


class TestChaos:
    def test_seeded_kills_never_surface_to_callers(self, model_dir):
        """The tentpole chaos property: SIGKILLs mid-flight, zero failures.

        Workers randomly SIGKILL themselves *after accepting a request*
        (the worst moment).  Every request must still be answered — by
        the primary, a sibling retry, or the degraded surrogate — and
        none may raise.
        """
        plan = FaultPlan(
            [
                FaultRule(
                    site=SITE_WORKER_HANDLE,
                    kind="kill_worker",
                    after=2,
                    probability=0.12,
                )
            ],
            seed=7,
        )
        with _engine(
            model_dir, workers=2, worker_faults=plan, call_timeout=5.0
        ) as eng:
            results = []
            errors = []

            def caller(n):
                for _ in range(n):
                    try:
                        results.append(
                            eng.predict_detailed("paper", [CONFIG])
                        )
                    except Exception as exc:  # noqa: BLE001 - the assertion
                        errors.append(exc)

            threads = [
                threading.Thread(target=caller, args=(12,)) for _ in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120.0)
            assert not errors, f"requests failed under chaos: {errors[:3]}"
            assert len(results) == 36
            for result in results:
                assert result.outputs.shape == (1, 5)
            # The plan's kill probability makes >= 1 death overwhelmingly
            # likely across 36 requests.  The degraded/failover answers
            # prove callers routed around the corpses; the hammer itself
            # finishes in milliseconds while a respawn takes ~0.5s, so
            # *wait* for the supervisor's restart rather than asserting
            # it already happened.
            killed = sum(
                1 for r in results
                if r.degraded or r.source == "surrogate:linear"
            )
            failovers = eng.metrics.worker_failovers_total
            assert killed + failovers >= 1
            assert _wait_for(lambda: eng.metrics.worker_restarts_total >= 1)
            # And once restarted, the pool serves from real workers again.
            assert _wait_for(lambda: len(eng.supervisor.ready_ids()) == 2)
            recovered = eng.predict_detailed("paper", [CONFIG])
            assert recovered.outputs.shape == (1, 5)


class TestPromoteDuringRestart:
    def test_promote_lands_on_restarted_worker(self, model_dir, tiny_model):
        """A registry promote mid-restart is what the new worker serves.

        Kill the only worker, drop a retrained artifact over the old one
        while it is down, and verify the restarted worker answers from
        the *new* version — workers preload whatever is on disk at spawn
        time, and the supervisor must not resurrect stale state.
        """
        retrained = fit_tiny_model(scale=2.0)
        with _engine(
            model_dir,
            workers=1,
            supervisor_options={
                "heartbeat_interval": 0.05,
                # A visible restart window so the promote lands mid-restart.
                "restart_backoff_base": 0.5,
            },
        ) as eng:
            old = eng.predict_detailed("paper", [CONFIG])
            eng.supervisor.kill_worker(0)
            # Promote while the worker is down/restarting.
            save_model(retrained, model_dir / "paper.json")
            stat = os.stat(model_dir / "paper.json")
            os.utime(
                model_dir / "paper.json",
                ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000_000),
            )
            # Wait for the *restart* first: right after the kill the
            # monitor may not have noticed the corpse yet, so READY
            # alone could be the stale pre-kill state.
            assert _wait_for(
                lambda: eng.metrics.worker_restarts_total >= 1
                and eng.supervisor.handle(0).state == READY
            )
            fresh = eng.predict_detailed("paper", [CONFIG])
            assert not fresh.degraded
            np.testing.assert_allclose(
                fresh.outputs,
                retrained.predict(np.asarray([CONFIG])),
                rtol=1e-10,
            )
            # Sanity: the promote actually changed the answers.
            assert not np.allclose(fresh.outputs, old.outputs)
