"""The serving subsystem: registry, cache, micro-batcher, metrics, engine."""

import json
import os
import threading
import time

import numpy as np
import pytest

from repro.models.neural import NeuralWorkloadModel
from repro.models.persistence import save_model
from repro.serving import (
    MicroBatcher,
    ModelRegistry,
    PredictionCache,
    ServingEngine,
    ServingMetrics,
)
from repro.workload.service import INPUT_NAMES, OUTPUT_NAMES


def fit_tiny_model(seed=0, scale=1.0):
    """A fast-fitting 4-in/5-out model; ``scale`` shifts its predictions."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(1.0, 8.0, size=(40, 4))
    y = scale * np.column_stack(
        [
            0.1 + 0.02 * (x[:, 1] - 4.0) ** 2,
            0.1 + 0.01 * x[:, 3],
            x[:, 0] * 0.05,
            x[:, 2] * 0.03 + 0.2,
            400.0 - 3.0 * (x[:, 3] - 5.0) ** 2,
        ]
    )
    model = NeuralWorkloadModel(
        hidden=(8,), error_threshold=0.05, max_epochs=500, seed=seed
    )
    return model.fit(x, y), x


@pytest.fixture(scope="module")
def tiny_model():
    return fit_tiny_model()


@pytest.fixture()
def model_dir(tiny_model, tmp_path):
    model, _ = tiny_model
    save_model(model, tmp_path / "paper.json")
    return tmp_path


def bump_mtime(path):
    """Force a visibly newer mtime regardless of filesystem granularity."""
    stat = os.stat(path)
    os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000_000))


class TestRegistry:
    def test_lists_artifacts_without_loading(self, model_dir):
        registry = ModelRegistry(model_dir)
        assert registry.list_models() == ["paper"]
        assert registry.loaded_models() == []
        assert "paper" in registry
        assert len(registry) == 1

    def test_lazy_get_materializes_and_predicts(self, model_dir, tiny_model):
        model, x = tiny_model
        registry = ModelRegistry(model_dir)
        loaded = registry.get("paper")
        assert registry.loaded_models() == ["paper"]
        np.testing.assert_allclose(loaded.predict(x), model.predict(x))

    def test_entry_key_includes_format_version(self, model_dir):
        entry = ModelRegistry(model_dir).get_entry("paper")
        assert entry.key == "paper@v1"
        assert entry.format_version == 1

    def test_unknown_model_raises_keyerror(self, model_dir):
        with pytest.raises(KeyError, match="unknown"):
            ModelRegistry(model_dir).get("nope")

    def test_path_traversal_rejected(self, model_dir):
        registry = ModelRegistry(model_dir)
        for name in ("../paper", "a/b", ".hidden", ""):
            with pytest.raises(KeyError):
                registry.get(name)

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="does not exist"):
            ModelRegistry(tmp_path / "absent")

    def test_hot_reload_on_mtime_change(self, model_dir, tiny_model):
        model, x = tiny_model
        registry = ModelRegistry(model_dir)
        before = registry.get("paper").predict(x[:3])
        # Drop a different artifact over the same name.
        retrained, _ = fit_tiny_model(seed=1, scale=2.0)
        save_model(retrained, model_dir / "paper.json")
        bump_mtime(model_dir / "paper.json")
        after = registry.get("paper").predict(x[:3])
        assert not np.allclose(before, after)
        np.testing.assert_allclose(after, retrained.predict(x[:3]))

    def test_unchanged_file_is_not_reparsed(self, model_dir):
        registry = ModelRegistry(model_dir)
        first = registry.get("paper")
        assert registry.get("paper") is first

    def test_forced_reload_swaps_instance(self, model_dir):
        registry = ModelRegistry(model_dir)
        first = registry.get("paper")
        assert registry.reload("paper").model is not first

    def test_evict_and_clear(self, model_dir):
        registry = ModelRegistry(model_dir)
        registry.get("paper")
        assert registry.evict("paper")
        assert not registry.evict("paper")
        registry.get("paper")
        registry.clear()
        assert registry.loaded_models() == []

    def test_corrupt_artifact_names_file(self, model_dir):
        (model_dir / "broken.json").write_text('{"format_version": 1')
        with pytest.raises(ValueError, match="broken.json"):
            ModelRegistry(model_dir).get("broken")

    def test_deleted_artifact_becomes_unknown(self, model_dir):
        registry = ModelRegistry(model_dir)
        registry.get("paper")
        (model_dir / "paper.json").unlink()
        with pytest.raises(KeyError):
            registry.get("paper")


class TestPredictionCache:
    def test_miss_then_hit(self):
        cache = PredictionCache(max_entries=4)
        key = cache.key("m", [1.0, 2.0, 3.0, 4.0])
        assert cache.get(key) is None
        cache.put(key, np.arange(5.0))
        np.testing.assert_array_equal(cache.get(key), np.arange(5.0))
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_quantization_absorbs_float_noise(self):
        cache = PredictionCache(decimals=6)
        a = cache.key("m", [0.1 + 0.2, 1, 2, 3])
        b = cache.key("m", [0.3, 1.0, 2.0, 3.0])
        assert a == b

    def test_lru_eviction_order(self):
        cache = PredictionCache(max_entries=2)
        k1, k2, k3 = (cache.key("m", [i, 0, 0, 0]) for i in range(3))
        cache.put(k1, np.zeros(5))
        cache.put(k2, np.ones(5))
        cache.get(k1)  # k1 is now most recently used
        cache.put(k3, np.full(5, 2.0))
        assert k1 in cache and k3 in cache
        assert k2 not in cache  # least recently used got evicted
        assert cache.evictions == 1

    def test_returned_array_is_a_copy(self):
        cache = PredictionCache()
        key = cache.key("m", [1, 2, 3, 4])
        cache.put(key, np.zeros(5))
        cache.get(key)[0] = 99.0
        assert cache.get(key)[0] == 0.0

    def test_invalidate_model_is_selective(self):
        cache = PredictionCache()
        cache.put(cache.key("a", [1, 2, 3, 4]), np.zeros(5))
        cache.put(cache.key("b", [1, 2, 3, 4]), np.ones(5))
        assert cache.invalidate_model("a") == 1
        assert len(cache) == 1

    def test_zero_capacity_disables_caching(self):
        cache = PredictionCache(max_entries=0)
        key = cache.key("m", [1, 2, 3, 4])
        cache.put(key, np.zeros(5))
        assert cache.get(key) is None
        assert len(cache) == 0


class TestMicroBatcher:
    def test_vectorized_results_routed_to_callers(self):
        calls = []

        def predict(batch):
            calls.append(batch.shape[0])
            return batch * 2.0

        with MicroBatcher(predict, max_batch_size=8, max_wait_ms=20.0) as mb:
            futures = [mb.submit([float(i)] * 4) for i in range(8)]
            for i, future in enumerate(futures):
                np.testing.assert_array_equal(
                    future.result(5.0), [2.0 * i] * 4
                )
        assert mb.items_run == 8
        # Everything was queued before the worker's wait lapsed, so the
        # work ran in far fewer forward passes than queries.
        assert mb.batches_run <= len(calls) <= 2

    def test_single_straggler_flushes_on_max_wait(self):
        with MicroBatcher(
            lambda b: b, max_batch_size=64, max_wait_ms=10.0
        ) as mb:
            start = time.perf_counter()
            result = mb.predict([1.0, 2.0, 3.0, 4.0], timeout=5.0)
            elapsed = time.perf_counter() - start
        np.testing.assert_array_equal(result, [1.0, 2.0, 3.0, 4.0])
        assert elapsed < 2.0  # flushed by the wait budget, not the timeout
        assert mb.batches_run == 1 and mb.mean_batch_size == 1.0

    def test_full_batch_flushes_without_waiting(self):
        sizes = []
        with MicroBatcher(
            lambda b: b,
            max_batch_size=4,
            max_wait_ms=10_000.0,  # only the size trigger can flush
            on_batch=sizes.append,
        ) as mb:
            futures = [mb.submit([float(i), 0, 0, 0]) for i in range(4)]
            for future in futures:
                future.result(5.0)
        assert sizes == [4]

    def test_predict_errors_propagate_to_every_caller(self):
        def explode(batch):
            raise RuntimeError("model on fire")

        with MicroBatcher(explode, max_wait_ms=5.0) as mb:
            f1, f2 = mb.submit([1, 2, 3, 4]), mb.submit([5, 6, 7, 8])
            for future in (f1, f2):
                with pytest.raises(RuntimeError, match="on fire"):
                    future.result(5.0)

    def test_submit_after_close_rejected(self):
        mb = MicroBatcher(lambda b: b)
        mb.close()
        with pytest.raises(RuntimeError, match="closed"):
            mb.submit([1, 2, 3, 4])

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda b: b, max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda b: b, max_wait_ms=-1.0)

    def test_close_drain_vs_concurrent_submit_strands_nothing(self):
        """Hammer the close(drain=True) admission window.

        Submitter threads race close(): every submit must either be
        admitted (its future completes with a real result, because drain
        mode runs everything already queued) or be rejected with
        BatcherClosedError at the submit call — never accepted and then
        stranded behind the shutdown sentinel to time out.
        """
        from repro.serving import BatcherClosedError

        for round_no in range(20):
            mb = MicroBatcher(
                lambda b: b * 2.0, max_batch_size=4, max_wait_ms=1.0
            )
            admitted = []
            rejected = []
            start = threading.Barrier(5)

            def submitter():
                start.wait()
                for i in range(25):
                    try:
                        admitted.append(mb.submit([1.0, 2.0, 3.0, 4.0]))
                    except BatcherClosedError:
                        rejected.append(i)
                        return

            threads = [
                threading.Thread(target=submitter) for _ in range(4)
            ]
            for t in threads:
                t.start()

            def closer():
                start.wait()
                # Land the close mid-hammer, at a different phase each
                # round so the race window moves around.
                time.sleep(0.0005 * (round_no % 5))
                mb.close(drain=True)

            close_thread = threading.Thread(target=closer)
            close_thread.start()
            for t in threads:
                t.join(10.0)
            close_thread.join(10.0)
            # Every admitted future resolves with its computed result —
            # a short timeout here is the stranding detector.
            for future in admitted:
                np.testing.assert_allclose(
                    future.result(5.0), [2.0, 4.0, 6.0, 8.0]
                )
            assert len(admitted) + len(rejected) > 0


class TestServingMetrics:
    def test_counters_and_occupancy(self):
        metrics = ServingMetrics()
        metrics.record_request(3, 0.010)
        metrics.record_request(1, 0.020)
        metrics.record_batch(4)
        metrics.record_error()
        snapshot = metrics.to_dict()
        assert snapshot["requests_total"] == 2
        assert snapshot["predictions_total"] == 4
        assert snapshot["errors_total"] == 1
        assert snapshot["mean_batch_occupancy"] == 4.0

    def test_latency_quantiles_ordering(self):
        metrics = ServingMetrics()
        for ms in range(1, 101):
            metrics.record_request(1, ms / 1000.0)
        q = metrics.latency_quantiles()
        assert q["p50"] <= q["p95"] <= q["p99"]
        assert q["p50"] == pytest.approx(0.0505, abs=0.002)

    def test_ring_buffer_bounds_memory(self):
        metrics = ServingMetrics(window=10)
        for _ in range(100):
            metrics.record_request(1, 1.0)
        metrics.record_request(1, 0.0)
        # Window keeps only the latest 10 samples, so p50 is still 1.0.
        assert metrics.latency_quantiles()["p50"] == 1.0

    def test_prometheus_exposition_shape(self):
        cache = PredictionCache()
        cache.get(cache.key("m", [1, 2, 3, 4]))  # one miss
        metrics = ServingMetrics(cache=cache)
        metrics.record_request(1, 0.005)
        text = metrics.to_prometheus()
        assert "# TYPE repro_serving_requests_total counter" in text
        assert "repro_serving_requests_total 1" in text
        assert "repro_serving_cache_misses_total 1" in text
        assert 'request_latency_seconds{quantile="0.5"}' in text
        assert text.endswith("\n")


class TestServingEngine:
    def test_matches_direct_model_predictions(self, model_dir, tiny_model):
        model, x = tiny_model
        with ServingEngine(model_dir, max_wait_ms=1.0) as engine:
            out = engine.predict("paper", x[:5])
        np.testing.assert_allclose(out, model.predict(x[:5]), rtol=1e-10)

    def test_repeat_query_hits_cache(self, model_dir):
        config = [4.0, 4.0, 4.0, 5.0]
        with ServingEngine(model_dir, max_wait_ms=1.0) as engine:
            first = engine.predict_one("paper", config)
            second = engine.predict_one("paper", config)
            np.testing.assert_array_equal(first, second)
            assert engine.cache.hits == 1
            assert engine.metrics.to_dict()["cache"]["hit_rate"] > 0

    def test_unbatched_mode_runs_inline(self, model_dir, tiny_model):
        model, x = tiny_model
        with ServingEngine(model_dir, batching=False) as engine:
            out = engine.predict("paper", x[:4])
            assert engine.metrics.batches_total == 0
        np.testing.assert_allclose(out, model.predict(x[:4]), rtol=1e-10)

    def test_hot_reload_swaps_predictions_and_cache(self, model_dir):
        config = [4.0, 4.0, 4.0, 5.0]
        with ServingEngine(model_dir, max_wait_ms=1.0) as engine:
            before = engine.predict_one("paper", config)
            retrained, _ = fit_tiny_model(seed=1, scale=2.0)
            save_model(retrained, model_dir / "paper.json")
            bump_mtime(model_dir / "paper.json")
            after = engine.predict_one("paper", config)
            assert not np.allclose(before, after)
            np.testing.assert_allclose(
                after, retrained.predict([config])[0], rtol=1e-10
            )

    def test_duplicate_rows_in_one_request_predict_once(self, model_dir):
        with ServingEngine(model_dir, batching=False) as engine:
            out = engine.predict(
                "paper",
                [[4, 4, 4, 5], [4, 4, 4, 5], [2, 3, 4, 5]],
            )
            np.testing.assert_array_equal(out[0], out[1])
            assert len(engine.cache) == 2  # only unique configs ran

    def test_unknown_model_and_bad_shapes(self, model_dir):
        with ServingEngine(model_dir, max_wait_ms=1.0) as engine:
            with pytest.raises(KeyError):
                engine.predict("absent", [[1, 2, 3, 4]])
            with pytest.raises(ValueError, match="shape"):
                engine.predict("paper", [[1, 2, 3]])
            with pytest.raises(ValueError, match="finite"):
                engine.predict("paper", [[1, 2, 3, float("nan")]])

    def test_concurrent_queries_coalesce_into_batches(self, model_dir):
        with ServingEngine(
            model_dir, max_batch_size=16, max_wait_ms=20.0, cache_size=0
        ) as engine:
            results = [None] * 16
            rng = np.random.default_rng(3)
            configs = rng.uniform(1.0, 8.0, size=(16, 4))

            def worker(i):
                results[i] = engine.predict_one("paper", configs[i])

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(16)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert all(r is not None and r.shape == (5,) for r in results)
            assert engine.metrics.mean_batch_occupancy > 1.0
