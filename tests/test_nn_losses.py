"""Loss functions: values, gradients, shape policing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.losses import (
    Huber,
    MeanAbsoluteError,
    MeanSquaredError,
    available_losses,
    get_loss,
)

ALL = [MeanSquaredError(), MeanAbsoluteError(), Huber()]


@pytest.mark.parametrize("loss", ALL, ids=lambda l: l.name)
class TestCommonContract:
    def test_zero_at_perfect_prediction(self, loss, rng):
        y = rng.normal(size=(10, 3))
        assert loss.value(y, y) == pytest.approx(0.0)

    def test_positive_when_wrong(self, loss, rng):
        y = rng.normal(size=(10, 3))
        assert loss.value(y + 1.0, y) > 0.0

    def test_gradient_matches_finite_difference(self, loss, rng):
        predicted = rng.normal(size=(4, 2)) * 2.0
        actual = rng.normal(size=(4, 2))
        analytic = loss.gradient(predicted, actual)
        eps = 1e-6
        numeric = np.zeros_like(predicted)
        for index in np.ndindex(predicted.shape):
            bump = predicted.copy()
            bump[index] += eps
            up = loss.value(bump, actual)
            bump[index] -= 2 * eps
            down = loss.value(bump, actual)
            numeric[index] = (up - down) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-8)

    def test_shape_mismatch_rejected(self, loss):
        with pytest.raises(ValueError):
            loss.value(np.zeros((3, 2)), np.zeros((3, 3)))

    def test_1d_inputs_accepted(self, loss):
        assert loss.value(np.array([1.0, 2.0]), np.array([1.0, 2.0])) == 0.0


class TestMSE:
    def test_known_value(self):
        value = MeanSquaredError().value(np.array([2.0, 4.0]), np.array([0.0, 0.0]))
        assert value == pytest.approx((4.0 + 16.0) / 2.0)


class TestMAE:
    def test_known_value(self):
        value = MeanAbsoluteError().value(
            np.array([2.0, -4.0]), np.array([0.0, 0.0])
        )
        assert value == pytest.approx(3.0)


class TestHuber:
    def test_quadratic_inside_delta(self):
        huber = Huber(delta=1.0)
        mse = MeanSquaredError()
        predicted = np.array([0.3])
        actual = np.array([0.0])
        assert huber.value(predicted, actual) == pytest.approx(
            0.5 * mse.value(predicted, actual)
        )

    def test_linear_outside_delta(self):
        huber = Huber(delta=1.0)
        value = huber.value(np.array([10.0]), np.array([0.0]))
        assert value == pytest.approx(1.0 * (10.0 - 0.5))

    def test_rejects_nonpositive_delta(self):
        with pytest.raises(ValueError):
            Huber(delta=0.0)

    def test_gradient_is_clipped(self):
        grad = Huber(delta=1.0).gradient(np.array([100.0]), np.array([0.0]))
        assert grad[0] == pytest.approx(1.0)


def test_registry():
    assert isinstance(get_loss("mse"), MeanSquaredError)
    assert isinstance(get_loss("huber", delta=2.0), Huber)
    assert set(available_losses()) == {"mse", "mae", "huber", "pinball"}
    with pytest.raises(KeyError):
        get_loss("cross-entropy")


@given(
    st.lists(
        st.floats(min_value=-100, max_value=100), min_size=2, max_size=20
    )
)
@settings(max_examples=50, deadline=None)
def test_mse_dominates_at_large_errors(values):
    """MSE >= MAE^2 is not generally true, but MSE >= 0 and symmetric is."""
    predicted = np.array(values)
    actual = np.zeros_like(predicted)
    mse = MeanSquaredError()
    assert mse.value(predicted, actual) >= 0.0
    assert mse.value(predicted, actual) == pytest.approx(
        mse.value(-predicted, actual)
    )
