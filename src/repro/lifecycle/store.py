"""Versioned model storage with atomic promotion into the serving registry.

Artifacts written by :func:`repro.models.persistence.save_model` are
immutable single JSON files; this store keeps a numbered history of them
per model name::

    <root>/<name>/v0001.json
    <root>/<name>/v0002.json
    <root>/<name>/manifest.json     # history + promoted/previous pointers

*Promotion* copies a stored version over ``<registry_dir>/<name>.json``
with the same write-temp-then-``os.replace`` discipline as ``save_model``,
so the mtime-polling :class:`~repro.serving.registry.ModelRegistry` hot
reload picks the new version up without ever seeing a torn file.  The
mtime is forced strictly past the previous artifact's, because the
registry treats an *equal* mtime as "unchanged" and coarse filesystem
timestamps could otherwise swallow a promotion.  ``rollback()`` is one
call: promote the remembered previous version back.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from pathlib import Path
from typing import List, Optional, Union

from ..models.neural import NeuralWorkloadModel
from ..models.persistence import load_model, save_model

__all__ = ["VersionedModelStore"]

_MANIFEST = "manifest.json"


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` via temp file + ``os.replace``."""
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class VersionedModelStore:
    """Numbered artifact history plus promote/rollback into a registry dir.

    Parameters
    ----------
    root:
        Directory the per-model version folders live under (created on
        demand).
    retention:
        How many version files to keep per model.  Older versions are
        pruned after each save — except the promoted and previous
        versions, which are always retained so rollback can never be
        pruned out from under you.
    """

    def __init__(self, root: Union[str, Path], retention: int = 8):
        if retention < 2:
            raise ValueError(
                f"retention must be >= 2 (promoted + previous), "
                f"got {retention}"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.retention = int(retention)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # manifest plumbing
    # ------------------------------------------------------------------

    def _model_dir(self, name: str) -> Path:
        if not name or "/" in name or "\\" in name or name.startswith("."):
            raise KeyError(f"invalid model name {name!r}")
        return self.root / name

    def _manifest_path(self, name: str) -> Path:
        return self._model_dir(name) / _MANIFEST

    def _read_manifest(self, name: str) -> dict:
        path = self._manifest_path(name)
        if not path.is_file():
            return {"versions": [], "promoted": None, "previous": None}
        return json.loads(path.read_text())

    def _write_manifest(self, name: str, manifest: dict) -> None:
        _atomic_write_bytes(
            self._manifest_path(name), json.dumps(manifest, indent=2).encode()
        )

    @staticmethod
    def _version_file(version: int) -> str:
        return f"v{version:04d}.json"

    def _version_path(self, name: str, version: int) -> Path:
        return self._model_dir(name) / self._version_file(version)

    # ------------------------------------------------------------------
    # history
    # ------------------------------------------------------------------

    def save_version(
        self,
        name: str,
        model: NeuralWorkloadModel,
        metadata: Optional[dict] = None,
    ) -> int:
        """Store ``model`` as the next version of ``name``; returns it."""
        with self._lock:
            directory = self._model_dir(name)
            directory.mkdir(parents=True, exist_ok=True)
            manifest = self._read_manifest(name)
            version = 1 + max(
                (int(v["version"]) for v in manifest["versions"]), default=0
            )
            save_model(model, self._version_path(name, version))
            manifest["versions"].append(
                {
                    "version": version,
                    "file": self._version_file(version),
                    "metadata": metadata or {},
                }
            )
            self._prune(name, manifest)
            self._write_manifest(name, manifest)
            return version

    def adopt(
        self,
        name: str,
        artifact_path: Union[str, Path],
        metadata: Optional[dict] = None,
        mark_promoted: bool = True,
    ) -> int:
        """Archive an existing deployed artifact as the next version.

        Brings a model that was deployed outside the store (e.g. the
        original batch-trained artifact the server started from) under
        version management, so a later promotion has a ``previous`` to
        roll back to.  With ``mark_promoted`` the manifest records it as
        the currently-promoted version — the file is already serving, so
        nothing is copied into the registry.  Returns the version number.
        """
        artifact_path = Path(artifact_path)
        if not artifact_path.is_file():
            raise KeyError(f"no artifact to adopt at {artifact_path}")
        payload = artifact_path.read_bytes()
        with self._lock:
            directory = self._model_dir(name)
            directory.mkdir(parents=True, exist_ok=True)
            manifest = self._read_manifest(name)
            version = 1 + max(
                (int(v["version"]) for v in manifest["versions"]), default=0
            )
            _atomic_write_bytes(self._version_path(name, version), payload)
            manifest["versions"].append(
                {
                    "version": version,
                    "file": self._version_file(version),
                    "metadata": metadata or {"status": "adopted"},
                }
            )
            if mark_promoted:
                promoted = manifest.get("promoted")
                if promoted is not None and promoted != version:
                    manifest["previous"] = promoted
                manifest["promoted"] = version
            self._prune(name, manifest)
            self._write_manifest(name, manifest)
            return version

    def _prune(self, name: str, manifest: dict) -> None:
        """Drop version files beyond ``retention`` (caller holds the lock).

        The promoted and previous versions are pinned regardless of age.
        """
        pinned = {manifest.get("promoted"), manifest.get("previous")}
        entries = manifest["versions"]
        keep = entries[-self.retention:]
        kept, dropped = [], []
        for entry in entries:
            if entry in keep or entry["version"] in pinned:
                kept.append(entry)
            else:
                dropped.append(entry)
        for entry in dropped:
            try:
                os.unlink(self._model_dir(name) / entry["file"])
            except OSError:
                pass
        manifest["versions"] = kept

    def list_versions(self, name: str) -> List[dict]:
        """History entries (version, file, metadata), oldest first."""
        with self._lock:
            return [dict(v) for v in self._read_manifest(name)["versions"]]

    def latest_version(self, name: str) -> Optional[int]:
        """The highest stored version number, or ``None``."""
        versions = self.list_versions(name)
        return int(versions[-1]["version"]) if versions else None

    def promoted_version(self, name: str) -> Optional[int]:
        """The version currently promoted into the registry, if any."""
        with self._lock:
            promoted = self._read_manifest(name).get("promoted")
            return None if promoted is None else int(promoted)

    def previous_version(self, name: str) -> Optional[int]:
        """The version a :meth:`rollback` would restore, if any."""
        with self._lock:
            previous = self._read_manifest(name).get("previous")
            return None if previous is None else int(previous)

    def load_version(self, name: str, version: int) -> NeuralWorkloadModel:
        """Materialize one stored version."""
        path = self._version_path(name, int(version))
        if not path.is_file():
            raise KeyError(f"model {name!r} has no stored version {version}")
        return load_model(path)

    # ------------------------------------------------------------------
    # promotion / rollback
    # ------------------------------------------------------------------

    def promote(
        self,
        name: str,
        version: int,
        registry_dir: Union[str, Path],
    ) -> Path:
        """Atomically deploy ``version`` as ``<registry_dir>/<name>.json``.

        The serving registry's hot-reload path (mtime polling) picks the
        new artifact up on the next lookup; the target file is never
        observable in a torn state.  Returns the deployed path.
        """
        version = int(version)
        with self._lock:
            source = self._version_path(name, version)
            if not source.is_file():
                raise KeyError(
                    f"model {name!r} has no stored version {version}"
                )
            manifest = self._read_manifest(name)
            target = Path(registry_dir) / f"{name}.json"
            target.parent.mkdir(parents=True, exist_ok=True)
            self._deploy(source, target)
            promoted = manifest.get("promoted")
            if promoted is not None and promoted != version:
                manifest["previous"] = promoted
            manifest["promoted"] = version
            self._write_manifest(name, manifest)
            return target

    def rollback(self, name: str, registry_dir: Union[str, Path]) -> int:
        """Restore the previously-promoted version; returns it.

        After a rollback the rolled-back version becomes ``previous``, so
        rolling "forward" again is itself one more :meth:`rollback`.
        """
        with self._lock:
            manifest = self._read_manifest(name)
            previous = manifest.get("previous")
            if previous is None:
                raise RuntimeError(
                    f"model {name!r} has no previous version to roll back to"
                )
            source = self._version_path(name, int(previous))
            if not source.is_file():
                raise RuntimeError(
                    f"previous version {previous} of {name!r} is missing "
                    "on disk"
                )
            target = Path(registry_dir) / f"{name}.json"
            self._deploy(source, target)
            manifest["previous"] = manifest.get("promoted")
            manifest["promoted"] = int(previous)
            self._write_manifest(name, manifest)
            return int(previous)

    @staticmethod
    def _deploy(source: Path, target: Path) -> None:
        """Copy ``source`` over ``target`` atomically, mtime strictly newer."""
        try:
            old_mtime_ns = os.stat(target).st_mtime_ns
        except OSError:
            old_mtime_ns = None
        _atomic_write_bytes(target, source.read_bytes())
        if old_mtime_ns is not None:
            stat = os.stat(target)
            if stat.st_mtime_ns <= old_mtime_ns:
                os.utime(
                    target, ns=(stat.st_atime_ns, old_mtime_ns + 1)
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VersionedModelStore({str(self.root)!r}, "
            f"retention={self.retention})"
        )
