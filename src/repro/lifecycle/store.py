"""Versioned model storage with atomic promotion into the serving registry.

Artifacts written by :func:`repro.models.persistence.save_model` are
immutable single JSON files; this store keeps a numbered history of them
per model name::

    <root>/<name>/v0001.json
    <root>/<name>/v0002.json
    <root>/<name>/manifest.json     # history + promoted/previous pointers

*Promotion* copies a stored version over ``<registry_dir>/<name>.json``
with the same write-temp-then-``os.replace`` discipline as ``save_model``,
so the mtime-polling :class:`~repro.serving.registry.ModelRegistry` hot
reload picks the new version up without ever seeing a torn file.  The
mtime is forced strictly past the previous artifact's, because the
registry treats an *equal* mtime as "unchanged" and coarse filesystem
timestamps could otherwise swallow a promotion.  ``rollback()`` is one
call: promote the remembered previous version back.

Every version file and every deployed artifact carries a sha256 recorded
both in a ``.sha256`` sidecar and in the manifest entry, so corruption is
detectable instead of silent.  :meth:`verify_all` audits a model's
history, :meth:`repair_manifest` rebuilds a torn manifest from the
surviving (verified) version files, and :meth:`redeploy_verified`
restores the newest checksum-valid version into the registry — the
primitive the serving layer's auto-rollback is built on.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Union

from ..durability.integrity import (
    quarantine_file,
    read_checksum,
    sha256_bytes,
    verify_file,
    write_checksum,
)
from ..models.neural import NeuralWorkloadModel
from ..models.persistence import load_model, save_model
from ..reliability.faults import SITE_STORE_PROMOTE, SITE_STORE_SAVE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..reliability.faults import FaultPlan

__all__ = ["VersionedModelStore"]

_MANIFEST = "manifest.json"


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` via temp file + ``os.replace``."""
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class VersionedModelStore:
    """Numbered artifact history plus promote/rollback into a registry dir.

    Parameters
    ----------
    root:
        Directory the per-model version folders live under (created on
        demand).
    retention:
        How many version files to keep per model.  Older versions are
        pruned after each save — except the promoted and previous
        versions, which are always retained so rollback can never be
        pruned out from under you.
    faults:
        Optional :class:`~repro.reliability.faults.FaultPlan` consulted
        at ``store.save`` (after the version file lands, before the
        manifest write) and ``store.promote`` (after the registry
        deploy, before the manifest write) — the two windows a crash
        leaves manifest and disk disagreeing.
    """

    def __init__(
        self,
        root: Union[str, Path],
        retention: int = 8,
        faults: Optional["FaultPlan"] = None,
    ):
        if retention < 2:
            raise ValueError(
                f"retention must be >= 2 (promoted + previous), "
                f"got {retention}"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.retention = int(retention)
        self.faults = faults
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # manifest plumbing
    # ------------------------------------------------------------------

    def _model_dir(self, name: str) -> Path:
        if not name or "/" in name or "\\" in name or name.startswith("."):
            raise KeyError(f"invalid model name {name!r}")
        return self.root / name

    def _manifest_path(self, name: str) -> Path:
        return self._model_dir(name) / _MANIFEST

    def _read_manifest(self, name: str) -> dict:
        path = self._manifest_path(name)
        if not path.is_file():
            return {"versions": [], "promoted": None, "previous": None}
        return json.loads(path.read_text())

    def _write_manifest(self, name: str, manifest: dict) -> None:
        _atomic_write_bytes(
            self._manifest_path(name), json.dumps(manifest, indent=2).encode()
        )

    @staticmethod
    def _version_file(version: int) -> str:
        return f"v{version:04d}.json"

    def _version_path(self, name: str, version: int) -> Path:
        return self._model_dir(name) / self._version_file(version)

    # ------------------------------------------------------------------
    # history
    # ------------------------------------------------------------------

    def save_version(
        self,
        name: str,
        model: NeuralWorkloadModel,
        metadata: Optional[dict] = None,
    ) -> int:
        """Store ``model`` as the next version of ``name``; returns it."""
        with self._lock:
            directory = self._model_dir(name)
            directory.mkdir(parents=True, exist_ok=True)
            manifest = self._read_manifest(name)
            version = 1 + max(
                (int(v["version"]) for v in manifest["versions"]), default=0
            )
            path = self._version_path(name, version)
            save_model(model, path)
            digest = read_checksum(path) or write_checksum(path)
            if self.faults is not None:
                self.faults.fire(SITE_STORE_SAVE, path=path)
            manifest["versions"].append(
                {
                    "version": version,
                    "file": self._version_file(version),
                    "sha256": digest,
                    "metadata": metadata or {},
                }
            )
            self._prune(name, manifest)
            self._write_manifest(name, manifest)
            return version

    def adopt(
        self,
        name: str,
        artifact_path: Union[str, Path],
        metadata: Optional[dict] = None,
        mark_promoted: bool = True,
    ) -> int:
        """Archive an existing deployed artifact as the next version.

        Brings a model that was deployed outside the store (e.g. the
        original batch-trained artifact the server started from) under
        version management, so a later promotion has a ``previous`` to
        roll back to.  With ``mark_promoted`` the manifest records it as
        the currently-promoted version — the file is already serving, so
        nothing is copied into the registry.  Returns the version number.
        """
        artifact_path = Path(artifact_path)
        if not artifact_path.is_file():
            raise KeyError(f"no artifact to adopt at {artifact_path}")
        payload = artifact_path.read_bytes()
        with self._lock:
            directory = self._model_dir(name)
            directory.mkdir(parents=True, exist_ok=True)
            manifest = self._read_manifest(name)
            version = 1 + max(
                (int(v["version"]) for v in manifest["versions"]), default=0
            )
            path = self._version_path(name, version)
            _atomic_write_bytes(path, payload)
            digest = write_checksum(path, sha256_bytes(payload))
            manifest["versions"].append(
                {
                    "version": version,
                    "file": self._version_file(version),
                    "sha256": digest,
                    "metadata": metadata or {"status": "adopted"},
                }
            )
            if mark_promoted:
                promoted = manifest.get("promoted")
                if promoted is not None and promoted != version:
                    manifest["previous"] = promoted
                manifest["promoted"] = version
            self._prune(name, manifest)
            self._write_manifest(name, manifest)
            return version

    def _prune(self, name: str, manifest: dict) -> None:
        """Drop version files beyond ``retention`` (caller holds the lock).

        The promoted and previous versions are pinned regardless of age.
        """
        pinned = {manifest.get("promoted"), manifest.get("previous")}
        entries = manifest["versions"]
        keep = entries[-self.retention:]
        kept, dropped = [], []
        for entry in entries:
            if entry in keep or entry["version"] in pinned:
                kept.append(entry)
            else:
                dropped.append(entry)
        for entry in dropped:
            victim = self._model_dir(name) / entry["file"]
            for path in (victim, victim.with_name(victim.name + ".sha256")):
                try:
                    os.unlink(path)
                except OSError:
                    pass
        manifest["versions"] = kept

    def list_versions(self, name: str) -> List[dict]:
        """History entries (version, file, metadata), oldest first."""
        with self._lock:
            return [dict(v) for v in self._read_manifest(name)["versions"]]

    def latest_version(self, name: str) -> Optional[int]:
        """The highest stored version number, or ``None``."""
        versions = self.list_versions(name)
        return int(versions[-1]["version"]) if versions else None

    def promoted_version(self, name: str) -> Optional[int]:
        """The version currently promoted into the registry, if any."""
        with self._lock:
            promoted = self._read_manifest(name).get("promoted")
            return None if promoted is None else int(promoted)

    def previous_version(self, name: str) -> Optional[int]:
        """The version a :meth:`rollback` would restore, if any."""
        with self._lock:
            previous = self._read_manifest(name).get("previous")
            return None if previous is None else int(previous)

    def load_version(self, name: str, version: int) -> NeuralWorkloadModel:
        """Materialize one stored version."""
        path = self._version_path(name, int(version))
        if not path.is_file():
            raise KeyError(f"model {name!r} has no stored version {version}")
        return load_model(path)

    # ------------------------------------------------------------------
    # promotion / rollback
    # ------------------------------------------------------------------

    def promote(
        self,
        name: str,
        version: int,
        registry_dir: Union[str, Path],
    ) -> Path:
        """Atomically deploy ``version`` as ``<registry_dir>/<name>.json``.

        The serving registry's hot-reload path (mtime polling) picks the
        new artifact up on the next lookup; the target file is never
        observable in a torn state.  The source version's bytes are
        verified against its recorded sha256 first — a store never
        promotes an artifact it can prove is corrupt.  Returns the
        deployed path.
        """
        version = int(version)
        with self._lock:
            source = self._version_path(name, version)
            if not source.is_file():
                raise KeyError(
                    f"model {name!r} has no stored version {version}"
                )
            manifest = self._read_manifest(name)
            expected = self._manifest_digest(manifest, version)
            verdict, actual, recorded = verify_file(source, expected=expected)
            if verdict is False:
                raise ValueError(
                    f"refusing to promote {name!r} v{version}: sha256 "
                    f"{actual[:12]}… != recorded {str(recorded)[:12]}…"
                )
            target = Path(registry_dir) / f"{name}.json"
            target.parent.mkdir(parents=True, exist_ok=True)
            self._deploy(source, target)
            if self.faults is not None:
                self.faults.fire(SITE_STORE_PROMOTE, path=target)
            promoted = manifest.get("promoted")
            if promoted is not None and promoted != version:
                manifest["previous"] = promoted
            manifest["promoted"] = version
            self._write_manifest(name, manifest)
            return target

    def rollback(self, name: str, registry_dir: Union[str, Path]) -> int:
        """Restore the previously-promoted version; returns it.

        After a rollback the rolled-back version becomes ``previous``, so
        rolling "forward" again is itself one more :meth:`rollback`.
        """
        with self._lock:
            manifest = self._read_manifest(name)
            previous = manifest.get("previous")
            if previous is None:
                raise RuntimeError(
                    f"model {name!r} has no previous version to roll back to"
                )
            source = self._version_path(name, int(previous))
            if not source.is_file():
                raise RuntimeError(
                    f"previous version {previous} of {name!r} is missing "
                    "on disk"
                )
            target = Path(registry_dir) / f"{name}.json"
            self._deploy(source, target)
            manifest["previous"] = manifest.get("promoted")
            manifest["promoted"] = int(previous)
            self._write_manifest(name, manifest)
            return int(previous)

    @staticmethod
    def _deploy(source: Path, target: Path) -> None:
        """Copy ``source`` over ``target`` atomically, mtime strictly newer.

        The deployed artifact gets its own ``.sha256`` sidecar (written
        after the artifact replace; readers tolerate the in-between
        instant by re-reading) so the serving registry can verify what
        it hot-reloads.
        """
        try:
            old_mtime_ns = os.stat(target).st_mtime_ns
        except OSError:
            old_mtime_ns = None
        payload = source.read_bytes()
        _atomic_write_bytes(target, payload)
        if old_mtime_ns is not None:
            stat = os.stat(target)
            if stat.st_mtime_ns <= old_mtime_ns:
                os.utime(
                    target, ns=(stat.st_atime_ns, old_mtime_ns + 1)
                )
        write_checksum(target, sha256_bytes(payload))

    # ------------------------------------------------------------------
    # integrity / recovery
    # ------------------------------------------------------------------

    @staticmethod
    def _manifest_digest(manifest: dict, version: int) -> Optional[str]:
        """The sha256 the manifest records for ``version`` (or ``None``)."""
        for entry in manifest.get("versions", ()):
            if int(entry.get("version", -1)) == version:
                digest = entry.get("sha256")
                return str(digest).lower() if digest else None
        return None

    def verify_version(self, name: str, version: int) -> dict:
        """Audit one stored version against its recorded sha256.

        Returns ``{"version", "file", "verdict", "sha256"}`` with verdict
        ``"ok"`` (bytes match), ``"mismatch"``, ``"unverified"`` (no
        digest recorded anywhere — a pre-durability artifact), or
        ``"missing"`` (version file gone).
        """
        version = int(version)
        with self._lock:
            manifest = self._read_manifest(name)
            expected = self._manifest_digest(manifest, version)
        path = self._version_path(name, version)
        if not path.is_file():
            return {
                "version": version,
                "file": self._version_file(version),
                "verdict": "missing",
                "sha256": expected,
            }
        verdict, actual, _ = verify_file(path, expected=expected)
        label = (
            "unverified" if verdict is None else "ok" if verdict else "mismatch"
        )
        return {
            "version": version,
            "file": self._version_file(version),
            "verdict": label,
            "sha256": actual,
        }

    def verify_all(self, name: str) -> List[dict]:
        """Audit every manifest-listed version of ``name``, oldest first."""
        with self._lock:
            versions = [
                int(v["version"])
                for v in self._read_manifest(name)["versions"]
            ]
        return [self.verify_version(name, v) for v in versions]

    def repair_manifest(self, name: str) -> dict:
        """Rebuild ``name``'s manifest from the surviving version files.

        The startup-recovery primitive: a crash between writing a
        version/artifact file and the manifest (the ``store.save`` /
        ``store.promote`` windows), or a torn manifest write itself,
        leaves the two out of sync.  This method makes the on-disk files
        authoritative:

        * an unparseable manifest is discarded and rebuilt from scratch;
        * version files failing their sidecar digest are quarantined;
        * surviving files missing from the manifest are re-added with
          ``status: "recovered"``; entries whose file is gone are dropped;
        * every kept entry gets its ``sha256`` backfilled (writing the
          sidecar if it was missing);
        * promoted/previous pointers landing on dropped versions are
          moved to the newest surviving version (or cleared).

        Returns a report dict (``repaired`` flags whether anything
        changed).
        """
        with self._lock:
            directory = self._model_dir(name)
            report = {
                "model": name,
                "repaired": False,
                "manifest_rebuilt": False,
                "quarantined": [],
                "recovered": [],
                "dropped": [],
                "promoted": None,
                "previous": None,
            }
            if not directory.is_dir():
                return report
            try:
                manifest = self._read_manifest(name)
                entries = {
                    int(v["version"]): dict(v) for v in manifest["versions"]
                }
            except (ValueError, KeyError, TypeError, OSError):
                manifest = {"versions": [], "promoted": None, "previous": None}
                entries = {}
                report["manifest_rebuilt"] = True
                report["repaired"] = True

            # On-disk version files, verified against their sidecars.
            survivors = {}
            for path in sorted(directory.glob("v*.json")):
                stem = path.stem
                try:
                    version = int(stem[1:])
                except ValueError:
                    continue
                verdict, actual, _ = verify_file(path)
                if verdict is False:
                    moved = quarantine_file(path)
                    report["quarantined"].append(
                        {"version": version, "moved_to": str(moved)}
                    )
                    report["repaired"] = True
                    continue
                survivors[version] = actual
                if verdict is None:
                    # No sidecar — backfill one so the file is verifiable
                    # from now on.
                    write_checksum(path, actual)

            # Reconcile manifest entries with the survivors.
            rebuilt = []
            for version in sorted(set(entries) | set(survivors)):
                if version not in survivors:
                    report["dropped"].append(version)
                    report["repaired"] = True
                    continue
                entry = entries.get(version)
                if entry is None:
                    entry = {
                        "version": version,
                        "file": self._version_file(version),
                        "metadata": {"status": "recovered"},
                    }
                    report["recovered"].append(version)
                    report["repaired"] = True
                if entry.get("sha256") != survivors[version]:
                    entry["sha256"] = survivors[version]
                    report["repaired"] = True
                rebuilt.append(entry)
            manifest["versions"] = rebuilt

            # Pointers must land on surviving versions.
            newest = max(survivors) if survivors else None
            for pointer in ("promoted", "previous"):
                value = manifest.get(pointer)
                if value is not None and int(value) not in survivors:
                    fallback = newest if pointer == "promoted" else None
                    if fallback == manifest.get("promoted"):
                        fallback = None
                    manifest[pointer] = fallback
                    report["repaired"] = True
            if manifest.get("promoted") is None and newest is not None:
                manifest["promoted"] = newest
                report["repaired"] = True
            if manifest.get("previous") == manifest.get("promoted"):
                manifest["previous"] = None
            report["promoted"] = manifest.get("promoted")
            report["previous"] = manifest.get("previous")
            self._write_manifest(name, manifest)
            return report

    def redeploy_verified(
        self, name: str, registry_dir: Union[str, Path]
    ) -> Optional[int]:
        """Deploy the best verified-good version of ``name``; returns it.

        Candidates are tried promoted → previous → remaining versions
        newest-first; the first whose bytes match their recorded digest
        *and* parse as JSON wins.  The manifest's promoted/previous
        pointers are updated to match what was actually deployed.
        Returns ``None`` when no version survives verification — the
        caller is out of good artifacts.
        """
        with self._lock:
            manifest = self._read_manifest(name)
            versions = sorted(
                (int(v["version"]) for v in manifest["versions"]),
                reverse=True,
            )
            ordered = []
            for candidate in (
                manifest.get("promoted"),
                manifest.get("previous"),
                *versions,
            ):
                if candidate is None:
                    continue
                candidate = int(candidate)
                if candidate not in ordered:
                    ordered.append(candidate)
            for candidate in ordered:
                source = self._version_path(name, candidate)
                if not source.is_file():
                    continue
                expected = self._manifest_digest(manifest, candidate)
                verdict, _, _ = verify_file(source, expected=expected)
                if verdict is False:
                    continue
                try:
                    json.loads(source.read_text())
                except (ValueError, OSError):
                    continue
                target = Path(registry_dir) / f"{name}.json"
                target.parent.mkdir(parents=True, exist_ok=True)
                self._deploy(source, target)
                promoted = manifest.get("promoted")
                if promoted is not None and int(promoted) != candidate:
                    manifest["previous"] = int(promoted)
                manifest["promoted"] = candidate
                self._write_manifest(name, manifest)
                return candidate
            return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VersionedModelStore({str(self.root)!r}, "
            f"retention={self.retention})"
        )
