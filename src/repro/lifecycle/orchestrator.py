"""The closed loop: drift check → gated retrain → promote → rollback.

:class:`LifecycleOrchestrator` ties the lifecycle pieces to the serving
stack.  One :meth:`run_cycle` performs the whole continuous-learning
round:

1. **Drift check** (:class:`~repro.lifecycle.drift.DriftDetector`) against
   the deployed artifact's own scaler statistics and the paper's
   harmonic-mean relative-error metric over live pairs.
2. **Retrain** with the paper's methodology — standardize (Section 3.1),
   loose-fit error threshold (Section 3.3), optional k-fold cross
   validation (Section 4) — warm-started from the incumbent weights and
   deterministic under the orchestrator seed.
3. **Validation gate**: the candidate must meet a per-indicator
   harmonic-mean relative-error bound (Table 2 style) on held-out
   observations it never trained on, or it is rejected with a report.
   Optional *shadow evaluation* additionally requires the candidate to
   beat the incumbent on the same mirrored traffic.
4. **Versioned promotion** through the
   :class:`~repro.lifecycle.store.VersionedModelStore`: the accepted
   candidate lands in the version history and is atomically promoted
   into the registry directory, where the serving engine's hot-reload
   path picks it up; :meth:`rollback` restores the prior artifact in one
   call.

Every transition is mirrored into
:class:`~repro.serving.metrics.ServingMetrics` (``retrains_total``,
``promotions_total``, ``rollbacks_total``, ``drift_score``) and the
whole state is summarized by :meth:`status` — the payload behind the
HTTP server's ``GET /lifecycle``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..model_selection.cross_validation import cross_validate
from ..models.neural import NeuralWorkloadModel
from ..models.persistence import load_model
from ..observability.hooks import epoch_span_hook
from ..observability.trace import NOOP_SPAN, Tracer
from ..serving.metrics import ServingMetrics
from ..workload.service import OUTPUT_NAMES
from .drift import DriftDetector, DriftReport, DriftThresholds, residual_errors
from .observations import ObservationLog
from .store import VersionedModelStore

__all__ = [
    "GateThresholds",
    "GateReport",
    "CycleReport",
    "LifecycleOrchestrator",
]


@dataclass(frozen=True)
class GateThresholds:
    """The promotion gate: per-indicator harmonic-mean error bounds.

    Parameters
    ----------
    max_error:
        Default bound applied to every indicator (Table 2's grand-mean
        neighbourhood: the paper reports ~5 % average error; the default
        leaves loose-fit slack on held-out live traffic).
    per_indicator:
        Optional overrides keyed by indicator name.
    holdout_fraction / min_holdout:
        How much of the observation set is withheld from training and
        judged by the gate.
    min_actual:
        Measurements at or below this magnitude are excluded per
        indicator (relative error is undefined at zero and explodes for
        vanishing values, e.g. throughput of a saturated system); an
        indicator left with fewer than two valid measurements renders no
        verdict rather than failing the gate.
    """

    max_error: float = 0.15
    per_indicator: Optional[Dict[str, float]] = None
    holdout_fraction: float = 0.25
    min_holdout: int = 8
    min_actual: float = 1e-9

    def __post_init__(self):
        if self.max_error <= 0:
            raise ValueError(
                f"max_error must be positive, got {self.max_error}"
            )
        if not 0.0 < self.holdout_fraction < 1.0:
            raise ValueError(
                f"holdout_fraction must be in (0, 1), "
                f"got {self.holdout_fraction}"
            )
        if self.min_holdout < 2:
            raise ValueError(
                f"min_holdout must be >= 2, got {self.min_holdout}"
            )
        if self.min_actual < 0:
            raise ValueError(
                f"min_actual must be >= 0, got {self.min_actual}"
            )

    def threshold_for(self, indicator: str) -> float:
        """The bound one indicator must meet."""
        if self.per_indicator and indicator in self.per_indicator:
            return float(self.per_indicator[indicator])
        return self.max_error


@dataclass
class GateReport:
    """Verdict of one validation-gate evaluation."""

    passed: bool
    n_holdout: int
    errors: Dict[str, float] = field(default_factory=dict)
    thresholds: Dict[str, float] = field(default_factory=dict)
    skipped: List[str] = field(default_factory=list)
    shadow: Optional[dict] = None
    reasons: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "passed": self.passed,
            "n_holdout": self.n_holdout,
            "errors": dict(self.errors),
            "thresholds": dict(self.thresholds),
            "skipped": list(self.skipped),
            "shadow": self.shadow,
            "reasons": list(self.reasons),
        }


@dataclass
class CycleReport:
    """What one :meth:`LifecycleOrchestrator.run_cycle` did."""

    model: str
    drift: DriftReport
    retrained: bool = False
    epochs: Optional[int] = None
    cv_error: Optional[float] = None
    gate: Optional[GateReport] = None
    version: Optional[int] = None
    promoted: bool = False

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "drift": self.drift.to_dict(),
            "retrained": self.retrained,
            "epochs": self.epochs,
            "cv_error": self.cv_error,
            "gate": None if self.gate is None else self.gate.to_dict(),
            "version": self.version,
            "promoted": self.promoted,
        }


class LifecycleOrchestrator:
    """Drives the capture → drift → retrain → gate → promote loop.

    Parameters
    ----------
    registry_dir:
        The serving registry directory (``<name>.json`` artifacts) that
        promotions and rollbacks atomically rewrite.
    store:
        The :class:`VersionedModelStore` holding version history.
    log:
        The :class:`ObservationLog` traffic lands in.
    drift_thresholds / gate:
        Tuning of the two decision points.
    metrics:
        :class:`ServingMetrics` to mirror counters into — pass the
        serving engine's instance so ``/metrics`` shows the loop.
    seed:
        Seed for holdout splitting, k-fold structure, and candidate
        initialization; the whole cycle is deterministic under it.
    kfold:
        When > 1, run k-fold cross validation on the training split and
        report the overall error (the Section 4 protocol); 0 skips it.
    tracer:
        Optional :class:`~repro.observability.trace.Tracer` — pass the
        serving engine's so lifecycle cycles land in the same trace
        store.  A cycle then renders as a ``lifecycle.run_cycle`` span
        with ``drift_check`` / ``retrain`` (including per-epoch training
        spans) / ``gate`` / ``promote`` children, which answers *where a
        ten-second retrain cycle actually went*.
    tuner:
        Optional :class:`~repro.tuning.engine.RecommendationEngine`.
        Every promote and rollback then invalidates the recommendation
        cache and re-tunes the model's standing objectives
        (``lifecycle.retune`` span); the resulting config shift is
        surfaced under ``GET /lifecycle``.
    """

    def __init__(
        self,
        registry_dir: Union[str, Path],
        store: VersionedModelStore,
        log: ObservationLog,
        drift_thresholds: Optional[DriftThresholds] = None,
        gate: Optional[GateThresholds] = None,
        metrics: Optional[ServingMetrics] = None,
        seed: int = 0,
        kfold: int = 0,
        tracer: Optional[Tracer] = None,
        tuner=None,
    ):
        self.registry_dir = Path(registry_dir)
        self.store = store
        self.log = log
        self.detector = DriftDetector(drift_thresholds)
        self.gate = gate or GateThresholds()
        self.metrics = metrics
        self.tracer = tracer
        self.seed = int(seed)
        if kfold < 0 or kfold == 1:
            raise ValueError(f"kfold must be 0 or >= 2, got {kfold}")
        self.kfold = int(kfold)
        self.tuner = tuner
        self.last_drift: Dict[str, DriftReport] = {}
        self.last_cycle: Dict[str, CycleReport] = {}
        self.last_retune: Dict[str, List[dict]] = {}

    # ------------------------------------------------------------------
    # pieces
    # ------------------------------------------------------------------

    def _span(self, name: str, **attributes):
        """A lifecycle stage span (the no-op span when tracing is off)."""
        if self.tracer is None:
            return NOOP_SPAN
        return self.tracer.start_span(name, attributes=attributes or None)

    def deployed_model(self, name: str) -> NeuralWorkloadModel:
        """The artifact currently served for ``name``."""
        path = self.registry_dir / f"{name}.json"
        if not path.is_file():
            raise KeyError(f"no deployed artifact for model {name!r}")
        return load_model(path)

    def check_drift(self, name: str) -> DriftReport:
        """Score the log against the deployed model; updates the gauge."""
        with self._span("lifecycle.drift_check", model=name) as span:
            report = self.detector.check(
                self.log, name, self.deployed_model(name)
            )
            span.set_attribute("drifted", bool(report.drifted))
            if report.config_score is not None:
                span.set_attribute("config_score", float(report.config_score))
        self.last_drift[name] = report
        if self.metrics is not None and report.config_score is not None:
            self.metrics.set_drift_score(name, report.config_score)
        return report

    def _split(
        self, x: np.ndarray, y: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Deterministic shuffled train/holdout split."""
        n = x.shape[0]
        n_holdout = max(
            self.gate.min_holdout, int(round(n * self.gate.holdout_fraction))
        )
        if n - n_holdout < self.gate.min_holdout:
            raise ValueError(
                f"{n} observations cannot fund a training split plus a "
                f"holdout of {n_holdout}"
            )
        order = np.random.default_rng(self.seed).permutation(n)
        holdout, train = order[:n_holdout], order[n_holdout:]
        return x[train], y[train], x[holdout], y[holdout]

    def _clone_untrained(
        self, source: NeuralWorkloadModel
    ) -> NeuralWorkloadModel:
        """A fresh model with the deployed hyper-parameters (paper recipe)."""
        return NeuralWorkloadModel(
            hidden=source.hidden,
            error_threshold=source.error_threshold,
            max_epochs=source.max_epochs,
            joint=source.joint,
            standardize_inputs=source.standardize_inputs,
            standardize_outputs=source.standardize_outputs,
            learning_rate=source.learning_rate,
            hidden_activation=source.hidden_activation,
            l2=source.l2,
            seed=self.seed,
        )

    def retrain(
        self, name: str, warm_start: bool = True
    ) -> Tuple[NeuralWorkloadModel, np.ndarray, np.ndarray, Optional[float]]:
        """Fit a candidate on the log's measured observations.

        Returns ``(candidate, holdout_x, holdout_y, cv_error)``; the
        holdout was never seen by the candidate and is what the gate
        judges.
        """
        x, y = self.log.training_data(name)
        if x.size == 0:
            raise ValueError(
                f"no measured observations for model {name!r}; the ground "
                "truth driver has not recorded any"
            )
        train_x, train_y, holdout_x, holdout_y = self._split(x, y)
        with self._span(
            "lifecycle.retrain",
            model=name,
            warm_start=bool(warm_start),
            n_train=int(train_x.shape[0]),
        ) as span:
            incumbent = self.deployed_model(name)
            candidate = self._clone_untrained(incumbent)
            cv_error: Optional[float] = None
            if self.kfold:
                cv_report = cross_validate(
                    lambda trial: self._clone_untrained(incumbent),
                    train_x,
                    train_y,
                    k=self.kfold,
                    seed=self.seed,
                    output_names=OUTPUT_NAMES,
                )
                cv_error = float(cv_report.overall_error)
            candidate.fit(
                train_x,
                train_y,
                warm_start_from=incumbent if warm_start else None,
                epoch_callback=(
                    # One span per 10 epochs: enough resolution to see a
                    # stalled descent without a 1000-epoch run flooding
                    # the trace buffer's per-trace span bound.
                    epoch_span_hook(self.tracer, every=10)
                    if self.tracer is not None
                    else None
                ),
            )
            span.set_attribute("epochs", int(candidate.total_epochs_))
        if self.metrics is not None:
            self.metrics.record_retrain()
        return candidate, holdout_x, holdout_y, cv_error

    def validate(
        self,
        name: str,
        candidate: NeuralWorkloadModel,
        holdout_x: np.ndarray,
        holdout_y: np.ndarray,
        shadow: bool = False,
    ) -> GateReport:
        """Judge a candidate on held-out observations (Table 2 metric)."""
        with self._span(
            "lifecycle.gate", model=name, n_holdout=int(holdout_x.shape[0])
        ) as span:
            report = self._validate_inner(
                name, candidate, holdout_x, holdout_y, shadow
            )
            span.set_attribute("passed", bool(report.passed))
        return report

    def _validate_inner(
        self,
        name: str,
        candidate: NeuralWorkloadModel,
        holdout_x: np.ndarray,
        holdout_y: np.ndarray,
        shadow: bool,
    ) -> GateReport:
        report = GateReport(passed=True, n_holdout=int(holdout_x.shape[0]))
        if holdout_x.shape[0] < 2:
            report.passed = False
            report.reasons.append("holdout too small to judge")
            return report
        predicted = candidate.predict(holdout_x)
        errors = residual_errors(
            predicted, holdout_y, min_actual=self.gate.min_actual
        )
        names = (
            OUTPUT_NAMES
            if errors.size == len(OUTPUT_NAMES)
            else [f"y{j}" for j in range(errors.size)]
        )
        for indicator, error in zip(names, errors):
            if np.isnan(error):
                report.skipped.append(indicator)
                continue
            bound = self.gate.threshold_for(indicator)
            report.errors[indicator] = float(error)
            report.thresholds[indicator] = bound
            if error > bound:
                report.passed = False
                report.reasons.append(
                    f"{indicator}: harmonic-mean relative error "
                    f"{error:.3f} > gate {bound}"
                )
        if not report.errors:
            report.passed = False
            report.reasons.append(
                "no indicator had enough valid holdout measurements"
            )
        if shadow:
            report.shadow = self._shadow_compare(
                name, candidate, holdout_x, holdout_y
            )
            if not report.shadow["candidate_better"]:
                report.passed = False
                report.reasons.append(
                    "shadow evaluation: candidate did not beat the "
                    "incumbent on mirrored traffic"
                )
        return report

    def _shadow_compare(
        self,
        name: str,
        candidate: NeuralWorkloadModel,
        x: np.ndarray,
        measured: np.ndarray,
    ) -> dict:
        """Candidate vs incumbent on the same mirrored traffic."""

        def worst_error(model) -> Optional[float]:
            errors = residual_errors(
                model.predict(x), measured, min_actual=self.gate.min_actual
            )
            if np.all(np.isnan(errors)):
                return None
            return float(np.nanmax(errors))

        candidate_error = worst_error(candidate)
        incumbent_error: Optional[float] = None
        try:
            incumbent_error = worst_error(self.deployed_model(name))
        except (KeyError, ValueError, RuntimeError):
            pass
        return {
            "n": int(x.shape[0]),
            "candidate_error": candidate_error,
            "incumbent_error": incumbent_error,
            # A missing/broken/unjudgeable incumbent never blocks promotion.
            "candidate_better": (
                incumbent_error is None
                or (
                    candidate_error is not None
                    and candidate_error <= incumbent_error
                )
            ),
        }

    def _adopt_baseline(self, name: str) -> Optional[int]:
        """Bring an unmanaged deployed artifact under version control.

        When the registry serves an artifact the store has never seen
        (the original batch-trained deployment), archive it as the
        promoted baseline first — otherwise the first promotion would
        leave :meth:`rollback` with nothing to restore.
        """
        if self.store.promoted_version(name) is not None:
            return None
        deployed = self.registry_dir / f"{name}.json"
        if not deployed.is_file():
            return None
        return self.store.adopt(
            name, deployed, metadata={"status": "baseline"}
        )

    def promote(self, name: str, version: int) -> Path:
        """Deploy a stored version into the registry directory."""
        with self._span("lifecycle.promote", model=name, version=int(version)):
            target = self.store.promote(name, version, self.registry_dir)
        if self.metrics is not None:
            self.metrics.record_promotion()
        self._retune(name)
        return target

    def rollback(self, name: str) -> int:
        """Restore the previously-promoted version; returns it."""
        with self._span("lifecycle.rollback", model=name) as span:
            version = self.store.rollback(name, self.registry_dir)
            span.set_attribute("version", int(version))
        if self.metrics is not None:
            self.metrics.record_rollback()
        self._retune(name)
        return version

    def _retune(self, name: str) -> None:
        """After a deploy: drop stale recommendations, re-tune objectives.

        A promoted artifact answers differently, so cached
        recommendations against the old version must never be served and
        standing objectives deserve a fresh search.  Tuning failures are
        recorded but never block the deploy that triggered them.
        """
        if self.tuner is None:
            return
        with self._span("lifecycle.retune", model=name) as span:
            try:
                records = self.tuner.on_model_updated(name)
            except Exception as exc:  # noqa: BLE001 - deploys must survive
                self.last_retune[name] = [
                    {"model": name, "error": f"{type(exc).__name__}: {exc}"}
                ]
                span.record_error(exc)
                return
            self.last_retune[name] = records
            span.set_attribute("objectives", len(records))
            span.set_attribute(
                "shifted", sum(1 for r in records if r.get("shifted"))
            )

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------

    def run_cycle(
        self,
        name: str,
        force: bool = False,
        warm_start: bool = True,
        shadow: bool = False,
        promote: bool = True,
    ) -> CycleReport:
        """One full continuous-learning round for ``name``.

        Without drift (and without ``force``) the cycle stops after the
        check.  A gate-rejected candidate is still archived in the store
        (metadata ``status: rejected``) for post-mortem, but never
        promoted; ``promote=False`` archives even an accepted candidate
        without deploying it (promote later by version).
        """
        with self._span(
            "lifecycle.run_cycle", model=name, force=bool(force)
        ) as cycle_span:
            drift = self.check_drift(name)
            report = CycleReport(model=name, drift=drift)
            if not (drift.drifted or force):
                self.last_cycle[name] = report
                cycle_span.set_attribute("retrained", False)
                return report
            self._adopt_baseline(name)
            candidate, holdout_x, holdout_y, cv_error = self.retrain(
                name, warm_start=warm_start
            )
            report.retrained = True
            report.epochs = candidate.total_epochs_
            report.cv_error = cv_error
            gate = self.validate(
                name, candidate, holdout_x, holdout_y, shadow=shadow
            )
            report.gate = gate
            metadata = {
                "status": "accepted" if gate.passed else "rejected",
                "gate": gate.to_dict(),
                "drift": drift.to_dict(),
                "cv_error": cv_error,
                "warm_start": bool(warm_start),
                "seed": self.seed,
            }
            report.version = self.store.save_version(name, candidate, metadata)
            if gate.passed and promote:
                self.promote(name, report.version)
                report.promoted = True
            self.last_cycle[name] = report
            cycle_span.set_attribute("retrained", True)
            cycle_span.set_attribute("promoted", bool(report.promoted))
        return report

    # ------------------------------------------------------------------
    # status (the /lifecycle payload)
    # ------------------------------------------------------------------

    def status(self) -> dict:
        """JSON-serializable loop state for ``GET /lifecycle``."""
        models = sorted(
            p.stem
            for p in self.registry_dir.glob("*.json")
            if not p.name.startswith(".")
        )
        per_model = {}
        for name in models:
            per_model[name] = {
                "promoted_version": self.store.promoted_version(name),
                "previous_version": self.store.previous_version(name),
                "versions": [
                    int(v["version"]) for v in self.store.list_versions(name)
                ],
                "last_drift": (
                    self.last_drift[name].to_dict()
                    if name in self.last_drift
                    else None
                ),
                "last_cycle": (
                    self.last_cycle[name].to_dict()
                    if name in self.last_cycle
                    else None
                ),
                "last_retune": self.last_retune.get(name),
            }
        payload = {
            "models": per_model,
            "observations": {
                "total": self.log.observations_total,
                "sampled_out": self.log.sampled_out_total,
                "resident": len(self.log),
                "sampling_rate": self.log.sampling_rate,
                "capacity": self.log.capacity,
            },
        }
        if self.metrics is not None:
            payload["counters"] = {
                "observations_total": self.metrics.observations_total,
                "retrains_total": self.metrics.retrains_total,
                "promotions_total": self.metrics.promotions_total,
                "rollbacks_total": self.metrics.rollbacks_total,
                "drift_scores": self.metrics.drift_scores(),
            }
        if self.tuner is not None:
            payload["tuning"] = self.tuner.standing_status()
        return payload
