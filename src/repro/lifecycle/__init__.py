"""Continuous learning: keep the characterization model true to its workload.

The paper constructs its model once from a batch of sampled configurations
(Section 2.2); a production deployment must notice when the workload walks
away from that sample and respond.  This package closes the loop around
the serving stack:

* :class:`~repro.lifecycle.observations.ObservationLog` captures served
  traffic (via the :class:`~repro.serving.engine.ServingEngine`
  ``observer`` hook) and driver-measured ground truth into a thread-safe
  ring buffer with JSONL spill;
* :class:`~repro.lifecycle.drift.DriftDetector` scores the stream against
  the deployed artifact's own Section 3.1 scaler statistics
  (configuration drift) and the paper's harmonic-mean relative-error
  metric (residual drift, Section 3.3);
* :class:`~repro.lifecycle.orchestrator.LifecycleOrchestrator` retrains
  with the paper's methodology — warm-started from the incumbent — and
  only promotes candidates that pass a Table 2-style per-indicator error
  gate on held-out observations;
* :class:`~repro.lifecycle.store.VersionedModelStore` keeps the version
  history and performs the atomic promote/rollback into the registry
  directory the hot-reloading server watches.

``repro-lifecycle`` drives the same loop from the shell.
"""

from .drift import (
    DriftDetector,
    DriftReport,
    DriftThresholds,
    config_drift_scores,
    residual_errors,
)
from .observations import Observation, ObservationLog, serving_tap
from .orchestrator import (
    CycleReport,
    GateReport,
    GateThresholds,
    LifecycleOrchestrator,
)
from .store import VersionedModelStore

__all__ = [
    "Observation",
    "ObservationLog",
    "serving_tap",
    "DriftThresholds",
    "DriftReport",
    "DriftDetector",
    "config_drift_scores",
    "residual_errors",
    "VersionedModelStore",
    "GateThresholds",
    "GateReport",
    "CycleReport",
    "LifecycleOrchestrator",
]
