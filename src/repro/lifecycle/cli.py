"""``repro-lifecycle`` — drive the continuous-learning loop from the shell.

The CLI operates on the same on-disk surfaces as a running server: a
registry directory of deployed artifacts, a version store, and a JSONL
observation log, so it works against a live ``repro-serve`` deployment or
fully offline.

Subcommands::

    repro-lifecycle record      # measure sampled configs (ground truth) + log
    repro-lifecycle check-drift # score the log against the deployed model
    repro-lifecycle retrain     # fit a candidate, gate it, archive a version
    repro-lifecycle promote     # deploy a stored version into the registry
    repro-lifecycle rollback    # restore the previously-promoted version
    repro-lifecycle status      # loop state as JSON
    repro-lifecycle verify      # audit stored versions against checksums
    repro-lifecycle recover     # repair manifests/artifacts/journal tail

``record`` uses the fast closed-form
:class:`~repro.workload.analytic.AnalyticWorkloadModel` as the measurement
backend; ``--rate-shift`` moves the sampled injection-rate window (to
exercise configuration drift) and ``--indicator-scale`` rescales the
measured indicators (to exercise residual drift) — both are how the CI
smoke and the demo provoke the loop on a tiny configuration.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np

from ..models.persistence import load_model
from ..workload.analytic import AnalyticWorkloadModel
from ..workload.service import WorkloadConfig
from .drift import DriftThresholds
from .observations import ObservationLog
from .orchestrator import GateThresholds, LifecycleOrchestrator
from .store import VersionedModelStore

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lifecycle",
        description=(
            "Continuous-learning loop for served workload models: capture "
            "observations, detect drift, retrain behind a validation gate, "
            "promote and roll back versions."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, store=False, log=False):
        p.add_argument(
            "--models-dir", required=True,
            help="registry directory of deployed <name>.json artifacts",
        )
        p.add_argument("--model", default="paper", help="model name")
        if store:
            p.add_argument(
                "--store-dir", required=True,
                help="version-store root directory",
            )
        if log:
            p.add_argument(
                "--log", required=True, help="JSONL observation log path"
            )

    p = sub.add_parser(
        "record", help="measure sampled configurations and append to the log"
    )
    common(p, log=True)
    p.add_argument("--samples", type=int, default=32)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--rate-min", type=float, default=200.0,
        help="injection-rate window lower edge",
    )
    p.add_argument(
        "--rate-max", type=float, default=600.0,
        help="injection-rate window upper edge",
    )
    p.add_argument(
        "--rate-shift", type=float, default=0.0,
        help="shift the injection-rate window (provokes config drift)",
    )
    p.add_argument(
        "--threads-min", type=int, default=4,
        help="thread-pool size lower bound (inclusive)",
    )
    p.add_argument(
        "--threads-max", type=int, default=27,
        help="thread-pool size upper bound (inclusive)",
    )
    p.add_argument(
        "--indicator-scale", type=float, default=1.0,
        help="rescale measured indicators (provokes residual drift)",
    )
    p.add_argument(
        "--sampling-rate", type=float, default=1.0,
        help="observation sampling rate",
    )

    p = sub.add_parser(
        "check-drift", help="score the observation log against the deployment"
    )
    common(p, log=True)
    p.add_argument("--config-threshold", type=float, default=0.5)
    p.add_argument("--residual-threshold", type=float, default=0.10)
    p.add_argument("--min-observations", type=int, default=20)

    p = sub.add_parser(
        "retrain",
        help="fit a candidate on the log, gate it, archive a version",
    )
    common(p, store=True, log=True)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--gate-max-error", type=float, default=0.15)
    p.add_argument("--holdout-fraction", type=float, default=0.25)
    p.add_argument("--kfold", type=int, default=0)
    p.add_argument(
        "--cold-start", action="store_true",
        help="train from scratch instead of warm-starting from the incumbent",
    )
    p.add_argument(
        "--shadow", action="store_true",
        help="also require the candidate to beat the incumbent (shadow eval)",
    )
    p.add_argument(
        "--promote", action="store_true",
        help="promote into the registry when the gate passes",
    )
    p.add_argument(
        "--force", action="store_true",
        help="retrain even when no drift tripped",
    )

    p = sub.add_parser(
        "promote", help="deploy one stored version into the registry"
    )
    common(p, store=True)
    p.add_argument("--version", type=int, required=True)

    p = sub.add_parser(
        "rollback", help="restore the previously-promoted version"
    )
    common(p, store=True)

    p = sub.add_parser("status", help="print loop state as JSON")
    common(p, store=True, log=True)

    p = sub.add_parser(
        "verify",
        help="audit every stored version's bytes against its recorded sha256",
    )
    common(p, store=True)

    p = sub.add_parser(
        "recover",
        help="startup recovery offline: repair manifests, quarantine corrupt "
             "artifacts, redeploy the last verified-good version, repair the "
             "journal tail",
    )
    common(p, store=True)
    p.add_argument(
        "--journal-dir",
        help="observation journal directory to repair and account",
    )
    return parser


def _orchestrator(args, log: ObservationLog) -> LifecycleOrchestrator:
    return LifecycleOrchestrator(
        args.models_dir,
        VersionedModelStore(args.store_dir),
        log,
        seed=getattr(args, "seed", 0),
        kfold=getattr(args, "kfold", 0),
        gate=GateThresholds(
            max_error=getattr(args, "gate_max_error", 0.15),
            holdout_fraction=getattr(args, "holdout_fraction", 0.25),
        ),
    )


def _emit(payload: dict) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


def _cmd_record(args) -> int:
    deployed = load_model(Path(args.models_dir) / f"{args.model}.json")
    backend = AnalyticWorkloadModel()
    rng = np.random.default_rng(args.seed)
    log = ObservationLog(
        capacity=max(4096, args.samples),
        sampling_rate=args.sampling_rate,
        seed=args.seed,
        spill_path=args.log,
    )
    if not args.threads_min <= args.threads_max:
        raise ValueError(
            f"--threads-min {args.threads_min} must not exceed "
            f"--threads-max {args.threads_max}"
        )
    threads_hi = args.threads_max + 1
    kept = 0
    with log:
        for _ in range(args.samples):
            config = WorkloadConfig(
                injection_rate=float(
                    rng.uniform(
                        args.rate_min + args.rate_shift,
                        args.rate_max + args.rate_shift,
                    )
                ),
                default_threads=int(rng.integers(args.threads_min, threads_hi)),
                mfg_threads=int(rng.integers(args.threads_min, threads_hi)),
                web_threads=int(rng.integers(args.threads_min, threads_hi)),
            )
            vector = config.as_vector()
            measured = args.indicator_scale * backend.evaluate_vector(config)
            predicted = deployed.predict(vector.reshape(1, -1))[0]
            kept += log.record(
                args.model,
                vector,
                predicted=predicted,
                measured=measured,
                source="driver:analytic",
            )
    _emit(
        {
            "command": "record",
            "model": args.model,
            "requested": args.samples,
            "recorded": kept,
            "log": str(args.log),
        }
    )
    return 0


def _cmd_check_drift(args) -> int:
    log = ObservationLog.replay(args.log)
    deployed = load_model(Path(args.models_dir) / f"{args.model}.json")
    from .drift import DriftDetector

    detector = DriftDetector(
        DriftThresholds(
            config_score=args.config_threshold,
            residual_error=args.residual_threshold,
            min_observations=args.min_observations,
        )
    )
    report = detector.check(log, args.model, deployed)
    _emit({"command": "check-drift", **report.to_dict()})
    return 0


def _cmd_retrain(args) -> int:
    log = ObservationLog.replay(args.log)
    orch = _orchestrator(args, log)
    report = orch.run_cycle(
        args.model,
        force=args.force,
        warm_start=not args.cold_start,
        shadow=args.shadow,
        promote=args.promote,
    )
    _emit({"command": "retrain", **report.to_dict()})
    if report.retrained and report.gate is not None and not report.gate.passed:
        return 2
    return 0


def _cmd_promote(args) -> int:
    store = VersionedModelStore(args.store_dir)
    target = store.promote(args.model, args.version, args.models_dir)
    _emit(
        {
            "command": "promote",
            "model": args.model,
            "version": args.version,
            "deployed": str(target),
        }
    )
    return 0


def _cmd_rollback(args) -> int:
    store = VersionedModelStore(args.store_dir)
    version = store.rollback(args.model, args.models_dir)
    _emit(
        {
            "command": "rollback",
            "model": args.model,
            "restored_version": version,
        }
    )
    return 0


def _cmd_status(args) -> int:
    log = ObservationLog.replay(args.log)
    orch = _orchestrator(args, log)
    _emit({"command": "status", **orch.status()})
    return 0


def _cmd_verify(args) -> int:
    store = VersionedModelStore(args.store_dir)
    reports = store.verify_all(args.model)
    bad = [r for r in reports if r["verdict"] in ("mismatch", "missing")]
    _emit(
        {
            "command": "verify",
            "model": args.model,
            "versions": reports,
            "ok": not bad,
        }
    )
    return 1 if bad else 0


def _cmd_recover(args) -> int:
    from ..durability.recovery import RecoveryManager

    manager = RecoveryManager(
        store=VersionedModelStore(args.store_dir),
        registry_dir=args.models_dir,
        journal_dir=args.journal_dir,
        marker=Path(args.models_dir),
    )
    report = manager.run()
    _emit({"command": "recover", **report.to_dict()})
    return 0


_COMMANDS = {
    "record": _cmd_record,
    "check-drift": _cmd_check_drift,
    "retrain": _cmd_retrain,
    "promote": _cmd_promote,
    "rollback": _cmd_rollback,
    "status": _cmd_status,
    "verify": _cmd_verify,
    "recover": _cmd_recover,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe: not an error.
        # Detach stdout so interpreter shutdown does not retry the flush.
        sys.stdout = open(os.devnull, "w")
        return 0
    except (KeyError, ValueError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - module entry point
    sys.exit(main())
