"""Drift detection against the deployed artifact's own statistics.

Two complementary signals decide when the characterization model no longer
describes the workload it serves:

* **Configuration drift** — the paper standardizes every configuration
  parameter with per-feature mean/standard deviation (Section 3.1), and
  those statistics ship inside the persisted artifact.  They *are* the
  reference distribution: standardizing live traffic with the deployed
  scaler should yield roughly zero-mean unit-variance coordinates, so the
  per-feature score ``|mean(z)| + |std(z) - 1|`` (a PSI-style population
  shift measure in z-space) is ~0 in distribution and grows once traffic
  moves where the model was never trained.
* **Residual drift** — the paper's own error metric, the harmonic mean of
  relative errors (Section 3.3, Table 2), computed over live
  (prediction, measurement) pairs.  When it trends above the loose-fit
  threshold the model is mispredicting the workload it sees, whether or
  not the configurations moved.

Either signal past its threshold marks the model *drifted*; the
orchestrator then owns the retrain/gate/promote response.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..model_selection.metrics import harmonic_mean_relative_error
from ..workload.service import INPUT_NAMES, OUTPUT_NAMES
from .observations import ObservationLog

__all__ = [
    "DriftThresholds",
    "DriftReport",
    "config_drift_scores",
    "residual_errors",
    "DriftDetector",
]


@dataclass(frozen=True)
class DriftThresholds:
    """When each drift signal counts as tripped.

    Parameters
    ----------
    config_score:
        Per-feature z-shift score above which configuration drift trips.
        In-distribution traffic scores ``O(1/sqrt(n))``; a score of 0.5
        means the traffic mean moved half a training standard deviation
        (or the spread changed by half).
    residual_error:
        Harmonic-mean relative error (over all paired observations)
        above which residual drift trips — chosen loose, in the spirit of
        the Section 3.3 stopping threshold, so noise does not thrash the
        retraining loop.
    min_observations:
        Below this many observations no verdict is rendered (the report
        is marked ``insufficient``).
    """

    config_score: float = 0.5
    residual_error: float = 0.10
    min_observations: int = 20

    def __post_init__(self):
        if self.config_score <= 0:
            raise ValueError(
                f"config_score must be positive, got {self.config_score}"
            )
        if self.residual_error <= 0:
            raise ValueError(
                f"residual_error must be positive, got {self.residual_error}"
            )
        if self.min_observations < 1:
            raise ValueError(
                f"min_observations must be >= 1, got {self.min_observations}"
            )


@dataclass
class DriftReport:
    """Everything one drift check saw, JSON-serializable via :meth:`to_dict`."""

    model: str
    n_observations: int
    n_paired: int
    insufficient: bool
    drifted: bool
    config_score: Optional[float] = None
    per_feature: Dict[str, float] = field(default_factory=dict)
    residual_overall: Optional[float] = None
    residual_per_indicator: Dict[str, float] = field(default_factory=dict)
    reasons: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "n_observations": self.n_observations,
            "n_paired": self.n_paired,
            "insufficient": self.insufficient,
            "drifted": self.drifted,
            "config_score": self.config_score,
            "per_feature": dict(self.per_feature),
            "residual_overall": self.residual_overall,
            "residual_per_indicator": dict(self.residual_per_indicator),
            "reasons": list(self.reasons),
        }


def config_drift_scores(
    configs: np.ndarray, mean: np.ndarray, scale: np.ndarray
) -> np.ndarray:
    """Per-feature drift score of ``configs`` against reference statistics.

    Standardizes with the reference (the deployed artifact's Section 3.1
    scaler) and scores each feature ``|mean(z)| + |std(z) - 1|``.
    """
    configs = np.asarray(configs, dtype=float)
    if configs.ndim != 2 or configs.shape[0] == 0:
        raise ValueError(
            f"configs must be a non-empty 2-D array, got shape {configs.shape}"
        )
    mean = np.asarray(mean, dtype=float).ravel()
    scale = np.asarray(scale, dtype=float).ravel()
    if configs.shape[1] != mean.size or mean.size != scale.size:
        raise ValueError(
            f"reference statistics ({mean.size} features) do not match "
            f"configs ({configs.shape[1]} features)"
        )
    z = (configs - mean) / scale
    return np.abs(z.mean(axis=0)) + np.abs(z.std(axis=0) - 1.0)


def residual_errors(
    predicted: np.ndarray,
    measured: np.ndarray,
    min_actual: float = 1e-9,
) -> np.ndarray:
    """Per-indicator harmonic-mean relative error of live pairs.

    Relative error is undefined at zero and explodes for vanishing
    measurements (e.g. effective throughput of a fully saturated system),
    so each indicator is judged only on rows where its measured value
    exceeds ``min_actual``; an indicator with fewer than two such rows
    gets ``NaN`` — "no verdict" — rather than poisoning the maximum.
    """
    predicted = np.asarray(predicted, dtype=float)
    measured = np.asarray(measured, dtype=float)
    if predicted.ndim == 1:
        predicted = predicted.reshape(-1, 1)
    if measured.ndim == 1:
        measured = measured.reshape(-1, 1)
    if predicted.shape != measured.shape or predicted.shape[0] == 0:
        raise ValueError(
            f"predicted {predicted.shape} and measured {measured.shape} "
            "must be equal non-empty shapes"
        )
    errors = np.full(measured.shape[1], np.nan)
    for j in range(measured.shape[1]):
        valid = np.abs(measured[:, j]) > min_actual
        if int(valid.sum()) < 2:
            continue
        errors[j] = harmonic_mean_relative_error(
            predicted[valid, j], measured[valid, j]
        )
    return errors


class DriftDetector:
    """Scores an observation log against a deployed model's statistics."""

    def __init__(self, thresholds: Optional[DriftThresholds] = None):
        self.thresholds = thresholds or DriftThresholds()

    def check(
        self,
        log: ObservationLog,
        model_name: str,
        reference_model,
    ) -> DriftReport:
        """One drift verdict for ``model_name``.

        ``reference_model`` is the deployed
        :class:`~repro.models.neural.NeuralWorkloadModel`; its fitted
        input scaler provides the reference distribution.  Models fitted
        without standardization (identity scaler) skip the configuration
        signal and rely on residual drift alone.
        """
        configs = log.configs(model_name)
        _, predicted, measured = log.paired(model_name)
        n_observations = 0 if configs.size == 0 else configs.shape[0]
        n_paired = 0 if predicted.size == 0 else predicted.shape[0]
        report = DriftReport(
            model=model_name,
            n_observations=n_observations,
            n_paired=n_paired,
            insufficient=n_observations < self.thresholds.min_observations,
            drifted=False,
        )
        if report.insufficient:
            report.reasons.append(
                f"insufficient observations "
                f"({n_observations} < {self.thresholds.min_observations})"
            )
            return report

        scaler = getattr(reference_model, "x_scaler_", None)
        mean = getattr(scaler, "mean_", None)
        scale = getattr(scaler, "scale_", None)
        if mean is not None and scale is not None:
            scores = config_drift_scores(configs, mean, scale)
            names = (
                INPUT_NAMES
                if scores.size == len(INPUT_NAMES)
                else [f"x{j}" for j in range(scores.size)]
            )
            report.per_feature = {
                name: float(s) for name, s in zip(names, scores)
            }
            report.config_score = float(scores.max())
            if report.config_score > self.thresholds.config_score:
                worst = max(report.per_feature, key=report.per_feature.get)
                report.drifted = True
                report.reasons.append(
                    f"configuration drift: {worst} scored "
                    f"{report.per_feature[worst]:.3f} > "
                    f"{self.thresholds.config_score}"
                )

        if n_paired >= self.thresholds.min_observations:
            per_indicator = residual_errors(predicted, measured)
            if not np.all(np.isnan(per_indicator)):
                names = (
                    OUTPUT_NAMES
                    if per_indicator.size == len(OUTPUT_NAMES)
                    else [f"y{j}" for j in range(per_indicator.size)]
                )
                report.residual_per_indicator = {
                    name: float(e)
                    for name, e in zip(names, per_indicator)
                    if not np.isnan(e)
                }
                report.residual_overall = float(
                    max(report.residual_per_indicator.values())
                )
                if report.residual_overall > self.thresholds.residual_error:
                    worst = max(
                        report.residual_per_indicator,
                        key=report.residual_per_indicator.get,
                    )
                    report.drifted = True
                    report.reasons.append(
                        f"residual drift: {worst} harmonic-mean relative "
                        f"error {report.residual_per_indicator[worst]:.3f} > "
                        f"{self.thresholds.residual_error}"
                    )
        return report
