"""Traffic capture: the observation log feeding the continuous-learning loop.

The paper trains its MLP once on a batch of sampled configurations
(Section 2.2); a production characterization model must keep watching the
workload it describes.  An :class:`Observation` is one served or measured
data point — a configuration vector, optionally the model's prediction for
it, and optionally the ground truth the workload driver measured.  The
:class:`ObservationLog` is a thread-safe ring buffer of recent
observations with an optional JSONL spill for durability, cheap enough to
sit on the serving hot path: recording is one lock, one deque append, and
(below sampling rate 1.0) one RNG draw.

Two producers feed it:

* the :class:`~repro.serving.engine.ServingEngine` ``observer`` hook
  (:func:`serving_tap`) records what traffic actually asked for and what
  the model answered — the configuration stream drives *config drift*;
* the workload driver, acting as ground truth, records
  (configuration → measured indicators) pairs — prediction/measurement
  pairs drive *residual drift* and become the retraining sample
  collection.
"""

from __future__ import annotations

import csv
import json
import threading
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..durability.journal import Journal, replay_journal

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..reliability.faults import FaultPlan
    from ..serving.engine import ServingEngine
    from ..serving.metrics import ServingMetrics

__all__ = ["Observation", "ObservationLog", "serving_tap"]


@dataclass(frozen=True)
class Observation:
    """One captured data point of the serving/measurement stream."""

    model: str
    config: Tuple[float, ...]
    predicted: Optional[Tuple[float, ...]] = None
    measured: Optional[Tuple[float, ...]] = None
    source: str = "serving"
    seq: int = 0

    @property
    def is_paired(self) -> bool:
        """Whether both a prediction and a measurement are present."""
        return self.predicted is not None and self.measured is not None

    def to_json(self) -> str:
        """One JSONL line (the spill format)."""
        return json.dumps(
            {
                "model": self.model,
                "config": list(self.config),
                "predicted": (
                    None if self.predicted is None else list(self.predicted)
                ),
                "measured": (
                    None if self.measured is None else list(self.measured)
                ),
                "source": self.source,
                "seq": self.seq,
            }
        )

    @classmethod
    def from_json(cls, line: str) -> "Observation":
        """Inverse of :meth:`to_json`."""
        payload = json.loads(line)
        return cls(
            model=payload["model"],
            config=tuple(float(v) for v in payload["config"]),
            predicted=(
                None
                if payload.get("predicted") is None
                else tuple(float(v) for v in payload["predicted"])
            ),
            measured=(
                None
                if payload.get("measured") is None
                else tuple(float(v) for v in payload["measured"])
            ),
            source=payload.get("source", "serving"),
            seq=int(payload.get("seq", 0)),
        )


def _vector(values: Optional[Sequence[float]]) -> Optional[Tuple[float, ...]]:
    if values is None:
        return None
    if isinstance(values, np.ndarray):
        return tuple(values.ravel().tolist())
    return tuple(map(float, values))


def _service_from_vector(values: Optional[Tuple[float, ...]]) -> Optional[float]:
    """Mean response time out of an indicator vector (None when absent).

    Vectors with >= 2 components are read as response times followed by a
    throughput figure (:data:`repro.workload.service.OUTPUT_NAMES` order),
    so the last component is excluded from the mean."""
    if not values:
        return None
    rts = values[:-1] if len(values) >= 2 else values
    return float(sum(rts) / len(rts))


#: Group-commit threshold: journal batches flush once the pending lines
#: reach this many bytes (or on any flush/sync/close).
_GROUP_COMMIT_BYTES = 4096


def _row_to_json(row: tuple) -> str:
    """One JSONL spill line from a raw buffer row (same shape as
    :meth:`Observation.to_json`, without building the dataclass)."""
    model, config, predicted, measured, source, seq = row
    return json.dumps(
        {
            "model": model,
            "config": list(config),
            "predicted": None if predicted is None else list(predicted),
            "measured": None if measured is None else list(measured),
            "source": source,
            "seq": seq,
        }
    )


class ObservationLog:
    """Bounded, thread-safe capture buffer with optional JSONL spill.

    Parameters
    ----------
    capacity:
        Ring-buffer bound; the oldest observation is dropped when full.
    sampling_rate:
        Probability of keeping each offered observation.  ``1.0`` keeps
        everything (and skips the RNG draw entirely — the hot-path
        default), ``0.0`` drops everything; in between the decision is
        deterministic under ``seed``.
    seed:
        Seed for the sampling stream.
    spill_path:
        When given, every *accepted* observation is also appended to this
        JSONL file, so capture survives a restart of the serving process
        (:meth:`replay` reloads it).
    journal_dir:
        When given, accepted observations are instead appended to a
        CRC32-framed :class:`~repro.durability.journal.Journal` in this
        directory — the crash-safe spill.  A torn tail from a killed
        process is detected and truncated on replay instead of
        poisoning it (:meth:`replay_journal` reloads it).  Under
        ``"buffered"`` sync, lines are *group-committed*: coalesced into
        one framed record every ~4 KiB (and at every flush/sync/close),
        amortizing the framing cost; the loss bound stays "the unsynced
        tail".  Mutually exclusive with ``spill_path``.
    journal_sync:
        Journal durability mode: ``"buffered"`` (default), ``"flush"``,
        or ``"fsync"``.
    journal_segment_bytes:
        Journal segment rotation threshold.
    faults:
        Optional fault plan handed to the journal (``journal.append`` /
        ``journal.compact`` sites).
    metrics:
        Optional :class:`~repro.serving.metrics.ServingMetrics` whose
        ``observations_total`` counter mirrors accepted records (and
        whose ``journal_records_*`` counters mirror replay accounting).
    """

    def __init__(
        self,
        capacity: int = 4096,
        sampling_rate: float = 1.0,
        seed: int = 0,
        spill_path: Optional[Union[str, Path]] = None,
        journal_dir: Optional[Union[str, Path]] = None,
        journal_sync: str = "buffered",
        journal_segment_bytes: int = 4 << 20,
        faults: Optional["FaultPlan"] = None,
        metrics: Optional["ServingMetrics"] = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if not 0.0 <= sampling_rate <= 1.0:
            raise ValueError(
                f"sampling_rate must be in [0, 1], got {sampling_rate}"
            )
        if spill_path is not None and journal_dir is not None:
            raise ValueError(
                "spill_path and journal_dir are mutually exclusive"
            )
        self.capacity = int(capacity)
        self.sampling_rate = float(sampling_rate)
        self.spill_path = None if spill_path is None else Path(spill_path)
        self.journal_dir = None if journal_dir is None else Path(journal_dir)
        self.metrics = metrics
        self.observations_total = 0
        self.sampled_out_total = 0
        self.journal_records_recovered = 0
        self.journal_records_dropped = 0
        # Raw rows: (model, config, predicted, measured, source, seq).
        self._buffer: "deque[tuple]" = deque(maxlen=self.capacity)
        self._rng = np.random.default_rng(seed)
        self._seq = 0
        self._lock = threading.Lock()
        self._spill_handle = None
        self._journal: Optional[Journal] = None
        # Group commit: in buffered mode accepted lines coalesce here and
        # go to the journal as one newline-joined framed record, so the
        # crc/frame/write cost amortizes across ~a dozen observations.
        self._journal_batch: list = []
        self._journal_batch_bytes = 0
        if self.spill_path is not None:
            self.spill_path.parent.mkdir(parents=True, exist_ok=True)
            self._spill_handle = self.spill_path.open("a")
        if self.journal_dir is not None:
            self._journal = Journal(
                self.journal_dir,
                max_segment_bytes=journal_segment_bytes,
                sync=journal_sync,
                faults=faults,
            )

    @property
    def journal(self) -> Optional[Journal]:
        """The backing write-ahead journal, when one is configured."""
        return self._journal

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def record(
        self,
        model: str,
        config: Sequence[float],
        predicted: Optional[Sequence[float]] = None,
        measured: Optional[Sequence[float]] = None,
        source: str = "serving",
    ) -> bool:
        """Offer one observation; returns whether it was kept.

        Sampling happens *before* any conversion work so a sampled-out
        observation costs one RNG draw and nothing else.  The buffer
        stores plain tuples; :class:`Observation` objects are only
        materialized by the read-side accessors, keeping this method
        cheap enough for the serving hot path.
        """
        if self.sampling_rate <= 0.0:
            with self._lock:
                self.sampled_out_total += 1
            return False
        if self.sampling_rate < 1.0:
            with self._lock:
                keep = self._rng.random() < self.sampling_rate
                if not keep:
                    self.sampled_out_total += 1
                    return False
        config = _vector(config)
        predicted = _vector(predicted)
        measured = _vector(measured)
        with self._lock:
            self._seq += 1
            row = (model, config, predicted, measured, source, self._seq)
            self._buffer.append(row)
            self.observations_total += 1
            handle = self._spill_handle
            if handle is not None:
                handle.write(_row_to_json(row) + "\n")
            elif self._journal is not None:
                line = _row_to_json(row)
                if self._journal.write_through:
                    # Per-record sync or armed faults: no coalescing —
                    # each record carries its own durability obligation.
                    self._drain_journal_batch()
                    self._journal.append(line.encode("utf-8"))
                else:
                    batch = self._journal_batch
                    batch.append(line)
                    total = self._journal_batch_bytes + len(line) + 1
                    if total >= _GROUP_COMMIT_BYTES:
                        self._journal.append(
                            "\n".join(batch).encode("utf-8")
                        )
                        batch.clear()
                        total = 0
                    self._journal_batch_bytes = total
        if self.metrics is not None:
            self.metrics.record_observation()
        return True

    def record_batch(
        self,
        model: str,
        configs: np.ndarray,
        predicted: Optional[np.ndarray] = None,
        measured: Optional[np.ndarray] = None,
        source: str = "serving",
    ) -> int:
        """Offer one observation per row; returns how many were kept."""
        kept = 0
        record = self.record
        # Rows as plain lists: iterating a 2-D ndarray materializes a view
        # object per row, which costs more than the whole record() call.
        config_rows = np.asarray(configs, dtype=float).tolist()
        predicted_rows = (
            None if predicted is None
            else np.asarray(predicted, dtype=float).tolist()
        )
        measured_rows = (
            None if measured is None
            else np.asarray(measured, dtype=float).tolist()
        )
        for i, row in enumerate(config_rows):
            kept += record(
                model,
                row,
                predicted=None if predicted_rows is None else predicted_rows[i],
                measured=None if measured_rows is None else measured_rows[i],
                source=source,
            )
        return kept

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffer)

    def _rows(self, model: Optional[str] = None) -> List[tuple]:
        """Raw buffer rows (optionally one model's), oldest first."""
        with self._lock:
            rows = list(self._buffer)
        if model is not None:
            rows = [r for r in rows if r[0] == model]
        return rows

    def snapshot(self, model: Optional[str] = None) -> List[Observation]:
        """The resident observations (optionally one model's), oldest first."""
        return [
            Observation(
                model=r[0],
                config=r[1],
                predicted=r[2],
                measured=r[3],
                source=r[4],
                seq=r[5],
            )
            for r in self._rows(model)
        ]

    def configs(self, model: str) -> np.ndarray:
        """``(n, d)`` configuration matrix of one model's observations."""
        rows = self._rows(model)
        if not rows:
            return np.empty((0, 0))
        return np.array([r[1] for r in rows], dtype=float)

    def paired(self, model: str) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(configs, predicted, measured)`` from fully-paired observations.

        Only observations carrying *both* a prediction and a measurement
        contribute — these drive residual drift and shadow evaluation.
        """
        rows = [
            r
            for r in self._rows(model)
            if r[2] is not None and r[3] is not None
        ]
        if not rows:
            empty = np.empty((0, 0))
            return empty, empty, empty
        return (
            np.array([r[1] for r in rows], dtype=float),
            np.array([r[2] for r in rows], dtype=float),
            np.array([r[3] for r in rows], dtype=float),
        )

    def training_data(self, model: str) -> Tuple[np.ndarray, np.ndarray]:
        """``(x, y)`` from every observation with a measurement.

        This is the retraining sample collection: configuration vectors
        against ground-truth indicators, prediction or not.
        """
        rows = [r for r in self._rows(model) if r[3] is not None]
        if not rows:
            return np.empty((0, 0)), np.empty((0, 0))
        return (
            np.array([r[1] for r in rows], dtype=float),
            np.array([r[3] for r in rows], dtype=float),
        )

    def export_trace(
        self,
        path: Union[str, Path],
        model: Optional[str] = None,
        time_scale: float = 1.0,
    ) -> int:
        """Dump the resident observations as a CSV job trace.

        Each observation becomes one ``timestamp,class,service_time`` row
        in the canonical trace interchange format, re-ingestible by
        :func:`repro.traces.etl.ingest` — the bridge from captured serving
        traffic back into the trace-driven scenario factory.  The
        timestamp is the observation's sequence number times
        ``time_scale`` (monotone by construction), the class is the model
        name, and the service time is the mean of the measured
        response-time indicators (the measured vector is read in
        ``OUTPUT_NAMES`` order — response times then throughput — so the
        last component is excluded when there are at least two; the
        prediction stands in when no measurement was captured, and rows
        with neither carry no duration).  Returns the number of rows
        written.
        """
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {time_scale}")
        from ..traces.etl import CSV_HEADER

        rows = self._rows(model)
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(CSV_HEADER)
            for model_name, _config, predicted, measured, _source, seq in rows:
                service = _service_from_vector(measured)
                if service is None:
                    service = _service_from_vector(predicted)
                writer.writerow(
                    [
                        f"{seq * time_scale:.6f}",
                        model_name,
                        "" if service is None else f"{service:.9g}",
                    ]
                )
        return len(rows)

    # ------------------------------------------------------------------
    # lifecycle / persistence
    # ------------------------------------------------------------------

    def clear(self) -> None:
        """Drop the resident buffer (counters and spill file are kept)."""
        with self._lock:
            self._buffer.clear()

    def _drain_journal_batch(self) -> None:
        """Frame and append the pending group-commit lines (lock held)."""
        if self._journal_batch:
            self._journal.append(
                "\n".join(self._journal_batch).encode("utf-8")
            )
            self._journal_batch.clear()
            self._journal_batch_bytes = 0

    def flush(self) -> None:
        """Flush the spill file / journal to the OS (no-op without one)."""
        with self._lock:
            if self._spill_handle is not None:
                self._spill_handle.flush()
            if self._journal is not None:
                self._drain_journal_batch()
                self._journal.flush()

    def sync_to_disk(self) -> None:
        """Flush *and* fsync the journal — the graceful-drain guarantee."""
        with self._lock:
            if self._spill_handle is not None:
                self._spill_handle.flush()
            if self._journal is not None:
                self._drain_journal_batch()
                self._journal.sync_to_disk()

    def close(self) -> None:
        """Close the spill file/journal; further records stay in memory."""
        with self._lock:
            if self._spill_handle is not None:
                self._spill_handle.close()
                self._spill_handle = None
            if self._journal is not None:
                self._drain_journal_batch()
                self._journal.close()
                self._journal = None

    def __enter__(self) -> "ObservationLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @classmethod
    def replay(
        cls,
        path: Union[str, Path],
        capacity: int = 4096,
        **kwargs,
    ) -> "ObservationLog":
        """Rebuild a log from a JSONL spill file (most recent ``capacity``).

        Malformed lines — a torn tail, a partial flush — are *skipped*
        and counted in ``journal_records_dropped`` (mirrored to the
        metrics ``journal_records_dropped_total`` counter) instead of
        aborting the replay: losing one record must not cost the rest.

        The returned log does *not* keep spilling to ``path`` unless
        ``spill_path`` is passed explicitly — replaying is a read.
        """
        log = cls(capacity=capacity, **kwargs)
        path = Path(path)
        if not path.is_file():
            return log
        with path.open(errors="replace") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    obs = Observation.from_json(line)
                except (ValueError, KeyError, TypeError):
                    log._count_replay_dropped(1)
                    continue
                log._ingest(obs)
        if log.metrics is not None and log.journal_records_recovered:
            log.metrics.record_journal_recovered(log.journal_records_recovered)
        return log

    @classmethod
    def replay_journal(
        cls,
        journal_dir: Union[str, Path],
        capacity: int = 4096,
        resume: bool = True,
        repair: bool = True,
        **kwargs,
    ) -> "ObservationLog":
        """Rebuild a log from a CRC32-framed journal directory.

        Each segment is replayed up to its first bad frame (``repair``
        truncates the torn tail on disk so appends continue cleanly);
        recovered/dropped counts land in ``journal_records_recovered`` /
        ``journal_records_dropped`` and the metrics mirrors.  With
        ``resume`` (the default) the returned log keeps journaling to
        the same directory — this is the crash-restart path.
        """
        recovery = replay_journal(journal_dir, repair=repair)
        log = cls(
            capacity=capacity,
            journal_dir=journal_dir if resume else None,
            **kwargs,
        )
        for payload in recovery.records:
            try:
                text = payload.decode("utf-8")
            except UnicodeDecodeError:
                log._count_replay_dropped(1)
                continue
            # A payload is one observation line, or — group commit — a
            # newline-joined batch of them; each line stands alone.
            for line in text.splitlines():
                if not line:
                    continue
                try:
                    obs = Observation.from_json(line)
                except (ValueError, KeyError, TypeError):
                    log._count_replay_dropped(1)
                    continue
                log._ingest(obs)
        if recovery.dropped:
            log._count_replay_dropped(recovery.dropped)
        if log.metrics is not None and log.journal_records_recovered:
            log.metrics.record_journal_recovered(log.journal_records_recovered)
        return log

    def _ingest(self, obs: Observation) -> None:
        """Append one replayed observation (counts it as recovered)."""
        with self._lock:
            self._seq = max(self._seq, obs.seq)
            self._buffer.append(
                (
                    obs.model,
                    obs.config,
                    obs.predicted,
                    obs.measured,
                    obs.source,
                    obs.seq,
                )
            )
            self.observations_total += 1
            self.journal_records_recovered += 1

    def _count_replay_dropped(self, count: int) -> None:
        with self._lock:
            self.journal_records_dropped += count
        if self.metrics is not None:
            self.metrics.record_journal_dropped(count)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ObservationLog(size={len(self)}/{self.capacity}, "
            f"sampling_rate={self.sampling_rate}, "
            f"total={self.observations_total})"
        )


def serving_tap(log: ObservationLog):
    """An :class:`~repro.serving.engine.ServingEngine` observer that records
    every served prediction into ``log``.

    Wire it at engine construction::

        log = ObservationLog(sampling_rate=0.1)
        engine = ServingEngine(models_dir, observer=serving_tap(log))
    """

    def observer(
        model_name: str,
        configs: np.ndarray,
        outputs: np.ndarray,
        source: str,
    ) -> None:
        log.record_batch(
            model_name, configs, predicted=outputs, source=f"serving:{source}"
        )

    return observer
