"""Paper experiments: one module per table/figure, plus the shared setup."""

from . import config
from .data import figure_dataset, make_workload, table2_dataset
from .figures56 import SeriesFigure, run_figure5, run_figure6
from .modeling import FigureModel, fit_figure_model, tuned_model
from .runner import EXPERIMENTS, main, run_experiment
from .surfaces import SurfaceFigure, run_figure4, run_figure7, run_figure8
from .table2 import PAPER_TABLE2, Table2Result, run_table2

__all__ = [
    "config",
    "make_workload",
    "table2_dataset",
    "figure_dataset",
    "tuned_model",
    "fit_figure_model",
    "FigureModel",
    "run_table2",
    "Table2Result",
    "PAPER_TABLE2",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "SeriesFigure",
    "SurfaceFigure",
    "EXPERIMENTS",
    "run_experiment",
    "main",
]
