"""Figures 4, 7 and 8: the model's 3-D diagrams at (560, x, 16, y).

The paper fixes the injection rate at 560 and the mfg queue at 16, sweeps
the default and web queue thread counts, and plots a predicted indicator
over the plane.  Each experiment here trains the figure model on the
collected samples, evaluates the surface, classifies its shape with the
Section 5 taxonomy, and reports the tuning lesson the paper draws from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Union

from ..analysis.plots import render_surface, surface_to_csv
from ..analysis.surface import ResponseSurface, sweep
from ..analysis.topology import SurfaceClassification, classify_surface
from ..workload.service import OUTPUT_NAMES
from . import config as C
from .data import figure_dataset
from .modeling import fit_figure_model

__all__ = ["SurfaceFigure", "run_figure4", "run_figure7", "run_figure8"]


@dataclass
class SurfaceFigure:
    """One regenerated surface figure."""

    name: str
    #: The paper's expected shape (a :class:`SurfaceKind` constant).
    expected_kind: str
    surface: ResponseSurface
    classification: SurfaceClassification

    @property
    def matches_paper(self) -> bool:
        """Whether the reproduced surface has the paper's shape."""
        return self.classification.kind == self.expected_kind

    def to_text(self) -> str:
        """Caption, shading, classification and extrema."""
        lines = [
            f"{self.name}  caption {self.surface.caption_tuple()}",
            render_surface(self.surface),
            f"classified: {self.classification} "
            f"(paper: {self.expected_kind}) "
            f"{'MATCH' if self.matches_paper else 'MISMATCH'}",
        ]
        row_min, col_min, z_min = self.surface.minimum()
        row_max, col_max, z_max = self.surface.maximum()
        lines.append(
            f"min {z_min:g} at ({self.surface.row_param}={row_min:g}, "
            f"{self.surface.col_param}={col_min:g}); "
            f"max {z_max:g} at ({self.surface.row_param}={row_max:g}, "
            f"{self.surface.col_param}={col_max:g})"
        )
        return "\n".join(lines)

    def to_csv(self, path: Union[str, Path]) -> Path:
        """Long-format CSV of the surface grid."""
        return surface_to_csv(self.surface, path)


def _figure_surface(
    indicator: str, refresh: bool, seed: int = 0
) -> ResponseSurface:
    dataset = figure_dataset(refresh=refresh)
    model = fit_figure_model(dataset, seed=seed)
    return sweep(
        model,
        indicator_index=OUTPUT_NAMES.index(indicator),
        indicator_name=indicator,
        row_param="default_threads",
        row_values=C.FIGURE_DEFAULT_SWEEP,
        col_param="web_threads",
        col_values=C.FIGURE_WEB_SWEEP,
        fixed={
            "injection_rate": C.FIGURE_INJECTION_RATE,
            "mfg_threads": C.FIGURE_MFG_THREADS,
        },
    )


def run_figure4(refresh: bool = False) -> SurfaceFigure:
    """Parallel slopes: manufacturing response time vs (default, web).

    The paper's lesson: "it will be of no use if one attempts to tune the
    default queue to achieve a better manufacturing response time".
    Manufacturing transactions never touch the default queue, so its axis is
    flat.
    """
    surface = _figure_surface("manufacturing_rt", refresh)
    # parallel_threshold 0.4: the default-queue axis moves manufacturing
    # latency ~0.3x as much as the web axis (CPU coupling to the background
    # class is mild but nonzero); the paper's eyeball call of "maintains at
    # value 4 regardless of the default queue" tolerated the same order of
    # residual drift visible in its Figure 4.
    return SurfaceFigure(
        name="Figure 4 (parallel slopes)",
        expected_kind="parallel_slopes",
        surface=surface,
        classification=classify_surface(
            surface, log_scale=True, parallel_threshold=0.4
        ),
    )


def run_figure7(refresh: bool = False) -> SurfaceFigure:
    """Valley: dealer purchase response time vs (default, web).

    The paper's lesson: the minimum response time "could be obtained when we
    adjust two configuration parameters concurrently to stay in the valley".
    """
    surface = _figure_surface("dealer_purchase_rt", refresh)
    return SurfaceFigure(
        name="Figure 7 (valley)",
        expected_kind="valley",
        surface=surface,
        classification=classify_surface(
            surface, log_scale=True, margin=0.05, feature_fraction=0.45
        ),
    )


def run_figure8(refresh: bool = False) -> SurfaceFigure:
    """Hill: effective throughput vs (default, web).

    The paper's lesson: one-parameter-at-a-time tuning "is highly likely
    [to] miss the local maximum regardless of how many experiments they
    perform".
    """
    surface = _figure_surface("effective_tps", refresh)
    return SurfaceFigure(
        name="Figure 8 (hill)",
        expected_kind="hill",
        surface=surface,
        classification=classify_surface(surface),
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    for run in (run_figure4, run_figure7, run_figure8):
        print(run().to_text())
        print()
