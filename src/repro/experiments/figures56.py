"""Figures 5 and 6: actual vs predicted values, training and validation sets.

The paper plots, for one of the five cross-validation trials, the actual
('o') and predicted ('x') value of each indicator per sample index — Figure
5 on the training fold (showing the deliberate loose fit) and Figure 6 on
the validation fold (showing generalization).  We regenerate both series
from the same trial of the same 5-fold run that produces Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Union

import numpy as np

from ..analysis.plots import render_series, series_to_csv
from ..model_selection.cross_validation import TrialResult, cross_validate
from . import config as C
from .data import table2_dataset
from .modeling import tuned_model

__all__ = ["SeriesFigure", "run_figure5", "run_figure6"]


@dataclass
class SeriesFigure:
    """One regenerated actual-vs-predicted figure."""

    name: str
    #: Which CV trial the series comes from.
    trial: int
    actual: np.ndarray  # (n_samples, 5)
    predicted: np.ndarray  # (n_samples, 5)

    @property
    def n_samples(self) -> int:
        """Points per indicator panel."""
        return self.actual.shape[0]

    def panel(self, indicator_index: int) -> str:
        """Text rendering of one indicator's panel."""
        return render_series(
            self.actual[:, indicator_index],
            self.predicted[:, indicator_index],
            title=f"{self.name}: {C.INDICATOR_LABELS[indicator_index]}",
        )

    def to_text(self) -> str:
        """All five panels, stacked like the paper's figure."""
        return "\n\n".join(
            self.panel(j) for j in range(self.actual.shape[1])
        )

    def to_csv(self, path: Union[str, Path]) -> Path:
        """Machine-readable dump of all panels."""
        return series_to_csv(
            self.actual, self.predicted, path, labels=C.INDICATOR_LABELS
        )

    def mean_relative_errors(self) -> np.ndarray:
        """Per-indicator mean |error|/|actual| of the plotted series."""
        return np.mean(
            np.abs(self.predicted - self.actual) / np.abs(self.actual), axis=0
        )


def _trial_result(trial: int, refresh: bool) -> TrialResult:
    dataset = table2_dataset(refresh=refresh)
    report = cross_validate(
        tuned_model,
        dataset.x,
        dataset.y,
        k=5,
        seed=C.MASTER_SEED,
        output_names=C.INDICATOR_LABELS,
    )
    if not 0 <= trial < report.k:
        raise ValueError(f"trial must lie in [0, {report.k}), got {trial}")
    return report.trials[trial]


def run_figure5(trial: int = 0, refresh: bool = False) -> SeriesFigure:
    """Training-fold series: the loose fit of Section 3.3 made visible."""
    result = _trial_result(trial, refresh)
    return SeriesFigure(
        name="Figure 5 (training set)",
        trial=trial,
        actual=result.train_actual,
        predicted=result.train_predicted,
    )


def run_figure6(trial: int = 0, refresh: bool = False) -> SeriesFigure:
    """Validation-fold series: generalization to unseen configurations."""
    result = _trial_result(trial, refresh)
    return SeriesFigure(
        name="Figure 6 (validation set)",
        trial=trial,
        actual=result.validation_actual,
        predicted=result.validation_predicted,
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run_figure5().to_text())
    print()
    print(run_figure6().to_text())
