"""Experiment registry and command-line entry point.

``python -m repro.experiments <name>`` (or the installed
``repro-experiments`` script) regenerates one table/figure, or all of them:

.. code-block:: console

   $ repro-experiments table2
   $ repro-experiments figure7
   $ repro-experiments all --refresh
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from .figures56 import run_figure5, run_figure6
from .surfaces import run_figure4, run_figure7, run_figure8
from .table2 import run_table2

__all__ = ["EXPERIMENTS", "available_experiments", "run_experiment", "main"]

#: Experiment id -> callable(refresh) returning an object with ``to_text()``.
EXPERIMENTS: Dict[str, Callable] = {
    "table2": lambda refresh: run_table2(refresh=refresh),
    "figure4": lambda refresh: run_figure4(refresh=refresh),
    "figure5": lambda refresh: run_figure5(refresh=refresh),
    "figure6": lambda refresh: run_figure6(refresh=refresh),
    "figure7": lambda refresh: run_figure7(refresh=refresh),
    "figure8": lambda refresh: run_figure8(refresh=refresh),
}


def available_experiments() -> list:
    """Sorted experiment ids — the single source for the CLI choices and
    the :func:`run_experiment` error message, so they cannot drift."""
    return sorted(EXPERIMENTS)


def run_experiment(name: str, refresh: bool = False):
    """Run one experiment by id; returns its result object."""
    if name not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; "
            f"available: {available_experiments()}"
        )
    return EXPERIMENTS[name](refresh)


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=available_experiments() + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--refresh",
        action="store_true",
        help="discard cached sample collections and re-simulate",
    )
    args = parser.parse_args(argv)
    names = (
        available_experiments()
        if args.experiment == "all"
        else [args.experiment]
    )
    for name in names:
        result = run_experiment(name, refresh=args.refresh)
        print(f"==== {name} ====")
        print(result.to_text())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - module entry point
    sys.exit(main())
