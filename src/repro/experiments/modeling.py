"""Model construction shared by the paper experiments."""

from __future__ import annotations

import numpy as np

from ..models.neural import NeuralWorkloadModel
from ..workload.dataset import Dataset
from . import config as C

__all__ = ["tuned_model", "fit_figure_model", "FigureModel"]


def tuned_model(trial: int = 0) -> NeuralWorkloadModel:
    """A fresh neural model with the hand-tuned Section 4 settings.

    The trial index only perturbs the weight-initialization seed — the node
    count and termination threshold are reused across trials exactly as the
    paper describes.
    """
    return NeuralWorkloadModel(
        hidden=C.TUNED_HIDDEN,
        error_threshold=C.TUNED_ERROR_THRESHOLD,
        max_epochs=C.TUNED_MAX_EPOCHS,
        seed=C.MASTER_SEED + trial,
    )


class FigureModel:
    """The model behind the Figure 4/7/8 surfaces.

    Response times on the figure plane span two orders of magnitude between
    the valley floors and the saturated left edge, so the four response-time
    indicators are fitted in log space (throughput stays linear); predictions
    are exponentiated back to seconds.  This is a measurement-range choice,
    not a change of model family — the paper's own figures plot a restricted
    response-time range.
    """

    #: Indices of the response-time outputs (log-fitted).
    _RT_COLUMNS = (0, 1, 2, 3)

    def __init__(self, seed: int = 0):
        self.net = NeuralWorkloadModel(
            hidden=(16,),
            error_threshold=0.005,
            max_epochs=10000,
            seed=seed,
        )

    def fit(self, x: np.ndarray, y: np.ndarray) -> "FigureModel":
        """Fit with response times log-transformed."""
        y = np.asarray(y, dtype=float).copy()
        for j in self._RT_COLUMNS:
            y[:, j] = np.log(np.maximum(y[:, j], 1e-6))
        self.net.fit(x, y)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict in physical units (response times exponentiated).

        Throughput predictions are clamped at zero — the model family can
        dip below on extrapolation, but the quantity cannot.
        """
        y = np.asarray(self.net.predict(x), dtype=float)
        for j in self._RT_COLUMNS:
            y[:, j] = np.exp(y[:, j])
        y[:, 4] = np.maximum(y[:, 4], 0.0)
        return y


def fit_figure_model(dataset: Dataset, seed: int = 0) -> FigureModel:
    """Train the surface model on the figure collection."""
    return FigureModel(seed=seed).fit(dataset.x, dataset.y)
