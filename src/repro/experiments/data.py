"""Sample collection for the paper experiments (cached on disk).

Simulating ~100 configurations takes a minute or two, so collections are
cached as CSVs under ``data/`` and reloaded on subsequent runs.  Delete the
files (or call the functions with ``refresh=True``) to regenerate from the
simulator.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..workload.dataset import Dataset
from ..workload.sampler import SampleCollector, latin_hypercube
from ..workload.service import ThreeTierWorkload, WorkloadConfig
from . import config as C

__all__ = [
    "make_workload",
    "table2_dataset",
    "figure_dataset",
    "clip_outputs",
]


def make_workload(
    seed: Optional[int] = None, duration: Optional[float] = None
) -> ThreeTierWorkload:
    """The canonical simulated testbed used by every experiment."""
    return ThreeTierWorkload(
        warmup=C.SIM_WARMUP,
        duration=C.SIM_DURATION if duration is None else duration,
        seed=C.MASTER_SEED if seed is None else seed,
    )


def clip_outputs(dataset: Dataset, floor: float = 1e-3) -> Dataset:
    """Floor indicator values so relative-error metrics stay defined.

    A fully-starved configuration can report an effective throughput of
    exactly zero; the paper's |error|/|actual| metric is undefined there.
    The floor (1e-3 tps / 1 ms) is far below every meaningful value.
    """
    return Dataset(
        dataset.x,
        np.maximum(dataset.y, floor),
        input_names=dataset.input_names,
        output_names=dataset.output_names,
    )


def table2_dataset(refresh: bool = False) -> Dataset:
    """The ~50-sample collection behind Table 2 and Figures 5/6."""
    cache = C.data_path("table2_samples.csv")
    if refresh and cache.exists():
        cache.unlink()
    configs = latin_hypercube(C.TABLE2_SPACE, C.TABLE2_SAMPLES, seed=C.MASTER_SEED)
    collector = SampleCollector(make_workload(), cache_path=cache)
    return clip_outputs(collector.collect(configs))


def _figure_plane_grid() -> List[WorkloadConfig]:
    """An in-plane grid at (560, x, 16, y) covering the swept area."""
    configs = []
    for default in range(0, 21, 4):
        for web in range(14, 23, 2):
            configs.append(
                WorkloadConfig(
                    injection_rate=C.FIGURE_INJECTION_RATE,
                    default_threads=default,
                    mfg_threads=C.FIGURE_MFG_THREADS,
                    web_threads=web,
                )
            )
    return configs


def figure_dataset(refresh: bool = False) -> Dataset:
    """The wider collection behind the Figure 4/7/8 surfaces.

    An exact grid on the figures' (560, x, 16, y) plane plus Latin-hypercube
    samples around it, so the model interpolates rather than extrapolates
    everywhere on the plotted surface.  Each configuration is replicated
    over several simulator seeds and the indicators averaged — "the
    averages of collected counter values are used to reduce the effect of
    sampling error" (paper Section 4).
    """
    cache = C.data_path("figure_samples.csv")
    if refresh and cache.exists():
        cache.unlink()
    if cache.exists():
        return clip_outputs(Dataset.load_csv(cache))
    configs = _figure_plane_grid() + latin_hypercube(
        C.FIGURE_SPACE, C.FIGURE_LHS_SAMPLES, seed=C.MASTER_SEED + 1
    )
    replicas = []
    for replication in range(C.FIGURE_REPLICATIONS):
        workload = make_workload(
            seed=C.MASTER_SEED + replication,
            duration=C.FIGURE_SIM_DURATION,
        )
        replicas.append(SampleCollector(workload).collect(configs))
    averaged = Dataset(
        replicas[0].x,
        np.mean([d.y for d in replicas], axis=0),
        input_names=replicas[0].input_names,
        output_names=replicas[0].output_names,
    )
    averaged.save_csv(cache)
    return clip_outputs(averaged)
