"""Table 2: average prediction error of 5-fold cross validation.

Reproduces the paper's headline table — per-trial, per-indicator
harmonic-mean relative error on the validation folds, with the column
averages and the overall prediction accuracy.  Paper values for comparison:

=======  =====  =========  ========  ========  =========
Trial     Mfg   Purchase    Manage    Browse    Eff. TPS
=======  =====  =========  ========  ========  =========
1         3.3%     10.1%      5.7%      9.5%      0.1%
2         1.5%      7.3%      2.7%      4.2%      0.3%
3         4.5%      8.9%      3.3%      5.0%      0.2%
4         4.0%     12.6%     12.6%     11.3%      0.1%
5         1.4%     11.3%     10.7%      6.4%      0.2%
Average   3.0%     10.0%      7.0%      7.3%      0.2%
=======  =====  =========  ========  ========  =========

Overall accuracy: 95 %.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..model_selection.cross_validation import (
    CrossValidationReport,
    cross_validate,
)
from . import config as C
from .data import table2_dataset
from .modeling import tuned_model

__all__ = ["PAPER_TABLE2", "Table2Result", "run_table2"]

#: The paper's Table 2 (fractions, rows = trials, cols = indicators).
PAPER_TABLE2 = np.array(
    [
        [0.033, 0.101, 0.057, 0.095, 0.001],
        [0.015, 0.073, 0.027, 0.042, 0.003],
        [0.045, 0.089, 0.033, 0.050, 0.002],
        [0.040, 0.126, 0.126, 0.113, 0.001],
        [0.014, 0.113, 0.107, 0.064, 0.002],
    ]
)


@dataclass
class Table2Result:
    """Measured CV report plus the paper's numbers for side-by-side."""

    report: CrossValidationReport
    paper: np.ndarray

    @property
    def measured_average(self) -> np.ndarray:
        """Per-indicator error averaged over trials (our run)."""
        return self.report.average_errors

    @property
    def paper_average(self) -> np.ndarray:
        """Per-indicator error averaged over trials (the paper)."""
        return self.paper.mean(axis=0)

    def to_text(self) -> str:
        """The measured table followed by a paper-vs-measured summary."""
        lines = [
            "Table 2 (reproduced): average prediction error, 5-fold CV",
            self.report.to_table(),
            "",
            "paper vs measured (column averages):",
        ]
        for name, paper_value, measured in zip(
            C.INDICATOR_LABELS, self.paper_average, self.measured_average
        ):
            lines.append(
                f"  {name:36s} paper {100 * paper_value:5.1f} %   "
                f"measured {100 * measured:5.1f} %"
            )
        lines.append(
            f"  {'Overall accuracy':36s} paper  95.0 %   "
            f"measured {100 * self.report.overall_accuracy:5.1f} %"
        )
        return "\n".join(lines)


def run_table2(refresh: bool = False) -> Table2Result:
    """Collect (or load) the samples and run the 5-fold cross validation."""
    dataset = table2_dataset(refresh=refresh)
    report = cross_validate(
        tuned_model,
        dataset.x,
        dataset.y,
        k=5,
        seed=C.MASTER_SEED,
        output_names=C.INDICATOR_LABELS,
    )
    return Table2Result(report=report, paper=PAPER_TABLE2.copy())


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run_table2().to_text())
