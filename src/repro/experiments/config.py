"""Canonical settings shared by every paper experiment.

One place defines the simulated testbed, the sampled regions, and the tuned
model hyper-parameters, so Table 2 and Figures 4-8 are all statements about
the *same* system — as they are in the paper.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..workload.sampler import ConfigSpace, ParameterRange

__all__ = [
    "DATA_DIR",
    "MASTER_SEED",
    "SIM_WARMUP",
    "SIM_DURATION",
    "INDICATOR_LABELS",
    "FIGURE_INJECTION_RATE",
    "FIGURE_MFG_THREADS",
    "FIGURE_DEFAULT_SWEEP",
    "FIGURE_WEB_SWEEP",
    "TABLE2_SPACE",
    "TABLE2_SAMPLES",
    "FIGURE_SPACE",
    "FIGURE_LHS_SAMPLES",
    "TUNED_HIDDEN",
    "TUNED_ERROR_THRESHOLD",
    "TUNED_MAX_EPOCHS",
    "data_path",
]

#: Where cached sample collections live (simulation output, regenerable).
DATA_DIR = Path(__file__).resolve().parents[3] / "data"

#: Master seed for sample designs and the simulator.
MASTER_SEED = 42

#: Simulated seconds discarded before measurement / measured, per run.
SIM_WARMUP = 4.0
SIM_DURATION = 16.0

#: The figure plane includes the congested transition region, where
#: threshold metrics (effective tps) are noisy; its samples use a longer
#: measurement window.
FIGURE_SIM_DURATION = 28.0

#: Human-readable indicator labels in canonical output order (Table 2
#: column headings).
INDICATOR_LABELS = [
    "Mfg Response Time",
    "Dealer Purchase Response Time",
    "Dealer Manage Response Time",
    "Dealer Browse Autos Response Time",
    "Effective Transactions per second",
]

#: The figures' caption tuple (560, x, 16, y): injection rate and mfg queue
#: are fixed, default and web queues are swept.
FIGURE_INJECTION_RATE = 560.0
FIGURE_MFG_THREADS = 16
FIGURE_DEFAULT_SWEEP = np.arange(0, 21, 2)  # 0 .. 20
FIGURE_WEB_SWEEP = np.arange(14, 23, 1)  # 14 .. 22

#: Table 2's sample collection covers the *operable* region around the
#: paper's operating point: the thread-pool knees are inside the region but
#: the deeply-saturated corners (where response times are window-limited and
#: essentially unpredictable) are not — matching the paper's "3-tier setup
#: with response time restrictions".
TABLE2_SPACE = ConfigSpace(
    [
        ParameterRange("injection_rate", 440, 580),
        ParameterRange("default_threads", 2, 22),
        ParameterRange("mfg_threads", 10, 24),
        ParameterRange("web_threads", 14, 23),
    ]
)

#: ~50 samples, as in the paper (Figure 5 plots ~40 training and Figure 6
#: ~10 validation points per 5-fold trial).
TABLE2_SAMPLES = 50

#: The figure model must cover the full swept plane including its saturated
#: left edge, so its collection region is wider.
FIGURE_SPACE = ConfigSpace(
    [
        ParameterRange("injection_rate", 520, 600),
        ParameterRange("default_threads", 0, 22),
        ParameterRange("mfg_threads", 12, 20),
        ParameterRange("web_threads", 14, 23),
    ]
)

#: Extra Latin-hypercube samples around the figure plane (added to the
#: in-plane grid).
FIGURE_LHS_SAMPLES = 30

#: Independent simulator seeds averaged per figure sample (the paper
#: averages counters to reduce sampling error).
FIGURE_REPLICATIONS = 3

#: The tuned model parameters — a two-hidden-layer MLP, the topology the
#: paper's Figure 3 depicts.  The paper hand-tunes "the MLP node count and
#: the termination threshold ... for the first trial; then the next four
#: trials were generated automatically with the same node count and the same
#: threshold value".  These values came from the equivalent tuning pass
#: (see benchmarks/bench_hidden_nodes.py for the surrounding landscape).
TUNED_HIDDEN = (16, 8)
TUNED_ERROR_THRESHOLD = 0.005
TUNED_MAX_EPOCHS = 12000


def data_path(name: str) -> Path:
    """Path of a cached dataset CSV under :data:`DATA_DIR`."""
    return DATA_DIR / name
