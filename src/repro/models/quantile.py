"""Quantile (SLA) workload models.

The paper models *mean* indicators, but response-time agreements are stated
on tail quantiles — "90 % of purchases complete within 120 ms".  Training
the same MLP under the pinball loss regresses a conditional quantile
instead of the mean, turning the characterization model into an SLA model
with no change of architecture.

:func:`tail_targets` builds the matching target matrix (per-class p90 — or
any recorded percentile — plus effective throughput) from simulated
metrics, so the whole pipeline mirrors the mean-model one.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..nn.losses import Pinball
from ..nn.mlp import MLP
from ..nn.optimizers import get_optimizer
from ..nn.training import ErrorThreshold, Trainer
from ..preprocessing.scalers import StandardScaler
from ..workload.service import WorkloadMetrics
from .base import WorkloadModel

__all__ = ["tail_targets", "QuantileWorkloadModel"]

#: Transaction-class order matching the first four canonical outputs.
_RT_CLASSES = (
    "manufacturing",
    "dealer_purchase",
    "dealer_manage",
    "dealer_browse",
)


def tail_targets(
    metrics_list: Sequence[WorkloadMetrics], percentile: int = 90
) -> np.ndarray:
    """Target matrix of per-class tail latencies plus effective throughput.

    ``percentile`` must be one the simulator records (50, 90 or 99).
    Shape ``(n_runs, 5)`` in canonical output order.
    """
    attribute = {50: "p50", 90: "p90", 99: "p99"}.get(percentile)
    if attribute is None:
        raise ValueError(
            f"percentile must be one of 50/90/99, got {percentile}"
        )
    rows: List[List[float]] = []
    for metrics in metrics_list:
        row = [
            getattr(metrics.per_class[name], attribute)
            for name in _RT_CLASSES
        ]
        row.append(metrics.indicators["effective_tps"])
        rows.append(row)
    return np.asarray(rows, dtype=float)


class QuantileWorkloadModel(WorkloadModel):
    """An MLP trained under the pinball loss: predicts conditional quantiles.

    The Section 3 recipe (standardize inputs, standardize outputs, loose
    stop threshold) carries over unchanged; only the loss differs.  Note
    the stop threshold is now in pinball units, which are roughly half the
    scale of MSE — the default reflects that.

    Parameters
    ----------
    quantile:
        Which conditional quantile to regress (0.9 for p90 SLAs).
    hidden, error_threshold, max_epochs, learning_rate, seed:
        As in :class:`~repro.models.neural.NeuralWorkloadModel`.
    """

    def __init__(
        self,
        quantile: float = 0.9,
        hidden: Sequence[int] = (16, 8),
        error_threshold: Optional[float] = 0.05,
        max_epochs: int = 8000,
        learning_rate: float = 0.01,
        seed: Optional[int] = 0,
    ):
        self.loss = Pinball(quantile=quantile)
        hidden = tuple(int(h) for h in hidden)
        if not hidden or any(h < 1 for h in hidden):
            raise ValueError(f"hidden sizes must be positive, got {hidden}")
        if max_epochs < 1:
            raise ValueError(f"max_epochs must be >= 1, got {max_epochs}")
        self.hidden = hidden
        self.error_threshold = error_threshold
        self.max_epochs = int(max_epochs)
        self.learning_rate = float(learning_rate)
        self.seed = seed
        self.network_: Optional[MLP] = None
        self.x_scaler_: Optional[StandardScaler] = None
        self.y_scaler_: Optional[StandardScaler] = None

    @property
    def quantile(self) -> float:
        """The regressed quantile."""
        return self.loss.quantile

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self.network_ is not None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "QuantileWorkloadModel":
        """Train against quantile targets (e.g. from :func:`tail_targets`)."""
        x, y = self._validate_xy(x, y)
        self.x_scaler_ = StandardScaler()
        self.y_scaler_ = StandardScaler()
        scaled_x = self.x_scaler_.fit_transform(x)
        scaled_y = self.y_scaler_.fit_transform(y)
        self.network_ = MLP(
            [x.shape[1], *self.hidden, y.shape[1]], seed=self.seed
        )
        trainer = Trainer(
            self.network_,
            loss=self.loss,
            optimizer=get_optimizer("adam", learning_rate=self.learning_rate),
            seed=self.seed,
        )
        stopping = (
            [ErrorThreshold(self.error_threshold)]
            if self.error_threshold is not None
            else None
        )
        trainer.fit(
            scaled_x, scaled_y, max_epochs=self.max_epochs, stopping=stopping
        )
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted conditional quantiles, in physical units."""
        if not self.is_fitted:
            raise RuntimeError("predict() called before fit()")
        x = self._validate_x(x, self.x_scaler_.mean_.size)
        scaled = self.network_.predict(self.x_scaler_.transform(x))
        return self.y_scaler_.inverse_transform(scaled)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuantileWorkloadModel(q={self.quantile}, hidden={self.hidden}, "
            f"fitted={self.is_fitted})"
        )
