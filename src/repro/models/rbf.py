"""RBF-network workload model.

Section 2.1 lists Radial Basis Function networks beside MLPs as the neural
architectures used for function approximation; this wrapper puts the
from-scratch :class:`~repro.nn.rbf.RBFNetwork` behind the common
:class:`~repro.models.base.WorkloadModel` interface (with the same
standardization recipe as the neural model, which matters just as much for
distance-based kernels as for gradient descent).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn.rbf import RBFNetwork
from ..preprocessing.scalers import IdentityScaler, Scaler, StandardScaler
from .base import WorkloadModel

__all__ = ["RBFWorkloadModel"]


class RBFWorkloadModel(WorkloadModel):
    """Gaussian-kernel interpolation of the configuration space.

    Parameters
    ----------
    n_centers:
        Number of kernels (capped at the sample count during fit).
    width:
        Kernel width in standardized units; ``None`` uses the mean
        center-to-center distance.
    ridge:
        Regularization of the linear readout.
    standardize:
        Standardize inputs and outputs around the network.
    seed:
        Seed for center placement.
    """

    def __init__(
        self,
        n_centers: int = 20,
        width: Optional[float] = None,
        ridge: float = 1e-6,
        standardize: bool = True,
        seed: Optional[int] = 0,
    ):
        self.n_centers = int(n_centers)
        self.width = width
        self.ridge = float(ridge)
        self.standardize = bool(standardize)
        self.seed = seed
        self.network_: Optional[RBFNetwork] = None
        self.x_scaler_: Optional[Scaler] = None
        self.y_scaler_: Optional[Scaler] = None
        self._n_inputs: Optional[int] = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self.network_ is not None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RBFWorkloadModel":
        """Scale, place centers, solve the readout."""
        x, y = self._validate_xy(x, y)
        self._n_inputs = x.shape[1]
        scaler_cls = StandardScaler if self.standardize else IdentityScaler
        self.x_scaler_ = scaler_cls()
        self.y_scaler_ = scaler_cls()
        scaled_x = self.x_scaler_.fit_transform(x)
        scaled_y = self.y_scaler_.fit_transform(y)
        self.network_ = RBFNetwork(
            n_centers=self.n_centers,
            width=self.width,
            ridge=self.ridge,
            seed=self.seed,
        ).fit(scaled_x, scaled_y)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the fitted network in physical units."""
        if not self.is_fitted:
            raise RuntimeError("predict() called before fit()")
        x = self._validate_x(x, self._n_inputs)
        scaled = self.network_.predict(self.x_scaler_.transform(x))
        return self.y_scaler_.inverse_transform(scaled)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RBFWorkloadModel(n_centers={self.n_centers}, "
            f"fitted={self.is_fitted})"
        )
