"""Ensembles of neural workload models, with prediction uncertainty.

Section 3.3 ties a model's *validity* to its prediction error on unseen
samples; an ensemble makes that validity visible per prediction: train K
networks that differ only in their random initialization (the paper notes
"the weights and biases of the network are initialized with random values"),
and report the spread of their predictions.  Where the members agree the
model is well-determined by the data; where they diverge, the prediction is
extrapolating or the data is thin — exactly the configurations an engineer
should actually measure instead of trusting the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .base import WorkloadModel
from .neural import NeuralWorkloadModel

__all__ = ["EnsemblePrediction", "NeuralEnsemble"]


@dataclass
class EnsemblePrediction:
    """Mean prediction with member spread."""

    mean: np.ndarray
    std: np.ndarray
    #: Per-member raw predictions, shape (members, samples, outputs).
    members: np.ndarray

    def interval(self, width: float = 2.0):
        """(lower, upper) = mean ± width·std."""
        if width < 0:
            raise ValueError(f"width must be non-negative, got {width}")
        return self.mean - width * self.std, self.mean + width * self.std

    @property
    def relative_spread(self) -> np.ndarray:
        """``std / |mean|`` — a unitless confidence signal per prediction."""
        return self.std / np.maximum(np.abs(self.mean), 1e-12)


class NeuralEnsemble(WorkloadModel):
    """K independently-initialized copies of the paper's neural model.

    Parameters
    ----------
    n_members:
        Ensemble size (5 is plenty for a spread estimate).
    seed:
        Base seed; member k uses ``seed + k``.
    **model_kwargs:
        Passed through to every :class:`NeuralWorkloadModel`
        (hidden sizes, error threshold, ...).
    """

    def __init__(
        self,
        n_members: int = 5,
        seed: int = 0,
        **model_kwargs,
    ):
        if n_members < 2:
            raise ValueError(f"n_members must be >= 2, got {n_members}")
        if "seed" in model_kwargs:
            raise ValueError("pass the base seed as `seed`, not in kwargs")
        self.n_members = int(n_members)
        self.seed = int(seed)
        self.model_kwargs = dict(model_kwargs)
        self.members_: List[NeuralWorkloadModel] = []

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return bool(self.members_)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "NeuralEnsemble":
        """Train every member on the same samples, different init seeds."""
        x, y = self._validate_xy(x, y)
        self.members_ = []
        for k in range(self.n_members):
            member = NeuralWorkloadModel(
                seed=self.seed + 1000 * k, **self.model_kwargs
            )
            member.fit(x, y)
            self.members_.append(member)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """The ensemble mean (the usual point prediction)."""
        return self.predict_with_uncertainty(x).mean

    def predict_with_uncertainty(self, x: np.ndarray) -> EnsemblePrediction:
        """Mean, spread and raw member predictions."""
        if not self.is_fitted:
            raise RuntimeError("predict called before fit()")
        stacked = np.stack(
            [member.predict(x) for member in self.members_], axis=0
        )
        return EnsemblePrediction(
            mean=stacked.mean(axis=0),
            std=stacked.std(axis=0),
            members=stacked,
        )

    def disagreement_hotspots(
        self, x: np.ndarray, top_k: int = 5
    ) -> Sequence[int]:
        """Indices of the ``top_k`` inputs with the largest relative spread.

        These are the configurations worth *measuring* — the model-guided
        experiment-selection idea of Section 5, driven by uncertainty
        instead of score.
        """
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        prediction = self.predict_with_uncertainty(x)
        per_sample = prediction.relative_spread.max(axis=1)
        order = np.argsort(-per_sample)
        return [int(i) for i in order[:top_k]]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NeuralEnsemble(n_members={self.n_members}, "
            f"fitted={self.is_fitted})"
        )
