"""Workload characterization models: the paper's neural model and baselines."""

from .base import WorkloadModel
from .doe import (
    DOEWorkloadModel,
    FactorLevels,
    central_composite,
    two_level_fractional_factorial,
    two_level_full_factorial,
)
from .ensemble import EnsemblePrediction, NeuralEnsemble
from .linear import LinearWorkloadModel
from .loglinear import LogLinearWorkloadModel
from .neural import NeuralWorkloadModel
from .persistence import (
    load_model,
    load_model_document,
    model_document_from_bytes,
    model_from_dict,
    model_to_dict,
    save_model,
)
from .polynomial import PolynomialWorkloadModel, monomial_exponents
from .quantile import QuantileWorkloadModel, tail_targets
from .rbf import RBFWorkloadModel

__all__ = [
    "WorkloadModel",
    "NeuralWorkloadModel",
    "NeuralEnsemble",
    "EnsemblePrediction",
    "LinearWorkloadModel",
    "PolynomialWorkloadModel",
    "monomial_exponents",
    "LogLinearWorkloadModel",
    "QuantileWorkloadModel",
    "tail_targets",
    "save_model",
    "load_model",
    "load_model_document",
    "model_document_from_bytes",
    "model_to_dict",
    "model_from_dict",
    "RBFWorkloadModel",
    "FactorLevels",
    "two_level_full_factorial",
    "two_level_fractional_factorial",
    "central_composite",
    "DOEWorkloadModel",
]
