"""Design of Experiments — the prior methodology (paper refs [2, 20, 21]).

"These works attempted to train the model in the Design of Experiments (DOE)
approach. First, a fixed order linear model is assumed, and the coefficients
are then determined by a carefully designed set of experiments" (Section 6).
We implement that approach faithfully so the benches can compare it against
the paper's rough-mixture-of-samples neural methodology:

* two-level **full factorial** designs (every corner of the space),
* two-level **fractional factorial** designs built from generator columns,
* **central composite** designs (factorial corners + axial points + center)
  for second-order models,

plus :class:`DOEWorkloadModel`, which fits the assumed fixed-order model
(main effects, optional two-way interactions, optional quadratics) to the
design's responses and exposes the usual fit/predict interface along with
per-factor effect estimates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .base import WorkloadModel
from .linear import LinearWorkloadModel

__all__ = [
    "FactorLevels",
    "two_level_full_factorial",
    "two_level_fractional_factorial",
    "central_composite",
    "DOEWorkloadModel",
]


@dataclass(frozen=True)
class FactorLevels:
    """Low/high settings of one factor (configuration parameter)."""

    name: str
    low: float
    high: float

    def __post_init__(self):
        if not self.low < self.high:
            raise ValueError(
                f"{self.name}: need low < high, got {self.low}, {self.high}"
            )

    @property
    def center(self) -> float:
        """The design's center level."""
        return 0.5 * (self.low + self.high)

    @property
    def half_range(self) -> float:
        """Half the low-to-high span (the coded-unit scale)."""
        return 0.5 * (self.high - self.low)

    def decode(self, coded: float) -> float:
        """Map a coded level (-1 .. +1) to a physical value."""
        return self.center + coded * self.half_range


def two_level_full_factorial(factors: Sequence[FactorLevels]) -> np.ndarray:
    """All ``2^k`` corner points, in physical units (shape ``(2^k, k)``)."""
    if not factors:
        raise ValueError("need at least one factor")
    corners = itertools.product(*[(-1.0, 1.0)] * len(factors))
    return np.array(
        [[f.decode(c) for f, c in zip(factors, corner)] for corner in corners]
    )


def two_level_fractional_factorial(
    factors: Sequence[FactorLevels],
    n_base: int,
    generators: Sequence[Tuple[int, ...]],
) -> np.ndarray:
    """A ``2^(k-p)`` design: full factorial on ``n_base`` factors, the rest
    generated as products of base columns.

    Parameters
    ----------
    factors:
        All ``k`` factors, base factors first.
    n_base:
        How many leading factors form the full-factorial base.
    generators:
        One tuple of base-factor indices per generated factor, e.g.
        ``[(0, 1, 2)]`` sets factor 3's coded level to the product of
        factors 0, 1 and 2 (the classic ``2^(4-1)`` design with D = ABC).
    """
    k = len(factors)
    if not 1 <= n_base <= k:
        raise ValueError(f"n_base must lie in [1, {k}], got {n_base}")
    if len(generators) != k - n_base:
        raise ValueError(
            f"need {k - n_base} generators for {k} factors with "
            f"{n_base} base factors, got {len(generators)}"
        )
    for gen in generators:
        if not gen or any(not 0 <= g < n_base for g in gen):
            raise ValueError(
                f"generator {gen!r} must index base factors 0..{n_base - 1}"
            )
    rows = []
    for corner in itertools.product(*[(-1.0, 1.0)] * n_base):
        coded = list(corner)
        for gen in generators:
            value = 1.0
            for g in gen:
                value *= corner[g]
            coded.append(value)
        rows.append([f.decode(c) for f, c in zip(factors, coded)])
    return np.array(rows)


def central_composite(
    factors: Sequence[FactorLevels],
    alpha: float = 1.0,
    center_points: int = 1,
) -> np.ndarray:
    """Factorial corners + axial points at ``±alpha`` + replicated center.

    ``alpha = 1`` keeps the axial points on the faces (a face-centered CCD),
    which respects hard bounds like non-negative thread counts.
    """
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    if center_points < 0:
        raise ValueError(f"center_points must be >= 0, got {center_points}")
    rows = list(two_level_full_factorial(factors))
    k = len(factors)
    for axis in range(k):
        for sign in (-alpha, alpha):
            coded = [0.0] * k
            coded[axis] = sign
            rows.append(
                np.array([f.decode(c) for f, c in zip(factors, coded)])
            )
    center = np.array([f.center for f in factors])
    rows.extend([center.copy() for _ in range(center_points)])
    return np.vstack(rows)


class DOEWorkloadModel(WorkloadModel):
    """The prior work's fixed-order linear model over coded factors.

    Parameters
    ----------
    factors:
        Factor definitions; inputs are coded to [-1, 1] before fitting, so
        effect estimates are directly comparable across factors.
    interactions:
        Include all two-way interaction terms.
    quadratic:
        Include per-factor quadratic terms (needs axial/center points to be
        estimable — use :func:`central_composite`).
    """

    def __init__(
        self,
        factors: Sequence[FactorLevels],
        interactions: bool = True,
        quadratic: bool = False,
    ):
        if not factors:
            raise ValueError("need at least one factor")
        self.factors = list(factors)
        self.interactions = bool(interactions)
        self.quadratic = bool(quadratic)
        self._solver = LinearWorkloadModel(ridge=1e-10)
        self._term_names: List[str] = []

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._solver.is_fitted

    # ------------------------------------------------------------------

    def _code(self, x: np.ndarray) -> np.ndarray:
        coded = np.empty_like(x)
        for j, factor in enumerate(self.factors):
            coded[:, j] = (x[:, j] - factor.center) / factor.half_range
        return coded

    def _terms(self, coded: np.ndarray) -> np.ndarray:
        k = len(self.factors)
        columns = [coded[:, j] for j in range(k)]
        names = [f.name for f in self.factors]
        if self.interactions:
            for a, b in itertools.combinations(range(k), 2):
                columns.append(coded[:, a] * coded[:, b])
                names.append(f"{self.factors[a].name}*{self.factors[b].name}")
        if self.quadratic:
            for j in range(k):
                columns.append(coded[:, j] ** 2)
                names.append(f"{self.factors[j].name}^2")
        self._term_names = names
        return np.column_stack(columns)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DOEWorkloadModel":
        """Fit the assumed model to the design's measured responses."""
        x, y = self._validate_xy(x, y)
        if x.shape[1] != len(self.factors):
            raise ValueError(
                f"model has {len(self.factors)} factors but x has "
                f"{x.shape[1]} columns"
            )
        self._solver.fit(self._terms(self._code(x)), y)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the fitted fixed-order model."""
        if not self.is_fitted:
            raise RuntimeError("predict() called before fit()")
        x = self._validate_x(x, len(self.factors))
        return self._solver.predict(self._terms(self._code(x)))

    def effects(self, output_index: int = 0) -> Dict[str, float]:
        """Coded-unit effect estimates for one output, largest first.

        In a two-level design, a term's coefficient is half its classical
        "effect" (the predicted change from low to high); we report the
        coefficients, whose *relative* magnitudes rank factor importance.
        """
        if not self.is_fitted:
            raise RuntimeError("effects() requested before fit()")
        coefficients = self._solver.coefficients_[:, output_index]
        pairs = sorted(
            zip(self._term_names, coefficients),
            key=lambda pair: abs(pair[1]),
            reverse=True,
        )
        return dict(pairs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DOEWorkloadModel(factors={[f.name for f in self.factors]}, "
            f"interactions={self.interactions}, quadratic={self.quadratic})"
        )
