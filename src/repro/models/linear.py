"""Linear baseline (Chow et al. [2] and the other prior work in Section 6).

The prior approaches the paper argues against "usually relied on linear
models to approximate program behavior".  :class:`LinearWorkloadModel` is
that baseline: ordinary least squares (optionally ridge-regularized) from
configuration parameters to indicators.  The model-comparison bench shows
where it matches the neural model (near-linear regions) and where it cannot
(the valleys and hills).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import WorkloadModel

__all__ = ["LinearWorkloadModel"]


class LinearWorkloadModel(WorkloadModel):
    """Ordinary least squares: ``y = x @ W + b``.

    Parameters
    ----------
    ridge:
        L2 penalty on the coefficients (0 = plain OLS).  A small default
        keeps the normal equations well-posed on tiny sample sets.
    """

    def __init__(self, ridge: float = 0.0):
        if ridge < 0:
            raise ValueError(f"ridge must be non-negative, got {ridge}")
        self.ridge = float(ridge)
        self.coefficients_: Optional[np.ndarray] = None  # (n_inputs, m)
        self.intercept_: Optional[np.ndarray] = None  # (m,)
        self._n_inputs: Optional[int] = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self.coefficients_ is not None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearWorkloadModel":
        """Solve the (ridge) least-squares problem in closed form."""
        x, y = self._validate_xy(x, y)
        self._n_inputs = x.shape[1]
        design = np.column_stack([x, np.ones(x.shape[0])])
        if self.ridge:
            penalty = self.ridge * np.eye(design.shape[1])
            penalty[-1, -1] = 0.0  # never shrink the intercept
            gram = design.T @ design + penalty
            solution = np.linalg.solve(gram, design.T @ y)
        else:
            solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        self.coefficients_ = solution[:-1]
        self.intercept_ = solution[-1]
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the fitted hyperplane."""
        if not self.is_fitted:
            raise RuntimeError("predict() called before fit()")
        x = self._validate_x(x, self._n_inputs)
        return x @ self.coefficients_ + self.intercept_

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LinearWorkloadModel(ridge={self.ridge}, fitted={self.is_fitted})"
