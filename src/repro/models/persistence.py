"""Persisting fitted workload models (network + scalers) as one document.

`repro.nn.serialization` stores a bare network; a *workload model* is more —
the Section 3.1 scalers are part of the learned artifact (a network without
its standardization statistics predicts garbage).  This module serializes a
fitted :class:`~repro.models.neural.NeuralWorkloadModel` completely, so a
characterized workload can be handed to another engineer (or a CI job) as a
single JSON file and queried without retraining.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Union

import numpy as np

from ..durability.integrity import sha256_bytes, write_checksum
from ..nn.serialization import from_dict as network_from_dict
from ..nn.serialization import to_dict as network_to_dict
from ..preprocessing.scalers import IdentityScaler, Scaler, StandardScaler
from .neural import NeuralWorkloadModel

__all__ = [
    "MODEL_FORMAT_VERSION",
    "model_to_dict",
    "model_from_dict",
    "save_model",
    "load_model",
    "load_model_document",
    "model_document_from_bytes",
]

MODEL_FORMAT_VERSION = 1


def _scaler_to_dict(scaler: Scaler) -> dict:
    if isinstance(scaler, StandardScaler):
        return {
            "kind": "standard",
            "mean": scaler.mean_.tolist(),
            "scale": scaler.scale_.tolist(),
        }
    if isinstance(scaler, IdentityScaler):
        return {"kind": "identity", "n_features": scaler._n_features}
    raise TypeError(
        f"cannot serialize scaler of type {type(scaler).__name__}"
    )


def _scaler_from_dict(payload: dict) -> Scaler:
    kind = payload.get("kind")
    if kind == "standard":
        scaler = StandardScaler()
        scaler.mean_ = np.asarray(payload["mean"], dtype=float)
        scaler.scale_ = np.asarray(payload["scale"], dtype=float)
        return scaler
    if kind == "identity":
        scaler = IdentityScaler()
        scaler._n_features = int(payload["n_features"])
        return scaler
    raise ValueError(f"unknown scaler kind {kind!r}")


def model_to_dict(model: NeuralWorkloadModel) -> dict:
    """Serialize a fitted model (hyper-parameters, scalers, networks)."""
    if not model.is_fitted:
        raise ValueError("only fitted models can be serialized")
    return {
        "format_version": MODEL_FORMAT_VERSION,
        "kind": "neural_workload_model",
        "hyper": {
            "hidden": list(model.hidden),
            "error_threshold": model.error_threshold,
            "max_epochs": model.max_epochs,
            "joint": model.joint,
            "standardize_inputs": model.standardize_inputs,
            "standardize_outputs": model.standardize_outputs,
            "learning_rate": model.learning_rate,
            "hidden_activation": model.hidden_activation,
            "l2": model.l2,
            "seed": model.seed,
        },
        "x_scaler": _scaler_to_dict(model.x_scaler_),
        "y_scaler": _scaler_to_dict(model.y_scaler_),
        "networks": [network_to_dict(net) for net in model.networks_],
    }


def model_from_dict(payload: dict) -> NeuralWorkloadModel:
    """Inverse of :func:`model_to_dict`; returns a ready-to-predict model."""
    if not isinstance(payload, dict):
        raise TypeError(f"expected dict, got {type(payload).__name__}")
    if payload.get("format_version") != MODEL_FORMAT_VERSION:
        raise ValueError(
            f"unsupported format_version {payload.get('format_version')!r}"
        )
    if payload.get("kind") != "neural_workload_model":
        raise ValueError(f"unsupported kind {payload.get('kind')!r}")
    hyper = payload["hyper"]
    model = NeuralWorkloadModel(
        hidden=tuple(hyper["hidden"]),
        error_threshold=hyper["error_threshold"],
        max_epochs=hyper["max_epochs"],
        joint=hyper["joint"],
        standardize_inputs=hyper["standardize_inputs"],
        standardize_outputs=hyper["standardize_outputs"],
        learning_rate=hyper["learning_rate"],
        hidden_activation=hyper["hidden_activation"],
        l2=hyper["l2"],
        seed=hyper["seed"],
    )
    model.x_scaler_ = _scaler_from_dict(payload["x_scaler"])
    model.y_scaler_ = _scaler_from_dict(payload["y_scaler"])
    model.networks_ = [network_from_dict(n) for n in payload["networks"]]
    model._n_inputs = model.networks_[0].n_inputs
    if model.joint:
        model._n_outputs = model.networks_[0].n_outputs
    else:
        model._n_outputs = len(model.networks_)
    return model


def save_model(
    model: NeuralWorkloadModel, path: Union[str, Path]
) -> Path:
    """Write the fitted model to ``path`` as JSON, atomically.

    The document lands in a dot-prefixed temporary file in the target
    directory and is ``os.replace``\\ d over ``path``, so a concurrent
    reader — in particular the mtime-polling
    :class:`~repro.serving.registry.ModelRegistry` — sees either the old
    artifact or the complete new one, never a truncated JSON file.

    The document's sha256 is recorded in a ``<path>.sha256`` sidecar
    (written *after* the replace), giving downstream verifiers —
    :func:`repro.durability.integrity.verify_file`, the store manifest,
    the registry's :class:`~repro.durability.integrity.IntegrityGuard` —
    a recorded identity to check the bytes against.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(model_to_dict(model)).encode("utf-8")
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    write_checksum(path, sha256_bytes(payload))
    return path


def model_document_from_bytes(
    data: bytes, path: Union[str, Path] = "<bytes>"
) -> dict:
    """Parse already-read artifact bytes into the raw document ``dict``.

    The single-read half of :func:`load_model_document`: callers that
    already hold the file's bytes (the registry reads once to both
    verify the sha256 and parse) skip a second disk read.  ``path`` only
    names the source in error messages.
    """
    try:
        payload = json.loads(data)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ValueError(
            f"model file {path} is not valid JSON (truncated or corrupt): "
            f"{exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise ValueError(
            f"model file {path} holds a JSON {type(payload).__name__}, "
            "expected an object"
        )
    return payload


def load_model_document(path: Union[str, Path]) -> dict:
    """Read and parse a model file into its raw document ``dict``.

    This is the registry-facing half of :func:`load_model`: it validates
    that the file holds *some* JSON object without committing to a format
    version, so callers (e.g. :class:`repro.serving.registry.ModelRegistry`)
    can inspect ``format_version`` before materializing networks.  All
    failure modes raise :class:`ValueError` naming the offending file.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise ValueError(f"cannot read model file {path}: {exc}") from exc
    return model_document_from_bytes(data, path)


def load_model(path: Union[str, Path]) -> NeuralWorkloadModel:
    """Read a model written by :func:`save_model`.

    Any malformed artifact — invalid/truncated JSON, a wrong format
    version, or missing fields — raises :class:`ValueError` naming the
    offending file rather than surfacing a raw ``KeyError`` or
    ``JSONDecodeError``.
    """
    path = Path(path)
    payload = load_model_document(path)
    try:
        return model_from_dict(payload)
    except KeyError as exc:
        raise ValueError(
            f"model file {path} is missing required field {exc}"
        ) from exc
    except ValueError as exc:
        raise ValueError(f"cannot load model file {path}: {exc}") from exc
