"""Polynomial baseline (the conclusion's proposed analytic model).

The paper's future work: "we can try to approximate it with other non-linear
functions such as polynomial and logarithmic functions".  This model expands
the configuration parameters into all monomials up to a chosen degree
(including cross terms, which carry the thread-pool interactions) and solves
a linear least-squares problem over the expanded basis.  Unlike the MLP it
is fully analytic — every coefficient is attributable to a specific
parameter interaction — at the cost of a fixed functional form.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Tuple

import numpy as np

from ..preprocessing.scalers import StandardScaler
from .base import WorkloadModel
from .linear import LinearWorkloadModel

__all__ = ["monomial_exponents", "PolynomialWorkloadModel"]


def monomial_exponents(n_inputs: int, degree: int) -> List[Tuple[int, ...]]:
    """All exponent tuples with ``1 <= total degree <= degree``.

    Ordered by total degree then lexicographically, so coefficient vectors
    are stable across fits.  The constant term is excluded (the underlying
    linear solve supplies the intercept).
    """
    if n_inputs < 1:
        raise ValueError(f"n_inputs must be >= 1, got {n_inputs}")
    if degree < 1:
        raise ValueError(f"degree must be >= 1, got {degree}")
    exponents = []
    for total in range(1, degree + 1):
        for combo in itertools.combinations_with_replacement(
            range(n_inputs), total
        ):
            exponent = [0] * n_inputs
            for index in combo:
                exponent[index] += 1
            exponents.append(tuple(exponent))
    return exponents


class PolynomialWorkloadModel(WorkloadModel):
    """Least squares over a full polynomial basis of the inputs.

    Parameters
    ----------
    degree:
        Maximum total degree of the monomials (2 or 3 are typical; higher
        degrees need many samples to stay determined).
    ridge:
        L2 penalty on the expanded-basis coefficients; polynomial bases are
        ill-conditioned, so a small ridge is on by default.
    standardize:
        Standardize inputs before expansion (strongly recommended — powers
        of raw thread counts span many orders of magnitude).
    """

    def __init__(
        self, degree: int = 2, ridge: float = 1e-6, standardize: bool = True
    ):
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        self.degree = int(degree)
        self.standardize = bool(standardize)
        self._solver = LinearWorkloadModel(ridge=ridge)
        self._scaler: Optional[StandardScaler] = None
        self._exponents: Optional[List[Tuple[int, ...]]] = None
        self._n_inputs: Optional[int] = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._solver.is_fitted

    @property
    def n_terms(self) -> int:
        """Number of basis monomials (excluding the intercept)."""
        if self._exponents is None:
            raise RuntimeError("n_terms requested before fit()")
        return len(self._exponents)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "PolynomialWorkloadModel":
        """Expand the basis and solve the linear problem."""
        x, y = self._validate_xy(x, y)
        self._n_inputs = x.shape[1]
        if self.standardize:
            self._scaler = StandardScaler()
            x = self._scaler.fit_transform(x)
        else:
            self._scaler = None
        self._exponents = monomial_exponents(self._n_inputs, self.degree)
        self._solver.fit(self._expand(x), y)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the fitted polynomial."""
        if not self.is_fitted:
            raise RuntimeError("predict() called before fit()")
        x = self._validate_x(x, self._n_inputs)
        if self._scaler is not None:
            x = self._scaler.transform(x)
        return self._solver.predict(self._expand(x))

    def _expand(self, x: np.ndarray) -> np.ndarray:
        columns = []
        for exponent in self._exponents:
            column = np.ones(x.shape[0])
            for feature, power in enumerate(exponent):
                if power:
                    column = column * x[:, feature] ** power
            columns.append(column)
        return np.column_stack(columns)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PolynomialWorkloadModel(degree={self.degree}, "
            f"fitted={self.is_fitted})"
        )
