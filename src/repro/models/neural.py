"""The paper's contribution: the neural-network workload model.

:class:`NeuralWorkloadModel` packages the full Section 3 recipe behind the
common :class:`~repro.models.base.WorkloadModel` interface:

* **pre-processing** (Section 3.1): configuration parameters are always
  standardized; performance indicators are standardized when the model
  jointly approximates more than one of them;
* **model parameters** (Section 3.2): one joint n-to-m MLP by default (the
  paper's choice, believed to "model the synthetic behavior of the
  application more accurately"), or m separate n-to-1 MLPs with
  ``joint=False`` for the Section 3.2 ablation; hidden node counts are the
  caller's to tune — or to hand to :class:`~repro.model_selection.search.GridSearch`;
* **flexibility** (Section 3.3): training stops at a deliberately loose
  error threshold so the model keeps its flexibility for unseen samples.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from ..nn.mlp import MLP
from ..nn.optimizers import Optimizer, get_optimizer
from ..nn.training import ErrorThreshold, Trainer, TrainingResult
from ..preprocessing.scalers import IdentityScaler, Scaler, StandardScaler
from .base import WorkloadModel

__all__ = ["NeuralWorkloadModel"]


class NeuralWorkloadModel(WorkloadModel):
    """MLP-based non-linear performance model.

    Parameters
    ----------
    hidden:
        Hidden-layer sizes, e.g. ``(16,)`` or ``(24, 12)``.
    error_threshold:
        Stop training once the (scaled-space) MSE drops below this — the
        paper's loose-fit control.  ``None`` trains to ``max_epochs``.
    max_epochs:
        Upper bound on training epochs.
    joint:
        ``True`` (paper default): one n-to-m network.  ``False``: m separate
        n-to-1 networks.
    standardize_inputs:
        Standardize configuration parameters (Section 3.1 says this is
        crucial; turning it off reproduces the local-minimum failure in the
        standardization ablation bench).
    standardize_outputs:
        Standardize indicators.  The paper's rule — standardize exactly when
        jointly fitting multiple indicators — is applied when this is left
        as ``None``.
    optimizer:
        Optimizer name/instance (fresh state per fit); default Adam, which
        reaches the paper's loose thresholds far faster than plain SGD while
        optimizing the same objective.  Pass ``"sgd"`` for the paper-exact
        gradient descent.
    learning_rate:
        Learning rate used when ``optimizer`` is given by name.
    hidden_activation:
        Activation for hidden layers (the paper's logistic by default).
    l2:
        Optional weight decay.
    seed:
        Seed controlling parameter initialization (re-randomized per fit).
    """

    def __init__(
        self,
        hidden: Sequence[int] = (16,),
        error_threshold: Optional[float] = 0.02,
        max_epochs: int = 4000,
        joint: bool = True,
        standardize_inputs: bool = True,
        standardize_outputs: Optional[bool] = None,
        optimizer: Union[str, Optimizer] = "adam",
        learning_rate: float = 0.01,
        hidden_activation: str = "logistic",
        l2: float = 0.0,
        seed: Optional[int] = 0,
    ):
        hidden = tuple(int(h) for h in hidden)
        if not hidden or any(h < 1 for h in hidden):
            raise ValueError(f"hidden sizes must be positive, got {hidden}")
        if error_threshold is not None and error_threshold < 0:
            raise ValueError(
                f"error_threshold must be non-negative, got {error_threshold}"
            )
        if max_epochs < 1:
            raise ValueError(f"max_epochs must be >= 1, got {max_epochs}")
        self.hidden = hidden
        self.error_threshold = error_threshold
        self.max_epochs = int(max_epochs)
        self.joint = bool(joint)
        self.standardize_inputs = bool(standardize_inputs)
        self.standardize_outputs = standardize_outputs
        self._optimizer_spec = optimizer
        self.learning_rate = float(learning_rate)
        self.hidden_activation = hidden_activation
        self.l2 = float(l2)
        self.seed = seed
        # fitted state
        self.networks_: List[MLP] = []
        self.x_scaler_: Optional[Scaler] = None
        self.y_scaler_: Optional[Scaler] = None
        self.training_results_: List[TrainingResult] = []
        self._n_inputs: Optional[int] = None
        self._n_outputs: Optional[int] = None

    # ------------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return bool(self.networks_)

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        warm_start_from: Optional["NeuralWorkloadModel"] = None,
        epoch_callback=None,
    ) -> "NeuralWorkloadModel":
        """Train on a sample collection (the Section 2.2 procedure).

        ``warm_start_from`` seeds every network's weights from an
        already-fitted model of identical architecture (same ``hidden``,
        ``joint`` and input/output widths) before descending — the
        continuous-learning retrain path, where the incumbent model is a
        far better starting point than a random initialization.  Scalers
        are still refit on the new sample collection (the Section 3.1
        statistics must describe the data actually trained on).

        ``epoch_callback`` is an optional ``(epoch, history) -> None``
        hook invoked after every training epoch of every per-indicator
        network — the observability layer uses it to emit per-epoch
        spans (:func:`repro.observability.hooks.epoch_span_hook`).
        """
        x, y = self._validate_xy(x, y)
        self._n_inputs = x.shape[1]
        self._n_outputs = y.shape[1]
        self.x_scaler_ = (
            StandardScaler() if self.standardize_inputs else IdentityScaler()
        )
        standardize_y = self.standardize_outputs
        if standardize_y is None:
            # The paper's rule: standardize outputs iff jointly fitting
            # multiple indicators.
            standardize_y = self.joint and self._n_outputs > 1
        self.y_scaler_ = StandardScaler() if standardize_y else IdentityScaler()
        scaled_x = self.x_scaler_.fit_transform(x)
        scaled_y = self.y_scaler_.fit_transform(y)

        self.networks_ = []
        self.training_results_ = []
        targets = (
            [scaled_y]
            if self.joint
            else [scaled_y[:, j : j + 1] for j in range(self._n_outputs)]
        )
        initial_params = self._warm_start_params(
            warm_start_from, len(targets)
        )
        for index, target in enumerate(targets):
            seed = None if self.seed is None else self.seed + index
            network = MLP(
                [self._n_inputs, *self.hidden, target.shape[1]],
                hidden_activation=self.hidden_activation,
                output_activation="identity",
                seed=seed,
            )
            trainer = Trainer(
                network,
                loss="mse",
                optimizer=self._make_optimizer(),
                l2=self.l2,
                seed=seed,
            )
            stopping = (
                [ErrorThreshold(self.error_threshold)]
                if self.error_threshold is not None
                else None
            )
            result = trainer.fit(
                scaled_x,
                target,
                max_epochs=self.max_epochs,
                stopping=stopping,
                callbacks=(
                    [epoch_callback] if epoch_callback is not None else None
                ),
                initial_params=(
                    None if initial_params is None else initial_params[index]
                ),
            )
            self.networks_.append(network)
            self.training_results_.append(result)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict indicators in physical units for configurations ``x``."""
        if not self.is_fitted:
            raise RuntimeError("predict() called before fit()")
        x = self._validate_x(x, self._n_inputs)
        scaled_x = self.x_scaler_.transform(x)
        if self.joint:
            scaled_y = self.networks_[0].predict(scaled_x)
        else:
            scaled_y = np.column_stack(
                [net.predict(scaled_x)[:, 0] for net in self.networks_]
            )
        return self.y_scaler_.inverse_transform(scaled_y)

    # ------------------------------------------------------------------

    def _warm_start_params(
        self,
        source: Optional["NeuralWorkloadModel"],
        n_networks: int,
    ) -> Optional[List[np.ndarray]]:
        """Flat parameter vectors to seed each network with, or ``None``."""
        if source is None:
            return None
        if not source.is_fitted:
            raise ValueError("warm_start_from model is not fitted")
        if (
            tuple(source.hidden) != self.hidden
            or source.joint != self.joint
            or len(source.networks_) != n_networks
            or source._n_inputs != self._n_inputs
            or source._n_outputs != self._n_outputs
        ):
            raise ValueError(
                "warm_start_from requires an identical architecture: "
                f"source hidden={source.hidden} joint={source.joint} "
                f"({source._n_inputs}->{source._n_outputs}) vs "
                f"hidden={self.hidden} joint={self.joint} "
                f"({self._n_inputs}->{self._n_outputs})"
            )
        return [net.get_flat_params().copy() for net in source.networks_]

    def _make_optimizer(self) -> Optimizer:
        """A fresh optimizer instance per network (state is not shared)."""
        if isinstance(self._optimizer_spec, Optimizer):
            spec = self._optimizer_spec
            fresh = type(spec)(learning_rate=spec.schedule)
            # Copy hyper-parameters beyond the learning rate (momentum etc.).
            for key, value in spec.__dict__.items():
                if key not in ("schedule", "step_count") and not key.startswith("_"):
                    setattr(fresh, key, value)
            return fresh
        return get_optimizer(
            self._optimizer_spec, learning_rate=self.learning_rate
        )

    @property
    def total_epochs_(self) -> int:
        """Epochs run across all networks in the last fit."""
        return sum(r.epochs_run for r in self.training_results_)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "joint" if self.joint else "separate"
        return (
            f"NeuralWorkloadModel(hidden={self.hidden}, {mode}, "
            f"threshold={self.error_threshold}, fitted={self.is_fitted})"
        )
