"""Log-linear baseline (the conclusion's "logarithmic functions").

Queueing latencies grow roughly like ``1 / (capacity - load)``, which is far
better captured by logarithms of the configuration parameters than by raw
polynomials.  :class:`LogLinearWorkloadModel` regresses the indicators on
``[x, log(x + shift)]`` features, optionally predicting ``log(y)`` instead
of ``y`` (multiplicative errors suit response times, which span orders of
magnitude between tuned and saturated configurations).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import WorkloadModel
from .linear import LinearWorkloadModel

__all__ = ["LogLinearWorkloadModel"]


class LogLinearWorkloadModel(WorkloadModel):
    """Least squares over linear plus logarithmic features.

    Parameters
    ----------
    log_outputs:
        Fit ``log(y)`` and exponentiate at prediction time.  Requires
        strictly positive targets (true of all five paper indicators except
        a fully-starved effective throughput, which is floored).
    ridge:
        L2 penalty passed to the underlying linear solve.
    """

    #: Floor applied to targets before taking logs in ``log_outputs`` mode.
    _Y_FLOOR = 1e-9

    def __init__(self, log_outputs: bool = True, ridge: float = 1e-8):
        self.log_outputs = bool(log_outputs)
        self._solver = LinearWorkloadModel(ridge=ridge)
        self._shift: Optional[np.ndarray] = None
        self._n_inputs: Optional[int] = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._solver.is_fitted

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogLinearWorkloadModel":
        """Learn the input shift and solve the feature regression."""
        x, y = self._validate_xy(x, y)
        self._n_inputs = x.shape[1]
        # Shift each input so its training minimum maps to 1 (log -> 0).
        self._shift = 1.0 - x.min(axis=0)
        targets = (
            np.log(np.maximum(y, self._Y_FLOOR)) if self.log_outputs else y
        )
        self._solver.fit(self._features(x), targets)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the fitted model (exponentiating in log-output mode)."""
        if not self.is_fitted:
            raise RuntimeError("predict() called before fit()")
        x = self._validate_x(x, self._n_inputs)
        predicted = self._solver.predict(self._features(x))
        return np.exp(predicted) if self.log_outputs else predicted

    def _features(self, x: np.ndarray) -> np.ndarray:
        shifted = np.maximum(x + self._shift, 1e-9)
        return np.column_stack([x, np.log(shifted)])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LogLinearWorkloadModel(log_outputs={self.log_outputs}, "
            f"fitted={self.is_fitted})"
        )
