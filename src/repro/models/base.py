"""The common interface of workload characterization models.

A *model* in the paper's sense is "a multivariate relation between the
controllable parameters and the performance indicators" (Section 1).  Every
model in this package — the neural model and all baselines — exposes the
same contract so the cross-validation driver, the response-surface analyzer
and the configuration advisor are model-agnostic:

``fit(x, y)``
    Approximate the relation from a sample collection.
``predict(x)``
    Predict indicator vectors for (possibly unseen) configurations.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["WorkloadModel"]


class WorkloadModel:
    """Abstract base: n-configuration-parameter to m-indicator regressor."""

    def fit(self, x: np.ndarray, y: np.ndarray) -> "WorkloadModel":
        """Learn the relation from samples; returns self."""
        raise NotImplementedError

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Indicator predictions, shape ``(n_samples, n_outputs)``."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # shared plumbing
    # ------------------------------------------------------------------

    @staticmethod
    def _validate_xy(x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Coerce a training pair into 2-D float arrays and sanity check."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim == 1:
            x = x.reshape(-1, 1)
        if y.ndim == 1:
            y = y.reshape(-1, 1)
        if x.ndim != 2 or y.ndim != 2:
            raise ValueError(
                f"x and y must be 1-D or 2-D, got shapes {x.shape}, {y.shape}"
            )
        if x.shape[0] != y.shape[0]:
            raise ValueError(
                f"x has {x.shape[0]} samples but y has {y.shape[0]}"
            )
        if x.shape[0] == 0:
            raise ValueError("cannot fit a model on zero samples")
        if not np.all(np.isfinite(x)) or not np.all(np.isfinite(y)):
            raise ValueError("training data contains NaN or infinity")
        return x, y

    @staticmethod
    def _validate_x(x: np.ndarray, n_inputs: Optional[int]) -> np.ndarray:
        """Coerce a prediction input into a 2-D float array."""
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x.reshape(1, -1) if n_inputs is None or x.size == n_inputs else x.reshape(-1, 1)
        if x.ndim != 2:
            raise ValueError(f"x must be 1-D or 2-D, got shape {x.shape}")
        if n_inputs is not None and x.shape[1] != n_inputs:
            raise ValueError(
                f"model was fitted on {n_inputs} inputs, got {x.shape[1]}"
            )
        return x
