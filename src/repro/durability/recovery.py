"""Startup recovery: make disk state trustworthy before serving begins.

A crash can die inside any of the durability windows — between a version
file and its manifest entry (``store.save``), between a registry deploy
and the promoted pointer (``store.promote``), or mid-append in a journal
segment.  :class:`RecoveryManager` runs once at startup and walks all of
it back to a consistent state:

1. consume the :class:`~repro.durability.integrity.CleanShutdownMarker`
   (absent marker = the last process died hard, so assume torn state);
2. for every model in the :class:`~repro.lifecycle.store.VersionedModelStore`,
   re-verify checksums and repair the manifest from the surviving
   version files (corrupt versions are quarantined, never deleted);
3. verify the *deployed* registry artifacts; a torn or digest-mismatched
   artifact is quarantined and the newest verified-good stored version is
   redeployed in its place;
4. repair the observation journal's torn tail and account what survived.

Everything is reported as a :class:`RecoveryReport`, mirrored into the
serving metrics (``recoveries_total``, ``journal_records_*``, quarantine
and rollback counters), and traced as ``recovery.*`` spans.

The manager duck-types its collaborators (anything with the
``VersionedModelStore`` repair surface works) and imports nothing from
:mod:`repro.lifecycle` or :mod:`repro.serving` at module level, keeping
the durability package import-cycle-free.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Union

from .integrity import (
    CleanShutdownMarker,
    quarantine_file,
    sha256_file,
    verify_file,
)
from .journal import replay_journal

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..lifecycle.store import VersionedModelStore
    from ..observability.trace import Tracer
    from ..serving.metrics import ServingMetrics

__all__ = ["RecoveryManager", "RecoveryReport"]


@dataclass
class RecoveryReport:
    """Everything one startup recovery pass found and fixed."""

    clean_shutdown: bool = False
    models: Dict[str, dict] = field(default_factory=dict)
    redeployed: Dict[str, int] = field(default_factory=dict)
    quarantined_artifacts: List[str] = field(default_factory=list)
    journal: dict = field(default_factory=dict)
    duration_s: float = 0.0

    @property
    def repaired_anything(self) -> bool:
        return bool(
            self.redeployed
            or self.quarantined_artifacts
            or self.journal.get("dropped")
            or any(r.get("repaired") for r in self.models.values())
        )

    def to_dict(self) -> dict:
        return {
            "clean_shutdown": self.clean_shutdown,
            "models": dict(self.models),
            "redeployed": dict(self.redeployed),
            "quarantined_artifacts": list(self.quarantined_artifacts),
            "journal": dict(self.journal),
            "repaired_anything": self.repaired_anything,
            "duration_s": self.duration_s,
        }


class RecoveryManager:
    """One-shot startup recovery over store, registry dir, and journal.

    Parameters
    ----------
    store:
        Optional versioned model store (anything exposing
        ``repair_manifest`` / ``redeploy_verified`` / ``promoted_version``
        and a ``root`` path).  ``None`` skips store + artifact repair.
    registry_dir:
        The serving registry directory whose deployed ``<name>.json``
        artifacts are verified (required for artifact repair).
    journal_dir:
        Optional observation-journal directory whose torn tail is
        repaired and accounted.
    marker:
        Optional :class:`CleanShutdownMarker` (or a path for one)
        consumed to learn whether the previous shutdown was graceful.
    metrics:
        Optional serving metrics mirror.
    tracer:
        Optional tracer; the pass is recorded as a ``recovery.run`` span
        with per-model ``recovery.store.repair`` /
        ``recovery.artifact.redeploy`` children.
    """

    def __init__(
        self,
        store: Optional["VersionedModelStore"] = None,
        registry_dir: Optional[Union[str, Path]] = None,
        journal_dir: Optional[Union[str, Path]] = None,
        marker: Optional[Union[CleanShutdownMarker, str, Path]] = None,
        metrics: Optional["ServingMetrics"] = None,
        tracer: Optional["Tracer"] = None,
    ):
        self.store = store
        self.registry_dir = (
            None if registry_dir is None else Path(registry_dir)
        )
        self.journal_dir = None if journal_dir is None else Path(journal_dir)
        if marker is not None and not isinstance(marker, CleanShutdownMarker):
            marker = CleanShutdownMarker(marker)
        self.marker = marker
        self.metrics = metrics
        self.tracer = tracer

    # ------------------------------------------------------------------

    def run(self) -> RecoveryReport:
        """Execute the full recovery pass; returns what it found/fixed."""
        started = time.monotonic()
        report = RecoveryReport()
        if self.marker is not None:
            report.clean_shutdown = self.marker.consume()
        if self.store is not None:
            for name in self._model_names():
                report.models[name] = self._repair_model(name, report)
        if self.journal_dir is not None:
            recovery = replay_journal(self.journal_dir, repair=True)
            report.journal = recovery.to_dict()
            if self.metrics is not None:
                if recovery.recovered:
                    self.metrics.record_journal_recovered(recovery.recovered)
                if recovery.dropped:
                    self.metrics.record_journal_dropped(recovery.dropped)
        report.duration_s = time.monotonic() - started
        if self.metrics is not None:
            self.metrics.record_recovery()
        self._record_span(
            "recovery.run",
            duration_s=report.duration_s,
            clean_shutdown=report.clean_shutdown,
            models=len(report.models),
            redeployed=len(report.redeployed),
            quarantined_artifacts=len(report.quarantined_artifacts),
            journal_recovered=report.journal.get("recovered", 0),
            journal_dropped=report.journal.get("dropped", 0),
            repaired_anything=report.repaired_anything,
        )
        return report

    # ------------------------------------------------------------------

    def _model_names(self) -> List[str]:
        """Model directories under the store root (quarantine excluded)."""
        root = Path(self.store.root)
        if not root.is_dir():
            return []
        names = []
        for entry in sorted(root.iterdir()):
            if not entry.is_dir() or entry.name.startswith("."):
                continue
            if entry.name == "quarantine":
                continue
            if (entry / "manifest.json").is_file() or any(
                entry.glob("v*.json")
            ):
                names.append(entry.name)
        return names

    def _repair_model(self, name: str, report: RecoveryReport) -> dict:
        """Repair one model's manifest, then its deployed artifact."""
        repair = self.store.repair_manifest(name)
        self._record_span(
            "recovery.store.repair",
            model=name,
            repaired=repair.get("repaired", False),
            quarantined=len(repair.get("quarantined", ())),
            recovered=len(repair.get("recovered", ())),
            dropped=len(repair.get("dropped", ())),
        )
        if self.registry_dir is None:
            return repair
        target = self.registry_dir / f"{name}.json"
        deployed_ok = self._deployed_artifact_ok(target)
        if deployed_ok:
            # The artifact is sound — but is it the *promoted* one?  A
            # crash inside promote() can die after the registry deploy
            # but before the manifest commit; the manifest is the commit
            # point, so a valid-but-uncommitted deploy is rolled back.
            expected = self._promoted_digest(name)
            if expected is None or sha256_file(target) == expected:
                return repair
        elif target.is_file():
            # Corrupt (not merely uncommitted) artifacts are evidence:
            # quarantine before redeploying over the path.
            moved = quarantine_file(target)
            if moved is not None:
                report.quarantined_artifacts.append(str(moved))
                if self.metrics is not None:
                    self.metrics.record_quarantine()
        redeployed = self.store.redeploy_verified(name, self.registry_dir)
        if redeployed is not None:
            report.redeployed[name] = redeployed
            if self.metrics is not None:
                self.metrics.record_auto_rollback()
            self._record_span(
                "recovery.artifact.redeploy", model=name, version=redeployed
            )
        repair["redeployed"] = redeployed
        return repair

    def _promoted_digest(self, name: str) -> Optional[str]:
        """The manifest-recorded sha256 of the promoted version, if known."""
        try:
            version = self.store.promoted_version(name)
            if version is None:
                return None
            for entry in self.store.list_versions(name):
                if entry.get("version") == version:
                    return entry.get("sha256")
        except Exception:  # noqa: BLE001 - recovery must not die mid-pass
            pass
        return None

    def _deployed_artifact_ok(self, target: Path) -> bool:
        """Whether the deployed registry artifact is present and sound."""
        if not target.is_file():
            return False
        verdict, _, _ = verify_file(target)
        if verdict is False:
            if self.metrics is not None:
                self.metrics.record_verify_failure()
            return False
        # Unverified (pre-durability) artifacts must at least parse.
        try:
            json.loads(target.read_text())
        except (ValueError, OSError):
            return False
        return True

    def _record_span(self, name: str, duration_s: float = 0.0, **attributes):
        if self.tracer is None:
            return
        self.tracer.record_span(
            name,
            duration_s=duration_s,
            attributes={k: v for k, v in attributes.items() if v is not None},
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RecoveryManager(store={self.store!r}, "
            f"registry_dir={str(self.registry_dir)!r}, "
            f"journal_dir={str(self.journal_dir)!r})"
        )
