"""Crash safety: artifact integrity, write-ahead journaling, recovery.

The serving + lifecycle stack (PRs 1–4) survives *runtime* faults; this
package makes its *state* survive a kill at any instant.
:mod:`~repro.durability.integrity` gives every model artifact a sha256
identity (sidecars, verify-on-load, quarantine, auto-rollback via
:class:`IntegrityGuard`), :mod:`~repro.durability.journal` replaces the
observation log's fragile JSONL spill with a CRC32-framed segmented
write-ahead journal with torn-tail recovery, and
:mod:`~repro.durability.recovery` runs the one-shot startup
:class:`RecoveryManager` that repairs manifests, redeploys the last
verified-good version over corrupt artifacts, and replays the journal —
so "crash then restart" is an invariant held by tests, not an incident.

This package deliberately imports nothing from :mod:`repro.models`,
:mod:`repro.lifecycle`, or :mod:`repro.serving` at module level: those
layers import *us* (``save_model`` writes sidecars, the store records
digests, the registry verifies loads), and the recovery manager
duck-types the store it repairs.
"""

from .integrity import (
    ArtifactIntegrityError,
    CleanShutdownMarker,
    IntegrityGuard,
    checksum_path,
    quarantine_file,
    read_checksum,
    sha256_bytes,
    sha256_file,
    verify_file,
    write_checksum,
)
from .journal import (
    FRAME_HEADER,
    Journal,
    JournalRecovery,
    read_segment,
    replay_journal,
)
from .recovery import RecoveryManager, RecoveryReport

__all__ = [
    "ArtifactIntegrityError",
    "CleanShutdownMarker",
    "IntegrityGuard",
    "checksum_path",
    "quarantine_file",
    "read_checksum",
    "sha256_bytes",
    "sha256_file",
    "verify_file",
    "write_checksum",
    "FRAME_HEADER",
    "Journal",
    "JournalRecovery",
    "read_segment",
    "replay_journal",
    "RecoveryManager",
    "RecoveryReport",
]
