"""Write-ahead journal: CRC32 + length framed records in rotating segments.

The :class:`~repro.lifecycle.observations.ObservationLog`'s plain-JSONL
spill survives a *clean* restart but not a crash: a process killed
mid-``write`` leaves a half line that poisons everything after it, and
there is no way to tell "truncated tail" from "corrupt middle".  This
journal is the crash-safe replacement:

* every record is framed ``<length:u32><crc32:u32><payload>``
  (little-endian), so replay can prove each record intact before using it;
* records land in numbered segment files (``seg-00000001.wal``) rotated at
  ``max_segment_bytes``, bounding the blast radius of any one bad file;
* :func:`replay_journal` walks the segments oldest-first, stops each
  segment at the first bad frame (torn-tail recovery: truncate there and
  count what was dropped), and yields the surviving payloads;
* :meth:`Journal.compact` rewrites the live records into one fresh
  segment — crash-safe because the merged segment is complete before any
  old segment is removed, and leftovers of an interrupted compaction are
  ignored by replay.

Durability is tunable: ``sync="buffered"`` (default) coalesces frames in
user space and may lose the OS/user-space tail on a crash — exactly the
"at most the unsynced tail" contract — while ``"flush"`` and ``"fsync"``
push each record further down the stack for callers who want a harder
guarantee than they want throughput.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..reliability.faults import FaultPlan

__all__ = [
    "FRAME_HEADER",
    "Journal",
    "JournalRecovery",
    "read_segment",
    "replay_journal",
]

#: ``<length:u32><crc32:u32>`` — little-endian, 8 bytes per record.
FRAME_HEADER = struct.Struct("<II")

#: Segment filename template / glob.
_SEGMENT_FMT = "seg-%08d.wal"
_SEGMENT_GLOB = "seg-*.wal"

#: Refuse frames claiming more than this many payload bytes (a corrupt
#: length field must not allocate gigabytes or swallow whole segments).
MAX_RECORD_BYTES = 16 << 20

SYNC_MODES = ("buffered", "flush", "fsync")

# The fault sites, duplicated as plain strings so this module stays
# importable without the reliability package (it only *consults* a plan).
_SITE_APPEND = "journal.append"
_SITE_COMPACT = "journal.compact"


# Bound once: Journal.append is a serving-hot-path method.
_PACK = FRAME_HEADER.pack
_CRC32 = zlib.crc32

#: In ``"buffered"`` mode frames coalesce in a small user-space list and
#: reach the file handle in chunks of roughly this many bytes.  The loss
#: bound is unchanged — ``BufferedWriter`` holds an 8 KiB user-space
#: buffer either way — but one ``write()`` per ~20 records costs less
#: than one per record.
_PENDING_LIMIT = 8192


def frame_record(payload: bytes) -> bytes:
    """One framed record: header (length + CRC32 of payload) + payload."""
    return _PACK(len(payload), _CRC32(payload)) + payload


def _segment_index(path: Path) -> Optional[int]:
    name = path.name
    if not (name.startswith("seg-") and name.endswith(".wal")):
        return None
    try:
        return int(name[4:-4])
    except ValueError:
        return None


@dataclass
class JournalRecovery:
    """What a replay (or startup repair) salvaged from a journal directory."""

    records: List[bytes] = field(default_factory=list)
    recovered: int = 0
    dropped: int = 0
    bytes_dropped: int = 0
    truncated_segments: List[str] = field(default_factory=list)
    segments: int = 0

    def to_dict(self) -> dict:
        return {
            "recovered": self.recovered,
            "dropped": self.dropped,
            "bytes_dropped": self.bytes_dropped,
            "truncated_segments": list(self.truncated_segments),
            "segments": self.segments,
        }


def read_segment(
    path: Union[str, Path], repair: bool = False
) -> Tuple[List[bytes], int, int]:
    """Read one segment; returns ``(payloads, dropped, bytes_dropped)``.

    Reading stops at the first bad frame — short header, absurd or
    overrunning length, or CRC mismatch — because nothing after a torn
    write can be trusted to be frame-aligned.  With ``repair`` the file
    is truncated at that offset so future appends continue from a clean
    tail.
    """
    path = Path(path)
    data = path.read_bytes()
    payloads: List[bytes] = []
    offset = 0
    size = len(data)
    good_end = 0
    while offset + FRAME_HEADER.size <= size:
        length, crc = FRAME_HEADER.unpack_from(data, offset)
        start = offset + FRAME_HEADER.size
        end = start + length
        if length > MAX_RECORD_BYTES or end > size:
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break
        payloads.append(payload)
        offset = end
        good_end = end
    bytes_dropped = size - good_end
    dropped = 1 if bytes_dropped else 0
    if repair and bytes_dropped:
        with open(path, "rb+") as handle:
            handle.truncate(good_end)
            handle.flush()
            os.fsync(handle.fileno())
    return payloads, dropped, bytes_dropped


def _segment_paths(directory: Path) -> List[Path]:
    paths = [
        p for p in directory.glob(_SEGMENT_GLOB)
        if _segment_index(p) is not None
    ]
    return sorted(paths, key=_segment_index)


def replay_journal(
    directory: Union[str, Path], repair: bool = False
) -> JournalRecovery:
    """Replay every segment oldest-first with torn-tail recovery.

    Returns a :class:`JournalRecovery` carrying the surviving payloads
    plus recovered/dropped accounting.  ``repair`` truncates each torn
    segment at its last good record (the startup path); without it the
    files are left untouched (the read-only path).
    """
    directory = Path(directory)
    recovery = JournalRecovery()
    if not directory.is_dir():
        return recovery
    for path in _segment_paths(directory):
        payloads, dropped, bytes_dropped = read_segment(path, repair=repair)
        recovery.records.extend(payloads)
        recovery.recovered += len(payloads)
        recovery.dropped += dropped
        recovery.bytes_dropped += bytes_dropped
        recovery.segments += 1
        if bytes_dropped:
            recovery.truncated_segments.append(path.name)
    return recovery


class Journal:
    """Append-only framed record log across rotating segment files.

    Parameters
    ----------
    directory:
        Where the ``seg-*.wal`` files live (created on demand).  Opening
        a journal repairs the last segment's torn tail, if any, so
        appends always continue from a verified frame boundary.
    max_segment_bytes:
        Rotate to a fresh segment once the current one reaches this size.
    sync:
        ``"buffered"`` (default; cheapest — the unsynced tail is the
        accepted loss bound), ``"flush"`` (user-space buffer pushed to
        the OS per record), or ``"fsync"`` (per-record fsync).
    faults:
        Optional :class:`~repro.reliability.faults.FaultPlan` consulted
        at ``journal.append`` (after each record write, with the segment
        path as context) and ``journal.compact`` (between writing the
        merged segment and removing the old ones).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        max_segment_bytes: int = 4 << 20,
        sync: str = "buffered",
        faults: Optional["FaultPlan"] = None,
    ):
        if max_segment_bytes < FRAME_HEADER.size + 1:
            raise ValueError(
                f"max_segment_bytes must be >= {FRAME_HEADER.size + 1}, "
                f"got {max_segment_bytes}"
            )
        if sync not in SYNC_MODES:
            raise ValueError(
                f"sync must be one of {SYNC_MODES}, got {sync!r}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_segment_bytes = int(max_segment_bytes)
        self.sync = sync
        self._buffered = sync == "buffered"
        self.faults = faults
        self.records_written = 0
        self.tail_repaired_bytes = 0
        self._handle = None
        self._write = None
        self._current: Optional[Path] = None
        self._current_size = 0
        self._pending: List[bytes] = []
        self._pending_bytes = 0
        existing = _segment_paths(self.directory)
        self._next_index = (
            _segment_index(existing[-1]) + 1 if existing else 1
        )
        if existing:
            # Continue the last segment — after proving its tail is clean.
            tail = existing[-1]
            _, _, bytes_dropped = read_segment(tail, repair=True)
            self.tail_repaired_bytes = bytes_dropped
            self._open_segment(tail)
        else:
            self._open_segment(self._new_segment_path())

    # ------------------------------------------------------------------

    @property
    def faults(self) -> Optional["FaultPlan"]:
        return self._faults

    @faults.setter
    def faults(self, plan: Optional["FaultPlan"]) -> None:
        self._faults = plan
        # One check on the hot path covers both rare branches (per-record
        # sync and fault injection).
        self._slow_path = not self._buffered or plan is not None

    def _new_segment_path(self) -> Path:
        path = self.directory / (_SEGMENT_FMT % self._next_index)
        self._next_index += 1
        return path

    def _open_segment(self, path: Path) -> None:
        self._handle = open(path, "ab")
        self._write = self._handle.write
        self._current = path
        self._current_size = self._handle.tell()

    @property
    def write_through(self) -> bool:
        """Whether each append reaches the handle immediately.

        True under per-record sync (``"flush"``/``"fsync"``) or when a
        fault plan is armed — the modes where callers must *not* coalesce
        records in user space, because each append carries a durability
        or fault-injection obligation of its own.
        """
        return self._slow_path

    @property
    def current_segment(self) -> Optional[Path]:
        """The segment new records append to (``None`` once closed)."""
        return self._current

    def segment_paths(self) -> List[Path]:
        """Every segment on disk, oldest first."""
        return _segment_paths(self.directory)

    # ------------------------------------------------------------------

    def append(self, payload: bytes) -> None:
        """Append one framed record (rotating first if the segment is full).

        This is the observation hot path (one call per served request
        when journaling is on), hence the flat, local-bound body: the
        whole method must stay within a few percent of a bare buffered
        ``write``.
        """
        if self._write is None:
            raise ValueError("append() on a closed Journal")
        frame = _PACK(len(payload), _CRC32(payload)) + payload
        size = self._current_size + len(frame)
        if size > self.max_segment_bytes and size != len(frame):
            self.rotate()
            size = len(frame)
        self._current_size = size
        self.records_written += 1
        if self._slow_path:
            # Per-record sync and fault injection both need the frame on
            # the handle now, in order — drain anything coalesced first.
            self._drain_pending()
            self._write(frame)
            if not self._buffered:
                self._handle.flush()
                if self.sync == "fsync":
                    os.fsync(self._handle.fileno())
            if self._faults is not None:
                self._faults.fire(_SITE_APPEND, path=self._current)
            return
        pending = self._pending
        pending.append(frame)
        total = self._pending_bytes + len(frame)
        if total >= _PENDING_LIMIT:
            self._write(b"".join(pending))
            pending.clear()
            total = 0
        self._pending_bytes = total

    def _drain_pending(self) -> None:
        if self._pending_bytes:
            self._write(b"".join(self._pending))
            self._pending.clear()
            self._pending_bytes = 0

    def flush(self) -> None:
        """Push the user-space buffers to the OS."""
        if self._handle is not None:
            self._drain_pending()
            self._handle.flush()

    def sync_to_disk(self) -> None:
        """Flush and fsync the current segment."""
        if self._handle is not None:
            self._drain_pending()
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def rotate(self) -> Path:
        """Start a fresh segment; returns its path."""
        if self._handle is None:
            raise ValueError("rotate() on a closed Journal")
        self._drain_pending()
        self._handle.flush()
        self._handle.close()
        self._open_segment(self._new_segment_path())
        return self._current

    def compact(self) -> JournalRecovery:
        """Merge every sealed segment's live records into one segment.

        The merged segment is written (and fsynced) under a temporary
        name first, the old segments are removed, and only then is it
        renamed into the numbered sequence — a crash at any point leaves
        either the old segments (merge incomplete, ``.tmp`` leftovers are
        invisible to replay) or the merged data.  The current segment
        keeps receiving appends untouched.
        """
        if self._handle is None:
            raise ValueError("compact() on a closed Journal")
        sealed = [p for p in self.segment_paths() if p != self._current]
        recovery = JournalRecovery()
        if not sealed:
            return recovery
        for path in sealed:
            payloads, dropped, bytes_dropped = read_segment(path)
            recovery.records.extend(payloads)
            recovery.recovered += len(payloads)
            recovery.dropped += dropped
            recovery.bytes_dropped += bytes_dropped
            recovery.segments += 1
            if bytes_dropped:
                recovery.truncated_segments.append(path.name)
        merged_name = sealed[0].name
        tmp = self.directory / (merged_name + ".tmp")
        with open(tmp, "wb") as handle:
            for payload in recovery.records:
                handle.write(frame_record(payload))
            handle.flush()
            os.fsync(handle.fileno())
        if self.faults is not None:
            self.faults.fire(_SITE_COMPACT, path=tmp)
        for path in sealed[1:]:
            os.unlink(path)
        os.replace(tmp, sealed[0])
        return recovery

    def close(self) -> None:
        """Flush and close the current segment."""
        if self._handle is not None:
            self._drain_pending()
            self._handle.flush()
            self._handle.close()
            self._handle = None
            self._write = None
            self._current = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def replay(self) -> Iterator[bytes]:
        """The surviving payloads, oldest first (flushes first so the
        current segment's buffered tail is included)."""
        self.flush()
        return iter(replay_journal(self.directory).records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Journal({str(self.directory)!r}, "
            f"segments={len(self.segment_paths())}, "
            f"written={self.records_written})"
        )
