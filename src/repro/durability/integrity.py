"""Artifact integrity: sha256 sidecars, quarantine, and auto-rollback.

A model artifact is one JSON file; a torn or bit-rotted artifact is a
model that silently predicts garbage (or a registry that crashes every
hot reload).  This module gives every artifact a verifiable identity:

* :func:`write_checksum` / :func:`read_checksum` manage a ``<file>.sha256``
  sidecar next to each artifact (written by
  :func:`repro.models.persistence.save_model` and by
  :meth:`VersionedModelStore promotions
  <repro.lifecycle.store.VersionedModelStore.promote>`);
* :func:`verify_file` compares the file's bytes against the sidecar (or
  an explicitly expected digest, e.g. the one recorded in a store
  manifest);
* :func:`quarantine_file` moves a corrupt artifact (plus its sidecar)
  into a ``quarantine/`` subdirectory instead of deleting evidence;
* :class:`IntegrityGuard` packages verify + quarantine + an optional
  rollback hook for the serving registry: when a freshly promoted
  artifact fails verification at hot reload, the guard quarantines it,
  asks the version store to redeploy the last verified-good version, and
  lets the registry retry — the serving path self-heals instead of
  erroring until a human intervenes;
* :class:`CleanShutdownMarker` is the one-byte contract between graceful
  drain and the next startup's :class:`~repro.durability.recovery.RecoveryManager`.

Verification tolerates the benign race between an artifact replace and
its sidecar replace (both are individually atomic, the pair is not) by
re-reading once before declaring a mismatch.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..observability.trace import Tracer
    from ..serving.metrics import ServingMetrics

__all__ = [
    "ArtifactIntegrityError",
    "sha256_bytes",
    "sha256_file",
    "checksum_path",
    "write_checksum",
    "read_checksum",
    "verify_file",
    "quarantine_file",
    "IntegrityGuard",
    "CleanShutdownMarker",
]

#: Suffix of the digest sidecar written next to each artifact.
CHECKSUM_SUFFIX = ".sha256"

#: Subdirectory corrupt artifacts are moved into (never deleted).
QUARANTINE_DIR = "quarantine"


class ArtifactIntegrityError(ValueError):
    """An artifact's bytes do not match its recorded checksum.

    Subclasses :class:`ValueError` so every existing "cannot load model
    file" handler treats an integrity failure as the load failure it is.
    """

    def __init__(self, path: Union[str, Path], actual: str, expected: str):
        self.path = Path(path)
        self.actual = actual
        self.expected = expected
        super().__init__(
            f"artifact {self.path} failed integrity verification: "
            f"sha256 {actual[:12]}… != recorded {expected[:12]}…"
        )


def sha256_bytes(data: bytes) -> str:
    """Hex sha256 of a byte string."""
    return hashlib.sha256(data).hexdigest()


def sha256_file(path: Union[str, Path]) -> str:
    """Hex sha256 of a file's bytes (raises ``OSError`` if unreadable)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def checksum_path(path: Union[str, Path]) -> Path:
    """The sidecar path recording ``path``'s digest."""
    path = Path(path)
    return path.with_name(path.name + CHECKSUM_SUFFIX)


def _atomic_write(path: Path, payload: bytes) -> None:
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def write_checksum(
    path: Union[str, Path], digest: Optional[str] = None
) -> str:
    """Record ``path``'s sha256 in its sidecar (atomically); returns it."""
    path = Path(path)
    if digest is None:
        digest = sha256_file(path)
    _atomic_write(checksum_path(path), (digest + "\n").encode("ascii"))
    return digest


def read_checksum(path: Union[str, Path]) -> Optional[str]:
    """The recorded digest for ``path``, or ``None`` without a sidecar.

    Read with raw ``os`` calls: this sits on the registry's
    verify-on-load path, where a buffered-IO open costs more than the
    sidecar's 65 bytes (a hex digest is 64 chars; 256 covers any
    ``sha256sum``-style "digest  filename" line).
    """
    path = Path(path)
    try:
        fd = os.open(str(path.parent / (path.name + CHECKSUM_SUFFIX)), os.O_RDONLY)
    except OSError:
        return None
    try:
        text = os.read(fd, 256).decode("ascii", "replace").strip()
    finally:
        os.close(fd)
    # Tolerate `sha256sum`-style "digest  filename" lines.
    digest = text.split()[0] if text else ""
    return digest.lower() or None


def verify_file(
    path: Union[str, Path],
    expected: Optional[str] = None,
    retries: int = 1,
    retry_delay_s: float = 0.02,
    payload: Optional[bytes] = None,
) -> Tuple[Optional[bool], str, Optional[str]]:
    """Check ``path`` against its recorded digest.

    Returns ``(verdict, actual, expected)`` where ``verdict`` is ``True``
    (match), ``False`` (mismatch), or ``None`` (no digest recorded —
    a pre-durability artifact).  ``expected=None`` reads the sidecar.

    ``payload`` lets a caller that already holds the file's bytes (the
    registry load path) verify without a second read; it is only trusted
    on the first attempt — retries always go back to disk.

    A mismatch is re-read ``retries`` times before being believed: an
    artifact and its sidecar are each replaced atomically but not as a
    pair, so a reader can catch the microsecond between the two writes.
    """
    path = Path(path)
    sidecar = expected is None
    for attempt in range(retries + 1):
        recorded = read_checksum(path) if sidecar else expected
        if payload is not None and attempt == 0:
            actual = sha256_bytes(payload)
        else:
            actual = sha256_file(path)
        if recorded is None:
            return None, actual, None
        if actual == recorded.lower():
            return True, actual, recorded
        if attempt < retries:
            time.sleep(retry_delay_s)
    return False, actual, recorded


def quarantine_file(
    path: Union[str, Path],
    quarantine_dir: Optional[Union[str, Path]] = None,
) -> Optional[Path]:
    """Move a corrupt artifact (and sidecar) aside; returns its new home.

    The file lands in ``quarantine_dir`` (default: a ``quarantine/``
    subdirectory next to it) under a collision-free numbered name, so
    repeated corruption of the same artifact keeps every specimen.
    Returns ``None`` when ``path`` no longer exists.
    """
    path = Path(path)
    if not path.exists():
        return None
    directory = (
        path.parent / QUARANTINE_DIR
        if quarantine_dir is None
        else Path(quarantine_dir)
    )
    directory.mkdir(parents=True, exist_ok=True)
    for counter in range(10_000):
        target = directory / f"{path.name}.quarantined-{counter:04d}"
        if not target.exists():
            break
    os.replace(path, target)
    sidecar = checksum_path(path)
    if sidecar.exists():
        try:
            os.replace(sidecar, checksum_path(target))
        except OSError:
            pass
    return target


class IntegrityGuard:
    """Verify-on-load, quarantine, and auto-rollback for a registry.

    Parameters
    ----------
    metrics:
        Optional :class:`~repro.serving.metrics.ServingMetrics` whose
        ``artifact_verify_failures_total`` / ``artifacts_quarantined_total``
        / ``auto_rollbacks_total`` counters mirror what the guard does.
    rollback:
        Optional ``(model_name) -> bool`` hook that restores a known-good
        artifact at the model's registry path — typically
        ``lambda name: store.redeploy_verified(name, registry_dir) is not
        None``.  Without it, corruption is quarantined but not healed.
    quarantine_dir:
        Where corrupt artifacts are moved (default: ``quarantine/`` next
        to each artifact).
    require_checksum:
        When ``True``, an artifact *without* a sidecar fails verification
        instead of passing unverified — for stores where every artifact
        is known to carry one.
    tracer:
        Optional tracer; quarantines and rollbacks are recorded as
        ``recovery.quarantine`` / ``recovery.rollback`` spans.
    """

    def __init__(
        self,
        metrics: Optional["ServingMetrics"] = None,
        rollback: Optional[Callable[[str], bool]] = None,
        quarantine_dir: Optional[Union[str, Path]] = None,
        require_checksum: bool = False,
        tracer: Optional["Tracer"] = None,
    ):
        self.metrics = metrics
        self.rollback = rollback
        self.quarantine_dir = (
            None if quarantine_dir is None else Path(quarantine_dir)
        )
        self.require_checksum = bool(require_checksum)
        self.tracer = tracer
        self.verify_failures = 0
        self.quarantined = 0
        self.auto_rollbacks = 0
        # sidecar path -> (sidecar mtime_ns, digest).  A sidecar is only
        # ever replaced atomically (new inode, new mtime), so an
        # unchanged mtime proves the cached digest is still the recorded
        # one and one stat() replaces the open/read/close per load.
        self._digest_cache: Dict[str, Tuple[int, str]] = {}

    # ------------------------------------------------------------------

    def verify(
        self, path: Union[str, Path], payload: Optional[bytes] = None
    ) -> Optional[str]:
        """Verify one artifact; returns its digest (``None`` = unverified).

        ``payload`` skips the hashing read when the caller already holds
        the file's bytes.  Raises :class:`ArtifactIntegrityError` on a
        mismatch (after the race-tolerant re-read) and counts the
        failure.
        """
        if payload is not None:
            # Hot-reload fast path: with the bytes in hand, an unchanged
            # sidecar (by mtime) pins the expected digest, so the whole
            # verify is one stat() plus the sha256 of the payload.
            sidecar = str(path) + CHECKSUM_SUFFIX
            try:
                mtime_ns = os.stat(sidecar).st_mtime_ns
            except OSError:
                mtime_ns = None
            if mtime_ns is not None:
                cached = self._digest_cache.get(sidecar)
                if cached is not None and cached[0] == mtime_ns:
                    actual = sha256_bytes(payload)
                    if actual == cached[1]:
                        return actual
                    # Stale bytes or real corruption: fall through to the
                    # race-tolerant full verification before believing it.
            verdict, actual, expected = verify_file(path, payload=payload)
            if verdict and mtime_ns is not None:
                self._digest_cache[sidecar] = (mtime_ns, actual)
        else:
            verdict, actual, expected = verify_file(path)
        if verdict is None:
            if self.require_checksum:
                self._count_failure()
                raise ArtifactIntegrityError(path, actual, "<missing>")
            return None
        if not verdict:
            self._count_failure()
            raise ArtifactIntegrityError(path, actual, expected)
        return actual

    def handle_corrupt(
        self,
        name: str,
        path: Union[str, Path],
        error: Optional[BaseException] = None,
    ) -> bool:
        """Quarantine a corrupt artifact and try to restore a good one.

        Returns ``True`` when the rollback hook redeployed a verified
        artifact at ``path`` (the caller should retry its load), ``False``
        when there is nothing to heal with.
        """
        moved = quarantine_file(path, self.quarantine_dir)
        if moved is not None:
            self.quarantined += 1
            if self.metrics is not None:
                self.metrics.record_quarantine()
            self._record_span(
                "recovery.quarantine",
                model=name,
                quarantined_to=str(moved),
                error=None if error is None else repr(error),
            )
        if self.rollback is None:
            return False
        try:
            restored = bool(self.rollback(name))
        except Exception:  # noqa: BLE001 - healing must never raise anew
            restored = False
        if restored:
            self.auto_rollbacks += 1
            if self.metrics is not None:
                self.metrics.record_auto_rollback()
            self._record_span("recovery.rollback", model=name)
        return restored

    # ------------------------------------------------------------------

    def _count_failure(self) -> None:
        self.verify_failures += 1
        if self.metrics is not None:
            self.metrics.record_verify_failure()

    def _record_span(self, name: str, **attributes) -> None:
        if self.tracer is None:
            return
        self.tracer.record_span(
            name,
            duration_s=0.0,
            attributes={k: v for k, v in attributes.items() if v is not None},
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IntegrityGuard(verify_failures={self.verify_failures}, "
            f"quarantined={self.quarantined}, "
            f"auto_rollbacks={self.auto_rollbacks})"
        )


class CleanShutdownMarker:
    """The drain → next-startup handshake: a marker file.

    Graceful shutdown :meth:`write`\\ s it after flushing journals and
    draining in-flight work; the next startup :meth:`consume`\\ s it.  A
    missing marker at startup means the last process died hard, and
    recovery should assume torn state.
    """

    FILENAME = ".clean_shutdown"

    def __init__(self, path: Union[str, Path]):
        path = Path(path)
        # A directory is a natural argument; the marker lives inside it.
        if path.is_dir() or not path.suffix and path.name != self.FILENAME:
            path = path / self.FILENAME
        self.path = path

    def write(self, payload: Optional[dict] = None) -> Path:
        """Record a clean shutdown (atomic)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        body = dict(payload or {})
        body.setdefault("clean", True)
        body.setdefault("wall_time", time.time())
        _atomic_write(self.path, json.dumps(body).encode())
        return self.path

    def consume(self) -> bool:
        """Whether the previous shutdown was clean; removes the marker."""
        try:
            self.path.unlink()
        except OSError:
            return False
        return True

    def present(self) -> bool:
        """Peek without consuming."""
        return self.path.is_file()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CleanShutdownMarker({str(self.path)!r})"
