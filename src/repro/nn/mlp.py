"""The multilayer perceptron (paper Section 2.2, Figure 3).

An :class:`MLP` maps an ``n``-dimensional configuration space to an
``m``-dimensional performance-indicator space through one or more hidden
layers of squashing perceptrons and a linear output layer (regression needs
unbounded outputs, so the output activation defaults to identity).

The class owns the layers and the pure network math — forward propagation,
back-propagation of a loss gradient, and flat parameter-vector access for the
optimizers and the gradient checker.  Training schedules live in
:mod:`repro.nn.training`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from .activations import Activation
from .initializers import Initializer
from .layers import Dense

__all__ = ["MLP"]


class MLP:
    """A feed-forward network of :class:`~repro.nn.layers.Dense` layers.

    Parameters
    ----------
    layer_sizes:
        ``[n_inputs, hidden_1, ..., hidden_k, n_outputs]``.  Following the
        paper's terminology a network with two hidden layers is a "three
        layer perceptron" because the input layer is not counted.
    hidden_activation:
        Activation for every hidden layer (default the paper's logistic).
    output_activation:
        Activation for the output layer (default identity for regression).
    weight_init, bias_init:
        Initializers applied to every layer.
    seed:
        Seed for the parameter-initialization generator; pass an integer for
        reproducible networks.

    Examples
    --------
    >>> net = MLP([4, 16, 16, 5], seed=0)
    >>> net.n_inputs, net.n_outputs, net.n_hidden_layers
    (4, 5, 2)
    """

    def __init__(
        self,
        layer_sizes: Sequence[int],
        hidden_activation: Union[str, Activation] = "logistic",
        output_activation: Union[str, Activation] = "identity",
        weight_init: Union[str, Initializer] = "glorot_uniform",
        bias_init: Union[str, Initializer] = "zeros",
        seed: Optional[int] = None,
    ):
        sizes = [int(s) for s in layer_sizes]
        if len(sizes) < 2:
            raise ValueError(
                f"need at least input and output sizes, got {layer_sizes!r}"
            )
        if any(s < 1 for s in sizes):
            raise ValueError(f"layer sizes must be positive, got {sizes}")
        self.layer_sizes = sizes
        self._seed = seed
        rng = np.random.default_rng(seed)
        self.layers: List[Dense] = []
        for index, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            is_output = index == len(sizes) - 2
            activation = output_activation if is_output else hidden_activation
            self.layers.append(
                Dense(
                    fan_in,
                    fan_out,
                    activation=activation,
                    weight_init=weight_init,
                    bias_init=bias_init,
                    rng=rng,
                )
            )

    # ------------------------------------------------------------------
    # shape properties
    # ------------------------------------------------------------------

    @property
    def n_inputs(self) -> int:
        """Configuration-space dimension ``n``."""
        return self.layer_sizes[0]

    @property
    def n_outputs(self) -> int:
        """Performance-indicator dimension ``m``."""
        return self.layer_sizes[-1]

    @property
    def n_hidden_layers(self) -> int:
        """Number of hidden layers (layers minus the output layer)."""
        return len(self.layers) - 1

    @property
    def num_params(self) -> int:
        """Total trainable scalars across all layers."""
        return sum(layer.num_params for layer in self.layers)

    # ------------------------------------------------------------------
    # forward / backward
    # ------------------------------------------------------------------

    def forward(self, inputs: np.ndarray, remember: bool = True) -> np.ndarray:
        """Propagate a batch through every layer.

        ``inputs`` may be a single sample of shape ``(n_inputs,)`` or a batch
        of shape ``(n_samples, n_inputs)``; the output always has the batch
        shape ``(n_samples, n_outputs)``.
        """
        inputs = np.asarray(inputs, dtype=float)
        if inputs.ndim == 1:
            inputs = inputs.reshape(1, -1)
        out = inputs
        for layer in self.layers:
            out = layer.forward(out, remember=remember)
        return out

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Forward pass without caching — use for inference."""
        return self.forward(inputs, remember=False)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate a loss gradient through every layer.

        Must follow a :meth:`forward` call with ``remember=True`` on the same
        batch.  Layer gradients are left on each layer for the optimizer;
        the return value is ``dL/d(inputs)``.
        """
        grad = np.asarray(grad_output, dtype=float)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    # ------------------------------------------------------------------
    # flat parameter access (optimizers, gradient checking, serialization)
    # ------------------------------------------------------------------

    def get_flat_params(self) -> np.ndarray:
        """All parameters concatenated into one 1-D vector."""
        chunks = []
        for layer in self.layers:
            for array in layer.parameters():
                chunks.append(array.ravel())
        return np.concatenate(chunks)

    def set_flat_params(self, flat: np.ndarray) -> None:
        """Inverse of :meth:`get_flat_params`."""
        flat = np.asarray(flat, dtype=float).ravel()
        if flat.size != self.num_params:
            raise ValueError(
                f"expected {self.num_params} parameters, got {flat.size}"
            )
        offset = 0
        for layer in self.layers:
            weights_size = layer.weights.size
            bias_size = layer.bias.size
            weights = flat[offset : offset + weights_size].reshape(
                layer.weights.shape
            )
            offset += weights_size
            bias = flat[offset : offset + bias_size].reshape(layer.bias.shape)
            offset += bias_size
            layer.set_parameters(weights, bias)

    def get_flat_grads(self) -> np.ndarray:
        """All layer gradients concatenated to match :meth:`get_flat_params`."""
        chunks = []
        for layer in self.layers:
            for array in layer.gradients():
                chunks.append(array.ravel())
        return np.concatenate(chunks)

    def reset(self, seed: Optional[int] = None) -> None:
        """Re-initialize every layer's parameters.

        The paper re-randomizes weights at the start of each training run;
        cross-validation calls this between trials.
        """
        rng = np.random.default_rng(self._seed if seed is None else seed)
        for layer in self.layers:
            layer.reset(rng)

    def copy(self) -> "MLP":
        """An independent clone with identical structure and parameters."""
        clone = MLP.from_config(self.config())
        clone.set_flat_params(self.get_flat_params())
        return clone

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------

    def config(self) -> dict:
        """Structure-only description; see :mod:`repro.nn.serialization`."""
        first = self.layers[0]
        last = self.layers[-1]
        return {
            "layer_sizes": list(self.layer_sizes),
            "hidden_activation": (
                first.activation.config()
                if len(self.layers) > 1
                else last.activation.config()
            ),
            "output_activation": last.activation.config(),
            "weight_init": first._weight_init.config(),
            "bias_init": first._bias_init.config(),
            "seed": self._seed,
        }

    @classmethod
    def from_config(cls, config: dict) -> "MLP":
        """Rebuild an MLP (fresh random parameters) from :meth:`config`."""
        return cls(
            config["layer_sizes"],
            hidden_activation=_activation_from(config["hidden_activation"]),
            output_activation=_activation_from(config["output_activation"]),
            weight_init=_initializer_from(config["weight_init"]),
            bias_init=_initializer_from(config["bias_init"]),
            seed=config.get("seed"),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        arch = " -> ".join(str(s) for s in self.layer_sizes)
        return f"MLP({arch}, params={self.num_params})"


def _activation_from(config: dict) -> Activation:
    from .activations import get_activation

    return get_activation(dict(config))


def _initializer_from(config: dict) -> Initializer:
    from .initializers import get_initializer

    return get_initializer(dict(config))
