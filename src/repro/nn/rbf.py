"""Radial Basis Function networks.

Section 2.1 of the paper names RBF networks alongside MLPs as the standard
neural architectures for function approximation; we implement them both so
the model-comparison bench can contrast the families.

An :class:`RBFNetwork` places Gaussian kernels at centers chosen by a small
from-scratch k-means, then solves the linear readout by (optionally ridge-
regularized) least squares — the classical two-stage training scheme.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["kmeans", "RBFNetwork"]


def kmeans(
    x: np.ndarray,
    k: int,
    rng: np.random.Generator,
    max_iters: int = 100,
    tolerance: float = 1e-8,
) -> np.ndarray:
    """Lloyd's algorithm; returns the ``(k, n_features)`` centers.

    Centers are seeded from distinct data points.  Clusters that empty out
    are re-seeded on the point farthest from its assigned center, which keeps
    ``k`` effective centers even on degenerate data.
    """
    x = np.atleast_2d(np.asarray(x, dtype=float))
    n = x.shape[0]
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if k > n:
        raise ValueError(f"k={k} exceeds the number of samples ({n})")
    centers = x[rng.choice(n, size=k, replace=False)].copy()
    for _ in range(max_iters):
        distances = np.linalg.norm(x[:, None, :] - centers[None, :, :], axis=2)
        assignment = distances.argmin(axis=1)
        new_centers = centers.copy()
        for j in range(k):
            members = x[assignment == j]
            if members.size:
                new_centers[j] = members.mean(axis=0)
            else:
                farthest = distances[np.arange(n), assignment].argmax()
                new_centers[j] = x[farthest]
        shift = float(np.linalg.norm(new_centers - centers))
        centers = new_centers
        if shift < tolerance:
            break
    return centers


class RBFNetwork:
    """Gaussian-kernel network with a linear least-squares readout.

    Parameters
    ----------
    n_centers:
        Number of Gaussian kernels (capped at the sample count during fit).
    width:
        Kernel width (standard deviation).  ``None`` uses the mean pairwise
        distance between centers — the usual heuristic.
    ridge:
        L2 regularization on the readout weights; 0 gives plain least squares.
    seed:
        Seed for the k-means center initialization.
    """

    def __init__(
        self,
        n_centers: int = 10,
        width: Optional[float] = None,
        ridge: float = 1e-8,
        seed: Optional[int] = None,
    ):
        if n_centers < 1:
            raise ValueError(f"n_centers must be >= 1, got {n_centers}")
        if width is not None and width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        if ridge < 0:
            raise ValueError(f"ridge must be non-negative, got {ridge}")
        self.n_centers = int(n_centers)
        self.width = width
        self.ridge = float(ridge)
        self._seed = seed
        self.centers_: Optional[np.ndarray] = None
        self.width_: Optional[float] = None
        self.readout_: Optional[np.ndarray] = None  # (k + 1, m) incl. bias

    # ------------------------------------------------------------------

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RBFNetwork":
        """Place centers on ``x`` and solve the readout to ``y``."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float)
        if y.ndim == 1:
            y = y.reshape(-1, 1)
        if x.shape[0] != y.shape[0]:
            raise ValueError(
                f"x has {x.shape[0]} samples but y has {y.shape[0]}"
            )
        rng = np.random.default_rng(self._seed)
        k = min(self.n_centers, x.shape[0])
        self.centers_ = kmeans(x, k, rng)
        self.width_ = self.width or self._default_width(self.centers_)
        design = self._design_matrix(x)
        if self.ridge:
            gram = design.T @ design + self.ridge * np.eye(design.shape[1])
            self.readout_ = np.linalg.solve(gram, design.T @ y)
        else:
            self.readout_, *_ = np.linalg.lstsq(design, y, rcond=None)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the fitted network; shape ``(n_samples, n_outputs)``."""
        if self.readout_ is None:
            raise RuntimeError("predict() called before fit()")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        return self._design_matrix(x) @ self.readout_

    # ------------------------------------------------------------------

    @staticmethod
    def _default_width(centers: np.ndarray) -> float:
        if centers.shape[0] < 2:
            return 1.0
        diffs = centers[:, None, :] - centers[None, :, :]
        distances = np.linalg.norm(diffs, axis=2)
        off_diagonal = distances[~np.eye(centers.shape[0], dtype=bool)]
        mean = float(off_diagonal.mean())
        return mean if mean > 0 else 1.0

    def _design_matrix(self, x: np.ndarray) -> np.ndarray:
        """Gaussian activations of every center plus a constant column."""
        distances = np.linalg.norm(
            x[:, None, :] - self.centers_[None, :, :], axis=2
        )
        activations = np.exp(-0.5 * (distances / self.width_) ** 2)
        return np.column_stack([activations, np.ones(x.shape[0])])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        fitted = self.readout_ is not None
        return (
            f"RBFNetwork(n_centers={self.n_centers}, width={self.width}, "
            f"ridge={self.ridge}, fitted={fitted})"
        )
