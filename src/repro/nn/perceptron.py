"""Single perceptrons and the paper's hand-built geometric constructions.

Section 2 of the paper explains MLP expressiveness constructively:

* a perceptron forms a *hyperplane* bisecting the sample space (Figure 1);
* a second hidden layer with all-one weights and threshold ``n - eps``
  computes a logical **AND** of ``n`` first-layer half-spaces, carving a
  *confinement*;
* an output node with threshold ``0.5`` **OR**s confinements together, so
  three layers can approximate any finite volume.

This module implements the single perceptron exactly as drawn in Figure 1
(weighted sum minus a threshold ``w0``) plus factory helpers for the AND/OR
construction and the classic perceptron learning rule, all of which the test
suite uses to validate the geometry the paper describes.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .activations import Activation, HardLimiter, get_activation

__all__ = [
    "Perceptron",
    "and_perceptron",
    "or_perceptron",
    "not_perceptron",
    "confinement_network",
]


class Perceptron:
    """A single neuron: ``y = f(sum_i w_i x_i - w0)`` (paper Figure 1).

    Parameters
    ----------
    weights:
        The input weights ``w_1 .. w_n``.
    threshold:
        The constant threshold/bias ``w0`` *subtracted* from the weighted sum,
        matching the paper's sign convention.
    activation:
        Activation instance or name; defaults to the hard limiter so the
        perceptron is a half-space indicator.
    """

    def __init__(
        self,
        weights: Sequence[float],
        threshold: float = 0.0,
        activation: Optional[Activation] = None,
    ):
        self.weights = np.asarray(weights, dtype=float)
        if self.weights.ndim != 1 or self.weights.size == 0:
            raise ValueError("weights must be a non-empty 1-D sequence")
        self.threshold = float(threshold)
        if activation is None:
            activation = HardLimiter()
        self.activation = get_activation(activation)

    @property
    def n_inputs(self) -> int:
        """Number of input signals this perceptron accepts."""
        return self.weights.size

    def pre_activation(self, x: np.ndarray) -> np.ndarray:
        """The weighted sum minus threshold, before squashing."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[1] != self.n_inputs:
            raise ValueError(
                f"expected {self.n_inputs} inputs per sample, got {x.shape[1]}"
            )
        return x @ self.weights - self.threshold

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the perceptron on one sample or a batch of samples.

        Returns a scalar array of shape ``(n_samples,)``.
        """
        return self.activation.forward(self.pre_activation(x))

    __call__ = forward

    def decision_distance(self, x: np.ndarray) -> np.ndarray:
        """Signed Euclidean distance of each sample from the hyperplane.

        Positive on the side the perceptron maps toward 1.  The weights
        define the hyperplane's orientation and the threshold its offset from
        the origin (paper Section 2.1).
        """
        norm = float(np.linalg.norm(self.weights))
        if norm == 0.0:
            raise ValueError("zero weight vector has no decision hyperplane")
        return self.pre_activation(x) / norm

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        learning_rate: float = 1.0,
        max_epochs: int = 100,
    ) -> int:
        """Rosenblatt perceptron learning on binary targets in {0, 1}.

        Returns the number of epochs run; converges iff the data are linearly
        separable.  Only valid with the hard-limiter activation.
        """
        if not isinstance(self.activation, HardLimiter):
            raise ValueError("perceptron learning requires the hard limiter")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if x.shape[0] != y.size:
            raise ValueError(f"{x.shape[0]} samples but {y.size} targets")
        if not set(np.unique(y)) <= {0.0, 1.0}:
            raise ValueError("targets must be 0/1")
        for epoch in range(1, max_epochs + 1):
            errors = 0
            for sample, target in zip(x, y):
                predicted = float(self.forward(sample)[0])
                if predicted != target:
                    update = learning_rate * (target - predicted)
                    self.weights = self.weights + update * sample
                    self.threshold -= update
                    errors += 1
            if errors == 0:
                return epoch
        return max_epochs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Perceptron(weights={self.weights.tolist()}, "
            f"threshold={self.threshold}, activation={self.activation!r})"
        )


def and_perceptron(n_inputs: int, margin: float = 0.5) -> Perceptron:
    """The paper's AND construction: all weights 1, threshold ``n - margin``.

    With ``0 < margin < 1`` the output is 1 only when *all* ``n`` binary
    inputs are 1 (paper Section 2.2).
    """
    if not 0.0 < margin < 1.0:
        raise ValueError(f"margin must lie in (0, 1), got {margin}")
    if n_inputs < 1:
        raise ValueError(f"n_inputs must be >= 1, got {n_inputs}")
    return Perceptron(np.ones(n_inputs), threshold=n_inputs - margin)


def or_perceptron(n_inputs: int, threshold: float = 0.5) -> Perceptron:
    """The paper's OR construction: all weights 1, threshold 0.5."""
    if not 0.0 < threshold < 1.0:
        raise ValueError(f"threshold must lie in (0, 1), got {threshold}")
    if n_inputs < 1:
        raise ValueError(f"n_inputs must be >= 1, got {n_inputs}")
    return Perceptron(np.ones(n_inputs), threshold=threshold)


def not_perceptron() -> Perceptron:
    """Single-input negation: weight -1, threshold -0.5."""
    return Perceptron([-1.0], threshold=-0.5)


def confinement_network(
    lower: Sequence[float], upper: Sequence[float]
) -> "AxisAlignedConfinement":
    """Build the 3-layer box indicator the paper uses to argue universality.

    ``2n`` first-layer perceptrons cut the space along each axis (one ``>=
    lower_i``, one ``<= upper_i``); an AND node in the second layer confines
    to the box.  The returned object is callable on points and returns 1
    inside the closed box, 0 outside.
    """
    return AxisAlignedConfinement(lower, upper)


class AxisAlignedConfinement:
    """Indicator of an axis-aligned box built purely from perceptrons."""

    def __init__(self, lower: Sequence[float], upper: Sequence[float]):
        lower = np.asarray(lower, dtype=float)
        upper = np.asarray(upper, dtype=float)
        if lower.shape != upper.shape or lower.ndim != 1:
            raise ValueError("lower/upper must be 1-D and the same length")
        if np.any(lower > upper):
            raise ValueError("each lower bound must be <= its upper bound")
        self.lower = lower
        self.upper = upper
        n = lower.size
        self.half_spaces = []
        for axis in range(n):
            direction = np.zeros(n)
            direction[axis] = 1.0
            # x_axis >= lower  <=>  +x_axis - lower >= 0
            self.half_spaces.append(Perceptron(direction, threshold=lower[axis]))
            # x_axis <= upper  <=>  -x_axis + upper >= 0
            self.half_spaces.append(Perceptron(-direction, threshold=-upper[axis]))
        self.and_node = and_perceptron(2 * n)

    @property
    def n_dims(self) -> int:
        """Dimensionality of the confined space."""
        return self.lower.size

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        first_layer = np.column_stack([p(x) for p in self.half_spaces])
        return self.and_node(first_layer)
