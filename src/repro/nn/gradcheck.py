"""Finite-difference verification of back-propagation.

Back-propagation is the one piece of this library where a silent sign or
transpose bug would corrupt every downstream result, so we verify the
analytic gradients of any flat-parameter model against central finite
differences.  The test suite runs this over every activation/loss pairing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from .losses import Loss, get_loss

__all__ = ["GradientCheckReport", "numerical_gradient", "check_gradients"]


@dataclass
class GradientCheckReport:
    """Outcome of a gradient check."""

    max_abs_error: float
    max_rel_error: float
    n_params: int
    passed: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "PASS" if self.passed else "FAIL"
        return (
            f"gradient check {status}: max_abs={self.max_abs_error:.3e} "
            f"max_rel={self.max_rel_error:.3e} over {self.n_params} params"
        )


def numerical_gradient(
    model,
    x: np.ndarray,
    y: np.ndarray,
    loss: Union[str, Loss] = "mse",
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of the loss w.r.t. the flat parameters.

    O(2 * n_params) forward passes — use small models and batches.
    """
    loss = get_loss(loss)
    base = model.get_flat_params().copy()
    grad = np.zeros_like(base)
    for i in range(base.size):
        bumped = base.copy()
        bumped[i] = base[i] + epsilon
        model.set_flat_params(bumped)
        plus = loss.value(model.predict(x), y)
        bumped[i] = base[i] - epsilon
        model.set_flat_params(bumped)
        minus = loss.value(model.predict(x), y)
        grad[i] = (plus - minus) / (2.0 * epsilon)
    model.set_flat_params(base)
    return grad


def check_gradients(
    model,
    x: np.ndarray,
    y: np.ndarray,
    loss: Union[str, Loss] = "mse",
    epsilon: float = 1e-6,
    tolerance: float = 1e-5,
) -> GradientCheckReport:
    """Compare analytic back-prop gradients to finite differences.

    The relative error uses the symmetric normalization
    ``|a - n| / max(|a| + |n|, 1e-8)`` so it is meaningful for both large
    and vanishing gradients.  ``passed`` requires the max relative error to
    stay below ``tolerance`` (absolute error below ``tolerance`` also counts,
    covering parameters whose true gradient is ~0).
    """
    loss_obj = get_loss(loss)
    predicted = model.forward(x, remember=True)
    model.backward(loss_obj.gradient(predicted, y))
    analytic = model.get_flat_grads().copy()
    numeric = numerical_gradient(model, x, y, loss=loss_obj, epsilon=epsilon)

    abs_err = np.abs(analytic - numeric)
    denom = np.maximum(np.abs(analytic) + np.abs(numeric), 1e-8)
    rel_err = abs_err / denom
    # A parameter passes if either error measure is small.
    per_param_ok = (abs_err <= tolerance) | (rel_err <= tolerance)
    return GradientCheckReport(
        max_abs_error=float(abs_err.max()),
        max_rel_error=float(rel_err.max()),
        n_params=int(analytic.size),
        passed=bool(per_param_ok.all()),
    )
