"""Gradient-descent optimizers and learning-rate schedules.

The paper trains with "a gradient descent based back-propagation method"
(Section 2.2).  :class:`SGD` is that method; :class:`Momentum`,
:class:`Nesterov`, :class:`RMSProp` and :class:`Adam` are the standard
refinements used by the optimizer-comparison ablation bench.

An optimizer operates on a model's *flat* parameter vector: each
:meth:`Optimizer.step` receives the current parameters and the gradient and
returns the updated parameters.  Keeping optimizers stateless with respect to
the model makes them trivially reusable across MLPs, RBF networks and the
logarithmic network.
"""

from __future__ import annotations

from typing import Dict, Optional, Type, Union

import numpy as np

__all__ = [
    "Optimizer",
    "SGD",
    "Momentum",
    "Nesterov",
    "RMSProp",
    "Adam",
    "LearningRateSchedule",
    "ConstantSchedule",
    "StepDecay",
    "ExponentialDecay",
    "get_optimizer",
    "register_optimizer",
    "available_optimizers",
]


# ----------------------------------------------------------------------
# learning-rate schedules
# ----------------------------------------------------------------------


class LearningRateSchedule:
    """Maps a step counter to a learning rate."""

    def rate(self, step: int) -> float:
        """Learning rate to use at ``step`` (0-based)."""
        raise NotImplementedError

    def __call__(self, step: int) -> float:
        return self.rate(step)


class ConstantSchedule(LearningRateSchedule):
    """The same rate forever."""

    def __init__(self, rate: float):
        if rate <= 0:
            raise ValueError(f"learning rate must be positive, got {rate}")
        self._rate = float(rate)

    def rate(self, step: int) -> float:
        return self._rate

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConstantSchedule({self._rate})"


class StepDecay(LearningRateSchedule):
    """Multiply the rate by ``factor`` every ``every`` steps."""

    def __init__(self, initial: float, factor: float = 0.5, every: int = 1000):
        if initial <= 0:
            raise ValueError(f"initial rate must be positive, got {initial}")
        if not 0 < factor <= 1:
            raise ValueError(f"factor must lie in (0, 1], got {factor}")
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.initial = float(initial)
        self.factor = float(factor)
        self.every = int(every)

    def rate(self, step: int) -> float:
        return self.initial * self.factor ** (step // self.every)


class ExponentialDecay(LearningRateSchedule):
    """``initial * exp(-decay * step)``."""

    def __init__(self, initial: float, decay: float = 1e-4):
        if initial <= 0:
            raise ValueError(f"initial rate must be positive, got {initial}")
        if decay < 0:
            raise ValueError(f"decay must be non-negative, got {decay}")
        self.initial = float(initial)
        self.decay = float(decay)

    def rate(self, step: int) -> float:
        return self.initial * float(np.exp(-self.decay * step))


def _as_schedule(
    rate: Union[float, LearningRateSchedule]
) -> LearningRateSchedule:
    if isinstance(rate, LearningRateSchedule):
        return rate
    return ConstantSchedule(float(rate))


# ----------------------------------------------------------------------
# optimizers
# ----------------------------------------------------------------------


class Optimizer:
    """Base class: stateful update rule over a flat parameter vector."""

    name = "optimizer"

    def __init__(self, learning_rate: Union[float, LearningRateSchedule] = 0.01):
        self.schedule = _as_schedule(learning_rate)
        self.step_count = 0

    def step(self, params: np.ndarray, grads: np.ndarray) -> np.ndarray:
        """Return the updated parameter vector."""
        params = np.asarray(params, dtype=float)
        grads = np.asarray(grads, dtype=float)
        if params.shape != grads.shape:
            raise ValueError(
                f"params shape {params.shape} != grads shape {grads.shape}"
            )
        rate = self.schedule(self.step_count)
        updated = self._update(params, grads, rate)
        self.step_count += 1
        return updated

    def _update(
        self, params: np.ndarray, grads: np.ndarray, rate: float
    ) -> np.ndarray:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear internal state (momentum buffers etc.) and the step count."""
        self.step_count = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(schedule={self.schedule!r})"


class SGD(Optimizer):
    """Plain gradient descent — the paper's training method."""

    name = "sgd"

    def _update(self, params, grads, rate):
        return params - rate * grads


class Momentum(Optimizer):
    """Heavy-ball momentum: velocity accumulates past gradients."""

    name = "momentum"

    def __init__(self, learning_rate=0.01, momentum: float = 0.9):
        super().__init__(learning_rate)
        if not 0 <= momentum < 1:
            raise ValueError(f"momentum must lie in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity: Optional[np.ndarray] = None

    def _update(self, params, grads, rate):
        if self._velocity is None or self._velocity.shape != params.shape:
            self._velocity = np.zeros_like(params)
        self._velocity = self.momentum * self._velocity - rate * grads
        return params + self._velocity

    def reset(self):
        super().reset()
        self._velocity = None


class Nesterov(Momentum):
    """Nesterov accelerated gradient (look-ahead momentum)."""

    name = "nesterov"

    def _update(self, params, grads, rate):
        if self._velocity is None or self._velocity.shape != params.shape:
            self._velocity = np.zeros_like(params)
        previous = self._velocity
        self._velocity = self.momentum * self._velocity - rate * grads
        return params - self.momentum * previous + (1 + self.momentum) * self._velocity


class RMSProp(Optimizer):
    """Per-parameter rates scaled by a running mean of squared gradients."""

    name = "rmsprop"

    def __init__(self, learning_rate=0.001, decay: float = 0.9, epsilon: float = 1e-8):
        super().__init__(learning_rate)
        if not 0 <= decay < 1:
            raise ValueError(f"decay must lie in [0, 1), got {decay}")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.decay = float(decay)
        self.epsilon = float(epsilon)
        self._mean_square: Optional[np.ndarray] = None

    def _update(self, params, grads, rate):
        if self._mean_square is None or self._mean_square.shape != params.shape:
            self._mean_square = np.zeros_like(params)
        self._mean_square = (
            self.decay * self._mean_square + (1 - self.decay) * grads * grads
        )
        return params - rate * grads / (np.sqrt(self._mean_square) + self.epsilon)

    def reset(self):
        super().reset()
        self._mean_square = None


class Adam(Optimizer):
    """Adam: bias-corrected first and second gradient moments."""

    name = "adam"

    def __init__(
        self,
        learning_rate=0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ):
        super().__init__(learning_rate)
        if not 0 <= beta1 < 1:
            raise ValueError(f"beta1 must lie in [0, 1), got {beta1}")
        if not 0 <= beta2 < 1:
            raise ValueError(f"beta2 must lie in [0, 1), got {beta2}")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self._m: Optional[np.ndarray] = None
        self._v: Optional[np.ndarray] = None

    def _update(self, params, grads, rate):
        if self._m is None or self._m.shape != params.shape:
            self._m = np.zeros_like(params)
            self._v = np.zeros_like(params)
        t = self.step_count + 1
        self._m = self.beta1 * self._m + (1 - self.beta1) * grads
        self._v = self.beta2 * self._v + (1 - self.beta2) * grads * grads
        m_hat = self._m / (1 - self.beta1**t)
        v_hat = self._v / (1 - self.beta2**t)
        return params - rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def reset(self):
        super().reset()
        self._m = None
        self._v = None


_REGISTRY: Dict[str, Type[Optimizer]] = {}


def register_optimizer(cls: Type[Optimizer]) -> Type[Optimizer]:
    """Add an :class:`Optimizer` subclass to the by-name registry."""
    if not issubclass(cls, Optimizer):
        raise TypeError(f"{cls!r} is not an Optimizer subclass")
    _REGISTRY[cls.name] = cls
    return cls


for _cls in (SGD, Momentum, Nesterov, RMSProp, Adam):
    register_optimizer(_cls)


def available_optimizers() -> list:
    """Names accepted by :func:`get_optimizer`, sorted."""
    return sorted(_REGISTRY)


def get_optimizer(spec: Union[str, Optimizer], **kwargs) -> Optimizer:
    """Resolve an optimizer from a name or instance."""
    if isinstance(spec, Optimizer):
        if kwargs:
            raise ValueError("cannot pass kwargs with an Optimizer instance")
        return spec
    if spec not in _REGISTRY:
        raise KeyError(
            f"unknown optimizer {spec!r}; available: {available_optimizers()}"
        )
    return _REGISTRY[spec](**kwargs)
