"""Loss functions for training.

The paper trains its MLP "to minimize the error between the predicted value
and the actual value, i.e. ||Y_hat - Y||" (Section 2.2) — squared-error
minimization, implemented here as :class:`MeanSquaredError`.  Mean-absolute
and Huber losses are provided for the robustness ablations.

A loss exposes the mean scalar value over a batch and its gradient with
respect to the predictions (shape-preserving, already divided by the batch
size so per-sample gradients sum to the batch gradient).
"""

from __future__ import annotations

from typing import Dict, Type, Union

import numpy as np

__all__ = [
    "Loss",
    "MeanSquaredError",
    "MeanAbsoluteError",
    "Huber",
    "Pinball",
    "get_loss",
    "register_loss",
    "available_losses",
]


def _as_batch(a: np.ndarray) -> np.ndarray:
    """Coerce to a 2-D float array of shape (n_samples, n_outputs)."""
    a = np.asarray(a, dtype=float)
    if a.ndim == 1:
        a = a.reshape(-1, 1)
    if a.ndim != 2:
        raise ValueError(f"expected 1-D or 2-D array, got shape {a.shape}")
    return a


class Loss:
    """Base class for differentiable training objectives."""

    name = "loss"

    def value(self, predicted: np.ndarray, actual: np.ndarray) -> float:
        """Mean loss over the batch (a scalar)."""
        raise NotImplementedError

    def gradient(self, predicted: np.ndarray, actual: np.ndarray) -> np.ndarray:
        """d(value)/d(predicted), same shape as ``predicted``."""
        raise NotImplementedError

    def _check(self, predicted: np.ndarray, actual: np.ndarray):
        predicted = _as_batch(predicted)
        actual = _as_batch(actual)
        if predicted.shape != actual.shape:
            raise ValueError(
                f"prediction shape {predicted.shape} != target shape {actual.shape}"
            )
        return predicted, actual

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"

    def config(self) -> dict:
        return {"name": self.name, **self.__dict__}


class MeanSquaredError(Loss):
    """``mean((predicted - actual)^2)`` over every element of the batch."""

    name = "mse"

    def value(self, predicted, actual):
        predicted, actual = self._check(predicted, actual)
        diff = predicted - actual
        return float(np.mean(diff * diff))

    def gradient(self, predicted, actual):
        predicted, actual = self._check(predicted, actual)
        return 2.0 * (predicted - actual) / predicted.size


class MeanAbsoluteError(Loss):
    """``mean(|predicted - actual|)``; robust to outlier samples."""

    name = "mae"

    def value(self, predicted, actual):
        predicted, actual = self._check(predicted, actual)
        return float(np.mean(np.abs(predicted - actual)))

    def gradient(self, predicted, actual):
        predicted, actual = self._check(predicted, actual)
        return np.sign(predicted - actual) / predicted.size


class Huber(Loss):
    """Quadratic near zero, linear beyond ``delta`` — a compromise of the two."""

    name = "huber"

    def __init__(self, delta: float = 1.0):
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = float(delta)

    def value(self, predicted, actual):
        predicted, actual = self._check(predicted, actual)
        diff = predicted - actual
        abs_diff = np.abs(diff)
        quadratic = 0.5 * diff * diff
        linear = self.delta * (abs_diff - 0.5 * self.delta)
        return float(np.mean(np.where(abs_diff <= self.delta, quadratic, linear)))

    def gradient(self, predicted, actual):
        predicted, actual = self._check(predicted, actual)
        diff = predicted - actual
        grad = np.clip(diff, -self.delta, self.delta)
        return grad / predicted.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Huber(delta={self.delta})"


class Pinball(Loss):
    """Quantile (pinball) loss: minimizing it makes the network regress the
    ``quantile``-th conditional quantile instead of the mean.

    Response-time objectives are usually stated on tail quantiles (p90,
    p99), not means; training the same MLP under this loss turns the
    paper's mean model into an SLA model.  The loss is

        q * (y - y_hat)       if y >= y_hat
        (1 - q) * (y_hat - y)  otherwise
    """

    name = "pinball"

    def __init__(self, quantile: float = 0.9):
        if not 0.0 < quantile < 1.0:
            raise ValueError(f"quantile must lie in (0, 1), got {quantile}")
        self.quantile = float(quantile)

    def value(self, predicted, actual):
        predicted, actual = self._check(predicted, actual)
        diff = actual - predicted
        return float(
            np.mean(
                np.where(
                    diff >= 0, self.quantile * diff, (self.quantile - 1) * diff
                )
            )
        )

    def gradient(self, predicted, actual):
        predicted, actual = self._check(predicted, actual)
        diff = actual - predicted
        grad = np.where(diff >= 0, -self.quantile, 1.0 - self.quantile)
        return grad / predicted.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Pinball(quantile={self.quantile})"


_REGISTRY: Dict[str, Type[Loss]] = {}


def register_loss(cls: Type[Loss]) -> Type[Loss]:
    """Add a :class:`Loss` subclass to the by-name registry."""
    if not issubclass(cls, Loss):
        raise TypeError(f"{cls!r} is not a Loss subclass")
    _REGISTRY[cls.name] = cls
    return cls


for _cls in (MeanSquaredError, MeanAbsoluteError, Huber, Pinball):
    register_loss(_cls)


def available_losses() -> list:
    """Names accepted by :func:`get_loss`, sorted."""
    return sorted(_REGISTRY)


def get_loss(spec: Union[str, Loss, dict], **kwargs) -> Loss:
    """Resolve a loss from a name, config dict, or instance."""
    if isinstance(spec, Loss):
        if kwargs:
            raise ValueError("cannot pass kwargs with a Loss instance")
        return spec
    if isinstance(spec, dict):
        spec = dict(spec)
        name = spec.pop("name")
        return get_loss(name, **{**spec, **kwargs})
    if spec not in _REGISTRY:
        raise KeyError(f"unknown loss {spec!r}; available: {available_losses()}")
    return _REGISTRY[spec](**kwargs)
