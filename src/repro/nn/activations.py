"""Activation ("squashing") functions for perceptrons and MLPs.

The paper (Section 2.1) describes the activation function as the source of an
MLP's non-linearity and singles out the logistic sigmoid

    f(x) = 1 / (1 + exp(-a * x))

with a *slope parameter* ``a`` that controls the fuzziness of the decision
boundary (Figure 2: the function approaches a hard limiter as ``|a|`` grows).
This module implements that function, its relatives, and their derivatives.

Every activation is a stateless object with two methods:

``forward(x)``
    The element-wise activation value.
``derivative(x, fx)``
    The element-wise derivative ``f'(x)``.  Both the pre-activation ``x`` and
    the already-computed output ``fx = f(x)`` are supplied so implementations
    can use whichever is cheaper (the logistic derivative is
    ``a * fx * (1 - fx)``, for example).

Activations are looked up by name with :func:`get_activation`, so model
configuration files can refer to them as plain strings.
"""

from __future__ import annotations

from typing import Dict, Type, Union

import numpy as np

__all__ = [
    "Activation",
    "Logistic",
    "Tanh",
    "ReLU",
    "LeakyReLU",
    "Softplus",
    "Identity",
    "HardLimiter",
    "get_activation",
    "register_activation",
    "available_activations",
]


class Activation:
    """Base class for element-wise activation functions."""

    #: Canonical registry name; subclasses override.
    name = "activation"

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Return ``f(x)`` element-wise."""
        raise NotImplementedError

    def derivative(self, x: np.ndarray, fx: np.ndarray) -> np.ndarray:
        """Return ``f'(x)`` element-wise.

        Parameters
        ----------
        x:
            Pre-activation values.
        fx:
            ``forward(x)``, supplied so the derivative can reuse it.
        """
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(self.__dict__.items()))))

    def config(self) -> dict:
        """Serializable description, consumed by :mod:`repro.nn.serialization`."""
        return {"name": self.name, **self.__dict__}


class Logistic(Activation):
    """The paper's sigmoid: ``f(x) = 1 / (1 + exp(-slope * x))``.

    The output lies in the open interval (0, 1).  ``slope`` is the paper's
    ``a`` parameter; as ``|slope|`` grows the function approaches a hard
    limiter (paper Figure 2).

    Notes
    -----
    The paper writes the function as ``1 / (1 + exp(a x))``; with a positive
    ``a`` that form is *decreasing*, which contradicts the accompanying text
    ("a strictly increasing function") and Figure 2.  We use the standard
    increasing convention ``1 / (1 + exp(-a x))``.
    """

    name = "logistic"

    def __init__(self, slope: float = 1.0):
        if slope <= 0:
            raise ValueError(f"slope must be positive, got {slope}")
        self.slope = float(slope)

    def forward(self, x: np.ndarray) -> np.ndarray:
        z = self.slope * np.asarray(x, dtype=float)
        out = np.empty_like(z)
        pos = z >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
        ez = np.exp(z[~pos])
        out[~pos] = ez / (1.0 + ez)
        return out

    def derivative(self, x: np.ndarray, fx: np.ndarray) -> np.ndarray:
        return self.slope * fx * (1.0 - fx)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Logistic(slope={self.slope})"


class Tanh(Activation):
    """Hyperbolic tangent; a sigmoid symmetric about the origin, range (-1, 1)."""

    name = "tanh"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    def derivative(self, x: np.ndarray, fx: np.ndarray) -> np.ndarray:
        return 1.0 - fx * fx


class ReLU(Activation):
    """Rectified linear unit, ``max(0, x)``.

    Not used by the 2006 paper but provided for the ablation benches; it is
    the modern default for hidden layers.
    """

    name = "relu"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)

    def derivative(self, x: np.ndarray, fx: np.ndarray) -> np.ndarray:
        return (x > 0).astype(float)


class LeakyReLU(Activation):
    """Leaky rectifier: ``x`` for ``x > 0`` else ``alpha * x``."""

    name = "leaky_relu"

    def __init__(self, alpha: float = 0.01):
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.alpha = float(alpha)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.where(x > 0, x, self.alpha * x)

    def derivative(self, x: np.ndarray, fx: np.ndarray) -> np.ndarray:
        return np.where(x > 0, 1.0, self.alpha)


class Softplus(Activation):
    """Smooth rectifier ``log(1 + exp(x))``; derivative is the logistic."""

    name = "softplus"

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        # log1p(exp(-|x|)) + max(x, 0) is stable for large |x|.
        return np.log1p(np.exp(-np.abs(x))) + np.maximum(x, 0.0)

    def derivative(self, x: np.ndarray, fx: np.ndarray) -> np.ndarray:
        return Logistic().forward(x)


class Identity(Activation):
    """Linear pass-through, used for regression output layers.

    A network whose hidden layers squash to (0, 1) cannot emit arbitrary
    magnitudes; regression MLPs therefore end in an identity layer.
    """

    name = "identity"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=float)

    def derivative(self, x: np.ndarray, fx: np.ndarray) -> np.ndarray:
        return np.ones_like(np.asarray(x, dtype=float))


class HardLimiter(Activation):
    """Step function: 1 if ``x >= 0`` else 0.

    The limit of the logistic as the slope parameter grows (paper Figure 2).
    Not differentiable at 0, so it cannot be trained with back-propagation;
    it exists for the Section 2.2 hand-constructed AND/OR perceptrons.
    """

    name = "hard_limiter"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return (np.asarray(x, dtype=float) >= 0.0).astype(float)

    def derivative(self, x: np.ndarray, fx: np.ndarray) -> np.ndarray:
        raise ValueError(
            "HardLimiter is not differentiable; use Logistic with a large "
            "slope for trainable near-threshold behaviour"
        )


_REGISTRY: Dict[str, Type[Activation]] = {}


def register_activation(cls: Type[Activation]) -> Type[Activation]:
    """Add an :class:`Activation` subclass to the by-name registry."""
    if not issubclass(cls, Activation):
        raise TypeError(f"{cls!r} is not an Activation subclass")
    _REGISTRY[cls.name] = cls
    return cls


for _cls in (Logistic, Tanh, ReLU, LeakyReLU, Softplus, Identity, HardLimiter):
    register_activation(_cls)


def available_activations() -> list:
    """Names accepted by :func:`get_activation`, sorted."""
    return sorted(_REGISTRY)


def get_activation(spec: Union[str, Activation, dict], **kwargs) -> Activation:
    """Resolve an activation from a name, config dict, or instance.

    >>> get_activation("logistic", slope=2.0)
    Logistic(slope=2.0)
    >>> get_activation({"name": "tanh"})
    Tanh()
    """
    if isinstance(spec, Activation):
        if kwargs:
            raise ValueError("cannot pass kwargs with an Activation instance")
        return spec
    if isinstance(spec, dict):
        spec = dict(spec)
        name = spec.pop("name")
        return get_activation(name, **{**spec, **kwargs})
    if spec not in _REGISTRY:
        raise KeyError(
            f"unknown activation {spec!r}; available: {available_activations()}"
        )
    return _REGISTRY[spec](**kwargs)
