"""Weight initializers.

Section 3.1 of the paper notes that "the weights and biases of the network are
initialized with random values when the training process begins" and that a
badly placed initial hyperplane can strand gradient descent in a local
minimum.  The initializers here control that placement explicitly; Glorot
(fan-average) scaling is the default used by :class:`repro.nn.mlp.MLP`
because it keeps initial hyperplanes on the scale of standardized inputs.

All initializers draw from a caller-supplied :class:`numpy.random.Generator`
so that model construction is reproducible.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type, Union

import numpy as np

__all__ = [
    "Initializer",
    "Zeros",
    "Constant",
    "RandomUniform",
    "RandomNormal",
    "GlorotUniform",
    "GlorotNormal",
    "HeNormal",
    "get_initializer",
    "register_initializer",
    "available_initializers",
]


class Initializer:
    """Base class: produce an array of the requested shape."""

    name = "initializer"

    def sample(self, shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        """Return a float array of ``shape`` drawn from this scheme.

        For weight matrices the convention is ``shape = (fan_in, fan_out)``.
        """
        raise NotImplementedError

    def __call__(self, shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        out = self.sample(shape, rng)
        if out.shape != tuple(shape):
            raise ValueError(
                f"{type(self).__name__} produced shape {out.shape}, wanted {shape}"
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"

    def config(self) -> dict:
        return {"name": self.name, **self.__dict__}


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Fan-in / fan-out for a weight shape; vectors count as pure fan-out."""
    if len(shape) == 1:
        return 1, shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    raise ValueError(f"initializers support 1-D or 2-D shapes, got {shape}")


class Zeros(Initializer):
    """All zeros — the conventional choice for biases."""

    name = "zeros"

    def sample(self, shape, rng):
        return np.zeros(shape, dtype=float)


class Constant(Initializer):
    """Every element equal to ``value``."""

    name = "constant"

    def __init__(self, value: float = 0.0):
        self.value = float(value)

    def sample(self, shape, rng):
        return np.full(shape, self.value, dtype=float)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Constant(value={self.value})"


class RandomUniform(Initializer):
    """Uniform on ``[low, high)`` — the paper's generic "random values"."""

    name = "random_uniform"

    def __init__(self, low: float = -0.5, high: float = 0.5):
        if not low < high:
            raise ValueError(f"need low < high, got [{low}, {high})")
        self.low = float(low)
        self.high = float(high)

    def sample(self, shape, rng):
        return rng.uniform(self.low, self.high, size=shape)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RandomUniform(low={self.low}, high={self.high})"


class RandomNormal(Initializer):
    """Gaussian with the given mean and standard deviation."""

    name = "random_normal"

    def __init__(self, mean: float = 0.0, stddev: float = 0.1):
        if stddev <= 0:
            raise ValueError(f"stddev must be positive, got {stddev}")
        self.mean = float(mean)
        self.stddev = float(stddev)

    def sample(self, shape, rng):
        return rng.normal(self.mean, self.stddev, size=shape)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RandomNormal(mean={self.mean}, stddev={self.stddev})"


class GlorotUniform(Initializer):
    """Uniform on ``±sqrt(6 / (fan_in + fan_out))`` (Glorot & Bengio)."""

    name = "glorot_uniform"

    def sample(self, shape, rng):
        fan_in, fan_out = _fans(shape)
        limit = np.sqrt(6.0 / (fan_in + fan_out))
        return rng.uniform(-limit, limit, size=shape)


class GlorotNormal(Initializer):
    """Gaussian with variance ``2 / (fan_in + fan_out)``."""

    name = "glorot_normal"

    def sample(self, shape, rng):
        fan_in, fan_out = _fans(shape)
        stddev = np.sqrt(2.0 / (fan_in + fan_out))
        return rng.normal(0.0, stddev, size=shape)


class HeNormal(Initializer):
    """Gaussian with variance ``2 / fan_in``, suited to rectifier activations."""

    name = "he_normal"

    def sample(self, shape, rng):
        fan_in, _ = _fans(shape)
        return rng.normal(0.0, np.sqrt(2.0 / max(fan_in, 1)), size=shape)


_REGISTRY: Dict[str, Type[Initializer]] = {}


def register_initializer(cls: Type[Initializer]) -> Type[Initializer]:
    """Add an :class:`Initializer` subclass to the by-name registry."""
    if not issubclass(cls, Initializer):
        raise TypeError(f"{cls!r} is not an Initializer subclass")
    _REGISTRY[cls.name] = cls
    return cls


for _cls in (
    Zeros,
    Constant,
    RandomUniform,
    RandomNormal,
    GlorotUniform,
    GlorotNormal,
    HeNormal,
):
    register_initializer(_cls)


def available_initializers() -> list:
    """Names accepted by :func:`get_initializer`, sorted."""
    return sorted(_REGISTRY)


def get_initializer(spec: Union[str, Initializer, dict], **kwargs) -> Initializer:
    """Resolve an initializer from a name, config dict, or instance."""
    if isinstance(spec, Initializer):
        if kwargs:
            raise ValueError("cannot pass kwargs with an Initializer instance")
        return spec
    if isinstance(spec, dict):
        spec = dict(spec)
        name = spec.pop("name")
        return get_initializer(name, **{**spec, **kwargs})
    if spec not in _REGISTRY:
        raise KeyError(
            f"unknown initializer {spec!r}; available: {available_initializers()}"
        )
    return _REGISTRY[spec](**kwargs)
