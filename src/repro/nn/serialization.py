"""Saving and loading trained networks.

The paper notes that "learned knowledge is kept in MLPs by memorizing their
weights and biases" (Section 2.2); this module persists exactly that — the
structural config plus the flat parameter vector — as a single JSON document,
so a characterized workload model can be shipped to performance engineers
without retraining.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from .mlp import MLP

__all__ = ["to_dict", "from_dict", "save_mlp", "load_mlp", "FORMAT_VERSION"]

#: Bumped whenever the on-disk layout changes incompatibly.
FORMAT_VERSION = 1


def to_dict(model: MLP) -> dict:
    """Serialize an MLP (structure + parameters) to plain JSON-able types."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "mlp",
        "config": model.config(),
        "parameters": model.get_flat_params().tolist(),
    }


def from_dict(payload: dict) -> MLP:
    """Inverse of :func:`to_dict`."""
    if not isinstance(payload, dict):
        raise TypeError(f"expected dict, got {type(payload).__name__}")
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported format_version {version!r} (expected {FORMAT_VERSION})"
        )
    if payload.get("kind") != "mlp":
        raise ValueError(f"unsupported kind {payload.get('kind')!r}")
    model = MLP.from_config(payload["config"])
    params = np.asarray(payload["parameters"], dtype=float)
    model.set_flat_params(params)
    return model


def save_mlp(model: MLP, path: Union[str, Path]) -> Path:
    """Write the model to ``path`` as JSON; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(to_dict(model)))
    return path


def load_mlp(path: Union[str, Path]) -> MLP:
    """Read a model previously written by :func:`save_mlp`."""
    payload = json.loads(Path(path).read_text())
    return from_dict(payload)
