"""Input Jacobians of a trained network.

The paper concedes that with a neural model "it is hard to perform a
quantitative analysis for a complete understanding of the individual
contribution of a particular feature to the output" (Section 5.3).  That
analytical power can be recovered after the fact: the same back-propagation
machinery that trains the network computes exact partial derivatives of
every output with respect to every *input*, giving local effect estimates —
"one more web thread changes dealer purchase latency by ∂y/∂x seconds" —
at any operating point.

:func:`input_jacobian` works on any model exposing the
``forward(x, remember=True)`` / ``backward(grad)`` protocol of
:class:`~repro.nn.mlp.MLP`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["input_jacobian", "finite_difference_jacobian"]


def input_jacobian(model, x: np.ndarray) -> np.ndarray:
    """Exact Jacobians ``J[s, j, i] = d output_j / d input_i`` at each sample.

    One forward pass plus one backward pass per output column.

    Parameters
    ----------
    model:
        A network with ``n_inputs`` / ``n_outputs`` attributes and the
        forward/backward protocol.
    x:
        Input batch of shape ``(n_samples, n_inputs)`` (or a single sample).

    Returns
    -------
    ndarray of shape ``(n_samples, n_outputs, n_inputs)``.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim == 1:
        x = x.reshape(1, -1)
    n_samples = x.shape[0]
    n_outputs = model.n_outputs
    jacobian = np.empty((n_samples, n_outputs, model.n_inputs))
    for j in range(n_outputs):
        # Re-run forward per output so layer caches match each backward.
        output = model.forward(x, remember=True)
        if output.shape != (n_samples, n_outputs):
            raise ValueError(
                f"model produced shape {output.shape}, expected "
                f"({n_samples}, {n_outputs})"
            )
        seed = np.zeros((n_samples, n_outputs))
        seed[:, j] = 1.0
        jacobian[:, j, :] = model.backward(seed)
    return jacobian


def finite_difference_jacobian(
    predict, x: np.ndarray, epsilon: float = 1e-6
) -> np.ndarray:
    """Central-difference Jacobian of any ``predict`` callable.

    The generic fallback for models without a backward pass, and the
    verification oracle for :func:`input_jacobian`.  ``predict`` must map
    ``(n, d)`` to ``(n, m)``.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim == 1:
        x = x.reshape(1, -1)
    base = np.asarray(predict(x), dtype=float)
    n_samples, n_outputs = base.shape
    jacobian = np.empty((n_samples, n_outputs, x.shape[1]))
    for i in range(x.shape[1]):
        bump = np.zeros_like(x)
        bump[:, i] = epsilon
        plus = np.asarray(predict(x + bump), dtype=float)
        minus = np.asarray(predict(x - bump), dtype=float)
        jacobian[:, :, i] = (plus - minus) / (2.0 * epsilon)
    return jacobian
