"""Training loop, stopping rules and callbacks.

Paper hooks implemented here:

* Section 2.2 — "this process is repeated over all the training samples until
  a desired error threshold is met": :class:`ErrorThreshold` stops training
  when the epoch's training loss drops below a target.
* Section 3.3 — "it is better to loosely fit to the training sample to
  maintain the flexibility of a model. A threshold value is needed to
  indicate when to stop training": the same mechanism, with the threshold
  chosen deliberately loose; :class:`EarlyStopping` additionally supports the
  modern patience-on-validation variant for the ablation benches.

The :class:`Trainer` runs epochs of (optionally mini-batched) gradient
descent on any model exposing the flat-parameter protocol of
:class:`repro.nn.mlp.MLP` and records a :class:`History` of losses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .losses import Loss, get_loss
from .optimizers import Optimizer, get_optimizer

__all__ = [
    "History",
    "StoppingRule",
    "ErrorThreshold",
    "EarlyStopping",
    "MaxEpochs",
    "Trainer",
    "TrainingResult",
    "TrainingDivergedError",
]


class TrainingDivergedError(RuntimeError):
    """Training loss went non-finite (NaN/inf) — the run has diverged.

    Raised by the :class:`Trainer`'s NaN guard so a runaway learning rate
    fails loudly at the offending epoch instead of silently producing a
    NaN model that poisons every downstream prediction.
    """

    def __init__(self, epoch: int, loss: float):
        self.epoch = int(epoch)
        self.loss = float(loss)
        super().__init__(
            f"training diverged at epoch {self.epoch}: loss became {self.loss}"
        )


@dataclass
class History:
    """Per-epoch record of a training run."""

    train_loss: List[float] = field(default_factory=list)
    validation_loss: List[float] = field(default_factory=list)
    learning_rate: List[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        """Number of completed epochs."""
        return len(self.train_loss)

    @property
    def final_train_loss(self) -> float:
        """Training loss after the last epoch (NaN if never trained)."""
        return self.train_loss[-1] if self.train_loss else math.nan

    @property
    def final_validation_loss(self) -> float:
        """Validation loss after the last epoch (NaN if not tracked)."""
        return self.validation_loss[-1] if self.validation_loss else math.nan

    @property
    def best_validation_epoch(self) -> Optional[int]:
        """0-based epoch with the lowest validation loss, if tracked."""
        if not self.validation_loss:
            return None
        return int(np.argmin(self.validation_loss))


@dataclass
class TrainingResult:
    """What :meth:`Trainer.fit` returns."""

    history: History
    stopped_by: str
    epochs_run: int


class StoppingRule:
    """Decides after each epoch whether training should stop."""

    name = "stopping_rule"

    def begin(self) -> None:
        """Reset internal state at the start of a run."""

    def should_stop(self, history: History) -> bool:
        """Called after each epoch with the run-so-far history."""
        raise NotImplementedError


class MaxEpochs(StoppingRule):
    """Stop after a fixed number of epochs (always active as a backstop)."""

    name = "max_epochs"

    def __init__(self, limit: int):
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        self.limit = int(limit)

    def should_stop(self, history: History) -> bool:
        return history.epochs >= self.limit


class ErrorThreshold(StoppingRule):
    """The paper's stopping rule: stop once training loss <= threshold.

    A *loose* (large) threshold under-fits on purpose, preserving model
    flexibility for unseen configurations (paper Section 3.3 and the visible
    slack in Figure 5).
    """

    name = "error_threshold"

    def __init__(self, threshold: float):
        if threshold < 0:
            raise ValueError(f"threshold must be non-negative, got {threshold}")
        self.threshold = float(threshold)

    def should_stop(self, history: History) -> bool:
        return bool(history.train_loss) and history.final_train_loss <= self.threshold

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ErrorThreshold({self.threshold})"


class EarlyStopping(StoppingRule):
    """Patience-based stopping on validation loss.

    Stops when the validation loss has not improved by at least ``min_delta``
    for ``patience`` consecutive epochs.  Requires validation data to be
    passed to :meth:`Trainer.fit`.
    """

    name = "early_stopping"

    def __init__(self, patience: int = 20, min_delta: float = 0.0):
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        if min_delta < 0:
            raise ValueError(f"min_delta must be non-negative, got {min_delta}")
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self._best = math.inf
        self._stale = 0

    def begin(self) -> None:
        self._best = math.inf
        self._stale = 0

    def should_stop(self, history: History) -> bool:
        if not history.validation_loss:
            raise RuntimeError(
                "EarlyStopping requires validation data; pass validation_data "
                "to Trainer.fit"
            )
        current = history.final_validation_loss
        if current < self._best - self.min_delta:
            self._best = current
            self._stale = 0
        else:
            self._stale += 1
        return self._stale >= self.patience


#: Signature of an epoch-end callback: (epoch index, history) -> None.
EpochCallback = Callable[[int, History], None]


class Trainer:
    """Epoch-driven gradient-descent training for flat-parameter models.

    Parameters
    ----------
    model:
        Any object with ``forward(x, remember=True)``, ``backward(grad)``,
        ``get_flat_params()``, ``set_flat_params()`` and
        ``get_flat_grads()`` — i.e. :class:`~repro.nn.mlp.MLP` and friends.
    loss:
        Loss name/instance (default MSE, the paper's objective).
    optimizer:
        Optimizer name/instance (default plain SGD with rate 0.05).
    batch_size:
        Samples per gradient step; ``None`` means full-batch descent.
    l2:
        Optional weight-decay coefficient added to the gradient
        (``l2 * params``), a standard overfitting guard.
    shuffle:
        Shuffle sample order each epoch (mini-batch mode only).
    seed:
        Seed for the shuffling generator.
    nan_guard:
        When ``True`` (default), raise :class:`TrainingDivergedError` the
        first epoch the training loss goes non-finite rather than looping
        (and possibly "converging") on NaN.
    """

    def __init__(
        self,
        model,
        loss: Union[str, Loss] = "mse",
        optimizer: Union[str, Optimizer] = None,
        batch_size: Optional[int] = None,
        l2: float = 0.0,
        shuffle: bool = True,
        seed: Optional[int] = None,
        nan_guard: bool = True,
    ):
        self.model = model
        self.loss = get_loss(loss)
        if optimizer is None:
            optimizer = get_optimizer("sgd", learning_rate=0.05)
        self.optimizer = get_optimizer(optimizer)
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size
        if l2 < 0:
            raise ValueError(f"l2 must be non-negative, got {l2}")
        self.l2 = float(l2)
        self.shuffle = bool(shuffle)
        self.nan_guard = bool(nan_guard)
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        max_epochs: int = 1000,
        stopping: Optional[Union[StoppingRule, Sequence[StoppingRule]]] = None,
        validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        callbacks: Optional[Sequence[EpochCallback]] = None,
        initial_params: Optional[np.ndarray] = None,
    ) -> TrainingResult:
        """Train until a stopping rule fires or ``max_epochs`` elapse.

        ``initial_params`` warm-starts the run: the flat parameter vector
        (e.g. from a previously-trained network's ``get_flat_params()``)
        is installed before the first epoch, so a retrain on drifted data
        descends from the incumbent solution instead of a random
        initialization.  Returns a :class:`TrainingResult` naming the rule
        that ended the run (``"max_epochs"`` when none fired earlier).
        """
        x, y = self._validate_data(x, y)
        if initial_params is not None:
            initial_params = np.asarray(initial_params, dtype=float).ravel()
            current = self.model.get_flat_params()
            if initial_params.shape != current.shape:
                raise ValueError(
                    f"initial_params has {initial_params.size} values but "
                    f"the model has {current.size} parameters"
                )
            self.model.set_flat_params(initial_params)
        if validation_data is not None:
            x_val, y_val = self._validate_data(*validation_data)
        rules = self._normalize_rules(stopping, max_epochs)
        for rule in rules:
            rule.begin()
        self.optimizer.reset()
        history = History()
        stopped_by = "max_epochs"
        callbacks = list(callbacks or [])

        for epoch in range(max_epochs):
            epoch_loss = self._run_epoch(x, y, epoch=epoch)
            history.train_loss.append(epoch_loss)
            history.learning_rate.append(
                self.optimizer.schedule(max(self.optimizer.step_count - 1, 0))
            )
            if validation_data is not None:
                predicted = self.model.predict(x_val)
                history.validation_loss.append(self.loss.value(predicted, y_val))
            for callback in callbacks:
                callback(epoch, history)
            fired = next(
                (rule for rule in rules if rule.should_stop(history)), None
            )
            if fired is not None:
                stopped_by = fired.name
                break

        return TrainingResult(
            history=history, stopped_by=stopped_by, epochs_run=history.epochs
        )

    # ------------------------------------------------------------------

    def _run_epoch(
        self, x: np.ndarray, y: np.ndarray, epoch: int = 0
    ) -> float:
        """One pass over the data; returns the post-update full-data loss."""
        n = x.shape[0]
        if self.batch_size is None or self.batch_size >= n:
            batches = [(x, y)]
        else:
            order = np.arange(n)
            if self.shuffle:
                self._rng.shuffle(order)
            batches = [
                (x[order[i : i + self.batch_size]], y[order[i : i + self.batch_size]])
                for i in range(0, n, self.batch_size)
            ]
        for batch_x, batch_y in batches:
            predicted = self.model.forward(batch_x, remember=True)
            grad = self.loss.gradient(predicted, batch_y)
            self.model.backward(grad)
            params = self.model.get_flat_params()
            grads = self.model.get_flat_grads()
            if self.l2:
                grads = grads + self.l2 * params
            self.model.set_flat_params(self.optimizer.step(params, grads))
        epoch_loss = self.evaluate(x, y)
        if self.nan_guard and not math.isfinite(epoch_loss):
            raise TrainingDivergedError(epoch, epoch_loss)
        return epoch_loss

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean loss of the current model on ``(x, y)``."""
        x, y = self._validate_data(x, y)
        return self.loss.value(self.model.predict(x), y)

    def _validate_data(self, x, y) -> Tuple[np.ndarray, np.ndarray]:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim == 1:
            x = x.reshape(-1, 1)
        if y.ndim == 1:
            y = y.reshape(-1, 1)
        if x.ndim != 2 or y.ndim != 2:
            raise ValueError(
                f"x and y must be 1-D or 2-D, got {x.shape} and {y.shape}"
            )
        if x.shape[0] != y.shape[0]:
            raise ValueError(
                f"x has {x.shape[0]} samples but y has {y.shape[0]}"
            )
        if x.shape[0] == 0:
            raise ValueError("cannot train on an empty sample set")
        return x, y

    @staticmethod
    def _normalize_rules(stopping, max_epochs: int) -> List[StoppingRule]:
        if stopping is None:
            rules: List[StoppingRule] = []
        elif isinstance(stopping, StoppingRule):
            rules = [stopping]
        else:
            rules = list(stopping)
        for rule in rules:
            if not isinstance(rule, StoppingRule):
                raise TypeError(f"{rule!r} is not a StoppingRule")
        return rules
