"""From-scratch neural-network library (NumPy only).

Implements the machinery the paper relies on: perceptrons, multilayer
perceptrons with logistic activations, gradient-descent back-propagation,
error-threshold ("loose fit") stopping, plus the RBF and logarithmic-network
relatives it cites.  See :mod:`repro.models.neural` for the workload-facing
wrapper.
"""

from .activations import (
    Activation,
    HardLimiter,
    Identity,
    LeakyReLU,
    Logistic,
    ReLU,
    Softplus,
    Tanh,
    available_activations,
    get_activation,
)
from .gradcheck import GradientCheckReport, check_gradients, numerical_gradient
from .jacobian import finite_difference_jacobian, input_jacobian
from .initializers import (
    Constant,
    GlorotNormal,
    GlorotUniform,
    HeNormal,
    Initializer,
    RandomNormal,
    RandomUniform,
    Zeros,
    available_initializers,
    get_initializer,
)
from .layers import Dense
from .logarithmic import LogarithmicNetwork
from .losses import (
    Huber,
    Loss,
    MeanAbsoluteError,
    MeanSquaredError,
    Pinball,
    available_losses,
    get_loss,
)
from .mlp import MLP
from .optimizers import (
    SGD,
    Adam,
    ConstantSchedule,
    ExponentialDecay,
    LearningRateSchedule,
    Momentum,
    Nesterov,
    Optimizer,
    RMSProp,
    StepDecay,
    available_optimizers,
    get_optimizer,
)
from .perceptron import (
    AxisAlignedConfinement,
    Perceptron,
    and_perceptron,
    confinement_network,
    not_perceptron,
    or_perceptron,
)
from .rbf import RBFNetwork, kmeans
from .serialization import from_dict, load_mlp, save_mlp, to_dict
from .training import (
    EarlyStopping,
    ErrorThreshold,
    History,
    MaxEpochs,
    StoppingRule,
    Trainer,
    TrainingResult,
)

__all__ = [
    # activations
    "Activation",
    "Logistic",
    "Tanh",
    "ReLU",
    "LeakyReLU",
    "Softplus",
    "Identity",
    "HardLimiter",
    "get_activation",
    "available_activations",
    # initializers
    "Initializer",
    "Zeros",
    "Constant",
    "RandomUniform",
    "RandomNormal",
    "GlorotUniform",
    "GlorotNormal",
    "HeNormal",
    "get_initializer",
    "available_initializers",
    # losses
    "Loss",
    "MeanSquaredError",
    "MeanAbsoluteError",
    "Huber",
    "Pinball",
    "get_loss",
    "available_losses",
    # layers / networks
    "Dense",
    "MLP",
    "Perceptron",
    "AxisAlignedConfinement",
    "and_perceptron",
    "or_perceptron",
    "not_perceptron",
    "confinement_network",
    "RBFNetwork",
    "kmeans",
    "LogarithmicNetwork",
    # optimizers
    "Optimizer",
    "SGD",
    "Momentum",
    "Nesterov",
    "RMSProp",
    "Adam",
    "LearningRateSchedule",
    "ConstantSchedule",
    "StepDecay",
    "ExponentialDecay",
    "get_optimizer",
    "available_optimizers",
    # training
    "Trainer",
    "TrainingResult",
    "History",
    "StoppingRule",
    "ErrorThreshold",
    "EarlyStopping",
    "MaxEpochs",
    # verification / persistence
    "input_jacobian",
    "finite_difference_jacobian",
    "check_gradients",
    "numerical_gradient",
    "GradientCheckReport",
    "save_mlp",
    "load_mlp",
    "to_dict",
    "from_dict",
]
