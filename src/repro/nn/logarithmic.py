"""Logarithmic network for unbounded extrapolation (paper ref [23]).

Section 5.3 of the paper concedes that "neural network models cannot be used
for extrapolation ... the prediction accuracy of MLPs drop rapidly outside
the range of training data" and points to Hines's logarithmic neural network
(ICNN 1996) as the proposed remedy.  This module implements a network in that
spirit so the extrapolation bench can demonstrate both the failure and the
fix.

Design: inputs are shifted to be strictly positive and mapped through
``log``; the hidden layer uses the *softplus* activation, which is smooth but
asymptotically **linear** rather than saturating; the output is linear.  A
function that is asymptotically a power law or logarithm in the original
space is asymptotically linear in log space, so the network keeps producing
sensible, unbounded predictions outside the training range — exactly the
property the sigmoid MLP lacks.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from .mlp import MLP
from .optimizers import Optimizer, get_optimizer
from .training import ErrorThreshold, Trainer

__all__ = ["LogarithmicNetwork"]


class LogarithmicNetwork:
    """Log-feature MLP with non-saturating hidden units.

    Parameters
    ----------
    n_inputs, n_outputs:
        Dimensions of the mapping.
    hidden:
        Hidden-layer sizes (default one layer of 16).
    include_linear_features:
        Also feed the raw (shifted) inputs beside their logs, letting the
        network mix additive and multiplicative structure.
    seed:
        Seed for parameter initialization.
    """

    def __init__(
        self,
        n_inputs: int,
        n_outputs: int,
        hidden: Sequence[int] = (16,),
        include_linear_features: bool = True,
        seed: Optional[int] = None,
    ):
        if n_inputs < 1 or n_outputs < 1:
            raise ValueError("n_inputs and n_outputs must be >= 1")
        self.n_inputs = int(n_inputs)
        self.n_outputs = int(n_outputs)
        self.include_linear_features = bool(include_linear_features)
        n_features = n_inputs * (2 if include_linear_features else 1)
        self.net = MLP(
            [n_features, *hidden, n_outputs],
            hidden_activation="softplus",
            output_activation="identity",
            seed=seed,
        )
        self._shift: Optional[np.ndarray] = None

    # ------------------------------------------------------------------

    def _features(self, x: np.ndarray) -> np.ndarray:
        if self._shift is None:
            raise RuntimeError("features requested before fit()")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[1] != self.n_inputs:
            raise ValueError(
                f"expected {self.n_inputs} inputs per sample, got {x.shape[1]}"
            )
        shifted = np.maximum(x + self._shift, 1e-9)
        logs = np.log(shifted)
        if self.include_linear_features:
            return np.column_stack([logs, shifted])
        return logs

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        max_epochs: int = 2000,
        error_threshold: Optional[float] = None,
        optimizer: Union[str, Optimizer, None] = None,
    ) -> "LogarithmicNetwork":
        """Learn the shift from the data and train the underlying MLP."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        # Shift each input so the training minimum maps to 1 (log -> 0).
        self._shift = 1.0 - x.min(axis=0)
        if optimizer is None:
            optimizer = get_optimizer("adam", learning_rate=0.01)
        trainer = Trainer(self.net, optimizer=optimizer, seed=0)
        stopping = (
            [ErrorThreshold(error_threshold)]
            if error_threshold is not None
            else None
        )
        trainer.fit(self._features(x), y, max_epochs=max_epochs, stopping=stopping)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the network; valid well outside the training range."""
        return self.net.predict(self._features(x))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LogarithmicNetwork({self.n_inputs} -> {self.n_outputs}, "
            f"net={self.net!r})"
        )
