"""Fully-connected layers with explicit forward/backward passes.

A :class:`Dense` layer is a bank of perceptrons (paper Figure 1): each output
unit computes a weighted sum of the layer inputs minus a threshold and passes
it through an activation function.  Following common practice we store the
threshold as an additive *bias* ``b`` (so the paper's ``w0`` is ``-b``).

The backward pass implements one step of the chain rule used by
back-propagation (paper Section 2.2); gradients are accumulated into
``grad_weights`` / ``grad_bias`` and the gradient with respect to the layer
input is returned so preceding layers can continue the recursion.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .activations import Activation, get_activation
from .initializers import Initializer, get_initializer

__all__ = ["Dense"]


class Dense:
    """A fully-connected layer: ``output = f(input @ W + b)``.

    Parameters
    ----------
    in_features:
        Dimension of the input vectors.
    out_features:
        Number of perceptrons in the layer.
    activation:
        Activation name/instance (default ``"logistic"``, the paper's choice).
    weight_init, bias_init:
        Initializer names/instances for ``W`` (shape ``(in, out)``) and ``b``
        (shape ``(out,)``).
    rng:
        Random generator used to draw the initial parameters.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: Union[str, Activation] = "logistic",
        weight_init: Union[str, Initializer] = "glorot_uniform",
        bias_init: Union[str, Initializer] = "zeros",
        rng: Optional[np.random.Generator] = None,
    ):
        if in_features < 1:
            raise ValueError(f"in_features must be >= 1, got {in_features}")
        if out_features < 1:
            raise ValueError(f"out_features must be >= 1, got {out_features}")
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.activation = get_activation(activation)
        self._weight_init = get_initializer(weight_init)
        self._bias_init = get_initializer(bias_init)
        if rng is None:
            rng = np.random.default_rng()
        self.weights = self._weight_init((self.in_features, self.out_features), rng)
        self.bias = self._bias_init((self.out_features,), rng)
        self.grad_weights = np.zeros_like(self.weights)
        self.grad_bias = np.zeros_like(self.bias)
        self._cache_input: Optional[np.ndarray] = None
        self._cache_pre: Optional[np.ndarray] = None
        self._cache_out: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # forward / backward
    # ------------------------------------------------------------------

    def forward(self, inputs: np.ndarray, remember: bool = True) -> np.ndarray:
        """Apply the layer to a batch of shape ``(n_samples, in_features)``.

        When ``remember`` is true the input, pre-activation and output are
        cached for the subsequent :meth:`backward` call; prediction-only
        passes should pass ``remember=False`` to skip the bookkeeping.
        """
        inputs = np.asarray(inputs, dtype=float)
        if inputs.ndim != 2 or inputs.shape[1] != self.in_features:
            raise ValueError(
                f"expected input of shape (n, {self.in_features}), "
                f"got {inputs.shape}"
            )
        pre = inputs @ self.weights + self.bias
        out = self.activation.forward(pre)
        if remember:
            self._cache_input = inputs
            self._cache_pre = pre
            self._cache_out = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate ``dL/d(output)`` through the layer.

        Stores ``dL/dW`` and ``dL/db`` on the layer and returns
        ``dL/d(input)`` for the preceding layer.  Requires a prior
        :meth:`forward` call with ``remember=True``.
        """
        if self._cache_input is None:
            raise RuntimeError("backward() called before forward(remember=True)")
        grad_output = np.asarray(grad_output, dtype=float)
        if grad_output.shape != self._cache_out.shape:
            raise ValueError(
                f"grad_output shape {grad_output.shape} != "
                f"forward output shape {self._cache_out.shape}"
            )
        grad_pre = grad_output * self.activation.derivative(
            self._cache_pre, self._cache_out
        )
        self.grad_weights = self._cache_input.T @ grad_pre
        self.grad_bias = grad_pre.sum(axis=0)
        return grad_pre @ self.weights.T

    # ------------------------------------------------------------------
    # parameter plumbing
    # ------------------------------------------------------------------

    @property
    def num_params(self) -> int:
        """Total trainable scalars (weights plus biases)."""
        return self.weights.size + self.bias.size

    def parameters(self) -> list:
        """The trainable arrays, weights first."""
        return [self.weights, self.bias]

    def gradients(self) -> list:
        """Gradients in the same order as :meth:`parameters`."""
        return [self.grad_weights, self.grad_bias]

    def set_parameters(self, weights: np.ndarray, bias: np.ndarray) -> None:
        """Replace both parameter arrays (shapes must match)."""
        weights = np.asarray(weights, dtype=float)
        bias = np.asarray(bias, dtype=float)
        if weights.shape != self.weights.shape:
            raise ValueError(
                f"weights shape {weights.shape} != {self.weights.shape}"
            )
        if bias.shape != self.bias.shape:
            raise ValueError(f"bias shape {bias.shape} != {self.bias.shape}")
        self.weights = weights.copy()
        self.bias = bias.copy()

    def reset(self, rng: np.random.Generator) -> None:
        """Re-draw the initial parameters (used by repeated CV trials)."""
        self.weights = self._weight_init(
            (self.in_features, self.out_features), rng
        )
        self.bias = self._bias_init((self.out_features,), rng)
        self.grad_weights = np.zeros_like(self.weights)
        self.grad_bias = np.zeros_like(self.bias)
        self._cache_input = self._cache_pre = self._cache_out = None

    def config(self) -> dict:
        """Serializable layer description (without parameter values)."""
        return {
            "in_features": self.in_features,
            "out_features": self.out_features,
            "activation": self.activation.config(),
            "weight_init": self._weight_init.config(),
            "bias_init": self._bias_init.config(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Dense({self.in_features} -> {self.out_features}, "
            f"activation={self.activation!r})"
        )
