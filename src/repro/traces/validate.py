"""Validation: replay the emitted scenario and compare sim-vs-trace moments.

The fourth factory stage closes the loop.  The emitted family is replayed
through the simulator (:func:`repro.traces.replay.replay_family`) for the
trace's own horizon and the generated process is compared with the
original trace on the moments that matter for workload characterization:

* arrival **rate** (gating, default 10% tolerance),
* **p95** service time (gating, default 10%),
* **p50** service time (gating, looser),
* inter-arrival **CV** (reported, non-gating — it measures burstiness the
  fitted renewal process can only approximate).

The pass/fail verdict is deterministic for a fixed seed — the acceptance
contract of ``repro-ingest validate``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .etl import IngestedTrace
from .family import ScenarioFamily
from .replay import ReplayResult, replay_family

__all__ = ["TraceMoments", "MomentCheck", "ValidationReport", "validate_family"]


@dataclass(frozen=True)
class TraceMoments:
    """The compared moments of one arrival/service process."""

    rate: float
    interarrival_cv: float
    service_p50: float
    service_p95: float
    n_arrivals: int

    @classmethod
    def from_trace(cls, trace: IngestedTrace) -> "TraceMoments":
        gaps = trace.interarrivals()
        gaps = gaps[gaps > 0]
        # Quantized timestamps (coarse log stamps) make the gap-level CV
        # an artifact of the stamp resolution: report it as missing.
        if trace.zero_gap_fraction() > 0.25 or gaps.size < 2 or gaps.mean() <= 0:
            cv = float("nan")
        else:
            cv = float(gaps.std() / gaps.mean())
        services = trace.service_samples
        return cls(
            rate=trace.mean_rate(),
            interarrival_cv=cv,
            service_p50=(
                float(np.percentile(services, 50)) if services.size else float("nan")
            ),
            service_p95=(
                float(np.percentile(services, 95)) if services.size else float("nan")
            ),
            n_arrivals=len(trace),
        )

    @classmethod
    def from_replay(cls, replay: ReplayResult) -> "TraceMoments":
        return cls(
            rate=replay.mean_rate(),
            interarrival_cv=replay.interarrival_cv(),
            service_p50=replay.service_percentile(50),
            service_p95=replay.service_percentile(95),
            n_arrivals=replay.n_arrivals,
        )


@dataclass
class MomentCheck:
    """One compared moment with its verdict."""

    name: str
    trace: float
    sim: float
    tolerance: float
    #: Non-gating checks are reported but never fail the run.
    gating: bool = True

    @property
    def rel_error(self) -> float:
        """``|sim - trace| / |trace|`` (NaN when either side is missing)."""
        if not np.isfinite(self.trace) or not np.isfinite(self.sim):
            return float("nan")
        denominator = max(abs(self.trace), 1e-12)
        return abs(self.sim - self.trace) / denominator

    @property
    def passed(self) -> bool:
        """Within tolerance; a moment missing on *both* sides passes
        vacuously (a trace without durations has no service moments),
        missing on one side fails."""
        if not np.isfinite(self.trace) and not np.isfinite(self.sim):
            return True
        return np.isfinite(self.rel_error) and self.rel_error <= self.tolerance

    def describe(self) -> str:
        status = "ok" if self.passed else "FAIL"
        if not self.gating:
            status += " (informational)"
        return (
            f"{self.name:<16} trace={self.trace:#.4g}  sim={self.sim:#.4g}  "
            f"err={100 * self.rel_error:.1f}%  tol={100 * self.tolerance:.0f}%"
            f"  [{status}]"
        )


@dataclass
class ValidationReport:
    """The sim-vs-trace verdict for one emitted family."""

    family: str
    seed: int
    checks: List[MomentCheck] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """Every *gating* check within tolerance."""
        return all(c.passed for c in self.checks if c.gating)

    def to_dict(self) -> dict:
        return {
            "family": self.family,
            "seed": self.seed,
            "passed": self.passed,
            "checks": [
                {
                    "name": c.name,
                    "trace": c.trace,
                    "sim": c.sim,
                    "rel_error": c.rel_error,
                    "tolerance": c.tolerance,
                    "gating": c.gating,
                    "passed": c.passed,
                }
                for c in self.checks
            ],
        }

    def to_text(self) -> str:
        lines = [
            f"validation of scenario family {self.family!r} (seed {self.seed})"
        ]
        lines += ["  " + check.describe() for check in self.checks]
        lines.append(f"verdict: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)


def validate_family(
    family: ScenarioFamily,
    trace: IngestedTrace,
    seed: int = 0,
    tolerance: float = 0.10,
    p50_tolerance: Optional[float] = None,
    replay: Optional[ReplayResult] = None,
) -> ValidationReport:
    """Replay ``family`` and compare it against the trace it came from.

    ``tolerance`` gates the arrival rate and the p95 service time;
    ``p50_tolerance`` (default ``1.5 x tolerance``) gates the median.
    Pass a precomputed ``replay`` to validate an existing run instead of
    generating a fresh one.
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance}")
    if p50_tolerance is None:
        p50_tolerance = 1.5 * tolerance
    if replay is None:
        horizon = trace.duration if trace.duration > 0 else None
        replay = replay_family(family, seed=seed, duration=horizon)
    want = TraceMoments.from_trace(trace)
    got = TraceMoments.from_replay(replay)
    checks = [
        MomentCheck("arrival_rate", want.rate, got.rate, tolerance),
        MomentCheck(
            "service_p95", want.service_p95, got.service_p95, tolerance
        ),
        MomentCheck(
            "service_p50", want.service_p50, got.service_p50, p50_tolerance
        ),
    ]
    if np.isfinite(want.interarrival_cv):
        checks.append(
            MomentCheck(
                "interarrival_cv",
                want.interarrival_cv,
                got.interarrival_cv,
                0.5,
                gating=False,
            )
        )
    return ValidationReport(family=family.name, seed=int(seed), checks=checks)
