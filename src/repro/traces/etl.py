"""Trace ETL: stream real request logs into arrival/service samples.

The first stage of the trace factory (ETL -> fit -> emit -> validate).
Two on-disk formats are understood:

* **Common Log Format** access logs (``host ident user [ts] "request"
  status bytes``), with the widespread extensions tolerated: quoted
  referer/user-agent fields are ignored and a trailing numeric field (the
  nginx ``$request_time`` convention) is read as the request's service
  time in seconds.  The transaction class is derived from the first
  path segment of the request line (``/browse/342`` -> ``browse``).
* **CSV job traces** with a ``timestamp,class,service_time`` header —
  the factory's canonical interchange format, also produced by
  :meth:`repro.lifecycle.observations.ObservationLog.export_trace` and
  :func:`repro.traces.synthetic.generate_synthetic_trace`.

Parsing is streaming (one line at a time, never the whole file) and
malformed-input tolerant: a truncated line, an unparsable timestamp, an
out-of-order arrival or a negative duration *skips the record and counts
it* — ingestion never raises on dirty data.  Timestamps are normalized so
the first accepted arrival is t = 0, and :meth:`IngestedTrace.windows`
aggregates arrivals into fixed-width windows (arrival counts + service
samples per window) for piecewise fitting.
"""

from __future__ import annotations

import csv
import re
from dataclasses import dataclass, field
from datetime import date
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

__all__ = [
    "TraceRecord",
    "IngestStats",
    "TraceWindow",
    "IngestedTrace",
    "parse_clf_line",
    "iter_clf",
    "iter_csv",
    "ingest",
    "CSV_HEADER",
]

#: Canonical CSV trace header (the interchange format).
CSV_HEADER = ["timestamp", "class", "service_time"]

_CLF_PATTERN = re.compile(
    r'^(\S+) (\S+) (\S+) \[([^\]]+)\] "([^"]*)" (\d{3}) (\S+)'
    r'(?: "[^"]*" "[^"]*")?'  # combined-format referer + user-agent
    r"(?: (\S+))?\s*$"  # optional trailing request duration (seconds)
)

_MONTHS = {
    "Jan": 1, "Feb": 2, "Mar": 3, "Apr": 4, "May": 5, "Jun": 6,
    "Jul": 7, "Aug": 8, "Sep": 9, "Oct": 10, "Nov": 11, "Dec": 12,
}

#: Proleptic-ordinal of 1970-01-01 (the Unix epoch).
_EPOCH_ORDINAL = 719163


@dataclass(frozen=True)
class TraceRecord:
    """One parsed request: when it arrived, what it was, how long it took.

    ``service_time`` is ``None`` when the source format carries no
    duration (plain CLF without the trailing time field).
    """

    timestamp: float
    class_name: str
    service_time: Optional[float] = None


@dataclass
class IngestStats:
    """Line accounting for one ingestion pass — the skip counters."""

    lines_total: int = 0
    parsed: int = 0
    #: Skips keyed by reason: ``malformed``, ``out_of_order``,
    #: ``bad_service_time``, ``blank``.
    skipped: Dict[str, int] = field(default_factory=dict)

    def skip(self, reason: str) -> None:
        """Count one skipped line under ``reason``."""
        self.skipped[reason] = self.skipped.get(reason, 0) + 1

    @property
    def skipped_total(self) -> int:
        """Skips across all reasons."""
        return sum(self.skipped.values())

    def as_dict(self) -> dict:
        """JSON-friendly summary."""
        return {
            "lines_total": self.lines_total,
            "parsed": self.parsed,
            "skipped_total": self.skipped_total,
            "skipped": dict(sorted(self.skipped.items())),
        }


def _clf_epoch(stamp: str, day_cache: Dict[str, float]) -> float:
    """Epoch seconds from ``10/Oct/2000:13:55:36 -0700``.

    The (day, zone) prefix repeats for thousands of consecutive lines, so
    its base offset is memoized — the per-line work is three int parses.
    """
    day_part, hh, mm, rest = stamp.split(":", 3)
    if " " in rest:
        ss, zone = rest.split(" ", 1)
    else:
        ss, zone = rest, "+0000"
    key = day_part + zone
    base = day_cache.get(key)
    if base is None:
        day, month_name, year = day_part.split("/")
        month = _MONTHS[month_name]
        ordinal = date(int(year), month, int(day)).toordinal()
        sign = -1.0 if zone.startswith("-") else 1.0
        zone_seconds = sign * (int(zone[1:3]) * 3600 + int(zone[3:5]) * 60)
        base = (ordinal - _EPOCH_ORDINAL) * 86400.0 - zone_seconds
        day_cache[key] = base
    return base + int(hh) * 3600 + int(mm) * 60 + int(ss)


def _class_from_request(request: str) -> str:
    """Transaction class from a CLF request line: the first path segment."""
    try:
        _method, path = request.split(" ", 2)[:2]
    except ValueError:
        return "root"
    segment = path.lstrip("/").split("/", 1)[0].split("?", 1)[0]
    return segment or "root"


def parse_clf_line(
    line: str, day_cache: Optional[Dict[str, float]] = None
) -> Optional[TraceRecord]:
    """Parse one access-log line; ``None`` when it is malformed."""
    match = _CLF_PATTERN.match(line)
    if match is None:
        return None
    if day_cache is None:
        day_cache = {}
    try:
        timestamp = _clf_epoch(match.group(4), day_cache)
    except (ValueError, KeyError):
        return None
    service_time: Optional[float] = None
    trailing = match.group(8)
    if trailing is not None:
        try:
            service_time = float(trailing)
        except ValueError:
            service_time = None  # e.g. a referer in a non-combined layout
    return TraceRecord(
        timestamp=timestamp,
        class_name=_class_from_request(match.group(5)),
        service_time=service_time,
    )


def iter_clf(
    lines: Iterable[str], stats: Optional[IngestStats] = None
) -> Iterator[TraceRecord]:
    """Stream records out of access-log lines, counting skips."""
    if stats is None:
        stats = IngestStats()
    day_cache: Dict[str, float] = {}
    for line in lines:
        stats.lines_total += 1
        if not line.strip():
            stats.skip("blank")
            continue
        record = parse_clf_line(line, day_cache)
        if record is None:
            stats.skip("malformed")
            continue
        stats.parsed += 1
        yield record


def iter_csv(
    lines: Iterable[str], stats: Optional[IngestStats] = None
) -> Iterator[TraceRecord]:
    """Stream records out of a ``timestamp,class,service_time`` CSV."""
    if stats is None:
        stats = IngestStats()
    reader = csv.reader(lines)
    header_seen = False
    for row in reader:
        stats.lines_total += 1
        if not row or not any(cell.strip() for cell in row):
            stats.skip("blank")
            continue
        if not header_seen:
            header_seen = True
            if [cell.strip() for cell in row[:2]] == CSV_HEADER[:2]:
                continue  # header row, not data
        if len(row) < 2:
            stats.skip("malformed")
            continue
        try:
            timestamp = float(row[0])
        except ValueError:
            stats.skip("malformed")
            continue
        class_name = row[1].strip() or "unknown"
        service_time: Optional[float] = None
        if len(row) > 2 and row[2].strip():
            try:
                service_time = float(row[2])
            except ValueError:
                stats.skip("bad_service_time")
                service_time = None
        stats.parsed += 1
        yield TraceRecord(timestamp, class_name, service_time)


@dataclass
class TraceWindow:
    """One fixed-width aggregation window of the normalized trace."""

    index: int
    start: float
    duration: float
    #: Normalized arrival times falling in ``[start, start + duration)``.
    arrivals: np.ndarray
    #: Service-time samples of those arrivals that carried one.
    service_samples: np.ndarray

    @property
    def count(self) -> int:
        """Arrivals in the window."""
        return int(self.arrivals.size)

    @property
    def rate(self) -> float:
        """Arrivals per second (0 for a degenerate window)."""
        if self.duration <= 0:
            return 0.0
        return self.count / self.duration

    def interarrivals(self) -> np.ndarray:
        """Gaps between consecutive arrivals inside the window."""
        return np.diff(self.arrivals)


class IngestedTrace:
    """The ETL output: normalized arrivals, classes, service samples.

    Arrival timestamps are normalized to seconds since the first accepted
    record.  Records whose timestamp runs *backwards* relative to the
    maximum seen so far are dropped during construction and counted under
    ``out_of_order``; records with a negative service time keep their
    arrival but drop the duration (``bad_service_time``).
    """

    def __init__(
        self,
        records: Iterable[TraceRecord],
        stats: Optional[IngestStats] = None,
        source: str = "<memory>",
    ):
        self.stats = stats if stats is not None else IngestStats()
        self.source = str(source)
        times: List[float] = []
        classes: List[str] = []
        services: List[float] = []
        service_mask: List[bool] = []
        origin: Optional[float] = None
        high_water = -np.inf
        for record in records:
            if record.timestamp < high_water:
                self.stats.skip("out_of_order")
                continue
            high_water = record.timestamp
            if origin is None:
                origin = record.timestamp
            service = record.service_time
            if service is not None and (service < 0 or not np.isfinite(service)):
                self.stats.skip("bad_service_time")
                service = None
            times.append(record.timestamp - origin)
            classes.append(record.class_name)
            if service is not None:
                services.append(service)
                service_mask.append(True)
            else:
                service_mask.append(False)
        self.arrivals = np.asarray(times, dtype=float)
        self.classes = classes
        self.service_samples = np.asarray(services, dtype=float)
        self._service_mask = np.asarray(service_mask, dtype=bool)
        self.origin = origin if origin is not None else 0.0

    def __len__(self) -> int:
        return int(self.arrivals.size)

    @property
    def duration(self) -> float:
        """Span from the first to the last arrival (seconds)."""
        if self.arrivals.size < 2:
            return 0.0
        return float(self.arrivals[-1])

    def mean_rate(self) -> float:
        """Arrivals per second across the whole trace."""
        if self.duration <= 0:
            return 0.0
        return len(self) / self.duration

    def interarrivals(self) -> np.ndarray:
        """Gaps between consecutive arrivals across the whole trace."""
        return np.diff(self.arrivals)

    def zero_gap_fraction(self) -> float:
        """Fraction of inter-arrival gaps that are exactly zero.

        A high fraction means the source's timestamp resolution is
        coarser than the arrival process (1-second CLF stamps at tens of
        requests per second) — gap-level MLE is then meaningless and the
        fit stage falls back to window-rate-derived arrival models.
        """
        gaps = self.interarrivals()
        if not gaps.size:
            return 0.0
        return float((gaps == 0).mean())

    def class_counts(self) -> Dict[str, int]:
        """Arrivals per class name."""
        counts: Dict[str, int] = {}
        for name in self.classes:
            counts[name] = counts.get(name, 0) + 1
        return counts

    def class_service_samples(self) -> Dict[str, np.ndarray]:
        """Service samples grouped by class (classes without any omitted)."""
        grouped: Dict[str, List[float]] = {}
        service_iter = iter(self.service_samples)
        for name, has_service in zip(self.classes, self._service_mask):
            if has_service:
                grouped.setdefault(name, []).append(next(service_iter))
        return {
            name: np.asarray(values, dtype=float)
            for name, values in grouped.items()
        }

    def windows(self, window_s: float) -> List[TraceWindow]:
        """Aggregate into fixed-width windows of ``window_s`` seconds.

        An empty trace yields no windows; a zero-duration trace (every
        arrival at the same instant) yields one window holding them all.
        Trailing windows with zero arrivals are dropped; interior empty
        windows are kept (rate 0) so the piecewise profile stays honest.
        """
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        if not len(self):
            return []
        n_windows = max(1, int(np.ceil((self.duration + 1e-12) / window_s)))
        if self.duration <= 0:
            n_windows = 1
        indices = np.minimum(
            (self.arrivals / window_s).astype(int), n_windows - 1
        )
        service_by_arrival = np.full(len(self), np.nan)
        service_by_arrival[self._service_mask] = self.service_samples
        windows = []
        for i in range(n_windows):
            mask = indices == i
            services = service_by_arrival[mask]
            windows.append(
                TraceWindow(
                    index=i,
                    start=i * window_s,
                    duration=float(window_s),
                    arrivals=self.arrivals[mask],
                    service_samples=services[~np.isnan(services)],
                )
            )
        while windows and windows[-1].count == 0:
            windows.pop()
        return windows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IngestedTrace(n={len(self)}, duration={self.duration:.1f}s, "
            f"rate={self.mean_rate():.1f}/s, "
            f"skipped={self.stats.skipped_total})"
        )


def _sniff_format(path: Path) -> str:
    """``clf`` or ``csv`` from the first non-blank line."""
    with path.open(errors="replace") as handle:
        for line in handle:
            if line.strip():
                return "clf" if line.lstrip().startswith(("[", '"')) or (
                    " [" in line and '"' in line
                ) else "csv"
    return "csv"


def ingest(
    path: Union[str, Path],
    fmt: str = "auto",
) -> IngestedTrace:
    """Stream one trace file into an :class:`IngestedTrace`.

    ``fmt`` is ``"clf"``, ``"csv"``, or ``"auto"`` (sniffed from the first
    non-blank line).  A missing file raises; *everything inside* the file
    is handled by skip-and-count.
    """
    path = Path(path)
    if fmt not in ("auto", "clf", "csv"):
        raise ValueError(f"fmt must be auto, clf or csv, got {fmt!r}")
    if fmt == "auto":
        fmt = _sniff_format(path)
    stats = IngestStats()
    parser = iter_clf if fmt == "clf" else iter_csv
    with path.open(errors="replace") as handle:
        return IngestedTrace(parser(handle, stats), stats, source=str(path))
