"""Trace-driven scenario factory: ETL -> fit -> emit -> validate.

Every workload the system previously trained, served, tuned or
chaos-tested against was synthetic.  This package ingests *real* request
logs (Common Log Format access logs, CSV job traces), fits arrival and
service distributions against the simulator's own families with
goodness-of-fit diagnostics, compiles the result into a named, replayable
:class:`~repro.traces.family.ScenarioFamily` — registered alongside the
hand-written scenarios, with the piecewise-window time-varying arrival
profile synthetic scenarios lack — and validates the emitted scenario by
replaying it through the simulator and comparing sim-vs-trace moments.

``repro-ingest`` is the CLI; ``ObservationLog.export_trace`` closes the
loop by dumping captured live traffic back into the ingestible format.
"""

from .etl import (
    CSV_HEADER,
    IngestStats,
    IngestedTrace,
    TraceRecord,
    TraceWindow,
    ingest,
    iter_clf,
    iter_csv,
    parse_clf_line,
)
from .family import RateSchedule, RateStep, ScenarioFamily, emit_family
from .fit import (
    FAMILIES,
    FitResult,
    TraceFit,
    WindowFit,
    build_distribution,
    exponentiality,
    fit_best,
    fit_family,
    fit_trace,
    ks_statistic,
    ks_threshold,
)
from .replay import (
    ReplayResult,
    replay_family,
    run_three_tier,
    trace_shaped_requests,
)
from .synthetic import (
    SyntheticTraceSpec,
    TracePhase,
    default_sample_spec,
    generate_records,
    generate_synthetic_trace,
)
from .validate import (
    MomentCheck,
    TraceMoments,
    ValidationReport,
    validate_family,
)

__all__ = [
    # etl
    "TraceRecord",
    "IngestStats",
    "TraceWindow",
    "IngestedTrace",
    "ingest",
    "iter_clf",
    "iter_csv",
    "parse_clf_line",
    "CSV_HEADER",
    # fit
    "FAMILIES",
    "FitResult",
    "WindowFit",
    "TraceFit",
    "fit_family",
    "fit_best",
    "fit_trace",
    "build_distribution",
    "ks_statistic",
    "ks_threshold",
    "exponentiality",
    # emit
    "ScenarioFamily",
    "RateSchedule",
    "RateStep",
    "emit_family",
    # replay
    "ReplayResult",
    "replay_family",
    "run_three_tier",
    "trace_shaped_requests",
    # validate
    "TraceMoments",
    "MomentCheck",
    "ValidationReport",
    "validate_family",
    # synthetic
    "TracePhase",
    "SyntheticTraceSpec",
    "default_sample_spec",
    "generate_records",
    "generate_synthetic_trace",
]
