"""Trace replay: drive the simulator with an emitted scenario family.

Two replay paths, both seeded and bit-reproducible:

* :func:`replay_family` — a *generative* replay on the DES core: window
  by window, arrivals are scheduled from the fitted inter-arrival
  distribution, classes drawn from the fitted mix, and service times
  from the fitted service distribution.  It returns the raw arrival and
  service samples the simulator experienced, which is exactly what the
  validate stage compares against the original trace.
* :func:`run_three_tier` — the emitted mix on the full
  :class:`~repro.workload.service.ThreeTierWorkload` (driver, thread
  pools, CPU, database), with the piecewise-window rate profile applied
  through the standard disturbance mechanism.

:func:`trace_shaped_requests` bridges into the serving subsystem: it
turns the family's arrival profile into a timed stream of prediction
requests so demos can drive a serving engine (or the multi-process
cluster) with trace-shaped traffic instead of uniform synthetic load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..workload.des import Simulator
from ..workload.rng import StreamRegistry
from ..workload.service import ThreeTierWorkload, WorkloadConfig, WorkloadMetrics
from .family import ScenarioFamily

__all__ = [
    "ReplayResult",
    "replay_family",
    "run_three_tier",
    "trace_shaped_requests",
]


@dataclass
class ReplayResult:
    """What the simulator generated during one replay."""

    family: str
    seed: int
    duration: float
    arrival_times: np.ndarray
    service_samples: np.ndarray
    class_names: List[str] = field(default_factory=list)
    per_window_counts: List[int] = field(default_factory=list)

    @property
    def n_arrivals(self) -> int:
        return int(self.arrival_times.size)

    def mean_rate(self) -> float:
        """Arrivals per second over the replay horizon."""
        if self.duration <= 0:
            return 0.0
        return self.n_arrivals / self.duration

    def interarrival_cv(self) -> float:
        """Coefficient of variation of the generated arrival gaps."""
        gaps = np.diff(self.arrival_times)
        gaps = gaps[gaps > 0]
        if gaps.size < 2 or gaps.mean() <= 0:
            return float("nan")
        return float(gaps.std() / gaps.mean())

    def service_percentile(self, q: float) -> float:
        """Percentile of the generated service samples (NaN when absent)."""
        if not self.service_samples.size:
            return float("nan")
        return float(np.percentile(self.service_samples, q))


def replay_family(
    family: ScenarioFamily,
    seed: int = 0,
    duration: Optional[float] = None,
) -> ReplayResult:
    """Generative replay of an emitted family through the DES core.

    Arrivals run window by window: inside window *w* the gap between
    consecutive arrivals is drawn from the window's fitted inter-arrival
    distribution (or the pooled fit rescaled to the window's rate), the
    class from the family's mix weights, and the service time from the
    window's fitted service distribution.  Without windows the pooled
    fits drive a single stationary phase.  Deterministic for a fixed
    seed: streams derive from the shared
    :class:`~repro.workload.rng.StreamRegistry`.
    """
    if duration is None:
        duration = family.duration if family.duration > 0 else 60.0
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    streams = StreamRegistry(seed)
    arrival_rng = streams.stream("trace-arrivals")
    mix_rng = streams.stream("trace-mix")
    service_rng = streams.stream("trace-service")

    class_names = sorted(family.class_weights)
    weights = np.array([family.class_weights[n] for n in class_names])
    weights = weights / weights.sum()
    cumulative = np.cumsum(weights)

    windows = family.windows
    if not windows:
        # Stationary fallback: one synthetic window spanning the horizon.
        from .fit import WindowFit

        windows = [
            WindowFit(
                index=0,
                start=0.0,
                duration=float(duration),
                rate=family.base_rate,
                count=0,
                interarrival=family.interarrival,
                service=family.service,
            )
        ]

    sim = Simulator()
    arrival_times: List[float] = []
    service_samples: List[float] = []
    drawn_classes: List[str] = []
    per_window_counts = [0] * len(windows)

    def schedule_window(index: int) -> None:
        window = windows[index]
        if window.start >= duration:
            return
        end = min(window.start + window.duration, duration)
        gap_dist = family.window_interarrival(window)
        service_dist = family.window_service(window)

        def arrival(at: float) -> None:
            if at >= end:
                # Past this window: the next window (if any) takes over.
                if index + 1 < len(windows):
                    schedule_window(index + 1)
                return
            arrival_times.append(at)
            per_window_counts[index] += 1
            pick = float(mix_rng.random())
            drawn_classes.append(
                class_names[int(np.searchsorted(cumulative, pick))]
            )
            service_samples.append(service_dist.sample(service_rng))
            gap = max(gap_dist.sample(arrival_rng), 1e-12)
            sim.schedule(at + gap - sim.now, lambda: arrival(at + gap))

        # A long gap in the previous window can overshoot this window's
        # start; resume from wherever the clock actually is so recorded
        # arrival times stay monotone.
        base = max(window.start, sim.now)
        first_gap = max(gap_dist.sample(arrival_rng), 1e-12)
        start_at = base + first_gap
        sim.schedule(start_at - sim.now, lambda: arrival(start_at))

    schedule_window(0)
    sim.run_until(duration)
    return ReplayResult(
        family=family.name,
        seed=int(seed),
        duration=float(duration),
        arrival_times=np.asarray(arrival_times, dtype=float),
        service_samples=np.asarray(service_samples, dtype=float),
        class_names=drawn_classes,
        per_window_counts=per_window_counts,
    )


def run_three_tier(
    family: ScenarioFamily,
    config: Optional[WorkloadConfig] = None,
    warmup: float = 2.0,
    duration: Optional[float] = None,
    seed: int = 0,
    **workload_kwargs,
) -> WorkloadMetrics:
    """Run the emitted scenario on the full 3-tier simulator.

    The family's transaction mix replaces the hand-written classes and
    its piecewise rate profile is applied through the standard
    disturbance path, so the whole existing metrics surface
    (:class:`~repro.workload.service.WorkloadMetrics`) comes back.
    """
    if config is None:
        config = WorkloadConfig(
            injection_rate=family.base_rate,
            default_threads=4,
            mfg_threads=4,
            web_threads=24,
        )
    if duration is None:
        duration = family.duration if family.duration > 0 else 30.0
    workload = ThreeTierWorkload(
        classes=family.classes(),
        warmup=warmup,
        duration=duration,
        seed=seed,
        **workload_kwargs,
    )
    schedule = family.rate_schedule()
    return workload.run(
        config, disturbances=schedule.disturbances(offset=warmup)
    )


def trace_shaped_requests(
    family: ScenarioFamily,
    n: int = 200,
    seed: int = 0,
    time_scale: float = 1.0,
    thread_ranges: Tuple[Tuple[int, int], ...] = ((2, 22), (8, 24), (14, 24)),
) -> List[Tuple[float, np.ndarray]]:
    """A timed stream of prediction requests shaped like the trace.

    Returns ``[(send_at_seconds, config_vector), ...]`` sorted by send
    time: arrival instants come from a generative replay of the family
    (compressed by ``time_scale`` — 0.01 turns a 2-minute trace into a
    ~1.2 s demo), and each request asks the served model about a
    configuration whose injection rate is the trace's *instantaneous*
    rate at that moment, with thread counts drawn uniformly from
    ``thread_ranges``.  This is how serving demos drive the engine or
    cluster with trace-shaped traffic.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if time_scale <= 0:
        raise ValueError(f"time_scale must be positive, got {time_scale}")
    replay = replay_family(family, seed=seed)
    if not replay.n_arrivals:
        raise ValueError(f"family {family.name!r} replayed no arrivals")
    times = replay.arrival_times
    if times.size > n:
        # Evenly thin to n requests, keeping the temporal shape.
        picks = np.linspace(0, times.size - 1, n).astype(int)
        times = times[picks]
    schedule = family.rate_schedule()
    rng = np.random.default_rng(seed)
    requests = []
    for at in times:
        rate = schedule.rate_at(float(at))
        threads = [rng.integers(low, high + 1) for low, high in thread_ranges]
        vector = np.array([rate, *threads], dtype=float)
        requests.append((float(at) * time_scale, vector))
    return requests
