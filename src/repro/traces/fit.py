"""Distribution fitting: MLE over the workload's own families + diagnostics.

The second factory stage.  Inter-arrival gaps and service-time samples
from the ETL stage are fitted against the families the simulator already
samples from (:mod:`repro.workload.distributions`):

* **exponential** — closed-form MLE (the sample mean);
* **lognormal** — closed-form MLE on the log scale;
* **hyperexponential** — two-branch EM (deterministic initialization, no
  RNG), for the CV > 1 regimes where a single exponential is provably
  wrong.

Every candidate gets a Kolmogorov-Smirnov distance against the empirical
CDF; :func:`fit_best` picks the family with the smallest distance and
:func:`exponentiality` reports the coefficient of variation — the classic
first-look diagnostic (CV ~= 1 memoryless, < 1 smooth, > 1 bursty).
Everything is from scratch on NumPy; no SciPy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..workload.distributions import (
    Distribution,
    Exponential,
    Hyperexponential,
    LogNormal,
)
from .etl import IngestedTrace, TraceWindow

__all__ = [
    "FitResult",
    "WindowFit",
    "TraceFit",
    "FAMILIES",
    "fit_family",
    "fit_best",
    "build_distribution",
    "ks_statistic",
    "ks_threshold",
    "exponentiality",
    "fit_trace",
]

#: Families the factory fits, in preference order on KS ties.
FAMILIES = ("exponential", "lognormal", "hyperexponential")

#: Minimum samples before a family is attempted at all.
_MIN_SAMPLES = {"exponential": 2, "lognormal": 3, "hyperexponential": 8}


# ----------------------------------------------------------------------
# goodness of fit
# ----------------------------------------------------------------------


def ks_statistic(samples: np.ndarray, cdf) -> float:
    """Two-sided Kolmogorov-Smirnov distance sup |F_n(x) - F(x)|."""
    ordered = np.sort(np.asarray(samples, dtype=float))
    n = ordered.size
    if n == 0:
        raise ValueError("ks_statistic needs at least one sample")
    theoretical = cdf(ordered)
    steps = np.arange(1, n + 1) / n
    d_plus = float(np.max(steps - theoretical))
    d_minus = float(np.max(theoretical - (steps - 1.0 / n)))
    return max(d_plus, d_minus, 0.0)


def ks_threshold(n: int, alpha: float = 0.05) -> float:
    """Approximate KS rejection threshold at level ``alpha``.

    The asymptotic ``c(alpha)/sqrt(n)`` form (c(0.05) = 1.358); accurate
    enough for the n >= 35 sample counts real windows carry.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    coefficient = math.sqrt(-0.5 * math.log(alpha / 2.0))
    return coefficient / math.sqrt(n)


def exponentiality(samples: Sequence[float]) -> Tuple[float, str]:
    """Coefficient of variation and its verdict.

    Returns ``(cv, verdict)`` with verdict one of ``exponential-like``
    (CV within 15% of 1), ``smooth`` (CV < 0.85) or ``bursty``
    (CV > 1.15).
    """
    values = np.asarray(samples, dtype=float)
    if values.size < 2 or values.mean() <= 0:
        return float("nan"), "insufficient"
    cv = float(values.std() / values.mean())
    if cv < 0.85:
        return cv, "smooth"
    if cv > 1.15:
        return cv, "bursty"
    return cv, "exponential-like"


# ----------------------------------------------------------------------
# family fits
# ----------------------------------------------------------------------


@dataclass
class FitResult:
    """One fitted family with its diagnostics."""

    family: str
    params: Dict[str, object]
    ks_stat: float
    ks_pass: bool
    cv: float
    n: int
    mean: float

    def distribution(self) -> Distribution:
        """Materialize the fitted :class:`Distribution`."""
        return build_distribution(self.family, self.params)

    def to_dict(self) -> dict:
        """JSON-friendly form (inverse: :meth:`from_dict`)."""
        return {
            "family": self.family,
            "params": self.params,
            "ks_stat": self.ks_stat,
            "ks_pass": self.ks_pass,
            "cv": self.cv,
            "n": self.n,
            "mean": self.mean,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FitResult":
        return cls(
            family=str(payload["family"]),
            params=dict(payload["params"]),
            ks_stat=float(payload["ks_stat"]),
            ks_pass=bool(payload["ks_pass"]),
            cv=float(payload["cv"]),
            n=int(payload["n"]),
            mean=float(payload["mean"]),
        )


def build_distribution(family: str, params: Dict[str, object]) -> Distribution:
    """Reconstruct a fitted distribution from its serialized parameters."""
    if family == "exponential":
        return Exponential(mean=float(params["mean"]))
    if family == "lognormal":
        return LogNormal(mean=float(params["mean"]), sigma=float(params["sigma"]))
    if family == "hyperexponential":
        return Hyperexponential(
            means=[float(m) for m in params["means"]],
            weights=[float(w) for w in params["weights"]],
        )
    raise KeyError(f"unknown fit family {family!r}; known: {FAMILIES}")


def _fit_exponential(samples: np.ndarray) -> Tuple[Dict[str, object], object]:
    mean = float(samples.mean())
    scale = max(mean, 1e-12)

    def cdf(x):
        return 1.0 - np.exp(-np.asarray(x) / scale)

    return {"mean": scale}, cdf


def _fit_lognormal(samples: np.ndarray) -> Tuple[Dict[str, object], object]:
    positive = samples[samples > 0]
    if positive.size < 2:
        raise ValueError("lognormal fit needs >= 2 positive samples")
    logs = np.log(positive)
    mu = float(logs.mean())
    sigma = max(float(logs.std()), 1e-6)
    mean = float(math.exp(mu + 0.5 * sigma * sigma))

    def cdf(x):
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        mask = x > 0
        z = (np.log(x[mask]) - mu) / (sigma * math.sqrt(2.0))
        out[mask] = 0.5 * (1.0 + np.array([math.erf(v) for v in z]))
        return out

    return {"mean": mean, "sigma": sigma}, cdf


def _fit_hyperexponential(
    samples: np.ndarray, iterations: int = 60, tol: float = 1e-8
) -> Tuple[Dict[str, object], object]:
    """Two-branch hyperexponential via EM.

    Initialization is deterministic — the sample median splits the data
    into a fast and a slow branch — so the fit is bit-reproducible.
    """
    if samples.size < 2:
        raise ValueError("hyperexponential fit needs >= 2 samples")
    positive = np.maximum(samples, 1e-12)
    median = float(np.median(positive))
    fast = positive[positive <= median]
    slow = positive[positive > median]
    if not fast.size or not slow.size or fast.mean() == slow.mean():
        raise ValueError("samples carry no branch structure")
    means = np.array([fast.mean(), slow.mean()])
    weights = np.array([fast.size, slow.size], dtype=float)
    weights /= weights.sum()
    log_likelihood = -np.inf
    for _ in range(iterations):
        # E step: responsibility of each branch for each sample.
        rates = 1.0 / means
        densities = weights * rates * np.exp(
            -np.outer(positive, rates)
        )  # (n, 2)
        totals = densities.sum(axis=1, keepdims=True)
        totals[totals <= 0] = 1e-300
        resp = densities / totals
        # M step.
        mass = resp.sum(axis=0)
        mass[mass <= 0] = 1e-300
        means = (resp * positive[:, None]).sum(axis=0) / mass
        means = np.maximum(means, 1e-12)
        weights = mass / positive.size
        new_ll = float(np.log(totals).sum())
        if abs(new_ll - log_likelihood) < tol:
            break
        log_likelihood = new_ll
    order = np.argsort(means)
    means = means[order]
    weights = np.maximum(weights[order], 0.0)
    weights = weights / weights.sum()

    def cdf(x):
        x = np.asarray(x, dtype=float)[:, None]
        return (weights * (1.0 - np.exp(-x / means))).sum(axis=1)

    return (
        {"means": means.tolist(), "weights": weights.tolist()},
        cdf,
    )


_FITTERS = {
    "exponential": _fit_exponential,
    "lognormal": _fit_lognormal,
    "hyperexponential": _fit_hyperexponential,
}


def fit_family(samples: Sequence[float], family: str) -> FitResult:
    """Fit one family by MLE and score it with the KS distance."""
    if family not in _FITTERS:
        raise KeyError(f"unknown fit family {family!r}; known: {FAMILIES}")
    values = np.asarray(samples, dtype=float)
    values = values[np.isfinite(values) & (values >= 0)]
    if values.size < _MIN_SAMPLES[family]:
        raise ValueError(
            f"{family} fit needs >= {_MIN_SAMPLES[family]} samples, "
            f"got {values.size}"
        )
    params, cdf = _FITTERS[family](values)
    ks = ks_statistic(values, cdf)
    mean = values.mean()
    cv = float(values.std() / mean) if mean > 0 else float("nan")
    return FitResult(
        family=family,
        params=params,
        ks_stat=ks,
        ks_pass=ks <= ks_threshold(values.size),
        cv=cv,
        n=int(values.size),
        mean=float(mean),
    )


def fit_best(
    samples: Sequence[float],
    families: Sequence[str] = FAMILIES,
) -> FitResult:
    """Fit every applicable family and return the lowest-KS winner.

    Families whose sample-count floor is not met (or whose fitter rejects
    the data, e.g. a branchless hyperexponential) are silently skipped;
    at least the exponential must be fittable or ``ValueError`` is raised.
    Ties break in :data:`FAMILIES` order — simplest family wins.
    """
    candidates: List[FitResult] = []
    for family in families:
        try:
            candidates.append(fit_family(samples, family))
        except ValueError:
            continue
    if not candidates:
        raise ValueError(
            f"no family could be fitted to {len(list(samples))} samples"
        )
    return min(candidates, key=lambda r: r.ks_stat)


# ----------------------------------------------------------------------
# per-window fitting over an ingested trace
# ----------------------------------------------------------------------


@dataclass
class WindowFit:
    """Fitted arrival/service models for one aggregation window."""

    index: int
    start: float
    duration: float
    rate: float
    count: int
    interarrival: Optional[FitResult]
    service: Optional[FitResult]

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "start": self.start,
            "duration": self.duration,
            "rate": self.rate,
            "count": self.count,
            "interarrival": (
                None if self.interarrival is None else self.interarrival.to_dict()
            ),
            "service": None if self.service is None else self.service.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "WindowFit":
        return cls(
            index=int(payload["index"]),
            start=float(payload["start"]),
            duration=float(payload["duration"]),
            rate=float(payload["rate"]),
            count=int(payload["count"]),
            interarrival=(
                None
                if payload.get("interarrival") is None
                else FitResult.from_dict(payload["interarrival"])
            ),
            service=(
                None
                if payload.get("service") is None
                else FitResult.from_dict(payload["service"])
            ),
        )


@dataclass
class TraceFit:
    """The full fit of one ingested trace: pooled + per-window models."""

    source: str
    n_arrivals: int
    duration: float
    mean_rate: float
    window_s: float
    #: Pooled inter-arrival fit across the whole trace.
    interarrival: FitResult
    #: Pooled service fit (``None`` when the trace carries no durations).
    service: Optional[FitResult]
    #: Per-class pooled service fits (classes with enough samples only).
    class_service: Dict[str, FitResult] = field(default_factory=dict)
    windows: List[WindowFit] = field(default_factory=list)
    #: (cv, verdict) of the pooled inter-arrival gaps.
    arrival_cv: float = float("nan")
    arrival_verdict: str = "insufficient"


def _fit_optional(samples: np.ndarray, families) -> Optional[FitResult]:
    try:
        return fit_best(samples, families)
    except ValueError:
        return None


def fit_trace(
    trace: IngestedTrace,
    window_s: Optional[float] = None,
    families: Sequence[str] = FAMILIES,
    min_class_samples: int = 20,
) -> TraceFit:
    """Fit pooled and per-window models for one ingested trace.

    ``window_s`` defaults to a tenth of the trace duration (bounded to
    [1s, 3600s]) so short synthetic traces and day-long access logs both
    get a useful piecewise profile.
    """
    if not len(trace):
        raise ValueError(f"cannot fit an empty trace ({trace.source})")
    if window_s is None:
        window_s = min(max(trace.duration / 10.0, 1.0), 3600.0)
    all_gaps = trace.interarrivals()
    gaps = all_gaps[all_gaps > 0]
    # Coarse timestamps (1-second CLF stamps at high request rates) make
    # most gaps exactly zero; gap-level MLE would then fit the *stamp
    # resolution*, not the arrival process.  Fall back to a Poisson
    # process at the measured rate, flagged as "quantized".
    quantized = trace.zero_gap_fraction() > 0.25
    if quantized:
        if trace.mean_rate() <= 0:
            raise ValueError(
                f"trace {trace.source} is quantized with no measurable rate"
            )
        mean_gap = 1.0 / trace.mean_rate()
        scale = max(mean_gap, 1e-12)
        ks = ks_statistic(
            all_gaps, lambda x: 1.0 - np.exp(-np.asarray(x) / scale)
        )
        interarrival = FitResult(
            family="exponential",
            params={"mean": mean_gap},
            ks_stat=ks,
            ks_pass=False,
            cv=float("nan"),
            n=int(all_gaps.size),
            mean=mean_gap,
        )
        cv, verdict = float("nan"), "quantized"
    else:
        if gaps.size < 2:
            raise ValueError(
                f"trace {trace.source} has {len(trace)} arrivals but no "
                "positive inter-arrival gaps to fit"
            )
        interarrival = fit_best(gaps, families)
        cv, verdict = exponentiality(gaps)
    service = _fit_optional(trace.service_samples, families)
    class_service: Dict[str, FitResult] = {}
    for name, samples in sorted(trace.class_service_samples().items()):
        if samples.size >= min_class_samples:
            fitted = _fit_optional(samples, families)
            if fitted is not None:
                class_service[name] = fitted
    window_fits: List[WindowFit] = []
    for window in trace.windows(window_s):
        window_gaps = window.interarrivals()
        window_gaps = window_gaps[window_gaps > 0]
        window_fits.append(
            WindowFit(
                index=window.index,
                start=window.start,
                duration=window.duration,
                rate=window.rate,
                count=window.count,
                # Quantized stamps: leave the window gap model unset so
                # replay derives it from the window's measured rate.
                interarrival=(
                    None if quantized else _fit_optional(window_gaps, families)
                ),
                service=_fit_optional(window.service_samples, families),
            )
        )
    return TraceFit(
        source=trace.source,
        n_arrivals=len(trace),
        duration=trace.duration,
        mean_rate=trace.mean_rate(),
        window_s=float(window_s),
        interarrival=interarrival,
        service=service,
        class_service=class_service,
        windows=window_fits,
        arrival_cv=cv,
        arrival_verdict=verdict,
    )
