"""Deterministic synthetic trace generation.

A seeded generator producing realistic request traces in both ingestible
formats (canonical CSV and Common Log Format) — the test fixture and
benchmark corpus for the trace factory, and the source of the bundled
``data/sample_trace.csv``.  Phased rates give the piecewise profile the
factory is supposed to recover; per-class service scales give the
per-class fits something to find.  Everything derives from one seed via
the same :class:`~numpy.random.Generator` discipline as the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "TracePhase",
    "SyntheticTraceSpec",
    "default_sample_spec",
    "generate_records",
    "generate_synthetic_trace",
]

#: Fixed epoch origin for generated timestamps (2023-11-14T22:13:20Z);
#: a constant so generated files are byte-identical across runs.
_EPOCH_ORIGIN = 1_700_000_000.0

_MONTH_NAMES = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
]


@dataclass(frozen=True)
class TracePhase:
    """One constant-rate phase of the generated arrival process."""

    duration: float
    rate: float

    def __post_init__(self):
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")


@dataclass
class SyntheticTraceSpec:
    """Everything the generator needs, in one seedable description."""

    phases: List[TracePhase]
    #: ``(class_name, mix_weight, service_scale)`` triples; scales
    #: multiply the base service mean per class.
    classes: List[Tuple[str, float, float]]
    #: Base lognormal service time (mean seconds, sigma).
    service_mean: float = 0.045
    service_sigma: float = 0.5
    seed: int = 0

    def __post_init__(self):
        if not self.phases:
            raise ValueError("spec needs at least one phase")
        if not self.classes:
            raise ValueError("spec needs at least one class")
        total = sum(w for _, w, _ in self.classes)
        if total <= 0:
            raise ValueError("class weights must sum > 0")
        if self.service_mean <= 0 or self.service_sigma <= 0:
            raise ValueError("service_mean and service_sigma must be positive")


def default_sample_spec(seed: int = 20260808) -> SyntheticTraceSpec:
    """The bundled sample trace: a three-phase day-in-miniature.

    A quiet morning (35/s), a lunchtime peak (80/s) and an afternoon
    shoulder (55/s) over three classes with distinct service scales —
    enough structure for every factory stage to demonstrate itself in
    seconds.
    """
    return SyntheticTraceSpec(
        phases=[
            TracePhase(duration=40.0, rate=35.0),
            TracePhase(duration=40.0, rate=80.0),
            TracePhase(duration=40.0, rate=55.0),
        ],
        classes=[
            ("browse", 0.55, 0.8),
            ("purchase", 0.20, 1.8),
            ("manage", 0.25, 1.1),
        ],
        seed=seed,
    )


def generate_records(
    spec: SyntheticTraceSpec,
) -> List[Tuple[float, str, float]]:
    """``(timestamp, class, service_time)`` rows for one spec (seeded)."""
    rng = np.random.default_rng(spec.seed)
    names = [name for name, _, _ in spec.classes]
    weights = np.array([w for _, w, _ in spec.classes], dtype=float)
    weights /= weights.sum()
    cumulative = np.cumsum(weights)
    scales = {name: scale for name, _, scale in spec.classes}
    sigma = spec.service_sigma
    rows: List[Tuple[float, str, float]] = []
    t = 0.0
    phase_start = 0.0
    for phase in spec.phases:
        phase_end = phase_start + phase.duration
        t = max(t, phase_start)
        while True:
            t += rng.exponential(1.0 / phase.rate)
            if t >= phase_end:
                break
            name = names[int(np.searchsorted(cumulative, rng.random()))]
            mean = spec.service_mean * scales[name]
            mu = np.log(mean) - 0.5 * sigma * sigma
            service = float(rng.lognormal(mu, sigma))
            rows.append((_EPOCH_ORIGIN + t, name, service))
        phase_start = phase_end
    return rows


def _clf_timestamp(epoch: float) -> str:
    """``14/Nov/2023:22:13:20 +0000`` from epoch seconds (no locale)."""
    days, rem = divmod(int(epoch), 86400)
    hh, rem = divmod(rem, 3600)
    mm, ss = divmod(rem, 60)
    ordinal = days + 719163  # proleptic ordinal of 1970-01-01
    from datetime import date

    d = date.fromordinal(ordinal)
    return (
        f"{d.day:02d}/{_MONTH_NAMES[d.month - 1]}/{d.year}"
        f":{hh:02d}:{mm:02d}:{ss:02d} +0000"
    )


def generate_synthetic_trace(
    path: Union[str, Path],
    spec: SyntheticTraceSpec = None,
    fmt: str = "csv",
) -> Path:
    """Write a synthetic trace file; deterministic for a fixed spec seed.

    ``fmt="csv"`` writes the canonical ``timestamp,class,service_time``
    interchange format; ``fmt="clf"`` writes Common Log Format lines
    with the trailing request-time extension (1-second timestamp
    resolution, as real access logs have).
    """
    if spec is None:
        spec = default_sample_spec()
    if fmt not in ("csv", "clf"):
        raise ValueError(f"fmt must be csv or clf, got {fmt!r}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    rows = generate_records(spec)
    with path.open("w", newline="") as handle:
        if fmt == "csv":
            handle.write("timestamp,class,service_time\n")
            for timestamp, name, service in rows:
                handle.write(f"{timestamp:.6f},{name},{service:.6f}\n")
        else:
            for i, (timestamp, name, service) in enumerate(rows):
                stamp = _clf_timestamp(timestamp)
                handle.write(
                    f'10.0.0.{i % 254 + 1} - - [{stamp}] '
                    f'"GET /{name}/item{i % 97} HTTP/1.1" 200 '
                    f"{512 + (i * 37) % 4096} {service:.6f}\n"
                )
    return path
