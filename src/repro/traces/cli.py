"""``repro-ingest`` — the trace factory's command line.

One subcommand per pipeline stage plus a generator for fixtures:

.. code-block:: console

   $ repro-ingest ingest data/sample_trace.csv
   $ repro-ingest fit data/sample_trace.csv --window 40
   $ repro-ingest emit data/sample_trace.csv --name sample --out sample.json
   $ repro-ingest validate data/sample_trace.csv --seed 0
   $ repro-ingest replay sample.json --three-tier
   $ repro-ingest synth /tmp/trace.csv --fmt csv --seed 7

``validate`` exits 0 on a passing sim-vs-trace moment check and 2 on a
failing one (the same convention as ``repro-lifecycle``'s gate).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .etl import ingest
from .family import ScenarioFamily, emit_family
from .fit import fit_trace
from .replay import replay_family, run_three_tier
from .synthetic import default_sample_spec, generate_synthetic_trace
from .validate import validate_family

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ingest",
        description=(
            "Trace-driven scenario factory: ingest request logs, fit "
            "distributions, emit replayable scenarios, validate them."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_trace_args(p):
        p.add_argument("trace", help="access log (CLF) or CSV trace file")
        p.add_argument(
            "--format",
            choices=["auto", "clf", "csv"],
            default="auto",
            help="input format (default: sniffed)",
        )
        p.add_argument(
            "--window",
            type=float,
            default=None,
            help="aggregation window seconds (default: duration/10)",
        )

    p_ingest = sub.add_parser("ingest", help="parse + window one trace")
    add_trace_args(p_ingest)
    p_ingest.add_argument(
        "--json", action="store_true", help="machine-readable summary"
    )

    p_fit = sub.add_parser("fit", help="fit distributions per window")
    add_trace_args(p_fit)

    p_emit = sub.add_parser("emit", help="compile a scenario family")
    add_trace_args(p_emit)
    p_emit.add_argument("--name", required=True, help="family name")
    p_emit.add_argument(
        "--out", default=None, help="output JSON (default: <name>.scenario.json)"
    )

    p_validate = sub.add_parser(
        "validate", help="emit + replay + compare sim-vs-trace moments"
    )
    add_trace_args(p_validate)
    p_validate.add_argument("--name", default="validation", help="family name")
    p_validate.add_argument("--seed", type=int, default=0, help="replay seed")
    p_validate.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="gating tolerance for rate and p95 (default 0.10)",
    )
    p_validate.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )

    p_replay = sub.add_parser(
        "replay", help="replay a saved scenario family through the simulator"
    )
    p_replay.add_argument("family", help="scenario-family JSON document")
    p_replay.add_argument("--seed", type=int, default=0, help="replay seed")
    p_replay.add_argument(
        "--duration", type=float, default=None, help="horizon seconds"
    )
    p_replay.add_argument(
        "--three-tier",
        action="store_true",
        help="drive the full 3-tier simulator instead of the generative replay",
    )

    p_synth = sub.add_parser(
        "synth", help="generate a deterministic synthetic trace"
    )
    p_synth.add_argument("out", help="file to write")
    p_synth.add_argument("--fmt", choices=["csv", "clf"], default="csv")
    p_synth.add_argument("--seed", type=int, default=20260808)

    return parser


def _load_trace(args: argparse.Namespace):
    path = Path(args.trace)
    if not path.is_file():
        raise SystemExit(f"trace file not found: {path}")
    return ingest(path, fmt=args.format)


def _describe_fit(label: str, fitted) -> str:
    if fitted is None:
        return f"  {label:<14} (not fitted)"
    return (
        f"  {label:<14} {fitted.family:<17} mean={fitted.mean:#.4g}  "
        f"cv={fitted.cv:.2f}  ks={fitted.ks_stat:.4f}"
        f"{' ok' if fitted.ks_pass else ' (ks reject)'}"
    )


def _cmd_ingest(args) -> int:
    trace = _load_trace(args)
    window_s = args.window or min(max(trace.duration / 10.0, 1.0), 3600.0)
    windows = trace.windows(window_s) if len(trace) else []
    if args.json:
        print(
            json.dumps(
                {
                    "source": trace.source,
                    "arrivals": len(trace),
                    "duration_s": trace.duration,
                    "mean_rate": trace.mean_rate(),
                    "classes": trace.class_counts(),
                    "stats": trace.stats.as_dict(),
                    "windows": [
                        {"start": w.start, "count": w.count, "rate": w.rate}
                        for w in windows
                    ],
                },
                indent=2,
            )
        )
        return 0
    stats = trace.stats
    print(f"ingested {trace.source}")
    print(
        f"  lines: {stats.lines_total}  parsed: {stats.parsed}  "
        f"skipped: {stats.skipped_total} {stats.skipped or ''}"
    )
    print(
        f"  arrivals: {len(trace)}  duration: {trace.duration:.1f}s  "
        f"rate: {trace.mean_rate():.1f}/s"
    )
    for name, count in sorted(trace.class_counts().items()):
        print(f"    class {name:<20} {count}")
    print(f"  windows ({window_s:.0f}s):")
    for window in windows:
        bar = "#" * max(1, int(round(window.rate / 2))) if window.count else ""
        print(
            f"    [{window.start:7.1f}s] n={window.count:<6} "
            f"rate={window.rate:6.1f}/s {bar}"
        )
    return 0


def _cmd_fit(args) -> int:
    trace = _load_trace(args)
    fit = fit_trace(trace, window_s=args.window)
    print(f"fitted {trace.source} ({fit.n_arrivals} arrivals)")
    print(
        f"  arrival process: cv={fit.arrival_cv:.2f} ({fit.arrival_verdict})"
    )
    print(_describe_fit("interarrival", fit.interarrival))
    print(_describe_fit("service", fit.service))
    for name, fitted in sorted(fit.class_service.items()):
        print(_describe_fit(f"service[{name}]", fitted))
    print(f"  windows ({fit.window_s:.0f}s):")
    for window in fit.windows:
        chosen = window.service.family if window.service else "-"
        print(
            f"    [{window.start:7.1f}s] rate={window.rate:6.1f}/s  "
            f"service={chosen}"
        )
    return 0


def _emit(args, name: str) -> tuple:
    trace = _load_trace(args)
    fit = fit_trace(trace, window_s=args.window)
    family = emit_family(fit, name=name, class_counts=trace.class_counts())
    return trace, family


def _cmd_emit(args) -> int:
    _, family = _emit(args, args.name)
    out = Path(args.out) if args.out else Path(f"{args.name}.scenario.json")
    family.save(out)
    registered = family.register()
    print(f"emitted scenario family {family.name!r} -> {out}")
    print(
        f"  base rate {family.base_rate:.1f}/s, "
        f"{len(family.class_weights)} classes, "
        f"{len(family.windows)} windows"
    )
    print(f"  registered as scenario {registered!r}")
    return 0


def _cmd_validate(args) -> int:
    trace, family = _emit(args, args.name)
    report = validate_family(
        family, trace, seed=args.seed, tolerance=args.tolerance
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.to_text())
    return 0 if report.passed else 2


def _cmd_replay(args) -> int:
    family = ScenarioFamily.load(args.family)
    if args.three_tier:
        metrics = run_three_tier(
            family, duration=args.duration, seed=args.seed
        )
        print(
            f"three-tier replay of {family.name!r}: "
            f"injected={metrics.injected} completed={metrics.completed}"
        )
        for key, value in metrics.indicators.items():
            print(f"  {key:<22} {value:#.4g}")
        return 0
    replay = replay_family(family, seed=args.seed, duration=args.duration)
    print(
        f"replayed {family.name!r}: {replay.n_arrivals} arrivals over "
        f"{replay.duration:.1f}s (rate {replay.mean_rate():.1f}/s, "
        f"cv {replay.interarrival_cv():.2f})"
    )
    if replay.service_samples.size:
        print(
            f"  service p50={replay.service_percentile(50):#.4g}s "
            f"p95={replay.service_percentile(95):#.4g}s"
        )
    return 0


def _cmd_synth(args) -> int:
    spec = default_sample_spec(seed=args.seed)
    path = generate_synthetic_trace(args.out, spec=spec, fmt=args.fmt)
    total = sum(phase.duration for phase in spec.phases)
    print(f"wrote synthetic {args.fmt} trace to {path} ({total:.0f}s)")
    return 0


_COMMANDS = {
    "ingest": _cmd_ingest,
    "fit": _cmd_fit,
    "emit": _cmd_emit,
    "validate": _cmd_validate,
    "replay": _cmd_replay,
    "synth": _cmd_synth,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - module entry point
    sys.exit(main())
