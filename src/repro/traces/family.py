"""Scenario emission: compile a fitted trace into a first-class scenario.

The third factory stage.  A :class:`ScenarioFamily` packages what the fit
stage learned — per-class service distributions, the pooled arrival
process, and the piecewise-window rate profile — into the same currency
the rest of the system trades in:

* :meth:`ScenarioFamily.classes` returns a validated
  :class:`~repro.workload.transactions.TransactionClass` mix, so the
  emitted scenario runs on the *unchanged* simulator, sampler and CLI
  surfaces;
* :meth:`ScenarioFamily.register` publishes it into
  :data:`repro.workload.scenarios.SCENARIOS` next to the hand-written
  mixes;
* :meth:`ScenarioFamily.rate_schedule` exposes the trace's time-varying
  arrival intensity as standard
  :class:`~repro.workload.disturbances.Disturbance` objects — the
  piecewise arrival mode the synthetic scenarios do not have — which
  ``ThreeTierWorkload.run(..., disturbances=...)`` already understands;
* :meth:`ScenarioFamily.save` / :meth:`ScenarioFamily.load` persist the
  family as one JSON document so an ingested trace becomes a durable,
  shareable artifact.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..workload.disturbances import Disturbance
from ..workload.distributions import Deterministic, Distribution
from ..workload.scenarios import register_scenario
from ..workload.transactions import TransactionClass, validate_mix
from .fit import FitResult, TraceFit, WindowFit

__all__ = [
    "RateStep",
    "RateSchedule",
    "ScenarioFamily",
    "emit_family",
]

#: JSON document version, bumped on incompatible layout changes.
_FORMAT_VERSION = 1

#: A negligible CPU sliver so trace classes exercise the CPU scheduler
#: without distorting the fitted service time (which models the full
#: request duration as thread-held web I/O).
_CPU_SLIVER = 1e-5


class RateStep(Disturbance):
    """Set the driver's rate multiplier to an absolute value at ``start``.

    Unlike :class:`~repro.workload.disturbances.TrafficSurge` (which
    multiplies and later divides), a step *sets* the multiplier — the
    natural primitive for piecewise-constant trace profiles.  ``restore``
    puts the multiplier back to 1.0 at the end of the step; interior
    steps leave restoration to the next step's onset.
    """

    def __init__(
        self,
        start: float,
        duration: float,
        multiplier: float,
        restore: bool = False,
    ):
        super().__init__(start, duration)
        if multiplier <= 0:
            raise ValueError(f"multiplier must be positive, got {multiplier}")
        self.multiplier = float(multiplier)
        self.restore = bool(restore)

    def schedule(self, sim, server, driver):
        def onset():
            driver.rate_multiplier = self.multiplier

        sim.schedule(self.start, onset)
        if self.restore:

            def recovery():
                driver.rate_multiplier = 1.0

            sim.schedule(self.start + self.duration, recovery)


@dataclass
class RateSchedule:
    """Piecewise-constant arrival-rate profile relative to a base rate."""

    base_rate: float
    #: ``(start, duration, multiplier)`` triples, contiguous from t = 0.
    steps: List[tuple] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """End of the last step (0 for an empty schedule)."""
        if not self.steps:
            return 0.0
        start, duration, _ = self.steps[-1]
        return start + duration

    def multiplier_at(self, t: float) -> float:
        """The multiplier in effect at time ``t`` (1.0 outside the profile)."""
        for start, duration, multiplier in self.steps:
            if start <= t < start + duration:
                return multiplier
        return 1.0

    def rate_at(self, t: float) -> float:
        """Absolute arrival rate at time ``t``."""
        return self.base_rate * self.multiplier_at(t)

    def disturbances(self, offset: float = 0.0) -> List[RateStep]:
        """The profile as schedulable disturbances.

        ``offset`` shifts every onset (e.g. by the workload's warm-up so
        the profile starts with the measurement window).  The final step
        restores multiplier 1.0, so a simulation longer than the trace
        falls back to the base rate.
        """
        if offset < 0:
            raise ValueError(f"offset must be non-negative, got {offset}")
        steps = []
        for i, (start, duration, multiplier) in enumerate(self.steps):
            steps.append(
                RateStep(
                    start=start + offset,
                    duration=duration,
                    multiplier=multiplier,
                    restore=(i == len(self.steps) - 1),
                )
            )
        return steps


def _safe_name(name: str) -> str:
    """A class-name-safe slug (lowercase, [a-z0-9_])."""
    slug = re.sub(r"[^a-z0-9_]+", "_", name.lower()).strip("_")
    return slug or "requests"


@dataclass
class ScenarioFamily:
    """A named, replayable scenario compiled from one ingested trace."""

    name: str
    base_rate: float
    duration: float
    #: Pooled inter-arrival fit (drives generative replay).
    interarrival: FitResult
    #: Pooled service fit; ``None`` when the trace carried no durations
    #: (classes then fall back to a deterministic placeholder).
    service: Optional[FitResult]
    #: Per-class arrival shares, summing to 1.
    class_weights: Dict[str, float]
    #: Per-class service fits (subset of ``class_weights`` keys).
    class_service: Dict[str, FitResult] = field(default_factory=dict)
    windows: List[WindowFit] = field(default_factory=list)
    #: Provenance: source path, skip counters, fit diagnostics.
    source: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        if not self.name:
            raise ValueError("family name must be non-empty")
        if self.base_rate <= 0:
            raise ValueError(
                f"base_rate must be positive, got {self.base_rate}"
            )
        if not self.class_weights:
            raise ValueError("family needs at least one class")

    # ------------------------------------------------------------------
    # the standard scenario surface
    # ------------------------------------------------------------------

    @property
    def scenario_name(self) -> str:
        """The name used in the scenario registry (``trace:<name>``)."""
        return f"trace:{self.name}"

    def _service_distribution(self, class_name: str) -> Distribution:
        fitted = self.class_service.get(class_name, self.service)
        if fitted is not None:
            return fitted.distribution()
        # No durations anywhere in the trace: a deterministic placeholder
        # sized so the emitted mix still produces sensible utilization.
        return Deterministic(0.01)

    def classes(self) -> List[TransactionClass]:
        """The emitted transaction mix (validated, simulator-ready).

        Each trace class becomes a web-facing
        :class:`~repro.workload.transactions.TransactionClass` whose
        fitted service time is modelled as thread-held request work
        (``web_io``) plus a negligible CPU sliver, so the web pool is the
        contention point exactly as in a front-end request log.
        """
        names = sorted(self.class_weights)
        total = sum(self.class_weights[n] for n in names)
        classes = []
        weight_budget = 1.0
        for i, raw_name in enumerate(names):
            weight = self.class_weights[raw_name] / total
            # Make the weights sum to exactly 1.0 despite float division.
            weight = weight_budget if i == len(names) - 1 else weight
            weight_budget -= weight
            service = self._service_distribution(raw_name)
            mean_service = max(service.mean(), 1e-4)
            classes.append(
                TransactionClass(
                    name=f"trace_{_safe_name(raw_name)}",
                    mix_weight=weight,
                    web_cpu=Deterministic(_CPU_SLIVER),
                    web_io=service,
                    domain_queue=None,
                    domain_cpu=Deterministic(0.0),
                    db_service=Deterministic(0.0),
                    db_calls=0,
                    deadline=8.0 * mean_service,
                )
            )
        validate_mix(classes)
        return classes

    def register(self, overwrite: bool = True) -> str:
        """Publish into the scenario registry; returns the registered name."""
        register_scenario(self.scenario_name, self.classes, overwrite=overwrite)
        return self.scenario_name

    def rate_schedule(self) -> RateSchedule:
        """The piecewise-window arrival profile relative to ``base_rate``.

        Windows with zero measured rate keep a small positive multiplier
        (the driver cannot run at rate 0 — it would stop scheduling).
        """
        steps = []
        for window in self.windows:
            multiplier = max(window.rate / self.base_rate, 1e-3)
            steps.append((window.start, window.duration, multiplier))
        return RateSchedule(base_rate=self.base_rate, steps=steps)

    def window_interarrival(self, window: WindowFit) -> Distribution:
        """The arrival-gap distribution replay uses inside one window.

        The window's own fit when it exists; otherwise the pooled fit
        rescaled so its mean matches the window's measured rate.
        """
        if window.interarrival is not None:
            return window.interarrival.distribution()
        pooled = self.interarrival
        rate = max(window.rate, 1e-9)
        scale = (1.0 / rate) / max(pooled.mean, 1e-12)
        params = dict(pooled.params)
        if pooled.family in ("exponential", "lognormal"):
            params["mean"] = float(params["mean"]) * scale
        elif pooled.family == "hyperexponential":
            params["means"] = [float(m) * scale for m in params["means"]]
        from .fit import build_distribution

        return build_distribution(pooled.family, params)

    def window_service(self, window: WindowFit) -> Distribution:
        """The service distribution replay uses inside one window."""
        if window.service is not None:
            return window.service.distribution()
        if self.service is not None:
            return self.service.distribution()
        return Deterministic(0.01)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-friendly document (inverse: :meth:`from_dict`)."""
        return {
            "format": "repro-scenario-family",
            "version": _FORMAT_VERSION,
            "name": self.name,
            "base_rate": self.base_rate,
            "duration": self.duration,
            "interarrival": self.interarrival.to_dict(),
            "service": None if self.service is None else self.service.to_dict(),
            "class_weights": dict(sorted(self.class_weights.items())),
            "class_service": {
                name: fit.to_dict()
                for name, fit in sorted(self.class_service.items())
            },
            "windows": [w.to_dict() for w in self.windows],
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioFamily":
        if payload.get("format") != "repro-scenario-family":
            raise ValueError("not a scenario-family document")
        if int(payload.get("version", 0)) > _FORMAT_VERSION:
            raise ValueError(
                f"scenario-family version {payload['version']} is newer than "
                f"this reader ({_FORMAT_VERSION})"
            )
        return cls(
            name=str(payload["name"]),
            base_rate=float(payload["base_rate"]),
            duration=float(payload["duration"]),
            interarrival=FitResult.from_dict(payload["interarrival"]),
            service=(
                None
                if payload.get("service") is None
                else FitResult.from_dict(payload["service"])
            ),
            class_weights={
                str(k): float(v)
                for k, v in payload["class_weights"].items()
            },
            class_service={
                str(k): FitResult.from_dict(v)
                for k, v in payload.get("class_service", {}).items()
            },
            windows=[
                WindowFit.from_dict(w) for w in payload.get("windows", [])
            ],
            source=dict(payload.get("source", {})),
        )

    def save(self, path: Union[str, Path]) -> Path:
        """Write the family as one JSON document."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ScenarioFamily":
        """Inverse of :meth:`save` (``ValueError`` names a bad file)."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError) as error:
            raise ValueError(
                f"cannot read scenario family from {path}: {error}"
            ) from error
        return cls.from_dict(payload)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScenarioFamily({self.name!r}, rate={self.base_rate:.1f}/s, "
            f"classes={len(self.class_weights)}, windows={len(self.windows)})"
        )


def emit_family(
    fit: TraceFit,
    name: str,
    class_counts: Optional[Dict[str, int]] = None,
) -> ScenarioFamily:
    """Compile a :class:`TraceFit` into a named :class:`ScenarioFamily`.

    ``class_counts`` (normally ``trace.class_counts()``) sets the mix
    weights; without it the family is single-class.
    """
    if fit.mean_rate <= 0:
        raise ValueError(
            f"trace {fit.source} has no measurable arrival rate to emit"
        )
    if class_counts:
        weights = {
            str(cls): float(count)
            for cls, count in class_counts.items()
            if count > 0
        }
    else:
        weights = {"requests": 1.0}
    return ScenarioFamily(
        name=name,
        base_rate=fit.mean_rate,
        duration=fit.duration,
        interarrival=fit.interarrival,
        service=fit.service,
        class_weights=weights,
        class_service=dict(fit.class_service),
        windows=list(fit.windows),
        source={
            "trace": fit.source,
            "n_arrivals": fit.n_arrivals,
            "window_s": fit.window_s,
            "arrival_cv": fit.arrival_cv,
            "arrival_verdict": fit.arrival_verdict,
        },
    )
