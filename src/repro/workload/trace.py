"""Arrival traces: record the driver's arrival process and replay it.

Two reproducibility tools the stochastic drivers cannot give you:

* **record** the exact arrival sequence (time, class) of a run, persist it
  as CSV, and
* **replay** it against a *different* configuration — a paired comparison
  where the only varying factor is the configuration, eliminating
  arrival-process variance entirely (the strongest form of common random
  numbers).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Sequence, Union

from .des import Simulator
from .driver import LoadDriver
from .transactions import Transaction, TransactionClass, validate_mix

__all__ = ["ArrivalTrace", "record_trace", "TraceDriver"]


@dataclass(frozen=True)
class _Arrival:
    time: float
    class_name: str


class ArrivalTrace:
    """An ordered sequence of (arrival time, class name)."""

    def __init__(self, arrivals: Sequence[tuple]):
        parsed = [_Arrival(float(t), str(name)) for t, name in arrivals]
        for early, late in zip(parsed, parsed[1:]):
            if late.time < early.time:
                raise ValueError("trace arrivals must be time-ordered")
        if parsed and parsed[0].time < 0:
            raise ValueError("arrival times must be non-negative")
        self._arrivals = parsed

    def __len__(self) -> int:
        return len(self._arrivals)

    def __iter__(self):
        return iter(self._arrivals)

    @property
    def duration(self) -> float:
        """Time of the last arrival (0 for an empty trace)."""
        return self._arrivals[-1].time if self._arrivals else 0.0

    def mean_rate(self) -> float:
        """Arrivals per second over the trace's span."""
        if len(self._arrivals) < 2 or self.duration == 0:
            return 0.0
        return len(self._arrivals) / self.duration

    def class_counts(self) -> Dict[str, int]:
        """Arrivals per class name."""
        counts: Dict[str, int] = {}
        for arrival in self._arrivals:
            counts[arrival.class_name] = counts.get(arrival.class_name, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def save_csv(self, path: Union[str, Path]) -> Path:
        """Write the trace as ``time,class`` rows."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["time", "class"])
            for arrival in self._arrivals:
                writer.writerow([repr(arrival.time), arrival.class_name])
        return path

    @classmethod
    def load_csv(cls, path: Union[str, Path]) -> "ArrivalTrace":
        """Inverse of :meth:`save_csv`."""
        path = Path(path)
        with path.open(newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader)
            if header != ["time", "class"]:
                raise ValueError(f"{path} is not an ArrivalTrace CSV")
            rows = [(float(t), name) for t, name in reader]
        return cls(rows)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ArrivalTrace(n={len(self)}, duration={self.duration:.3f}s, "
            f"rate={self.mean_rate():.1f}/s)"
        )


def record_trace(driver: LoadDriver) -> ArrivalTrace:
    """Extract the arrival trace from a driver after a run."""
    return ArrivalTrace(
        [(t.arrived_at, t.txn_class.name) for t in driver.transactions]
    )


class TraceDriver:
    """Replay a recorded trace against a handler.

    Matches the :class:`~repro.workload.driver.LoadDriver` surface
    (``start``, ``stop``, ``transactions``, ``injected``) so existing
    collection code accepts it.

    Parameters
    ----------
    sim:
        The owning simulator.
    classes:
        Transaction mix containing every class name the trace references.
    trace:
        The recorded arrivals.
    handler:
        Returns the generator flow for each transaction.
    """

    def __init__(
        self,
        sim: Simulator,
        classes: Sequence[TransactionClass],
        trace: ArrivalTrace,
        handler: Callable[[Transaction], object],
    ):
        validate_mix(classes)
        self.sim = sim
        self._by_name = {cls.name: cls for cls in classes}
        missing = {a.class_name for a in trace} - set(self._by_name)
        if missing:
            raise ValueError(
                f"trace references classes not in the mix: {sorted(missing)}"
            )
        self.trace = trace
        self.handler = handler
        self.transactions: List[Transaction] = []
        self.injected = 0
        self._stopped = False

    def start(self) -> None:
        """Schedule every trace arrival.

        Must be called while the clock is at or before the first arrival;
        otherwise ``sim.schedule`` would be asked for a negative delay and
        the error would surface far from the cause."""
        arrivals = list(self.trace)
        if arrivals and arrivals[0].time < self.sim.now:
            raise ValueError(
                f"cannot replay a trace starting at t={arrivals[0].time:g} "
                f"when the simulation clock is already at t={self.sim.now:g}"
            )
        for arrival in arrivals:
            self.sim.schedule(
                arrival.time - self.sim.now,
                lambda arrival=arrival: self._inject(arrival),
            )

    def stop(self) -> None:
        """Suppress arrivals not yet injected."""
        self._stopped = True

    def _inject(self, arrival: _Arrival) -> None:
        if self._stopped:
            return
        txn = Transaction(
            txn_class=self._by_name[arrival.class_name],
            arrived_at=self.sim.now,
        )
        self.transactions.append(txn)
        self.injected += 1
        self.sim.spawn(
            self.handler(txn), name=f"replay-{self.injected}"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TraceDriver(trace={self.trace!r}, injected={self.injected})"
