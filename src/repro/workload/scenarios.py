"""Alternative workload scenarios.

`standard_mix()` reproduces the paper's case study; a characterization
*library* should let users study other regimes without re-deriving service
parameters.  Each scenario here is a named, documented variation of the
canonical five-class mix with a first-order rationale; all satisfy
`validate_mix` and run on the unchanged simulator.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List

from .distributions import Erlang, Hyperexponential, LogNormal, Uniform
from .transactions import TransactionClass, standard_mix, validate_mix

__all__ = [
    "SCENARIOS",
    "scenario",
    "available_scenarios",
    "register_scenario",
    "unregister_scenario",
]


def _paper() -> List[TransactionClass]:
    """The paper's case-study mix (the repo-wide default)."""
    return standard_mix()


def _browse_heavy() -> List[TransactionClass]:
    """Catalogue-style traffic: browsing dominates, purchases are rare.

    Weight shifts toward dealer_browse (60 %) with purchases at 4 %, so
    the inventory lock all but vanishes and the web queue becomes the only
    knee worth tuning.
    """
    by_name = {c.name: c for c in standard_mix()}
    return [
        replace(by_name["manufacturing"], mix_weight=0.10),
        replace(by_name["dealer_purchase"], mix_weight=0.04),
        replace(by_name["dealer_manage"], mix_weight=0.08),
        replace(by_name["dealer_browse"], mix_weight=0.63),
        replace(by_name["misc_background"], mix_weight=0.15),
    ]


def _order_heavy() -> List[TransactionClass]:
    """End-of-quarter order surge: purchases triple, the lock matters.

    Purchase weight rises to 30 % and its under-lock database write grows,
    making the inventory lock a first-class bottleneck — the regime where
    adding web threads actively hurts.
    """
    by_name = {c.name: c for c in standard_mix()}
    return [
        replace(by_name["manufacturing"], mix_weight=0.18),
        replace(
            by_name["dealer_purchase"],
            mix_weight=0.30,
            db_service=LogNormal(mean=0.009, sigma=0.4),
        ),
        replace(by_name["dealer_manage"], mix_weight=0.10),
        replace(by_name["dealer_browse"], mix_weight=0.22),
        replace(by_name["misc_background"], mix_weight=0.20),
    ]


def _batch_heavy() -> List[TransactionClass]:
    """Overnight batch window: background work doubles and slows.

    The default queue becomes the dominant knee; interactive classes are a
    minority that the background work must not starve.
    """
    by_name = {c.name: c for c in standard_mix()}
    return [
        replace(by_name["manufacturing"], mix_weight=0.15),
        replace(by_name["dealer_purchase"], mix_weight=0.06),
        replace(by_name["dealer_manage"], mix_weight=0.06),
        replace(by_name["dealer_browse"], mix_weight=0.23),
        replace(
            by_name["misc_background"],
            mix_weight=0.50,
            domain_cpu=Erlang(mean=0.004, k=4),
            db_service=LogNormal(mean=0.032, sigma=0.5),
        ),
    ]


def _bursty_web() -> List[TransactionClass]:
    """Flash-crowd front end: highly variable web CPU bursts.

    Same means as the paper mix but hyper-exponential web work (long
    renders mixed with trivial hits) — the regime where pool *size*
    matters most relative to pool *utilization*.
    """
    mixes = []
    for cls in standard_mix():
        if cls.has_web_stage and cls.domain_queue is None:
            mixes.append(
                replace(
                    cls,
                    web_cpu=Hyperexponential(
                        means=[0.002, 0.035], weights=[0.85, 0.15]
                    ),
                    web_io=Uniform(low=0.0115, high=0.0195),
                )
            )
        else:
            mixes.append(cls)
    return mixes


SCENARIOS: Dict[str, Callable[[], List[TransactionClass]]] = {
    "paper": _paper,
    "browse_heavy": _browse_heavy,
    "order_heavy": _order_heavy,
    "batch_heavy": _batch_heavy,
    "bursty_web": _bursty_web,
}


#: Names of the built-in scenarios; dynamic registrations cannot shadow
#: or remove these.
_BUILTIN = frozenset(SCENARIOS)


def register_scenario(
    name: str,
    factory: Callable[[], List[TransactionClass]],
    overwrite: bool = False,
) -> None:
    """Register a scenario family at runtime.

    Trace-emitted scenarios (:mod:`repro.traces`) use this to appear
    alongside the hand-written mixes — ``scenario(name)`` and every CLI
    ``--scenario`` flag then accept them.  The factory is validated once
    eagerly so a broken registration fails at registration time, not at
    first use.  Built-in names are immutable; re-registering another
    dynamic name requires ``overwrite=True``.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"scenario name must be a non-empty string, got {name!r}")
    if name in _BUILTIN:
        raise ValueError(f"cannot overwrite built-in scenario {name!r}")
    if name in SCENARIOS and not overwrite:
        raise ValueError(
            f"scenario {name!r} is already registered (overwrite=True replaces)"
        )
    validate_mix(factory())
    SCENARIOS[name] = factory


def unregister_scenario(name: str) -> bool:
    """Remove a dynamically-registered scenario; returns whether it existed."""
    if name in _BUILTIN:
        raise ValueError(f"cannot unregister built-in scenario {name!r}")
    return SCENARIOS.pop(name, None) is not None


def available_scenarios() -> List[str]:
    """Scenario names, sorted."""
    return sorted(SCENARIOS)


def scenario(name: str) -> List[TransactionClass]:
    """A fresh class list for ``name`` (validated)."""
    if name not in SCENARIOS:
        raise KeyError(
            f"unknown scenario {name!r}; available: {available_scenarios()}"
        )
    classes = SCENARIOS[name]()
    validate_mix(classes)
    return classes
