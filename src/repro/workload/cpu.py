"""Multicore CPU with round-robin scheduling and context-switch overhead.

This is the mechanism behind the paper's central non-linearity.  Application
threads do not run for free: a thread's CPU burst is executed on one of
``cores`` cores in round-robin quanta, and every dispatch pays a context
switch whose cost grows with the number of runnable threads beyond the core
count (cache/TLB pollution: the more working sets a core multiplexes, the
colder each one runs).  Consequences, none of which are curve-fit:

* **undersized thread pools** leave cores idle while requests queue at the
  pool — response time rises (the left wall of the paper's valleys);
* **oversized pools** admit more runnable threads than cores, so every
  quantum pays inflated switch costs — service times stretch and throughput
  sags (the right wall of the valleys and the downhill side of the hills).

Processes yield :class:`Execute` to burn CPU; the scheduler resumes them
when their burst has received its full service.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from .des import Effect, Process, Simulator

__all__ = ["CpuJob", "MultiCoreCpu", "Execute"]

#: Remaining-work threshold below which a job is considered finished.
_EPSILON = 1e-12


class CpuJob:
    """One CPU burst awaiting (or receiving) service."""

    __slots__ = ("process", "remaining", "overhead_paid", "dispatches")

    def __init__(self, process: Process, work: float):
        self.process = process
        self.remaining = float(work)
        self.overhead_paid = 0.0
        self.dispatches = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CpuJob({self.process.name}, remaining={self.remaining:.6f})"


class MultiCoreCpu:
    """``cores`` identical cores sharing one round-robin ready queue.

    Parameters
    ----------
    sim:
        The owning simulator.
    cores:
        Number of cores (Table 1's machine models as 8).
    quantum:
        Maximum CPU time a job receives per dispatch.
    switch_cost:
        Base context-switch cost paid at every dispatch.
    pollution_factor:
        Additional switch cost *per runnable thread in excess of the core
        count*, as a multiple of ``switch_cost``.  Zero disables the
        contention non-linearity (used by the ablation benches).
    excess_cap:
        Upper bound on the excess-runnable count that inflates the switch
        cost.  Cache/TLB pollution saturates once every core's cache is
        fully thrashed, so the penalty is bounded; this also keeps extreme
        misconfigurations degrading gracefully instead of running away.
    """

    def __init__(
        self,
        sim: Simulator,
        cores: int = 8,
        quantum: float = 0.020,
        switch_cost: float = 0.0002,
        pollution_factor: float = 0.25,
        excess_cap: int = 10,
    ):
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores}")
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        if switch_cost < 0:
            raise ValueError(f"switch_cost must be non-negative, got {switch_cost}")
        if pollution_factor < 0:
            raise ValueError(
                f"pollution_factor must be non-negative, got {pollution_factor}"
            )
        if excess_cap < 0:
            raise ValueError(f"excess_cap must be non-negative, got {excess_cap}")
        self.sim = sim
        self.cores = int(cores)
        self.quantum = float(quantum)
        self.switch_cost = float(switch_cost)
        self.pollution_factor = float(pollution_factor)
        self.excess_cap = int(excess_cap)
        self.ready: Deque[CpuJob] = deque()
        self.running = 0
        # statistics
        self.total_dispatches = 0
        self.total_overhead = 0.0
        self.total_work_done = 0.0
        self._busy_integral = 0.0
        self._last_change = sim.now

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def _advance_integral(self) -> None:
        elapsed = self.sim.now - self._last_change
        if elapsed > 0:
            self._busy_integral += elapsed * self.running
        self._last_change = self.sim.now

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Time-averaged fraction of cores occupied (work plus overhead)."""
        self._advance_integral()
        horizon = self.sim.now if horizon is None else horizon
        if horizon <= 0:
            return 0.0
        return self._busy_integral / (horizon * self.cores)

    @property
    def runnable(self) -> int:
        """Jobs on a core plus jobs in the ready queue."""
        return self.running + len(self.ready)

    def dispatch_overhead(self, runnable: int) -> float:
        """Context-switch cost for a dispatch with ``runnable`` total jobs.

        Memory-bandwidth and cache contention begin before every core has a
        private queue, so the pollution term engages once the runnable count
        exceeds half the cores and saturates at ``excess_cap`` beyond that.
        """
        threshold = self.cores // 2
        excess = min(max(0, runnable - threshold), self.excess_cap)
        return self.switch_cost * (1.0 + self.pollution_factor * excess)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def submit(self, job: CpuJob) -> None:
        """Add a burst to the ready queue and fill any idle cores."""
        if job.remaining < 0:
            raise ValueError(f"work must be non-negative, got {job.remaining}")
        if job.remaining <= _EPSILON:
            # Zero-length burst: complete without occupying a core.
            self.sim.schedule(0.0, job.process.resume)
            return
        self.ready.append(job)
        self._fill_cores()

    def _fill_cores(self) -> None:
        while self.running < self.cores and self.ready:
            job = self.ready.popleft()
            self._advance_integral()
            self.running += 1
            overhead = self.dispatch_overhead(self.runnable)
            time_slice = min(self.quantum, job.remaining)
            job.dispatches += 1
            job.overhead_paid += overhead
            self.total_dispatches += 1
            self.total_overhead += overhead
            self.sim.schedule(
                overhead + time_slice,
                lambda job=job, time_slice=time_slice: self._slice_done(
                    job, time_slice
                ),
            )

    def _slice_done(self, job: CpuJob, time_slice: float) -> None:
        self._advance_integral()
        self.running -= 1
        job.remaining -= time_slice
        self.total_work_done += time_slice
        if job.remaining <= _EPSILON:
            self.sim.schedule(0.0, job.process.resume)
        else:
            self.ready.append(job)
        self._fill_cores()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MultiCoreCpu(cores={self.cores}, running={self.running}, "
            f"ready={len(self.ready)})"
        )


class Execute(Effect):
    """Yielded by a process to consume ``work`` seconds of CPU time.

    The process resumes once the scheduler has granted the burst its full
    service, which takes at least ``work`` wall-clock time and more under
    contention.
    """

    def __init__(self, cpu: MultiCoreCpu, work: float):
        if work < 0:
            raise ValueError(f"work must be non-negative, got {work}")
        self.cpu = cpu
        self.work = float(work)

    def apply(self, sim, process):
        self.cpu.submit(CpuJob(process, self.work))
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Execute(work={self.work})"
