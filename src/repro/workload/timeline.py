"""Time-series (windowed) indicator metrics.

The paper averages over one steady-state window; with disturbances in play
the *trajectory* matters — how deep does latency spike, how long until it
recovers?  :func:`timeline_from_transactions` buckets completed transactions
into fixed windows and computes the five canonical indicators per window;
:class:`Timeline` adds the recovery arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from .service import OUTPUT_NAMES
from .transactions import Transaction

__all__ = ["Timeline", "timeline_from_transactions"]

_RT_CLASS_FOR_OUTPUT = {
    "manufacturing_rt": "manufacturing",
    "dealer_purchase_rt": "dealer_purchase",
    "dealer_manage_rt": "dealer_manage",
    "dealer_browse_rt": "dealer_browse",
}


@dataclass
class Timeline:
    """Windowed indicator series."""

    #: Window start times.
    times: np.ndarray
    #: Window length in seconds.
    interval: float
    #: Indicator name -> per-window values (NaN where a window saw no
    #: completion of the relevant class).
    series: Dict[str, np.ndarray]

    @property
    def n_windows(self) -> int:
        """Number of windows."""
        return self.times.size

    def indicator(self, name: str) -> np.ndarray:
        """One indicator's series."""
        if name not in self.series:
            raise KeyError(f"unknown indicator {name!r}")
        return self.series[name]

    def baseline(self, name: str, until: float) -> float:
        """Mean of an indicator over windows starting before ``until``."""
        values = self.indicator(name)[self.times < until]
        values = values[~np.isnan(values)]
        if values.size == 0:
            raise ValueError(f"no {name} data before t={until}")
        return float(values.mean())

    def peak_deviation(
        self, name: str, after: float, baseline: Optional[float] = None
    ) -> float:
        """Largest |relative deviation| from baseline in windows >= after."""
        base = (
            baseline if baseline is not None else self.baseline(name, after)
        )
        values = self.indicator(name)[self.times >= after]
        values = values[~np.isnan(values)]
        if values.size == 0 or base == 0:
            return 0.0
        return float(np.max(np.abs(values - base)) / abs(base))

    def recovery_time(
        self,
        name: str,
        disturbance_end: float,
        tolerance: float = 0.25,
        baseline_until: Optional[float] = None,
    ) -> Optional[float]:
        """Seconds after ``disturbance_end`` until the indicator stays
        within ``tolerance`` of its pre-disturbance baseline.

        Returns None if it never re-enters the band within the timeline.
        """
        base = self.baseline(name, baseline_until or disturbance_end)
        mask = self.times >= disturbance_end
        times = self.times[mask]
        values = self.indicator(name)[mask]
        within = np.abs(values - base) <= tolerance * abs(base)
        within |= np.isnan(values)  # an empty window is not evidence
        for start in range(times.size):
            if np.all(within[start:]):
                return float(times[start] - disturbance_end)
        return None

    def to_text(self, names: Optional[Iterable[str]] = None) -> str:
        """A compact table of the windowed series."""
        names = list(names or OUTPUT_NAMES)
        header = "t".rjust(7) + "".join(n[:14].rjust(16) for n in names)
        lines = [header]
        for i, t in enumerate(self.times):
            cells = []
            for name in names:
                value = self.series[name][i]
                cells.append(
                    "-".rjust(16)
                    if np.isnan(value)
                    else f"{value:16.4g}"
                )
            lines.append(f"{t:7.1f}" + "".join(cells))
        return "\n".join(lines)


def timeline_from_transactions(
    transactions: Iterable[Transaction],
    interval: float = 1.0,
    start: float = 0.0,
    end: Optional[float] = None,
) -> Timeline:
    """Bucket completed transactions by completion time.

    Response-time indicators are per-window means over the matching class;
    effective throughput is deadline hits per second in the window.
    """
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    completed: List[Transaction] = [
        t for t in transactions if t.is_complete
    ]
    if not completed:
        raise ValueError("no completed transactions to bucket")
    horizon = (
        end
        if end is not None
        else max(t.completed_at for t in completed)
    )
    if horizon <= start:
        raise ValueError(f"end {horizon} must exceed start {start}")
    n_windows = int(np.ceil((horizon - start) / interval))
    times = start + interval * np.arange(n_windows)

    # Pre-bucket transactions.
    buckets: List[List[Transaction]] = [[] for _ in range(n_windows)]
    for txn in completed:
        index = int((txn.completed_at - start) // interval)
        if 0 <= index < n_windows:
            buckets[index].append(txn)

    series: Dict[str, np.ndarray] = {}
    for output, cls_name in _RT_CLASS_FOR_OUTPUT.items():
        values = np.full(n_windows, np.nan)
        for i, bucket in enumerate(buckets):
            rts = [
                t.response_time
                for t in bucket
                if t.txn_class.name == cls_name
            ]
            if rts:
                values[i] = float(np.mean(rts))
        series[output] = values
    effective = np.zeros(n_windows)
    for i, bucket in enumerate(buckets):
        effective[i] = sum(1 for t in bucket if t.met_deadline) / interval
    series["effective_tps"] = effective

    return Timeline(times=times, interval=float(interval), series=series)
