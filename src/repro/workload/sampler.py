"""Experiment designs and sample collection.

The paper's samples come from "running the identical application under
various configurations".  This module provides the designs that choose those
configurations — full-factorial grids, uniform random designs, and Latin
hypercube designs (all from scratch) — and :class:`SampleCollector`, which
runs a backend (the DES or the analytic surrogate) over a design and returns
a :class:`~repro.workload.dataset.Dataset`, optionally cached on disk.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from .dataset import Dataset
from .service import INPUT_NAMES, WorkloadConfig

__all__ = [
    "ParameterRange",
    "ConfigSpace",
    "full_factorial",
    "random_design",
    "latin_hypercube",
    "SampleCollector",
]


@dataclass(frozen=True)
class ParameterRange:
    """Inclusive range of one configuration parameter."""

    name: str
    low: float
    high: float
    #: Round sampled values to integers (thread counts are integral).
    integer: bool = True

    def __post_init__(self):
        if self.high < self.low:
            raise ValueError(
                f"{self.name}: high {self.high} < low {self.low}"
            )

    def grid(self, levels: int) -> np.ndarray:
        """``levels`` evenly-spaced values across the range."""
        if levels < 1:
            raise ValueError(f"levels must be >= 1, got {levels}")
        if levels == 1:
            values = np.array([0.5 * (self.low + self.high)])
        else:
            values = np.linspace(self.low, self.high, levels)
        return np.round(values) if self.integer else values

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """``n`` uniform draws from the range."""
        values = rng.uniform(self.low, self.high, size=n)
        return np.round(values) if self.integer else values


class ConfigSpace:
    """The swept region of the 4-dimensional configuration space.

    The default region brackets the paper's figure captions — injection rate
    around 560, default/web queues swept across their knees, mfg around 16.
    """

    def __init__(self, ranges: Optional[Sequence[ParameterRange]] = None):
        if ranges is None:
            ranges = [
                ParameterRange("injection_rate", 400, 600),
                ParameterRange("default_threads", 2, 22),
                ParameterRange("mfg_threads", 8, 24),
                ParameterRange("web_threads", 14, 24),
            ]
        self.ranges = list(ranges)
        names = [r.name for r in self.ranges]
        if names != INPUT_NAMES[: len(names)]:
            raise ValueError(
                f"ranges must be in canonical order {INPUT_NAMES}, got {names}"
            )

    @property
    def n_dims(self) -> int:
        """Number of swept parameters."""
        return len(self.ranges)

    def clip(self, vector: np.ndarray) -> np.ndarray:
        """Clamp a configuration vector into the space.

        Integer parameters land on an integer *inside* the declared
        bounds (``ceil(low) .. floor(high)``) — plain round-after-clamp
        could push a value like 2.4 back below a ``low`` of 2.6.  A
        fractional integer range containing no integer at all falls back
        to the clamped float.
        """
        vector = np.asarray(vector, dtype=float).copy()
        for j, r in enumerate(self.ranges):
            value = min(max(vector[j], r.low), r.high)
            if r.integer:
                lo, hi = math.ceil(r.low), math.floor(r.high)
                if lo <= hi:
                    value = float(min(max(round(value), lo), hi))
            vector[j] = value
        return vector


def full_factorial(
    space: ConfigSpace, levels: Union[int, Sequence[int]]
) -> List[WorkloadConfig]:
    """Cartesian grid with ``levels`` values per dimension."""
    if isinstance(levels, int):
        levels = [levels] * space.n_dims
    if len(levels) != space.n_dims:
        raise ValueError(
            f"need {space.n_dims} level counts, got {len(levels)}"
        )
    axes = [r.grid(n) for r, n in zip(space.ranges, levels)]
    return [
        WorkloadConfig.from_vector(np.array(point))
        for point in itertools.product(*axes)
    ]


def random_design(
    space: ConfigSpace, n: int, seed: Optional[int] = None
) -> List[WorkloadConfig]:
    """``n`` independent uniform draws from the space."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rng = np.random.default_rng(seed)
    columns = [r.sample(rng, n) for r in space.ranges]
    matrix = np.column_stack(columns)
    return [WorkloadConfig.from_vector(row) for row in matrix]


def latin_hypercube(
    space: ConfigSpace, n: int, seed: Optional[int] = None
) -> List[WorkloadConfig]:
    """``n`` Latin-hypercube samples: one draw per row/column stratum.

    Stratified coverage beats pure random sampling for the small collections
    (~50 samples) the paper works with.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rng = np.random.default_rng(seed)
    columns = []
    for r in space.ranges:
        strata = (np.arange(n) + rng.uniform(size=n)) / n
        rng.shuffle(strata)
        values = r.low + strata * (r.high - r.low)
        columns.append(np.round(values) if r.integer else values)
    matrix = np.column_stack(columns)
    return [WorkloadConfig.from_vector(row) for row in matrix]


class SampleCollector:
    """Run a backend over a design and assemble the Dataset.

    Parameters
    ----------
    backend:
        Either a :class:`~repro.workload.service.ThreeTierWorkload` (has
        ``run(config)`` returning metrics) or an
        :class:`~repro.workload.analytic.AnalyticWorkloadModel` (has
        ``evaluate_vector(config)``).
    cache_path:
        Optional CSV path; when it exists and holds at least as many samples
        as requested, collection is skipped and the cache is returned.
    """

    def __init__(self, backend, cache_path: Optional[Union[str, Path]] = None):
        self.backend = backend
        self.cache_path = Path(cache_path) if cache_path else None

    def collect(
        self,
        configs: Sequence[WorkloadConfig],
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> Dataset:
        """Evaluate every configuration; returns the (possibly cached) Dataset."""
        if not configs:
            raise ValueError("no configurations to collect")
        if self.cache_path and self.cache_path.exists():
            cached = Dataset.load_csv(self.cache_path)
            if len(cached) >= len(configs):
                return cached
        rows_x = []
        rows_y = []
        for index, config in enumerate(configs):
            rows_x.append(config.as_vector())
            rows_y.append(self._evaluate(config))
            if progress is not None:
                progress(index + 1, len(configs))
        dataset = Dataset(np.vstack(rows_x), np.vstack(rows_y))
        if self.cache_path:
            dataset.save_csv(self.cache_path)
        return dataset

    def _evaluate(self, config: WorkloadConfig) -> np.ndarray:
        if hasattr(self.backend, "run"):
            return self.backend.run(config).as_vector()
        if hasattr(self.backend, "evaluate_vector"):
            return np.asarray(self.backend.evaluate_vector(config), dtype=float)
        raise TypeError(
            f"backend {self.backend!r} has neither run() nor evaluate_vector()"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SampleCollector(backend={type(self.backend).__name__}, "
            f"cache={self.cache_path})"
        )
